"""Tests for the hybrid scheduler (Sections V–VI)."""

import numpy as np
import pytest

from repro.dag import Dag, layered_dag
from repro.schedulers import (
    HybridScheduler,
    LevelBasedScheduler,
    LogicBloxScheduler,
)
from repro.sim import simulate
from repro.tasks import JobTrace
from repro.workloads import logicblox_killer, theorem9_example


def test_no_level_barrier():
    """Inherits the production scheduler's early release."""
    dag = Dag(4, [(0, 1), (2, 3)])
    trace = JobTrace(
        dag=dag,
        work=np.array([10.0, 1.0, 1.0, 1.0]),
        initial_tasks=np.array([0, 2]),
        changed_edges=np.ones(2, dtype=bool),
    )
    res = simulate(
        trace, HybridScheduler(), processors=2, record_schedule=True
    )
    start = {r.node: r.start for r in res.schedule}
    assert start[3] < 10.0


def test_beats_levelbased_on_theorem9():
    trace = theorem9_example(12)
    hy = simulate(trace, HybridScheduler(), processors=16)
    lb = simulate(trace, LevelBasedScheduler(), processors=16)
    assert hy.makespan < 0.5 * lb.makespan


def test_overhead_beats_fresh_logicblox_on_killer():
    """The headline Table III / '100x' effect: when LevelBased keeps the
    shared queue fed, the production component's scans never run."""
    trace = logicblox_killer(150, width_per_step=8)
    hy = simulate(trace, HybridScheduler(), processors=4)
    lbx = simulate(trace, LogicBloxScheduler("fresh"), processors=4)
    assert hy.scheduling_ops < lbx.scheduling_ops / 10


def test_component_ops_reported():
    trace = theorem9_example(6)
    s = HybridScheduler()
    simulate(trace, s, processors=4)
    split = s.component_ops
    assert set(split) == {"levelbased", "logicblox"}
    assert split["levelbased"] > 0


def test_no_double_execution():
    """Shared queue must not hand a task to both components."""
    rng = np.random.default_rng(11)
    dag = layered_dag([4, 7, 7, 4], edge_prob=0.4, rng=rng, skip_prob=0.4)
    trace = JobTrace(
        dag=dag,
        work=rng.uniform(0.1, 2.0, dag.n_nodes),
        initial_tasks=dag.sources()[:2],
        changed_edges=rng.random(dag.n_edges) < 0.7,
    )
    res = simulate(trace, HybridScheduler(), processors=4)
    assert res.tasks_executed == trace.n_active  # engine enforces too


def test_makespan_close_to_best_component():
    """'Similar or improved total execution times' (Section VI)."""
    rng = np.random.default_rng(5)
    dag = layered_dag([3, 6, 6, 6, 3], edge_prob=0.3, rng=rng, skip_prob=0.3)
    trace = JobTrace(
        dag=dag,
        work=rng.lognormal(0, 1.0, dag.n_nodes),
        initial_tasks=dag.sources()[:2],
        changed_edges=rng.random(dag.n_edges) < 0.6,
    )
    hy = simulate(trace, HybridScheduler(), processors=4)
    lb = simulate(trace, LevelBasedScheduler(), processors=4)
    lbx = simulate(trace, LogicBloxScheduler("fresh"), processors=4)
    best = min(lb.makespan, lbx.makespan)
    assert hy.makespan <= best * 1.1


def test_precompute_includes_both_components():
    trace = theorem9_example(5)
    hy = HybridScheduler()
    lb = LevelBasedScheduler()
    simulate(trace, hy, processors=2)
    simulate(trace, lb, processors=2)
    assert hy.precompute_memory_cells > lb.precompute_memory_cells
