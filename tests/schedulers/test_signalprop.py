"""Tests for the brute-force signal propagation baseline."""

import numpy as np
import pytest

from repro.dag import Dag, layered_dag
from repro.schedulers import LevelBasedScheduler, SignalPropagationScheduler
from repro.sim import simulate
from repro.tasks import JobTrace


def test_ops_proportional_to_whole_dag():
    """O(V + E) messages even when almost nothing is active."""
    rng = np.random.default_rng(0)
    dag = layered_dag([20] * 8, edge_prob=0.3, rng=rng)
    # activate a single source whose output changes nothing
    flags = np.zeros(dag.n_edges, dtype=bool)
    trace = JobTrace(
        dag=dag,
        work=np.ones(dag.n_nodes),
        initial_tasks=dag.sources()[:1],
        changed_edges=flags,
    )
    s = SignalPropagationScheduler()
    res = simulate(trace, s, processors=2)
    assert res.tasks_executed == 1
    # messages cover the entire graph despite n = 1
    assert res.scheduling_ops >= dag.n_nodes + dag.n_edges


def test_no_precomputation():
    dag = Dag(3, [(0, 1), (1, 2)])
    trace = JobTrace(
        dag=dag,
        work=np.ones(3),
        initial_tasks=np.array([0]),
        changed_edges=np.ones(2, dtype=bool),
    )
    s = SignalPropagationScheduler()
    simulate(trace, s)
    assert s.precompute_ops == 0


def test_discovers_ready_immediately():
    """Signals travel instantly, so the schedule matches greedy."""
    dag = Dag(4, [(0, 1), (2, 3)])
    trace = JobTrace(
        dag=dag,
        work=np.array([10.0, 1.0, 1.0, 1.0]),
        initial_tasks=np.array([0, 2]),
        changed_edges=np.ones(2, dtype=bool),
    )
    res = simulate(
        trace, SignalPropagationScheduler(), processors=2,
        record_schedule=True,
    )
    start = {r.node: r.start for r in res.schedule}
    assert start[3] < 10.0  # no level barrier


def test_same_task_set_as_levelbased():
    rng = np.random.default_rng(3)
    dag = layered_dag([4, 6, 6, 4], edge_prob=0.4, rng=rng, skip_prob=0.3)
    trace = JobTrace(
        dag=dag,
        work=rng.uniform(0.5, 2.0, dag.n_nodes),
        initial_tasks=dag.sources()[:2],
        changed_edges=rng.random(dag.n_edges) < 0.6,
    )
    a = simulate(trace, SignalPropagationScheduler(), processors=3)
    b = simulate(trace, LevelBasedScheduler(), processors=3)
    assert a.tasks_executed == b.tasks_executed


def test_initial_nonsource_task():
    dag = Dag(3, [(0, 1), (1, 2)])
    flags = np.zeros(2, dtype=bool)
    flags[dag.edge_index(1, 2)] = True
    trace = JobTrace(
        dag=dag,
        work=np.ones(3),
        initial_tasks=np.array([1]),  # rule redefinition mid-DAG
        changed_edges=flags,
    )
    res = simulate(trace, SignalPropagationScheduler(), processors=1)
    assert res.tasks_executed == 2  # 1 and 2
