"""Tests for LevelBased with LookAhead — LBL(k)."""

import numpy as np
import pytest

from repro.dag import Dag
from repro.schedulers import LevelBasedScheduler, LookaheadScheduler
from repro.sim import simulate
from repro.tasks import JobTrace
from repro.workloads import theorem9_example


def full_trace(dag, work=None):
    work = np.ones(dag.n_nodes) if work is None else np.asarray(work, float)
    return JobTrace(
        dag=dag,
        work=work,
        initial_tasks=dag.sources(),
        changed_edges=np.ones(dag.n_edges, dtype=bool),
    )


def test_negative_k_rejected():
    with pytest.raises(ValueError):
        LookaheadScheduler(-1)


def test_name_includes_k():
    assert LookaheadScheduler(7).name == "LBL(k=7)"


def test_k0_equals_levelbased():
    trace = theorem9_example(8)
    base = simulate(trace, LevelBasedScheduler(), processors=8)
    lbl0 = simulate(trace, LookaheadScheduler(0), processors=8)
    assert lbl0.makespan == pytest.approx(base.makespan, rel=1e-9)


def test_lookahead_breaks_the_barrier():
    # two chains: a long task at level 0 of chain A; chain B's level-1
    # task is independent and within the look-ahead window
    dag = Dag(4, [(0, 1), (2, 3)])
    trace = full_trace(dag, work=[10.0, 1.0, 1.0, 1.0])
    res = simulate(
        trace, LookaheadScheduler(3), processors=2, record_schedule=True
    )
    start = {r.node: r.start for r in res.schedule}
    assert start[3] < 10.0  # started before the straggler finished


def test_lookahead_respects_real_dependencies(diamond):
    # node 3 depends on BOTH 1 and 2 — lookahead must not release it early
    trace = JobTrace(
        dag=diamond,
        work=np.array([1.0, 10.0, 1.0, 1.0]),
        initial_tasks=np.array([0]),
        changed_edges=np.ones(4, dtype=bool),
    )
    res = simulate(
        trace, LookaheadScheduler(5), processors=4, record_schedule=True
    )
    start = {r.node: r.start for r in res.schedule}
    assert start[3] >= 11.0 - 1e-9


def test_monotone_improvement_on_theorem9():
    """Deeper look-ahead ⇒ no worse makespan (Table II's trend)."""
    trace = theorem9_example(12)
    prev = float("inf")
    for k in (0, 2, 5, 12):
        res = simulate(trace, LookaheadScheduler(k), processors=16)
        assert res.makespan <= prev + 1e-9
        prev = res.makespan


def test_full_lookahead_matches_greedy_on_theorem9():
    from repro.schedulers import OracleScheduler

    trace = theorem9_example(10)
    lbl = simulate(trace, LookaheadScheduler(10), processors=16)
    oracle = simulate(trace, OracleScheduler(), processors=16)
    assert lbl.execution_makespan == pytest.approx(
        oracle.execution_makespan, rel=0.01
    )
