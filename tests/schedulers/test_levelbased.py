"""Tests for the LevelBased scheduler (Section III, Theorem 2)."""

import numpy as np
import pytest

from repro.dag import Dag, chain, layered_dag
from repro.schedulers import LevelBasedScheduler
from repro.sim import simulate
from repro.tasks import JobTrace


def full_trace(dag, work=None):
    work = np.ones(dag.n_nodes) if work is None else np.asarray(work, float)
    return JobTrace(
        dag=dag,
        work=work,
        initial_tasks=dag.sources(),
        changed_edges=np.ones(dag.n_edges, dtype=bool),
    )


def test_executes_level_by_level(diamond):
    trace = full_trace(diamond)
    res = simulate(trace, LevelBasedScheduler(), record_schedule=True)
    start = {r.node: r.start for r in res.schedule}
    levels = trace.levels
    for u in range(4):
        for v in range(4):
            if levels[u] < levels[v]:
                assert start[u] < start[v] + 1e-12


def test_level_barrier_blocks_next_level():
    # two parallel chains a0→a1, b0→b1; a0 long. LevelBased must not
    # start any level-1 task until BOTH level-0 tasks finish.
    dag = Dag(4, [(0, 1), (2, 3)])
    trace = full_trace(dag, work=[10.0, 1.0, 1.0, 1.0])
    res = simulate(
        trace, LevelBasedScheduler(), processors=2, record_schedule=True
    )
    start = {r.node: r.start for r in res.schedule}
    assert start[3] >= 10.0  # waited for node 0 although only 2 is its parent
    assert res.execution_makespan == pytest.approx(11.0, abs=1e-4)


def test_runtime_ops_linear_in_active_plus_levels():
    """Theorem 2: scheduling cost O(n + L), independent of V and E."""
    dag = layered_dag([40] * 10, edge_prob=0.5, rng=0)
    # activate only one chain's worth of nodes
    rng = np.random.default_rng(1)
    flags = np.zeros(dag.n_edges, dtype=bool)
    # activate a single path by flagging one outgoing edge per level
    node = int(dag.sources()[0])
    path = [node]
    while dag.out_degree(node):
        nxt = int(dag.out_neighbors(node)[0])
        flags[dag.edge_index(node, nxt)] = True
        path.append(nxt)
        node = nxt
    trace = JobTrace(
        dag=dag,
        work=np.ones(dag.n_nodes),
        initial_tasks=np.array([path[0]]),
        changed_edges=flags,
    )
    res = simulate(trace, LevelBasedScheduler(), processors=4)
    n, L = trace.n_active, trace.n_levels
    assert res.scheduling_ops <= 4 * (n + L) + 10
    # and the precompute is the only part that touches V and E
    assert res.precompute_ops == dag.n_nodes + dag.n_edges


def test_precompute_memory_is_V():
    dag = chain(50)
    res = simulate(full_trace(dag), LevelBasedScheduler())
    assert res.precompute_memory_cells == 50


def test_runtime_memory_linear_in_active():
    dag = layered_dag([10] * 5, edge_prob=0.5, rng=0)
    trace = full_trace(dag)
    res = simulate(trace, LevelBasedScheduler(), processors=2)
    assert res.runtime_peak_memory_cells <= trace.n_active + 1


def test_current_level_property():
    s = LevelBasedScheduler()
    dag = chain(3)
    simulate(full_trace(dag), s)
    assert s.current_level == 2  # advanced to the last level
