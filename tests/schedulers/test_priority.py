"""Tests for the critical-path-first heuristic."""

import numpy as np
import pytest

from repro.dag import Dag, chain
from repro.schedulers import LevelBasedScheduler, meta_schedule
from repro.schedulers.priority import CriticalPathScheduler, downstream_weight
from repro.sim import OverheadModel, simulate
from repro.tasks import JobTrace

NO_OVERHEAD = OverheadModel(op_cost=0.0)


class TestDownstreamWeight:
    def test_chain(self):
        dag = chain(4)
        w = downstream_weight(dag, np.ones(4))
        assert list(w) == [4.0, 3.0, 2.0, 1.0]

    def test_diamond(self, diamond):
        work = np.array([1.0, 5.0, 1.0, 1.0])
        w = downstream_weight(diamond, work)
        assert w[3] == 1.0
        assert w[1] == 6.0
        assert w[2] == 2.0
        assert w[0] == 7.0  # through the heavy branch


class TestScheduling:
    def test_prefers_long_chain(self):
        # two chains: long (0→1→2) and a short heavy task 3; P=1.
        # critical-path order runs the chain head first.
        dag = Dag(4, [(0, 1), (1, 2)])
        trace = JobTrace(
            dag=dag,
            work=np.array([1.0, 1.0, 1.0, 2.9]),
            initial_tasks=np.array([0, 3]),
            changed_edges=np.ones(2, dtype=bool),
        )
        res = simulate(
            trace, CriticalPathScheduler(), processors=1,
            overhead=NO_OVERHEAD, record_schedule=True,
        )
        start = {r.node: r.start for r in res.schedule}
        assert start[0] < start[3]

    def test_beats_fifo_on_hidden_chain(self):
        # P=2: a long chain (total 10) plus 10 unit tasks. Running the
        # chain first gives makespan ~10; FIFO can start units first.
        b_edges = [(i, i + 1) for i in range(9)]
        dag = Dag(20, b_edges)
        work = np.ones(20)
        trace = JobTrace(
            dag=dag,
            work=work,
            initial_tasks=np.concatenate(([0], np.arange(10, 20))),
            changed_edges=np.ones(len(b_edges), dtype=bool),
        )
        cp = simulate(
            trace, CriticalPathScheduler(), processors=2,
            overhead=NO_OVERHEAD,
        )
        assert cp.makespan == pytest.approx(10.0, abs=1e-6)

    def test_valid_schedule(self, diamond_trace):
        res = simulate(
            diamond_trace, CriticalPathScheduler(), processors=2,
            record_schedule=True,
        )
        assert res.tasks_executed == 4
        finish = {r.node: r.finish for r in res.schedule}
        start = {r.node: r.start for r in res.schedule}
        assert start[3] >= max(finish[1], finish[2]) - 1e-9

    def test_usable_inside_meta(self):
        trace = diamond_like_trace()
        res = meta_schedule(
            trace, CriticalPathScheduler(), processors=4, zeta=10**9
        )
        ta = simulate(trace, CriticalPathScheduler(), processors=4).makespan
        tb = simulate(trace, LevelBasedScheduler(), processors=4).makespan
        assert res.makespan <= 2 * min(ta, tb) + 1e-9


def diamond_like_trace():
    rng = np.random.default_rng(0)
    from repro.dag import layered_dag

    dag = layered_dag([3, 5, 5, 3], edge_prob=0.4, rng=rng)
    return JobTrace(
        dag=dag,
        work=rng.uniform(0.5, 3.0, dag.n_nodes),
        initial_tasks=dag.sources(),
        changed_edges=rng.random(dag.n_edges) < 0.7,
    )
