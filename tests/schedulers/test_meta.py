"""Tests for the Theorem 10 / Corollary 11 meta-scheduler."""

import numpy as np
import pytest

from repro.dag import layered_dag
from repro.schedulers import (
    LevelBasedScheduler,
    LogicBloxScheduler,
    meta_schedule,
)
from repro.sim import simulate
from repro.tasks import JobTrace
from repro.workloads import theorem9_example


def rand_trace(seed=0):
    rng = np.random.default_rng(seed)
    dag = layered_dag([3, 5, 5, 3], edge_prob=0.4, rng=rng)
    return JobTrace(
        dag=dag,
        work=rng.uniform(0.5, 2.0, dag.n_nodes),
        initial_tasks=dag.sources(),
        changed_edges=rng.random(dag.n_edges) < 0.7,
    )


def test_requires_two_processors():
    with pytest.raises(ValueError, match="2 processors"):
        meta_schedule(rand_trace(), LogicBloxScheduler(), 1, zeta=10**9)


def test_zeta_must_be_omega_v():
    t = rand_trace()
    with pytest.raises(ValueError, match="zeta"):
        meta_schedule(t, LogicBloxScheduler(), 4, zeta=1)


def test_theorem10_bound():
    """Makespan ≤ 2·min{T_a, T_b} (both measured on full P)."""
    t = rand_trace(3)
    P, zeta = 8, 10**9
    res = meta_schedule(t, LogicBloxScheduler(), P, zeta)
    ta = simulate(t, LogicBloxScheduler(), processors=P).makespan
    tb = simulate(t, LevelBasedScheduler(), processors=P).makespan
    assert res.makespan <= 2 * min(ta, tb) + 1e-6
    assert not res.a_killed
    assert res.winner in ("A", "LevelBased")


def test_memory_budget_kills_a():
    """A fragmenting instance blows A's interval index past ζ/2."""
    from repro.workloads import logicblox_killer

    t = logicblox_killer(60)
    v = t.dag.n_nodes
    res = meta_schedule(t, LogicBloxScheduler(), 4, zeta=2 * v)
    assert res.a_killed
    assert res.winner == "LevelBased"
    # memory stays O(zeta): A was cut off at zeta/2 plus LevelBased's O(V)
    assert res.memory_cells <= 2 * v + 2 * v + 10 * v


def test_within_budget_keeps_both():
    t = rand_trace(4)
    res = meta_schedule(t, LogicBloxScheduler(), 4, zeta=10**9)
    assert not res.a_killed
    assert res.result_a is not None
    assert res.makespan == min(
        res.result_a.makespan, res.result_b.makespan
    )


def test_levelbased_rescues_bad_instance():
    """On Theorem 9's instance with A = LevelBased-hostile ordering the
    meta-scheduler still finishes within 2× the better component."""
    t = theorem9_example(10)
    res = meta_schedule(t, LogicBloxScheduler(), 16, zeta=10**9)
    tb_half = res.result_b.makespan
    assert res.makespan <= tb_half + 1e-9


def test_summary_text():
    t = rand_trace(5)
    res = meta_schedule(t, LogicBloxScheduler(), 4, zeta=10**9)
    s = res.summary()
    assert "Meta" in s and "winner" in s
