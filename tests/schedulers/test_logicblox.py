"""Tests for the LogicBlox production-style scheduler."""

import numpy as np
import pytest

from repro.dag import Dag, chain, layered_dag
from repro.schedulers import LevelBasedScheduler, LogicBloxScheduler
from repro.sim import simulate
from repro.tasks import JobTrace
from repro.workloads import logicblox_killer


def full_trace(dag, work=None):
    work = np.ones(dag.n_nodes) if work is None else np.asarray(work, float)
    return JobTrace(
        dag=dag,
        work=work,
        initial_tasks=dag.sources(),
        changed_edges=np.ones(dag.n_edges, dtype=bool),
    )


def test_unknown_policy_rejected():
    with pytest.raises(ValueError):
        LogicBloxScheduler("lazy")


@pytest.mark.parametrize("policy", ["fresh", "cached"])
def test_no_level_barrier(policy):
    # unlike LevelBased, interval checks release independent next-level
    # tasks while a straggler runs
    dag = Dag(4, [(0, 1), (2, 3)])
    trace = full_trace(dag, work=[10.0, 1.0, 1.0, 1.0])
    res = simulate(
        trace,
        LogicBloxScheduler(policy),
        processors=2,
        record_schedule=True,
    )
    start = {r.node: r.start for r in res.schedule}
    assert start[3] < 10.0  # LevelBased would hold it until t=10


@pytest.mark.parametrize("policy", ["fresh", "cached"])
def test_respects_dependencies(policy, diamond):
    trace = JobTrace(
        dag=diamond,
        work=np.array([1.0, 10.0, 1.0, 1.0]),
        initial_tasks=np.array([0]),
        changed_edges=np.ones(4, dtype=bool),
    )
    res = simulate(
        trace, LogicBloxScheduler(policy), processors=4, record_schedule=True
    )
    start = {r.node: r.start for r in res.schedule}
    assert start[3] >= 11.0 - 1e-9


def test_precompute_memory_can_blow_up():
    """Interval-list preprocessing is Θ(V²) on fragmenting DAGs, versus
    LevelBased's Θ(V) (Section II-C)."""
    trace = logicblox_killer(60)
    lbx = LogicBloxScheduler()
    lb = LevelBasedScheduler()
    simulate(trace, lbx, processors=2)
    simulate(trace, lb, processors=2)
    assert lbx.precompute_memory_cells > 10 * lb.precompute_memory_cells


def test_fresh_pays_per_round_rescans():
    """On the killer instance the fresh policy's ops grow ~quadratically
    while LevelBased stays linear (the Section VI pathology)."""
    small, big = logicblox_killer(50), logicblox_killer(100)
    ops = {}
    for name, tr in [("small", small), ("big", big)]:
        s = LogicBloxScheduler("fresh")
        simulate(tr, s, processors=2)
        ops[name] = s.ops
    assert ops["big"] > 3 * ops["small"]
    lb = LevelBasedScheduler()
    simulate(big, lb, processors=2)
    assert ops["big"] > 20 * lb.ops


def test_cached_much_cheaper_than_fresh_on_killer():
    trace = logicblox_killer(80)
    fresh = LogicBloxScheduler("fresh")
    cached = LogicBloxScheduler("cached")
    simulate(trace, fresh, processors=2)
    simulate(trace, cached, processors=2)
    assert cached.ops < fresh.ops


@pytest.mark.parametrize("policy", ["fresh", "cached"])
def test_same_execution_as_levelbased(policy):
    """Both must execute exactly the activated task set."""
    rng = np.random.default_rng(7)
    dag = layered_dag([4, 6, 6, 4], edge_prob=0.4, rng=rng, skip_prob=0.3)
    trace = JobTrace(
        dag=dag,
        work=rng.uniform(0.5, 2.0, dag.n_nodes),
        initial_tasks=dag.sources()[:2],
        changed_edges=rng.random(dag.n_edges) < 0.6,
    )
    a = simulate(trace, LogicBloxScheduler(policy), processors=3)
    b = simulate(trace, LevelBasedScheduler(), processors=3)
    assert a.tasks_executed == b.tasks_executed
    assert a.total_work == pytest.approx(b.total_work)


def test_multi_interval_candidates_handled():
    """Exercise the fragmented-list probe path in the cached scan."""
    # chain-with-riders fragments ancestor lists
    trace = logicblox_killer(30)
    res = simulate(trace, LogicBloxScheduler("cached"), processors=2)
    assert res.tasks_executed == trace.n_active
