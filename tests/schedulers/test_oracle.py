"""Tests for the clairvoyant oracle scheduler and lower bounds."""

import numpy as np
import pytest

from repro.dag import Dag, chain
from repro.schedulers import LevelBasedScheduler, OracleScheduler, lower_bounds
from repro.sim import simulate
from repro.tasks import JobTrace
from repro.workloads import theorem9_example


def test_oracle_achieves_optimum_on_theorem9():
    trace = theorem9_example(15)
    res = simulate(trace, OracleScheduler(), processors=32)
    # optimal is Θ(M + L) = L here (the k_i's overlap the chain)
    assert res.execution_makespan == pytest.approx(15.0, abs=1e-4)


def test_lower_bounds_work_term():
    dag = Dag(4, [])
    trace = JobTrace(
        dag=dag,
        work=np.full(4, 2.0),
        initial_tasks=np.arange(4),
        changed_edges=np.zeros(0, dtype=bool),
    )
    lb = lower_bounds(trace, processors=2)
    assert lb["work"] == pytest.approx(4.0)
    assert lb["critical_path"] == pytest.approx(2.0)
    assert lb["combined"] == pytest.approx(4.0)


def test_lower_bounds_critical_path_term():
    trace = JobTrace(
        dag=chain(5),
        work=np.ones(5),
        initial_tasks=np.array([0]),
        changed_edges=np.ones(4, dtype=bool),
    )
    lb = lower_bounds(trace, processors=8)
    assert lb["critical_path"] == pytest.approx(5.0)
    assert lb["combined"] == pytest.approx(5.0)


def test_lower_bounds_only_count_executing_nodes():
    dag = chain(5)
    flags = np.zeros(4, dtype=bool)
    flags[dag.edge_index(0, 1)] = True
    trace = JobTrace(
        dag=dag,
        work=np.ones(5),
        initial_tasks=np.array([0]),
        changed_edges=flags,
    )
    lb = lower_bounds(trace, processors=1)
    assert lb["work"] == pytest.approx(2.0)
    assert lb["critical_path"] == pytest.approx(2.0)


def test_every_scheduler_respects_lower_bounds():
    trace = theorem9_example(8)
    lb = lower_bounds(trace, processors=4)
    for s in (OracleScheduler(), LevelBasedScheduler()):
        res = simulate(trace, s, processors=4)
        assert res.execution_makespan >= lb["combined"] - 1e-9
