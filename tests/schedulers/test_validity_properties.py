"""Property-based schedule-validity tests across all schedulers.

For random DAGs, random activation patterns, and random processor
counts, every scheduler must produce a *valid* schedule:

* exactly the ground-truth active set executes (no spurious or missing
  re-runs);
* no task starts before all of its activated ancestors finish;
* at most P processors are ever busy.

The engine already enforces the precedence check online; these tests
re-verify it offline from the recorded schedule, so a bug in the engine
itself would also surface.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag import layered_dag, reachable_mask
from repro.schedulers import (
    CriticalPathScheduler,
    HybridScheduler,
    LevelBasedScheduler,
    LogicBloxScheduler,
    LookaheadScheduler,
    OracleScheduler,
    SignalPropagationScheduler,
)
from repro.sim import simulate
from repro.tasks import JobTrace

SCHEDULER_FACTORIES = [
    LevelBasedScheduler,
    lambda: LookaheadScheduler(3),
    lambda: LogicBloxScheduler("fresh"),
    lambda: LogicBloxScheduler("cached"),
    SignalPropagationScheduler,
    HybridScheduler,
    OracleScheduler,
    CriticalPathScheduler,
]


def build_trace(seed: int) -> JobTrace:
    rng = np.random.default_rng(seed)
    n_layers = int(rng.integers(2, 6))
    layers = [int(rng.integers(1, 7)) for _ in range(n_layers)]
    dag = layered_dag(
        layers,
        edge_prob=float(rng.uniform(0.1, 0.6)),
        rng=rng,
        skip_prob=float(rng.uniform(0, 0.5)),
    )
    sources = dag.sources()
    k = 1 + int(rng.integers(0, sources.size))
    return JobTrace(
        dag=dag,
        work=rng.uniform(0.1, 3.0, dag.n_nodes),
        initial_tasks=sources[:k],
        changed_edges=rng.random(dag.n_edges) < float(rng.uniform(0.3, 0.9)),
    )


def check_schedule_valid(trace: JobTrace, result, processors: int) -> None:
    executed_truth = set(int(x) for x in trace.active_nodes)
    executed = {r.node for r in result.schedule}
    assert executed == executed_truth, "wrong task set executed"

    finish = {r.node: r.finish for r in result.schedule}
    start = {r.node: r.start for r in result.schedule}
    # precedence: every activated ancestor finishes before the task starts
    dag = trace.dag
    for v in executed:
        anc_mask = reachable_mask(dag, [v], reverse=True)
        anc_mask[v] = False
        for a in np.flatnonzero(anc_mask):
            a = int(a)
            if a in executed:
                assert finish[a] <= start[v] + 1e-9, (
                    f"task {v} started before activated ancestor {a} done"
                )
    # processor capacity at every start event
    events = sorted(result.schedule, key=lambda r: r.start)
    for r in events:
        busy = sum(
            o.processors
            for o in result.schedule
            if o.start - 1e-12 <= r.start < o.finish - 1e-12
        )
        assert busy <= processors + 1e-9


@pytest.mark.parametrize(
    "factory", SCHEDULER_FACTORIES,
    ids=["LevelBased", "LBL3", "LBXfresh", "LBXcached", "SignalProp",
         "Hybrid", "Oracle", "CriticalPath"],
)
@given(seed=st.integers(0, 10**6), processors=st.integers(1, 6))
@settings(max_examples=20, deadline=None)
def test_schedule_validity(factory, seed, processors):
    trace = build_trace(seed)
    scheduler = factory()
    result = simulate(
        trace, scheduler, processors=processors, record_schedule=True
    )
    check_schedule_valid(trace, result, processors)


@given(seed=st.integers(0, 10**6))
@settings(max_examples=20, deadline=None)
def test_all_schedulers_agree_on_total_work(seed):
    trace = build_trace(seed)
    works = set()
    for factory in SCHEDULER_FACTORIES:
        res = simulate(trace, factory(), processors=3)
        works.add(round(res.total_work, 9))
    assert len(works) == 1


@pytest.mark.parametrize(
    "factory", SCHEDULER_FACTORIES,
    ids=["LevelBased", "LBL3", "LBXfresh", "LBXcached", "SignalProp",
         "Hybrid", "Oracle", "CriticalPath"],
)
@given(seed=st.integers(0, 10**6), processors=st.integers(1, 6))
@settings(max_examples=10, deadline=None)
def test_schedule_validity_mixed_models(factory, seed, processors):
    """Validity holds with unit/sequential/malleable tasks mixed."""
    from repro.tasks import ExecutionModel

    rng = np.random.default_rng(seed)
    trace = build_trace(seed)
    n = trace.dag.n_nodes
    models = rng.choice(
        [ExecutionModel.UNIT, ExecutionModel.SEQUENTIAL,
         ExecutionModel.MALLEABLE],
        size=n,
    ).astype(np.int8)
    span = trace.work * rng.uniform(0.0, 1.0, n)
    mixed = JobTrace(
        dag=trace.dag,
        work=trace.work,
        span=span,
        models=models,
        initial_tasks=trace.initial_tasks,
        changed_edges=trace.changed_edges,
    )
    # reallot=False keeps each record's processor count constant over
    # its whole span, so the offline capacity check below is exact
    # (with re-allotment a record stores only the final allotment)
    result = simulate(
        mixed, factory(), processors=processors, record_schedule=True,
        reallot=False,
    )
    check_schedule_valid(mixed, result, processors)


@given(seed=st.integers(0, 10**6))
@settings(max_examples=15, deadline=None)
def test_levelbased_ops_bound(seed):
    """Theorem 2: LevelBased runtime ops are O(n + L)."""
    trace = build_trace(seed)
    s = LevelBasedScheduler()
    res = simulate(trace, s, processors=4)
    n = trace.n_active
    L = trace.n_levels
    assert res.scheduling_ops <= 4 * (n + L) + 8
