"""Tests for the Table I trace generators."""

import numpy as np
import pytest

from repro.tasks import trace_stats
from repro.workloads import PAPER_TABLE1, TRACE_CONFIGS, make_trace


def test_configs_cover_all_eleven():
    assert sorted(TRACE_CONFIGS) == list(range(1, 12))
    assert sorted(PAPER_TABLE1) == list(range(1, 12))


def test_unknown_index_rejected():
    with pytest.raises(KeyError):
        make_trace(12)


def test_bad_scale_rejected():
    with pytest.raises(ValueError):
        make_trace(1, scale=0)
    with pytest.raises(ValueError):
        make_trace(1, scale=1.5)


@pytest.mark.parametrize("index", [1, 3, 5, 7, 8])
def test_scaled_traces_have_sane_structure(index):
    tr = make_trace(index, scale=0.15)
    st = trace_stats(tr)
    assert st.n_nodes > 0
    assert st.n_active_jobs >= 1
    assert st.n_levels > 1
    assert tr.metadata["table1_paper_row"] == PAPER_TABLE1[index]


@pytest.mark.parametrize("index", [3, 5])
def test_full_scale_matches_table1_exactly(index):
    """At scale 1 the structural columns match the paper's Table I."""
    tr = make_trace(index)
    st = trace_stats(tr)
    nodes, edges, initial, active, levels = PAPER_TABLE1[index]
    assert st.n_nodes == nodes
    assert st.n_edges == edges
    assert st.n_initial == initial
    assert st.n_levels == levels
    assert st.n_active_jobs == active


def test_traces_7_and_8_share_their_dag():
    a = make_trace(7, scale=0.2)
    b = make_trace(8, scale=0.2)
    assert a.dag == b.dag
    assert not np.array_equal(a.changed_edges, b.changed_edges)


def test_traces_9_and_10_share_their_dag():
    a = make_trace(9, scale=0.2)
    b = make_trace(10, scale=0.2)
    assert a.dag == b.dag


def test_deterministic():
    a = make_trace(5)
    b = make_trace(5)
    assert a.dag == b.dag
    assert np.array_equal(a.work, b.work)
    assert np.array_equal(a.changed_edges, b.changed_edges)


def test_metadata_carries_paper_numbers():
    tr = make_trace(6, scale=0.05)
    assert "makespan" in tr.metadata["paper"]
    assert tr.metadata["paper"]["overhead"]["LogicBlox"] == 21.69
