"""Tests for the pathological instances (Figure 2, §VI killer)."""

import numpy as np
import pytest

from repro.schedulers import (
    LevelBasedScheduler,
    LogicBloxScheduler,
    OracleScheduler,
)
from repro.sim import OverheadModel, simulate
from repro.workloads import (
    interval_fragmenter,
    logicblox_killer,
    theorem9_example,
)


class TestTheorem9:
    def test_structure(self):
        tr = theorem9_example(6)
        # L chain nodes + (L-1) side tasks
        assert tr.dag.n_nodes == 6 + 5
        assert tr.n_levels == 6
        assert tr.n_active == tr.dag.n_nodes  # everything re-runs

    def test_side_task_sizes(self):
        tr = theorem9_example(5)
        # k_i has work L - i + 1
        names = {tr.dag.name_of(i): float(tr.work[i]) for i in range(9)}
        assert names["k2"] == 4.0
        assert names["k5"] == 1.0
        assert names["j1"] == 1.0

    def test_requires_l_at_least_two(self):
        with pytest.raises(ValueError):
            theorem9_example(1)

    def test_levelbased_quadratic_vs_oracle_linear(self):
        """The Θ(ML) vs Θ(M + L) separation of Theorem 9."""
        ratios = []
        for L in (8, 16):
            tr = theorem9_example(L)
            lb = simulate(
                tr, LevelBasedScheduler(), processors=2 * L,
                overhead=OverheadModel(op_cost=0.0),
            )
            opt = simulate(
                tr, OracleScheduler(), processors=2 * L,
                overhead=OverheadModel(op_cost=0.0),
            )
            assert opt.makespan == pytest.approx(L, abs=1e-6)
            # LevelBased pays sum_{i=2..L} (L-i+1) + 1 = L(L-1)/2 + 1
            assert lb.makespan == pytest.approx(L * (L - 1) / 2 + 1, abs=1e-6)
            ratios.append(lb.makespan / opt.makespan)
        assert ratios[1] > 1.8 * ratios[0]  # grows linearly in L

    def test_unit_scaling(self):
        a = theorem9_example(6, unit=1.0)
        b = theorem9_example(6, unit=2.0)
        assert b.work.sum() == pytest.approx(2 * a.work.sum())


class TestLogicBloxKiller:
    def test_structure(self):
        tr = logicblox_killer(10, width_per_step=2)
        assert tr.dag.n_nodes == 1 + 10 + 20
        assert tr.n_active == tr.dag.n_nodes

    def test_m_validated(self):
        with pytest.raises(ValueError):
            logicblox_killer(0)

    def test_overhead_gap_grows_quadratically(self):
        ops = {}
        for m in (40, 80):
            tr = logicblox_killer(m)
            s = LogicBloxScheduler("fresh")
            simulate(tr, s, processors=2)
            ops[m] = s.ops
        # doubling m should ~quadruple fresh-scan ops
        assert ops[80] > 3 * ops[40]

    def test_levelbased_linear(self):
        ops = {}
        for m in (40, 80):
            tr = logicblox_killer(m)
            s = LevelBasedScheduler()
            simulate(tr, s, processors=2)
            ops[m] = s.ops
        assert ops[80] < 2.6 * ops[40]

    def test_makespans_comparable_without_overhead(self):
        tr = logicblox_killer(30)
        zero = OverheadModel(op_cost=0.0)
        lb = simulate(tr, LevelBasedScheduler(), processors=4, overhead=zero)
        lbx = simulate(tr, LogicBloxScheduler(), processors=4, overhead=zero)
        assert lb.makespan == pytest.approx(lbx.makespan, rel=0.15)


class TestIntervalFragmenter:
    def test_structure(self):
        tr = interval_fragmenter(4, 3)
        assert tr.dag.n_nodes == 12
        assert tr.n_levels == 3
        assert tr.n_active == 12

    def test_schedulable(self):
        tr = interval_fragmenter(3, 3)
        res = simulate(tr, LevelBasedScheduler(), processors=3)
        assert res.tasks_executed == 9
