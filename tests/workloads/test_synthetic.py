"""Tests for the synthetic workload machinery."""

import numpy as np
import pytest

from repro.dag import compute_levels
from repro.tasks import trace_stats
from repro.workloads.synthetic import (
    assign_durations,
    grow_active_set,
    layered_structure,
    make_synthetic_trace,
)


class TestLayeredStructure:
    def test_exact_counts(self):
        dag, layer_of = layered_structure(200, 320, 10, rng=0)
        assert dag.n_nodes == 200
        assert dag.n_edges == 320
        levels = compute_levels(dag)
        assert np.array_equal(levels, layer_of)
        assert int(levels.max()) + 1 == 10

    def test_wide_top_profile(self):
        dag, layer_of = layered_structure(
            1000, 1400, 6, rng=1, level_profile="wide-top"
        )
        sizes = np.bincount(layer_of)
        assert sizes[0] > sizes[-1] * 3  # geometric decay

    def test_bad_args(self):
        with pytest.raises(ValueError):
            layered_structure(5, 10, 8)  # fewer nodes than levels
        with pytest.raises(ValueError):
            layered_structure(100, 10, 5)  # too few edges
        with pytest.raises(ValueError):
            layered_structure(100, 150, 5, level_profile="zigzag")

    def test_deterministic(self):
        a, _ = layered_structure(100, 160, 5, rng=7)
        b, _ = layered_structure(100, 160, 5, rng=7)
        assert a == b


class TestGrowActiveSet:
    def _setup(self, seed=0):
        dag, _ = layered_structure(150, 260, 8, rng=seed)
        is_task = np.ones(dag.n_nodes, dtype=bool)
        return dag, is_task

    def test_hits_target_exactly(self):
        dag, is_task = self._setup()
        initial = dag.sources()[:2]
        changed = grow_active_set(dag, initial, 40, is_task, rng=1)
        from repro.tasks import propagate_changes

        res = propagate_changes(dag, initial, changed)
        assert res.n_active == 40

    def test_chain_growth_is_narrow(self):
        dag, is_task = self._setup()
        initial = dag.sources()[:1]
        changed = grow_active_set(
            dag, initial, 8, is_task, rng=1, style="chain"
        )
        from repro.tasks import propagate_changes

        res = propagate_changes(dag, initial, changed)
        levels = compute_levels(dag)
        active_levels = levels[res.executed]
        # chain growth: roughly one active task per level
        counts = np.bincount(active_levels)
        # depth-first growth only widens when it hits the DAG's bottom
        assert counts.max() <= 3
        assert (counts <= 1).mean() >= 0.5

    def test_unknown_style_rejected(self):
        dag, is_task = self._setup()
        with pytest.raises(ValueError, match="style"):
            grow_active_set(dag, dag.sources()[:1], 5, is_task, style="wat")

    def test_activation_stays_connected_to_initial(self):
        dag, is_task = self._setup(3)
        initial = dag.sources()[:1]
        changed = grow_active_set(dag, initial, 30, is_task, rng=2)
        from repro.dag import reachable_mask
        from repro.tasks import propagate_changes

        res = propagate_changes(dag, initial, changed)
        reach = reachable_mask(dag, initial)
        assert not np.any(res.executed & ~reach)


class TestAssignDurations:
    def test_mean_approximately_hit(self):
        is_task = np.ones(20000, dtype=bool)
        w = assign_durations(20000, is_task, mean_work=2.0, sigma=1.0, rng=0)
        assert w.mean() == pytest.approx(2.0, rel=0.1)

    def test_plumbing_gets_zero(self):
        is_task = np.array([True, False, True])
        w = assign_durations(3, is_task, 1.0, rng=0)
        assert w[1] == 0.0
        assert (w[[0, 2]] > 0).all()

    def test_zero_mean(self):
        w = assign_durations(5, np.ones(5, dtype=bool), 0.0)
        assert (w == 0).all()

    def test_negative_mean_rejected(self):
        with pytest.raises(ValueError):
            assign_durations(5, np.ones(5, dtype=bool), -1.0)


def test_make_synthetic_trace_end_to_end():
    tr = make_synthetic_trace(
        n_nodes=300,
        n_edges=500,
        n_levels=12,
        n_initial=8,
        target_active_tasks=25,
        mean_work=1.0,
        frac_task=0.5,
        seed=5,
    )
    st = trace_stats(tr)
    assert st.n_nodes == 300
    assert st.n_edges == 500
    assert st.n_levels == 12
    assert st.n_initial == 8
    assert st.n_active_jobs == 25
    assert tr.work[~tr.is_task].sum() == 0
