"""Tests for the Datalog-derived workloads."""

import pytest

from repro.schedulers import HybridScheduler, LevelBasedScheduler
from repro.sim import simulate
from repro.workloads.datalog_workloads import (
    DATALOG_WORKLOADS,
    compile_workload,
    points_to,
    retail_rollup,
    same_generation,
    transitive_closure,
)


def test_unknown_name_rejected():
    with pytest.raises(KeyError, match="unknown"):
        compile_workload("nope")


@pytest.mark.parametrize("name", sorted(DATALOG_WORKLOADS))
def test_each_workload_compiles_and_schedules(name):
    kwargs = {"depth": 4} if name == "same_generation" else {}
    if name == "transitive_closure":
        kwargs = {"n": 25, "extra_edges": 10}
    if name == "points_to":
        kwargs = {"n_vars": 12, "n_stmts": 25}
    if name == "retail_rollup":
        kwargs = {"n_products": 20, "n_stores": 8}
    cu = compile_workload(name, **kwargs)
    tr = cu.trace
    assert tr.n_active_jobs >= 1
    a = simulate(tr, LevelBasedScheduler(), processors=4)
    b = simulate(tr, HybridScheduler(), processors=4)
    assert a.tasks_executed == b.tasks_executed == tr.n_active


def test_tc_update_is_consistent():
    prog, edb, delta = transitive_closure(n=20, extra_edges=8, seed=1)
    from repro.datalog import IncrementalEngine, seminaive_evaluate

    eng = IncrementalEngine(prog, edb)
    eng.apply(delta)
    # oracle: rebuild the final EDB and evaluate from scratch
    final = edb.copy()
    for pred, facts in delta.deletions.items():
        for f in facts:
            final.relations[pred].discard(f)
    for pred, facts in delta.insertions.items():
        for f in facts:
            final.relation(pred, len(f)).add(f)
    oracle, _ = seminaive_evaluate(prog, final)
    assert eng.snapshot()["path"] == oracle.as_dict()["path"]


def test_retail_uses_negation():
    prog, edb, delta = retail_rollup(seed=2)
    assert any(
        lit.negated for r in prog.proper_rules for lit in r.body
    )


def test_same_generation_nontrivial():
    prog, edb, delta = same_generation(depth=4, fanout=2)
    from repro.datalog import seminaive_evaluate

    db, _ = seminaive_evaluate(prog, edb)
    assert db.count("sg") > db.count("sibling") > 0


def test_points_to_deterministic():
    a = points_to(seed=3)
    b = points_to(seed=3)
    assert a[1].as_dict() == b[1].as_dict()
