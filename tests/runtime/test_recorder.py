"""Gap compression and coordination-stall accounting."""

from __future__ import annotations

import pytest

from repro.datalog.units import build_execution_plan
from repro.runtime.executor import RoundExecutor
from repro.runtime.recorder import (
    compress_idle_gaps,
    coordination_stall,
    record_round,
)
from repro.schedulers import scheduler_registry


class TestCompressIdleGaps:
    def test_empty(self):
        assert compress_idle_gaps({}) == ({}, 0.0)

    def test_leading_idle_removed(self):
        out, gap = compress_idle_gaps({0: (2.0, 3.0)})
        assert out == {0: (0.0, 1.0)}
        assert gap == pytest.approx(2.0)

    def test_interior_gap_removed(self):
        out, gap = compress_idle_gaps({0: (0.0, 1.0), 1: (3.0, 4.0)})
        assert out == {0: (0.0, 1.0), 1: (1.0, 2.0)}
        assert gap == pytest.approx(2.0)

    def test_overlaps_preserved(self):
        records = {0: (1.0, 3.0), 1: (2.0, 4.0), 2: (6.0, 7.0)}
        out, gap = compress_idle_gaps(records)
        assert gap == pytest.approx(3.0)  # 1.0 leading + 2.0 interior
        # durations exact
        for node, (s, f) in records.items():
            cs, cf = out[node]
            assert cf - cs == pytest.approx(f - s)
        # the overlap between 0 and 1 is untouched
        assert out[1][0] - out[0][0] == pytest.approx(1.0)

    def test_no_gaps_is_identity(self):
        records = {0: (0.0, 2.0), 1: (1.0, 3.0)}
        out, gap = compress_idle_gaps(records)
        assert gap == 0.0
        assert out == records


class TestCoordinationStall:
    def test_no_intervals(self):
        assert coordination_stall({0: (0.0, 1.0)}, [], 4) == 0.0

    def test_single_worker_never_stalls(self):
        assert (
            coordination_stall({0: (0.0, 1.0)}, [(0.0, 1.0)], 1) == 0.0
        )

    def test_partial_idle_overlap_counted(self):
        # one node busy 0..2 (of 2 workers); coordination 0.5..1.0
        records = {0: (0.0, 2.0)}
        stall = coordination_stall(records, [(0.5, 1.0)], 2)
        assert stall == pytest.approx(0.5)

    def test_full_busy_not_counted(self):
        # both workers busy 0..1: coordination there is free
        records = {0: (0.0, 1.0), 1: (0.0, 1.0), 2: (1.0, 3.0)}
        stall = coordination_stall(records, [(0.2, 1.5)], 2)
        assert stall == pytest.approx(0.5)  # only the 1.0..1.5 part

    def test_whole_idle_not_counted(self):
        # nothing runs 1..2 — compression owns that stretch
        records = {0: (0.0, 1.0), 1: (2.0, 3.0)}
        stall = coordination_stall(records, [(1.0, 2.0)], 2)
        assert stall == 0.0


class TestRecordRound:
    @pytest.fixture(scope="class")
    def round_data(self, compiled_workloads):
        cu = compiled_workloads["transitive_closure"]
        plan = build_execution_plan(cu)
        sched = scheduler_registry()["hybrid"]()
        outcome = RoundExecutor(plan, sched, workers=4).run()
        return cu, outcome

    def test_schedule_matches_outcome(self, round_data):
        cu, outcome = round_data
        art = record_round(outcome, cu.trace)
        assert len(art.result.schedule) == len(outcome.records)
        assert art.result.tasks_executed == len(outcome.records)
        assert art.result.processors == outcome.workers

    def test_durations_become_work(self, round_data):
        cu, outcome = round_data
        art = record_round(outcome, cu.trace)
        for rec in art.result.schedule:
            dur = rec.finish - rec.start
            assert art.trace.work[rec.node] == pytest.approx(dur)

    def test_extras_report_translations(self, round_data):
        cu, outcome = round_data
        art = record_round(outcome, cu.trace)
        extras = art.result.extras
        assert extras["wall_latency_s"] == outcome.wall_latency_s
        assert extras["compressed_idle_s"] >= 0.0
        assert extras["coordination_stall_s"] >= 0.0
        assert (
            art.result.execution_makespan
            == pytest.approx(
                max(
                    0.0,
                    art.result.makespan - extras["coordination_stall_s"],
                )
            )
        )

    def test_uncompressed_keeps_wall_alignment(self, round_data):
        cu, outcome = round_data
        art = record_round(outcome, cu.trace, compress=False)
        assert art.result.extras["compressed_idle_s"] == 0.0
        raw_last = max(f for _, f in outcome.records.values())
        assert art.result.makespan == pytest.approx(raw_last)

    def test_strict_check_passes(self, round_data):
        cu, outcome = round_data
        report = record_round(outcome, cu.trace).check()
        assert report.ok, "\n".join(v.format() for v in report.violations)
