"""Execution plans reproduce the compiler's ground truth.

The central purity claim of the runtime: executing every unit in any
precedence-respecting order rebuilds the new materialization exactly,
and the per-node output diffs reproduce the compiled activation flags.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datalog.units import build_execution_plan

from .conftest import WORKLOADS


@pytest.mark.parametrize("name", WORKLOADS)
class TestSerialReference:
    def test_materialization_matches_db_new(self, compiled_workloads, name):
        cu = compiled_workloads[name]
        plan = build_execution_plan(cu)
        values, _ = plan.execute_serial()
        assert plan.materialization(values).as_dict() == cu.db_new.as_dict()

    def test_diffs_match_compiled_flags(self, compiled_workloads, name):
        """Real per-node change flags == the compiler's precomputed ones."""
        cu = compiled_workloads[name]
        plan = build_execution_plan(cu)
        _, diffs = plan.execute_serial()
        dag = cu.trace.dag
        mismatches = []
        for node, changed in diffs.items():
            lo, hi = dag.out_edge_range(node)
            if hi == lo:
                continue  # sink: the compiled flag is not observable
            if bool(cu.trace.changed_edges[lo]) != changed:
                mismatches.append(node)
        assert mismatches == []

    def test_executed_set_is_sufficient(self, compiled_workloads, name):
        """Running only ``W`` (skipped nodes keep their old values)
        still lands exactly on the new materialization — the soundness
        property incremental maintenance rests on."""
        cu = compiled_workloads[name]
        plan = build_execution_plan(cu)
        executed = cu.trace.propagation.executed
        sparse = plan.new_store()
        for node in np.argsort(cu.trace.levels, kind="stable"):
            if executed[int(node)]:
                unit = plan.units[int(node)]
                sparse.set(unit.node, unit.execute(sparse))
        assert plan.materialization(sparse).as_dict() == cu.db_new.as_dict()


def test_value_store_falls_back_to_old_values(compiled_workloads):
    cu = compiled_workloads["transitive_closure"]
    plan = build_execution_plan(cu)
    store = plan.new_store()
    assert not store.computed(0)
    assert store[0] == plan.old_values[0]
    store.set(0, frozenset({("x",)}))
    assert store.computed(0)
    assert store[0] == frozenset({("x",)})
