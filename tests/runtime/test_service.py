"""The update-stream service: coalescing, backpressure, correctness.

Includes the PR's acceptance criterion: multi-round serving under every
registered scheduler keeps the materialization byte-identical to a
from-scratch semi-naive evaluation of the accumulated database.
"""

from __future__ import annotations

import pytest

from repro.datalog import Delta, seminaive_evaluate
from repro.runtime import (
    BackpressureError,
    UpdateStreamService,
    live_workload,
    make_stream,
)
from repro.schedulers import scheduler_registry

REGISTRY = scheduler_registry()


def make_service(program_name="retail", scheduler="hybrid", **kwargs):
    wl = live_workload(program_name, seed=11)
    svc = UpdateStreamService(
        wl.program, wl.edb, REGISTRY[scheduler](), workers=4, **kwargs
    )
    return wl, svc


class TestQueueing:
    def test_empty_queue_returns_none(self):
        _, svc = make_service()
        assert svc.run_round() is None

    def test_batches_coalesce_into_one_round(self):
        wl, svc = make_service()
        for _ in range(5):
            svc.submit(wl.random_batch(1))
        rep = svc.run_round()
        assert rep is not None
        assert rep.metrics.batches_coalesced == 5
        assert svc.pending_batches() == 0
        assert svc.run_round() is None

    def test_coalesced_round_equals_sequential_rounds(self):
        """One 3-batch round lands on the same EDB as 3 one-batch rounds."""
        wl_a = live_workload("retail", seed=3)
        wl_b = live_workload("retail", seed=3)
        svc_a = UpdateStreamService(
            wl_a.program, wl_a.edb, REGISTRY["hybrid"](), workers=2
        )
        svc_b = UpdateStreamService(
            wl_b.program, wl_b.edb, REGISTRY["hybrid"](), workers=2
        )
        batches_a = [wl_a.random_batch(2) for _ in range(3)]
        batches_b = [wl_b.random_batch(2) for _ in range(3)]
        for b in batches_a:
            svc_a.submit(b)
        svc_a.run_round()
        for b in batches_b:
            svc_b.submit(b)
            svc_b.run_round()
        assert svc_a.database().as_dict() == svc_b.database().as_dict()
        assert (
            svc_a.materialization().as_dict()
            == svc_b.materialization().as_dict()
        )

    def test_backpressure_raises_when_full(self):
        wl, svc = make_service(capacity=2)
        svc.submit(wl.random_batch(1))
        svc.submit(wl.random_batch(1))
        with pytest.raises(BackpressureError):
            svc.submit(wl.random_batch(1), block=False)
        with pytest.raises(BackpressureError):
            svc.submit(wl.random_batch(1), timeout=0.01)

    def test_capacity_must_be_positive(self):
        wl = live_workload("retail", seed=0)
        with pytest.raises(ValueError, match="capacity"):
            UpdateStreamService(
                wl.program, wl.edb, REGISTRY["hybrid"](), capacity=0
            )

    def test_rejects_update_to_derived_predicate(self):
        _, svc = make_service()
        svc.submit(Delta().insert("in_category", ("p0", 1)))
        with pytest.raises(ValueError, match="derived predicate"):
            svc.run_round()


class TestSchedulerReuse:
    def test_one_scheduler_instance_across_rounds(self):
        """Satellite regression: ``reset_counters`` makes an instance
        reusable — including clearing the oracle's pending ready-event
        buffer a finished round may leave behind."""
        wl, svc = make_service(scheduler="logicblox")
        for _ in range(2):
            svc.submit(wl.random_batch(3))
            rep = svc.run_round()
            assert rep is not None
            assert rep.materialization_ok
            assert rep.verification is not None and rep.verification.ok
        # same instance served both rounds
        assert svc.metrics.rounds[0].scheduler == (
            svc.metrics.rounds[1].scheduler
        )
        assert len(svc.metrics.rounds) == 2

    def test_counters_are_per_round(self):
        wl, svc = make_service(scheduler="levelbased")
        svc.submit(wl.random_batch(2))
        first = svc.run_round().metrics.scheduler_ops
        svc.submit(wl.random_batch(2))
        second = svc.run_round().metrics.scheduler_ops
        # ops reflect one round each, not a running total
        assert first > 0 and second > 0
        assert second < first * 10


@pytest.mark.parametrize("sched_name", sorted(REGISTRY))
def test_acceptance_multi_round_consistency(sched_name):
    """Acceptance: N verified rounds, then the final materialization is
    byte-identical to from-scratch evaluation of the accumulated EDB."""
    wl = live_workload("retail", seed=5)
    svc = UpdateStreamService(
        wl.program, wl.edb, REGISTRY[sched_name](), workers=4
    )
    for batches in make_stream(wl, "bursty", rounds=6):
        for delta in batches:
            svc.submit(delta)
        rep = svc.run_round()
        assert rep is not None
        assert rep.materialization_ok
        assert rep.verification is not None and rep.verification.ok
    scratch, _ = seminaive_evaluate(wl.program, svc.database())
    assert scratch.as_dict() == svc.materialization().as_dict()


def test_run_drains_rounds_with_callback():
    wl, svc = make_service()
    for batches in make_stream(wl, "steady", rounds=4):
        for delta in batches:
            svc.submit(delta)
    seen = []
    reports = svc.run(rounds=10, timeout=0.01, on_round=seen.append)
    # 4 submitted ticks were coalesced into one queued backlog: the
    # first round drains everything, further rounds find nothing
    assert len(reports) == 1
    assert seen == reports
    assert reports[0].metrics.batches_coalesced == 4


def test_metrics_json_shape():
    wl, svc = make_service()
    svc.submit(wl.random_batch(2))
    svc.run_round()
    payload = svc.metrics.to_json_dict()
    assert payload["n_rounds"] == 1
    assert payload["rounds_per_sec"] > 0
    assert set(payload["latency"]) == {"p50", "p90", "p99"}
    round0 = payload["rounds"][0]
    assert round0["scheduler"] == "Hybrid"
    assert round0["latency_s"] > 0
    assert round0["tasks_executed"] >= 0
