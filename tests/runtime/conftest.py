"""Shared fixtures for the runtime suite."""

from __future__ import annotations

import pytest

from repro.workloads.datalog_workloads import compile_workload

WORKLOADS = (
    "transitive_closure",
    "same_generation",
    "retail_rollup",
    "retail_analytics",
    "points_to",
)


@pytest.fixture(scope="session")
def compiled_workloads():
    """One compiled update per workload, shared across the suite."""
    return {name: compile_workload(name) for name in WORKLOADS}
