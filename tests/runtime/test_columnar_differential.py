"""Differential harness for the columnar/process executor matrix.

The PR's acceptance bar: whatever combination of storage layout
(row vs columnar) and executor backend (thread vs process) serves an
update stream, the final materialization must be **byte-identical** —
same relations, same tuples, same canonical serialization. The round
pipeline (scheduler contract, verify invariants, maintenance
strategies) is storage- and backend-blind; these tests pin that down
across every registered scheduler, every maintenance oracle, cache on
and off, and the seeded stream shapes.
"""

from __future__ import annotations

import pytest

from repro.runtime import (
    UpdateStreamService,
    live_workload,
    make_stream,
    process_backend_available,
)
from repro.schedulers import scheduler_registry

REGISTRY = scheduler_registry()
ALL_SCHEDULERS = sorted(REGISTRY)

needs_fork = pytest.mark.skipif(
    not process_backend_available(),
    reason="process backend needs fork-capable multiprocessing",
)


def canonical_bytes(db) -> bytes:
    """Canonical byte serialization of a database's materialization."""
    rows = [
        (name, sorted(facts))
        for name, facts in sorted(db.as_dict().items())
    ]
    return repr(rows).encode()


def serve(
    name,
    kind,
    *,
    scheduler="hybrid",
    executor="thread",
    storage="columnar",
    plan_cache=True,
    maintenance=None,
    rounds=3,
    seed=5,
    workers=3,
    **wl_kwargs,
):
    """Serve ``rounds`` ticks; return canonical (materialization, edb)."""
    wl = live_workload(name, seed=seed, **wl_kwargs)
    svc = UpdateStreamService(
        wl.program,
        wl.edb,
        REGISTRY[scheduler](),
        workers=workers,
        plan_cache=plan_cache,
        maintenance=maintenance,
        executor=executor,
        storage=storage,
    )
    for batches in make_stream(wl, kind, rounds=rounds, batch_size=2):
        for delta in batches:
            svc.submit(delta)
        rep = svc.run_round()
        if rep is not None:
            assert rep.metrics.backend == executor
    return canonical_bytes(svc.materialization()), canonical_bytes(
        svc.database()
    )


@pytest.mark.parametrize("sched", ALL_SCHEDULERS)
def test_columnar_matches_row_all_schedulers(sched):
    """Columnar storage is invisible to every registered scheduler."""
    row = serve("tc", "steady", scheduler=sched, storage="row")
    col = serve("tc", "steady", scheduler=sched, storage="columnar")
    assert row == col


@needs_fork
@pytest.mark.parametrize("sched", ALL_SCHEDULERS)
def test_process_matches_thread_all_schedulers(sched):
    """The process backend is invisible to every registered scheduler."""
    thread = serve(
        "tc", "steady", scheduler=sched, executor="thread",
        n=24, extra_edges=10,
    )
    proc = serve(
        "tc", "steady", scheduler=sched, executor="process",
        n=24, extra_edges=10,
    )
    assert thread == proc


@pytest.mark.parametrize("cache", [True, False], ids=["cache", "cold"])
@pytest.mark.parametrize("strategy", ["dred", "bf", "counting"])
def test_maintenance_oracles_columnar_vs_row(strategy, cache):
    """Every maintenance-strategy oracle passes under both layouts.

    The oracle replays each round through the named engine and insists
    it matches from-scratch evaluation — a per-round tripwire on top of
    the final byte-compare. Counting rejects recursion, so it runs over
    the non-recursive retail_flat workload; dred/bf get the closure.
    """
    workload = "flat" if strategy == "counting" else "tc"
    row = serve(
        workload, "mixed", storage="row",
        maintenance=strategy, plan_cache=cache,
    )
    col = serve(
        workload, "mixed", storage="columnar",
        maintenance=strategy, plan_cache=cache,
    )
    assert row == col


@pytest.mark.parametrize("kind", ["steady", "bursty", "deletions", "mixed"])
def test_stream_kinds_columnar_vs_row(kind):
    """Byte-identity holds across the seeded stream shapes."""
    row = serve("sg", kind, storage="row", depth=4, fanout=2)
    col = serve("sg", kind, storage="columnar", depth=4, fanout=2)
    assert row == col


@needs_fork
@pytest.mark.parametrize("kind", ["steady", "deletions", "mixed"])
def test_stream_kinds_process_vs_thread(kind):
    """Process-backend byte-identity holds under churny streams too."""
    thread = serve(
        "retail", kind, executor="thread", storage="columnar",
    )
    proc = serve(
        "retail", kind, executor="process", storage="columnar",
    )
    assert thread == proc


@needs_fork
def test_full_matrix_one_cell_agrees_everywhere():
    """All four executor×storage combinations land on the same bytes."""
    results = {
        (ex, st): serve(
            "pt", "steady", executor=ex, storage=st,
            n_vars=12, n_stmts=24,
        )
        for ex in ("thread", "process")
        for st in ("row", "columnar")
    }
    baseline = results[("thread", "row")]
    assert all(v == baseline for v in results.values())


def test_cache_on_off_columnar_agree():
    """The columnar plan cache changes cost, never bytes."""
    cold = serve("tc", "bursty", plan_cache=False)
    warm = serve("tc", "bursty", plan_cache=True)
    assert cold == warm
