"""Deletion-heavy and mixed streams through the full service stack.

The weighted-delta core's safety net: retraction-skewed and
churn-heavy streams must produce byte-identical materializations with
the plan cache on or off, with chaos on or off, under every registered
scheduler and every maintenance strategy — while the coalescing
machinery (cancelled ops, no-op rounds, weighted index application)
demonstrably engages.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import Delta, seminaive_evaluate
from repro.runtime import (
    ChaosPlan,
    HealthPolicy,
    STRATEGY_CHOICES,
    UpdateStreamService,
    live_workload,
    make_stream,
)
from repro.schedulers import scheduler_registry

REGISTRY = scheduler_registry()
ROUNDS = 6


def _materialized_stream(program: str, kind: str, seed: int, **kw):
    """Workload plus a pre-generated stream (list of batch lists).

    ``make_stream`` mutates the workload's mirror as it generates, so
    the stream is materialized once and the same batches are fed to
    every service under comparison.
    """
    wl = live_workload(program, seed=seed)
    rounds = [
        list(batches)
        for batches in make_stream(wl, kind, rounds=ROUNDS, **kw)
    ]
    return wl, rounds


def _serve(wl, rounds, **svc_kw):
    svc = UpdateStreamService(
        wl.program, wl.edb, svc_kw.pop("scheduler"), workers=2, **svc_kw
    )
    reports = []
    for batches in rounds:
        for delta in batches:
            svc.submit(delta)
        rep = svc.run_round()
        if rep is not None:
            assert rep.materialization_ok
            reports.append(rep)
    return svc, reports


class TestCacheDifferential:
    """Plan cache on vs off: byte-identical on retraction streams."""

    @pytest.mark.parametrize("sched_name", sorted(REGISTRY))
    @pytest.mark.parametrize("kind", ("deletions", "mixed"))
    def test_cache_on_off_identical(self, sched_name, kind):
        wl, rounds = _materialized_stream("flat", kind, seed=11,
                                          batch_size=3)
        cold, _ = _serve(
            wl, rounds, scheduler=REGISTRY[sched_name](), plan_cache=False
        )
        cached, _ = _serve(
            wl, rounds, scheduler=REGISTRY[sched_name](), plan_cache=True
        )
        assert cold.materialization() is not None
        assert (
            cold.materialization().as_dict()
            == cached.materialization().as_dict()
        )
        assert cold.database().as_dict() == cached.database().as_dict()

    def test_recursive_program_deletion_stream(self):
        # deletion-heavy streams over the recursive TC workload too —
        # the deletion path that exercises DRed inside the compiler
        wl, rounds = _materialized_stream("tc", "deletions", seed=7,
                                          batch_size=2)
        svc, _ = _serve(
            wl, rounds, scheduler=REGISTRY["hybrid"](), plan_cache=True
        )
        mat = svc.materialization()
        assert mat is not None
        oracle, _ = seminaive_evaluate(wl.program, svc.database())
        assert mat.as_dict() == oracle.as_dict()


class TestChaosDifferential:
    """Chaos on vs off: deletion streams still converge byte-identical
    (the retried rounds replay the same weighted deltas)."""

    @pytest.mark.parametrize("kind", ("deletions", "mixed"))
    def test_chaos_on_off_identical(self, kind):
        wl, rounds = _materialized_stream("flat", kind, seed=13,
                                          batch_size=3)
        base, _ = _serve(
            wl, rounds, scheduler=REGISTRY["hybrid"]()
        )
        chaos = ChaosPlan(
            seed=5,
            unit_fail_prob=0.2,
            unit_latency_prob=0.1,
            unit_latency_s=(0.0003, 0.001),
        )
        svc = UpdateStreamService(
            wl.program,
            wl.edb,
            REGISTRY["hybrid"](),
            workers=2,
            chaos=chaos,
            unit_retries=5,
            unit_backoff_s=0.0005,
            max_round_retries=8,
            health=HealthPolicy(degrade_after=4, fail_after=16,
                                probe_after=1),
        )
        for batches in rounds:
            for delta in batches:
                svc.submit(delta)
            while svc.pending_batches() > 0:
                try:
                    svc.run_round()
                except Exception as exc:  # typed, re-queued, retried
                    assert getattr(exc, "delta_requeued", False), exc
        assert svc.materialization() is not None
        assert (
            svc.materialization().as_dict()
            == base.materialization().as_dict()
        )
        assert svc.database().as_dict() == base.database().as_dict()


class TestCoalescing:
    """Cancelled pairs measurably skip compilation and index work."""

    def test_pure_churn_round_is_noop(self):
        wl = live_workload("flat", seed=3)
        svc = UpdateStreamService(
            wl.program, wl.edb, REGISTRY["hybrid"](), workers=2
        )
        # a first real round, so a materialization exists
        svc.submit(wl.random_batch(2))
        first = svc.run_round()
        assert first is not None and not first.metrics.noop
        mat_before = svc.materialization().as_dict()
        # then a round of pure insert/retract churn
        for delta in wl.churn_batches(3):
            svc.submit(delta)
        rep = svc.run_round()
        m = rep.metrics
        assert m.noop is True
        assert m.tasks_executed == 0 and m.n_nodes == 0
        assert m.cancelled_ops > 0
        assert m.compile_s == 0.0 and m.execute_s == 0.0
        assert rep.compiled is None and rep.artifacts is None
        assert rep.materialization_ok
        assert svc.materialization().as_dict() == mat_before
        assert svc.pending_batches() == 0
        # no-op rounds still count and land in the metrics log
        assert svc.metrics.rounds[-1].noop is True
        reg = svc.metrics.registry
        assert reg.counter("noop_rounds").value == 1

    def test_insert_then_delete_across_batches_cancels(self):
        wl = live_workload("flat", seed=3)
        svc = UpdateStreamService(
            wl.program, wl.edb, REGISTRY["hybrid"](), workers=2
        )
        svc.submit(wl.random_batch(2))
        assert svc.run_round() is not None
        # delete a present fact and immediately re-insert it: the two
        # queued batches coalesce to nothing
        pred = sorted(wl._mirror)[0]
        fact = sorted(wl._mirror[pred])[0]
        svc.submit(Delta().delete(pred, fact))
        svc.submit(Delta().insert(pred, fact))
        rep = svc.run_round()
        assert rep.metrics.noop is True
        # merge_deltas nets the pair to one op, which then cancels
        # against the live EDB
        assert rep.metrics.cancelled_ops == 1
        assert rep.metrics.batches_coalesced == 2

    def test_mixed_stream_reports_cancellations(self):
        wl, rounds = _materialized_stream("flat", "mixed", seed=17,
                                          batch_size=3)
        svc, reports = _serve(
            wl, rounds, scheduler=REGISTRY["hybrid"](), plan_cache=True
        )
        reg = svc.metrics.registry
        assert reg.counter("cancelled_ops").value > 0
        assert reg.counter("noop_rounds").value > 0
        stats = svc.plan_cache.stats()
        # index maintenance went through the exact weighted path
        assert stats["relations"]["weighted_derives"] > 0

    def test_first_round_with_empty_effective_delta_still_compiles(self):
        # before any materialization exists there is nothing to fall
        # back on: an all-cancelled first round must compile
        wl = live_workload("flat", seed=3)
        svc = UpdateStreamService(
            wl.program, wl.edb, REGISTRY["hybrid"](), workers=2
        )
        for delta in wl.churn_batches(2):
            svc.submit(delta)
        rep = svc.run_round()
        assert rep is not None and not rep.metrics.noop
        assert rep.compiled is not None
        assert svc.materialization() is not None


class TestStrategyOracle:
    """The maintenance= shadow engine verifies every round."""

    @pytest.mark.parametrize("strategy", STRATEGY_CHOICES)
    @pytest.mark.parametrize("kind", ("deletions", "mixed"))
    def test_strategies_track_scheduled_runtime(self, strategy, kind):
        wl, rounds = _materialized_stream("flat", kind, seed=19,
                                          batch_size=3)
        svc, _ = _serve(
            wl,
            rounds,
            scheduler=REGISTRY["levelbased"](),
            maintenance=strategy,
        )
        mat = svc.materialization()
        assert mat is not None
        oracle, _ = seminaive_evaluate(wl.program, svc.database())
        assert mat.as_dict() == oracle.as_dict()

    def test_bf_on_recursive_workload(self):
        # counting rejects recursion, but bf and dred must take it
        for strategy in ("dred", "bf"):
            wl, rounds = _materialized_stream("tc", "deletions", seed=23,
                                              batch_size=2)
            svc, _ = _serve(
                wl,
                rounds,
                scheduler=REGISTRY["hybrid"](),
                maintenance=strategy,
            )
            assert svc.materialization() is not None

    def test_unknown_strategy_rejected(self):
        wl = live_workload("flat", seed=3)
        with pytest.raises(ValueError, match="maintenance"):
            UpdateStreamService(
                wl.program, wl.edb, REGISTRY["hybrid"](),
                maintenance="gms2",
            )


class TestRandomizedStreams:
    @given(
        seed=st.integers(0, 2**16),
        kind=st.sampled_from(("deletions", "mixed")),
    )
    @settings(max_examples=10, deadline=None)
    def test_stream_matches_from_scratch(self, seed, kind):
        wl, rounds = _materialized_stream("flat", kind, seed=seed,
                                          batch_size=3)
        svc, _ = _serve(
            wl, rounds, scheduler=REGISTRY["levelbased"](),
            plan_cache=True,
        )
        mat = svc.materialization()
        if mat is None:
            return
        oracle, _ = seminaive_evaluate(wl.program, svc.database())
        assert mat.as_dict() == oracle.as_dict()
