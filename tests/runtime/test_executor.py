"""The concurrent executor under every registered scheduler.

The acceptance bar: for every scheduler, a real concurrent round
produces a byte-identical materialization and a recorded schedule that
passes the strict invariant checker.
"""

from __future__ import annotations

import pytest

from repro.datalog.units import build_execution_plan
from repro.runtime.executor import RoundExecutor, UnitExecutionError
from repro.runtime.recorder import record_round
from repro.schedulers import scheduler_registry
from repro.schedulers.base import Scheduler
from repro.sim import InvalidDispatchError, SchedulerStallError
from repro.sim.faults import DeadlineExceededError


REGISTRY = scheduler_registry()


@pytest.mark.parametrize("sched_name", sorted(REGISTRY))
@pytest.mark.parametrize(
    "wl_name", ("transitive_closure", "retail_analytics", "points_to")
)
class TestAllSchedulers:
    def test_round_is_correct_and_verified(
        self, compiled_workloads, wl_name, sched_name
    ):
        cu = compiled_workloads[wl_name]
        plan = build_execution_plan(cu)
        outcome = RoundExecutor(
            plan, REGISTRY[sched_name](), workers=4
        ).run()
        mat = plan.materialization(outcome.values)
        assert mat.as_dict() == cu.db_new.as_dict()
        report = record_round(outcome, cu.trace).check()
        assert report.ok, "\n".join(v.format() for v in report.violations)


@pytest.mark.parametrize("workers", (1, 2, 8))
def test_worker_counts(compiled_workloads, workers):
    cu = compiled_workloads["same_generation"]
    plan = build_execution_plan(cu)
    outcome = RoundExecutor(
        plan, REGISTRY["hybrid"](), workers=workers
    ).run()
    assert plan.materialization(outcome.values).as_dict() == (
        cu.db_new.as_dict()
    )
    report = record_round(outcome, cu.trace).check()
    assert report.ok


def test_executes_only_active_nodes(compiled_workloads):
    cu = compiled_workloads["retail_rollup"]
    plan = build_execution_plan(cu)
    outcome = RoundExecutor(plan, REGISTRY["hybrid"](), workers=4).run()
    executed = cu.trace.propagation.executed
    for node in outcome.records:
        assert executed[node]
    assert len(outcome.records) == int(executed.sum())


def test_measurements_are_sane(compiled_workloads):
    cu = compiled_workloads["transitive_closure"]
    plan = build_execution_plan(cu)
    outcome = RoundExecutor(plan, REGISTRY["levelbased"](), workers=4).run()
    assert outcome.wall_latency_s > 0
    for start, finish in outcome.records.values():
        assert 0 <= start <= finish <= outcome.wall_latency_s
    assert outcome.select_calls > 0
    assert outcome.scheduler_ops > 0


def test_rejects_nonpositive_workers(compiled_workloads):
    plan = build_execution_plan(compiled_workloads["retail_rollup"])
    with pytest.raises(ValueError, match="workers"):
        RoundExecutor(plan, REGISTRY["hybrid"](), workers=0)


class _EagerIllegalScheduler(Scheduler):
    """Dispatches every activated node immediately, ready or not."""

    name = "eager-illegal"

    def __init__(self) -> None:
        super().__init__()
        self._pending: list[int] = []

    def prepare(self, ctx) -> None:
        self._pending = []

    def on_activate(self, v: int, t: float) -> None:
        self._pending.append(v)

    def on_complete(self, v: int, t: float) -> None:
        pass

    def select(self, max_tasks: int, t: float) -> list[int]:
        out, self._pending = (
            self._pending[:max_tasks],
            self._pending[max_tasks:],
        )
        return out


class _StallingScheduler(Scheduler):
    """Never selects anything."""

    name = "staller"

    def prepare(self, ctx) -> None:
        pass

    def on_activate(self, v: int, t: float) -> None:
        pass

    def on_complete(self, v: int, t: float) -> None:
        pass

    def select(self, max_tasks: int, t: float) -> list[int]:
        return []


class _OverDispatchScheduler(_EagerIllegalScheduler):
    """Returns more tasks than there are idle workers."""

    name = "over-dispatch"

    def select(self, max_tasks: int, t: float) -> list[int]:
        out, self._pending = self._pending, []
        return out


def test_illegal_dispatch_is_caught(compiled_workloads):
    plan = build_execution_plan(compiled_workloads["transitive_closure"])
    with pytest.raises(InvalidDispatchError):
        RoundExecutor(plan, _EagerIllegalScheduler(), workers=2).run()


def test_stall_is_caught(compiled_workloads):
    plan = build_execution_plan(compiled_workloads["retail_rollup"])
    with pytest.raises(SchedulerStallError):
        RoundExecutor(plan, _StallingScheduler(), workers=2).run()


def test_over_dispatch_is_caught(compiled_workloads):
    plan = build_execution_plan(compiled_workloads["transitive_closure"])
    with pytest.raises(InvalidDispatchError, match="idle workers"):
        RoundExecutor(plan, _OverDispatchScheduler(), workers=1).run()


def test_unit_exception_aborts_round(compiled_workloads):
    cu = compiled_workloads["retail_rollup"]
    plan = build_execution_plan(cu)
    victim = int(cu.trace.initial_tasks[0])

    def boom(_values):
        raise RuntimeError("injected unit failure")

    plan.units[victim].run = boom
    with pytest.raises(UnitExecutionError) as exc_info:
        RoundExecutor(plan, REGISTRY["hybrid"](), workers=2).run()
    assert exc_info.value.node == victim


def test_deadline_fires(compiled_workloads):
    cu = compiled_workloads["retail_rollup"]
    plan = build_execution_plan(cu)
    victim = int(cu.trace.initial_tasks[0])
    original = plan.units[victim].run

    def slow(values):
        import time

        time.sleep(0.5)
        return original(values)

    plan.units[victim].run = slow
    with pytest.raises(DeadlineExceededError):
        RoundExecutor(
            plan, REGISTRY["hybrid"](), workers=2, deadline=0.05
        ).run()
