"""Tests for the real concurrent runtime (repro.runtime)."""
