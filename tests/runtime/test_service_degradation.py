"""Graceful degradation: health state machine, breaker, load shedding.

The circuit-breaker ladder under sustained chaos: healthy rounds fail
→ the breaker opens and rounds fall back to the serial reference
oracle with the plan cache bypassed → fallback successes earn a
fast-path probe → the probe closes the breaker (or reopens it) → past
``fail_after`` the service refuses rounds entirely with an intact
queue. Plus the S2 backpressure contract and the three shed policies.
"""

from __future__ import annotations

import time

import pytest

from repro.datalog.incremental import merge_deltas
from repro.runtime import (
    BackpressureError,
    ChaosPlan,
    HealthMonitor,
    HealthPolicy,
    HealthState,
    InjectedPhaseFault,
    ServiceUnavailableError,
    UnitExecutionError,
    UpdateStreamService,
    live_workload,
)
from repro.schedulers import scheduler_registry

REGISTRY = scheduler_registry()


def _oracle(wl, batches):
    """Fault-free reference service fed the same batches, one round."""
    svc = UpdateStreamService(
        wl.program, wl.edb, REGISTRY["hybrid"](), workers=2
    )
    for b in batches:
        svc.submit(b)
    svc.run_round()
    return svc


# ----------------------------------------------------------------------
# HealthPolicy / HealthMonitor unit behavior
# ----------------------------------------------------------------------
def test_health_policy_validation():
    with pytest.raises(ValueError):
        HealthPolicy(degrade_after=0)
    with pytest.raises(ValueError):
        HealthPolicy(degrade_after=3, fail_after=3)
    with pytest.raises(ValueError):
        HealthPolicy(probe_after=0)


def test_monitor_ladder_degrade_probe_recover():
    mon = HealthMonitor(
        policy=HealthPolicy(degrade_after=2, fail_after=5, probe_after=2)
    )
    assert mon.state is HealthState.HEALTHY
    mon.record_failure(0, "Boom")
    assert mon.state is HealthState.HEALTHY
    mon.record_failure(1, "Boom")
    assert mon.state is HealthState.DEGRADED
    # fallback rounds until the probe countdown is met
    assert mon.plan_round() is True
    mon.record_success(2, degraded=True)
    assert mon.plan_round() is True
    mon.record_success(3, degraded=True)
    # two degraded successes -> the next round probes the fast path
    assert mon.plan_round() is False
    assert mon.probing
    mon.record_success(4, degraded=False)
    assert mon.state is HealthState.HEALTHY
    assert [(t[1], t[2]) for t in mon.transitions] == [
        ("healthy", "degraded"),
        ("degraded", "healthy"),
    ]
    assert mon.transitions[-1][3] == "probe-succeeded"


def test_monitor_failed_probe_restarts_countdown():
    mon = HealthMonitor(
        policy=HealthPolicy(degrade_after=1, fail_after=10, probe_after=1)
    )
    mon.record_failure(0, "Boom")
    assert mon.state is HealthState.DEGRADED
    mon.record_success(1, degraded=True)
    assert mon.plan_round() is False  # probe
    mon.record_failure(2, "Boom")
    assert mon.state is HealthState.DEGRADED
    assert mon.degraded_successes == 0  # countdown restarted
    assert mon.plan_round() is True


def test_monitor_trips_to_failed_and_resets():
    mon = HealthMonitor(
        policy=HealthPolicy(degrade_after=1, fail_after=3, probe_after=1)
    )
    for i in range(3):
        mon.record_failure(i, "Boom")
    assert mon.state is HealthState.FAILED
    mon.reset()
    assert mon.state is HealthState.HEALTHY
    assert mon.consecutive_failures == 0
    assert mon.transitions[-1][3] == "manual-reset"


# ----------------------------------------------------------------------
# service integration: the breaker ladder end to end
# ----------------------------------------------------------------------
def test_service_degrades_to_serial_fallback_and_recovers():
    wl = live_workload("retail", seed=21)
    batch = wl.random_batch()
    oracle = _oracle(wl, [batch])

    svc = UpdateStreamService(
        wl.program,
        wl.edb,
        REGISTRY["hybrid"](),
        workers=2,
        chaos=ChaosPlan(seed=1, unit_fail_prob=1.0),
        max_round_retries=10,
        health=HealthPolicy(degrade_after=2, fail_after=8, probe_after=1),
    )
    svc.submit(batch)
    for _ in range(2):
        with pytest.raises(UnitExecutionError):
            svc.run_round()
    assert svc.health.state is HealthState.DEGRADED

    # the re-queued delta now runs on the serial fallback — immune to
    # unit chaos — with the plan cache bypassed
    report = svc.run_round()
    assert report is not None
    assert report.metrics.degraded is True
    assert report.artifacts is None  # no concurrent schedule to record
    assert report.metrics.workers == 1
    assert report.materialization_ok
    assert svc.materialization().as_dict() == (
        oracle.materialization().as_dict()
    )
    assert svc.pending_batches() == 0

    # one degraded success (probe_after=1) -> next round probes the
    # fast path; chaos is still lethal, so the probe fails and the
    # breaker stays open
    svc.submit(wl.random_batch())
    with pytest.raises(UnitExecutionError):
        svc.run_round()
    assert svc.health.state is HealthState.DEGRADED
    assert svc.health.degraded_successes == 0

    # the fault clears: fallback succeeds, then the probe closes the
    # breaker
    svc.chaos = None
    r1 = svc.run_round()  # re-queued delta, degraded
    assert r1.metrics.degraded is True
    svc.submit(wl.random_batch())
    r2 = svc.run_round()  # probe on the fast path
    assert r2.metrics.degraded is False
    assert svc.health.state is HealthState.HEALTHY
    assert any(t[3] == "probe-succeeded" for t in svc.health.transitions)


def test_service_trips_to_failed_with_intact_queue():
    wl = live_workload("retail", seed=22)
    batch = wl.random_batch()
    oracle = _oracle(wl, [batch])

    # verify-phase chaos kills the fallback too: the serial oracle
    # cannot save a round whose verification itself is injected to fail
    svc = UpdateStreamService(
        wl.program,
        wl.edb,
        REGISTRY["hybrid"](),
        workers=2,
        chaos=ChaosPlan(seed=2, verify_fail_prob=1.0),
        max_round_retries=10,
        health=HealthPolicy(degrade_after=2, fail_after=3, probe_after=1),
    )
    svc.submit(batch)
    for _ in range(3):
        with pytest.raises(InjectedPhaseFault):
            svc.run_round()
    assert svc.health.state is HealthState.FAILED

    # failed state refuses service *before* draining: the re-queued
    # delta is still pending and the EDB never moved
    pending = svc.pending_batches()
    assert pending == 1
    with pytest.raises(ServiceUnavailableError) as exc_info:
        svc.run_round()
    assert exc_info.value.consecutive_failures == 3
    assert svc.pending_batches() == pending
    assert svc.database().as_dict() == wl.edb.as_dict()

    # operator recovery: clear the fault, reset the breaker, resume
    svc.chaos = None
    svc.health.reset()
    report = svc.run_round()
    assert report is not None and report.materialization_ok
    assert svc.materialization().as_dict() == (
        oracle.materialization().as_dict()
    )


# ----------------------------------------------------------------------
# S2: backpressure carries queue state; blocking submit can time out
# ----------------------------------------------------------------------
def test_backpressure_error_carries_queue_state():
    wl = live_workload("retail", seed=4)
    svc = UpdateStreamService(
        wl.program, wl.edb, REGISTRY["hybrid"](), capacity=1
    )
    svc.submit(wl.random_batch())
    with pytest.raises(BackpressureError) as exc_info:
        svc.submit(wl.random_batch(), block=False)
    err = exc_info.value
    assert err.pending_batches == 1
    assert err.capacity == 1


def test_blocking_submit_timeout_raises_backpressure():
    wl = live_workload("retail", seed=4)
    svc = UpdateStreamService(
        wl.program, wl.edb, REGISTRY["hybrid"](), capacity=1
    )
    svc.submit(wl.random_batch())
    t0 = time.perf_counter()
    with pytest.raises(BackpressureError) as exc_info:
        svc.submit(wl.random_batch(), block=True, timeout=0.05)
    assert time.perf_counter() - t0 >= 0.05
    assert exc_info.value.capacity == 1


# ----------------------------------------------------------------------
# load shedding: only while degraded, per policy
# ----------------------------------------------------------------------
def _degraded_service(wl, policy: str, capacity: int = 2):
    svc = UpdateStreamService(
        wl.program,
        wl.edb,
        REGISTRY["hybrid"](),
        capacity=capacity,
        shed_policy=policy,
    )
    svc.health.state = HealthState.DEGRADED
    return svc


def test_shed_policy_validation():
    wl = live_workload("retail", seed=6)
    with pytest.raises(ValueError, match="shed_policy"):
        UpdateStreamService(
            wl.program, wl.edb, REGISTRY["hybrid"](), shed_policy="panic"
        )


def test_shed_reject_fails_fast_even_for_blocking_submits():
    wl = live_workload("retail", seed=6)
    svc = _degraded_service(wl, "reject")
    svc.submit(wl.random_batch())
    svc.submit(wl.random_batch())
    t0 = time.perf_counter()
    with pytest.raises(BackpressureError) as exc_info:
        # blocking submit would wait while healthy; degraded reject
        # must fail immediately instead of piling onto a sick service
        svc.submit(wl.random_batch(), block=True, timeout=5.0)
    assert time.perf_counter() - t0 < 1.0
    assert exc_info.value.pending_batches == 2
    assert svc.shed_batches == 0


def test_shed_drop_oldest_evicts_and_converges():
    wl = live_workload("retail", seed=7)
    d1, d2, d3 = (wl.random_batch() for _ in range(3))
    svc = _degraded_service(wl, "drop-oldest")
    svc.submit(d1)
    svc.submit(d2)
    svc.submit(d3)  # full queue: d1 is evicted
    assert svc.shed_batches == 1
    assert svc.pending_batches() == 2
    # the surviving stream is d2, d3 — byte-identical to an oracle
    # that never saw d1
    svc.health.reset()
    svc.run_round()
    oracle = _oracle(wl, [d2, d3])
    assert svc.materialization().as_dict() == (
        oracle.materialization().as_dict()
    )


def test_shed_coalesce_harder_folds_queue_into_one_slot():
    wl = live_workload("retail", seed=8)
    d1, d2, d3 = (wl.random_batch() for _ in range(3))
    svc = _degraded_service(wl, "coalesce-harder")
    svc.submit(d1)
    svc.submit(d2)
    svc.submit(d3)  # full queue: everything folds into one slot
    assert svc.shed_batches == 2
    assert svc.pending_batches() == 1
    merged, _stamp = svc._queue.get_nowait()
    expect = merge_deltas([d1, d2, d3])
    assert merged.insertions == expect.insertions
    assert merged.deletions == expect.deletions
    svc._queue.task_done()


def test_shedding_never_engages_while_healthy():
    wl = live_workload("retail", seed=9)
    svc = UpdateStreamService(
        wl.program,
        wl.edb,
        REGISTRY["hybrid"](),
        capacity=1,
        shed_policy="drop-oldest",
    )
    svc.submit(wl.random_batch())
    with pytest.raises(BackpressureError):
        svc.submit(wl.random_batch(), block=False)
    assert svc.shed_batches == 0
