"""Executor fault tolerance: retry, quarantine, watchdog, supervision.

Covers the live runtime's fault layer in isolation: per-unit retry
with the sim's capped-backoff law, retry-budget exhaustion and the
structured quarantine aggregate, the soft straggler watchdog, chaos
injection at the unit level, supervised worker-lane replacement, and
the deadline regression — a deadline-exceeded round returns promptly
without leaking a single lane thread.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.datalog.units import build_execution_plan
from repro.runtime.chaos import ChaosInjector, ChaosPlan, InjectedUnitFault
from repro.runtime.executor import (
    RetryPolicy,
    RoundExecutor,
    UnitExecutionError,
)
from repro.schedulers import scheduler_registry
from repro.sim.faults import DeadlineExceededError, FaultPlan

REGISTRY = scheduler_registry()

#: tiny backoffs keep fault tests fast without changing the law
FAST_RETRY = RetryPolicy(
    max_retries=8, backoff_base=0.001, backoff_factor=2.0, backoff_cap=0.01
)


def _runtime_threads() -> list[threading.Thread]:
    return [
        t
        for t in threading.enumerate()
        if t.name.startswith("repro-runtime") and t.is_alive()
    ]


# ----------------------------------------------------------------------
# retry policy semantics
# ----------------------------------------------------------------------
def test_backoff_matches_sim_fault_plan_semantics():
    policy = RetryPolicy(
        max_retries=5, backoff_base=0.5, backoff_factor=2.0, backoff_cap=8.0
    )
    plan = FaultPlan(
        backoff_base=0.5, backoff_factor=2.0, backoff_cap=8.0
    )
    for k in range(1, 8):
        assert policy.backoff_delay(k) == plan.backoff_delay(k)
    with pytest.raises(ValueError):
        policy.backoff_delay(0)


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_factor=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_base=-1.0)


def test_transient_failure_is_retried_to_success(compiled_workloads):
    cu = compiled_workloads["retail_rollup"]
    plan = build_execution_plan(cu)
    victim = int(cu.trace.initial_tasks[0])
    original = plan.units[victim].run
    calls = {"n": 0}

    def flaky(values):
        calls["n"] += 1
        if calls["n"] <= 2:
            raise RuntimeError("transient")
        return original(values)

    plan.units[victim].run = flaky
    outcome = RoundExecutor(
        plan, REGISTRY["hybrid"](), workers=2, retry=FAST_RETRY
    ).run()
    assert calls["n"] == 3
    assert outcome.unit_retries == 2
    assert plan.materialization(outcome.values).as_dict() == (
        cu.db_new.as_dict()
    )


def test_budget_exhaustion_quarantines_with_aggregate(compiled_workloads):
    cu = compiled_workloads["retail_rollup"]
    plan = build_execution_plan(cu)
    victim = int(cu.trace.initial_tasks[0])

    def boom(_values):
        raise RuntimeError("permanent")

    plan.units[victim].run = boom
    policy = RetryPolicy(max_retries=2, backoff_base=0.001)
    with pytest.raises(UnitExecutionError) as exc_info:
        RoundExecutor(
            plan, REGISTRY["hybrid"](), workers=2, retry=policy
        ).run()
    err = exc_info.value
    # legacy single-failure surface is intact...
    assert err.node == victim
    assert isinstance(err.cause, RuntimeError)
    # ...and the aggregate records the whole budget being consumed
    assert victim in err.quarantined
    f = [f for f in err.failures if f.node == victim][0]
    assert f.attempts == 3  # initial + 2 retries
    assert not _runtime_threads()


def test_no_retry_policy_preserves_fail_fast(compiled_workloads):
    """Without a policy the first failure aborts — historical behavior."""
    cu = compiled_workloads["retail_rollup"]
    plan = build_execution_plan(cu)
    victim = int(cu.trace.initial_tasks[0])

    def boom(_values):
        raise RuntimeError("nope")

    plan.units[victim].run = boom
    with pytest.raises(UnitExecutionError) as exc_info:
        RoundExecutor(plan, REGISTRY["hybrid"](), workers=2).run()
    assert exc_info.value.failures[0].attempts == 1


# ----------------------------------------------------------------------
# S1: deadline abort leaks nothing and returns promptly
# ----------------------------------------------------------------------
def test_deadline_returns_promptly_without_leaked_threads(
    compiled_workloads,
):
    cu = compiled_workloads["transitive_closure"]
    plan = build_execution_plan(cu)
    executed = [
        n for n, unit in enumerate(plan.units)
        if cu.trace.propagation.executed[n]
    ]
    # a full drain would cost >= (|executed|/2) * 0.3 s — far past the
    # bound asserted below
    assert len(executed) >= 16
    for node in executed:
        original = plan.units[node].run

        def slow(values, _orig=original):
            time.sleep(0.3)
            return _orig(values)

        plan.units[node].run = slow
    t0 = time.perf_counter()
    with pytest.raises(DeadlineExceededError):
        RoundExecutor(
            plan, REGISTRY["hybrid"](), workers=2, deadline=0.05
        ).run()
    elapsed = time.perf_counter() - t0
    # abort waits only for the <= 2 in-flight units (~0.3 s), never
    # drains the remaining queue (which would cost >= 0.6 s more)
    assert elapsed < 0.3 * 2 + 0.2
    assert not _runtime_threads()


# ----------------------------------------------------------------------
# soft watchdog
# ----------------------------------------------------------------------
def test_watchdog_marks_stragglers_softly(compiled_workloads):
    cu = compiled_workloads["retail_rollup"]
    plan = build_execution_plan(cu)
    victim = int(cu.trace.initial_tasks[0])
    original = plan.units[victim].run

    def slow(values):
        time.sleep(0.15)
        return original(values)

    plan.units[victim].run = slow
    outcome = RoundExecutor(
        plan, REGISTRY["hybrid"](), workers=2, unit_timeout_s=0.03
    ).run()
    assert victim in outcome.stragglers
    # soft: the unit still completed and the round is correct
    assert plan.materialization(outcome.values).as_dict() == (
        cu.db_new.as_dict()
    )


def test_watchdog_validation(compiled_workloads):
    plan = build_execution_plan(compiled_workloads["retail_rollup"])
    with pytest.raises(ValueError, match="unit_timeout_s"):
        RoundExecutor(plan, REGISTRY["hybrid"](), unit_timeout_s=0.0)


# ----------------------------------------------------------------------
# chaos at the executor level
# ----------------------------------------------------------------------
def test_injected_unit_failures_retry_to_identical_result(
    compiled_workloads,
):
    cu = compiled_workloads["retail_analytics"]
    plan = build_execution_plan(cu)
    injector = ChaosInjector(ChaosPlan(seed=5, unit_fail_prob=0.3))
    outcome = RoundExecutor(
        plan, REGISTRY["hybrid"](), workers=4,
        retry=FAST_RETRY, chaos=injector,
    ).run()
    assert outcome.injected_faults > 0
    assert outcome.unit_retries >= len(injector.log.select("unit-fail"))
    assert plan.materialization(outcome.values).as_dict() == (
        cu.db_new.as_dict()
    )


def test_worker_kills_are_supervised(compiled_workloads):
    cu = compiled_workloads["retail_rollup"]
    plan = build_execution_plan(cu)
    injector = ChaosInjector(
        ChaosPlan(seed=1, worker_kill_prob=1.0, max_kills_per_unit=1)
    )
    outcome = RoundExecutor(
        plan, REGISTRY["hybrid"](), workers=2, chaos=injector
    ).run()
    # every executed unit's first dispatch killed its lane exactly once;
    # supervision replaced the lane and re-ran the unit
    assert outcome.lane_deaths == len(outcome.records)
    assert outcome.unit_retries == 0  # kills are not charged as retries
    assert plan.materialization(outcome.values).as_dict() == (
        cu.db_new.as_dict()
    )
    assert not _runtime_threads()


def test_targeted_fail_units_fire_once(compiled_workloads):
    cu = compiled_workloads["retail_rollup"]
    victim = int(cu.trace.initial_tasks[0])
    injector = ChaosInjector(ChaosPlan(seed=0, fail_units=(victim,)))
    plan = build_execution_plan(cu)
    with pytest.raises(UnitExecutionError) as exc_info:
        RoundExecutor(plan, REGISTRY["hybrid"](), workers=2,
                      chaos=injector).run()
    assert exc_info.value.node == victim
    assert isinstance(exc_info.value.cause, InjectedUnitFault)
    # one-shot: a rerun against the same injector succeeds
    plan2 = build_execution_plan(cu)
    outcome = RoundExecutor(
        plan2, REGISTRY["hybrid"](), workers=2, chaos=injector
    ).run()
    assert plan2.materialization(outcome.values).as_dict() == (
        cu.db_new.as_dict()
    )


def test_chaos_decisions_are_deterministic():
    plan = ChaosPlan(
        seed=42, unit_fail_prob=0.4, unit_latency_prob=0.3,
        worker_kill_prob=0.2,
    )
    a, b = ChaosInjector(plan), ChaosInjector(plan)
    for node in range(20):
        for attempt in range(3):
            assert a.unit_outcome(node, attempt) == b.unit_outcome(
                node, attempt
            )
    # a different round epoch draws a different pattern
    c = ChaosInjector(plan)
    c.begin_round(1)
    decisions0 = [a.unit_outcome(n, 0) for n in range(50)]
    decisions1 = [c.unit_outcome(n, 0) for n in range(50)]
    assert decisions0 != decisions1


def test_chaos_plan_json_round_trip():
    plan = ChaosPlan(
        seed=3, unit_fail_prob=0.1, unit_latency_prob=0.2,
        unit_latency_s=(0.001, 0.004), worker_kill_prob=0.05,
        compile_fail_prob=0.01, verify_fail_prob=0.02,
        fail_units=(4, 7), fail_round=2,
    )
    assert ChaosPlan.from_json_dict(plan.to_json_dict()) == plan
    with pytest.raises(ValueError, match="unknown ChaosPlan"):
        ChaosPlan.from_json_dict({"seed": 1, "bogus": 2})
    with pytest.raises(ValueError):
        ChaosPlan(unit_fail_prob=1.5)
    assert ChaosPlan().is_empty()
    assert not ChaosPlan.from_seed(9).is_empty()


def test_chaos_from_fault_plan_adapter():
    fp = FaultPlan(seed=7, task_fail_prob=0.25, straggler_prob=0.1)
    cp = ChaosPlan.from_fault_plan(fp)
    assert cp.seed == 7
    assert cp.unit_fail_prob == 0.25
    assert cp.unit_latency_prob == 0.1


def test_quarantine_cancels_remaining_dispatch(compiled_workloads):
    """An aborted round must not drain the rest of the plan."""
    cu = compiled_workloads["retail_analytics"]
    plan = build_execution_plan(cu)
    victim = int(cu.trace.initial_tasks[0])

    def boom(_values):
        raise RuntimeError("poison")

    plan.units[victim].run = boom
    executed = 0
    for node, unit in enumerate(plan.units):
        if node == victim:
            continue
        original = unit.run

        def counting(values, _orig=original):
            nonlocal executed
            executed += 1
            time.sleep(0.01)
            return _orig(values)

        unit.run = counting
    total = int(cu.trace.propagation.executed.sum())
    with pytest.raises(UnitExecutionError):
        # level order puts the poisoned initial task up front
        RoundExecutor(plan, REGISTRY["levelbased"](), workers=1).run()
    assert executed < total - 1
    assert not _runtime_threads()
