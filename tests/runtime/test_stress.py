"""Concurrency stress: N producer threads against a live service.

Producers push bursty update batches from their own threads while the
service thread runs verified rounds — per scheduler. Marked with a
timeout so a deadlock in the executor/service fails fast under the CI
runtime job (pytest-timeout + faulthandler) instead of hanging it.
"""

from __future__ import annotations

import threading

import pytest

from repro.datalog import seminaive_evaluate
from repro.runtime import BackpressureError, UpdateStreamService, live_workload
from repro.schedulers import scheduler_registry

REGISTRY = scheduler_registry()

N_PRODUCERS = 4
BATCHES_PER_PRODUCER = 6


@pytest.mark.timeout(120)
@pytest.mark.parametrize("sched_name", sorted(REGISTRY))
def test_producers_vs_service(sched_name):
    wl = live_workload("retail", seed=13)
    svc = UpdateStreamService(
        wl.program,
        wl.edb,
        REGISTRY[sched_name](),
        workers=4,
        capacity=8,
    )
    # batches are pre-generated on the main thread (the workload mirror
    # is not thread-safe); producers contend on the bounded queue
    plans = [
        [wl.random_batch(2) for _ in range(BATCHES_PER_PRODUCER)]
        for _ in range(N_PRODUCERS)
    ]
    errors: list[BaseException] = []

    def producer(batches):
        try:
            for delta in batches:
                svc.submit(delta, block=True, timeout=30.0)
        except BaseException as exc:  # surfaced by the main thread
            errors.append(exc)

    threads = [
        threading.Thread(target=producer, args=(p,), daemon=True)
        for p in plans
    ]
    for t in threads:
        t.start()

    total = N_PRODUCERS * BATCHES_PER_PRODUCER
    served = 0
    while served < total:
        rep = svc.run_round(block=True, timeout=10.0)
        if rep is None:
            break
        assert rep.materialization_ok
        assert rep.verification is not None and rep.verification.ok
        served += rep.metrics.batches_coalesced
    for t in threads:
        t.join(timeout=30.0)
        assert not t.is_alive()

    assert not errors
    assert served == total
    # every producer's updates are in the accumulated database, and the
    # served materialization equals a from-scratch evaluation of it
    scratch, _ = seminaive_evaluate(wl.program, svc.database())
    assert scratch.as_dict() == svc.materialization().as_dict()


@pytest.mark.timeout(60)
def test_backpressure_under_flood():
    """A non-blocking flood hits BackpressureError, then recovers."""
    wl = live_workload("tc", seed=3)
    svc = UpdateStreamService(
        wl.program, wl.edb, REGISTRY["hybrid"](), workers=2, capacity=4
    )
    hit = 0
    for _ in range(10):
        try:
            svc.submit(wl.random_batch(1), block=False)
        except BackpressureError:
            hit += 1
    assert hit == 6  # exactly capacity batches were accepted
    rep = svc.run_round()
    assert rep is not None and rep.metrics.batches_coalesced == 4
    # queue drained: submits flow again
    svc.submit(wl.random_batch(1), block=False)
    assert svc.run_round() is not None
