"""Live workload generators: validity, determinism, stream shapes."""

from __future__ import annotations

import pytest

from repro.datalog.incremental import apply_delta, merge_deltas
from repro.runtime.workloads_live import (
    PROGRAM_ALIASES,
    STREAM_KINDS,
    live_workload,
    make_stream,
)


def all_facts(db):
    return db.as_dict()


class TestLiveWorkload:
    def test_aliases_resolve(self):
        for alias in ("tc", "sg", "retail", "analytics", "pt"):
            wl = live_workload(alias)
            assert wl.name in PROGRAM_ALIASES.values()

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown live program"):
            live_workload("nope")

    def test_batches_touch_only_edb_predicates(self):
        wl = live_workload("retail", seed=1)
        idb = wl.program.idb_predicates()
        for _ in range(20):
            delta = wl.random_batch(3)
            for pred in delta.touched_predicates():
                assert pred not in idb

    def test_deletions_are_of_present_facts(self):
        """The mirror keeps deletions valid across many batches."""
        wl = live_workload("tc", seed=2)
        db = wl.edb.copy()
        for _ in range(30):
            delta = wl.random_batch(3)
            for pred, facts in delta.deletions.items():
                for f in facts:
                    assert f in db.relations[pred]
            db = apply_delta(db, delta)

    def test_deterministic_across_instances(self):
        a = live_workload("sg", seed=9)
        b = live_workload("sg", seed=9)
        for _ in range(10):
            da = a.random_batch(2)
            db_ = b.random_batch(2)
            assert da.insertions == db_.insertions
            assert da.deletions == db_.deletions

    def test_hot_key_is_pinned(self):
        wl = live_workload("retail", seed=4)
        pred, key = wl.hot_key
        delta = wl.random_batch(8, hot=True)
        for p in delta.touched_predicates():
            assert p == pred
        for facts in delta.insertions.values():
            for f in facts:
                assert f[0] == key


class TestStreams:
    def test_unknown_kind(self):
        wl = live_workload("retail")
        with pytest.raises(ValueError, match="unknown stream kind"):
            list(make_stream(wl, "trickle", rounds=1))

    @pytest.mark.parametrize("kind", STREAM_KINDS)
    def test_yields_requested_rounds(self, kind):
        wl = live_workload("retail", seed=0)
        ticks = list(make_stream(wl, kind, rounds=6))
        assert len(ticks) == 6
        for batches in ticks:
            assert len(batches) >= 1

    def test_bursty_has_bursts(self):
        wl = live_workload("retail", seed=0)
        sizes = [
            len(b)
            for b in make_stream(
                wl, "bursty", rounds=8, burst_every=4, burst_batches=5
            )
        ]
        assert sizes.count(5) == 2
        assert sizes.count(1) == 6

    def test_stream_applies_cleanly(self):
        """Accumulated stream deltas compose over the initial EDB."""
        wl = live_workload("pt", seed=6)
        db = wl.edb.copy()
        deltas = []
        for batches in make_stream(wl, "steady", rounds=5):
            deltas.extend(batches)
        merged = merge_deltas(deltas)
        stepped = db
        for d in deltas:
            stepped = apply_delta(stepped, d)
        assert (
            apply_delta(db, merged).as_dict() == stepped.as_dict()
        )

    def test_deletions_stream_is_delete_skewed(self):
        wl = live_workload("flat", seed=8)
        n_ins = n_del = 0
        for batches in make_stream(
            wl, "deletions", rounds=20, batch_size=3
        ):
            for d in batches:
                n_ins += sum(len(s) for s in d.insertions.values())
                n_del += sum(len(s) for s in d.deletions.values())
        assert n_del > n_ins

    def test_churn_batches_cancel_under_merge(self):
        wl = live_workload("flat", seed=8)
        mirror_before = {p: set(s) for p, s in wl._mirror.items()}
        pair = wl.churn_batches(4)
        assert len(pair) == 2
        merged = merge_deltas(pair)
        # later op wins: the merged delta only *deletes*, and only
        # facts absent from the live EDB — every op cancels against it
        assert not any(merged.insertions.values())
        for pred, facts in merged.deletions.items():
            for f in facts:
                assert f not in mirror_before.get(pred, set())
        # and the generator's mirror is untouched (net no-op)
        assert wl._mirror == mirror_before

    def test_mixed_stream_has_pure_churn_rounds(self):
        wl = live_workload("flat", seed=8)
        db = wl.edb.copy()
        noop_rounds = 0
        for batches in make_stream(wl, "mixed", rounds=9, batch_size=3):
            merged = merge_deltas(batches)
            stepped = apply_delta(db, merged)
            if stepped.as_dict() == db.as_dict():
                noop_rounds += 1
            db = stepped
        assert noop_rounds >= 3
