"""Failed-round regression: the queue must survive a mid-round crash.

Historically the service called ``task_done()`` only on the success
path, so any failing round (executor deadline, unit crash, strict
verification failure) left the queue's unfinished-task count high
forever — producers blocked in ``Queue.join()`` hung — and silently
dropped every drained batch. These tests pin the fix under every
registered scheduler: the accounting is settled either way, the merged
delta is re-queued at the front (within the retry budget) or surfaced
on the exception, and the round after a failure produces a
materialization byte-identical to the from-scratch serial oracle.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.datalog import Delta, seminaive_evaluate
from repro.runtime import (
    RoundVerificationError,
    UnitExecutionError,
    UpdateStreamService,
    live_workload,
)
from repro.runtime import service as service_mod
from repro.schedulers import scheduler_registry
from repro.verify.invariants import VerificationReport, Violation

REGISTRY = scheduler_registry()


def make_service(scheduler="hybrid", **kwargs):
    wl = live_workload("retail", seed=11)
    svc = UpdateStreamService(
        wl.program, wl.edb, REGISTRY[scheduler](), workers=4, **kwargs
    )
    return wl, svc


class _Boom(RuntimeError):
    pass


def fail_n_rounds(monkeypatch, n):
    """Patch the service's executor to crash on the first ``n`` runs."""
    real = service_mod.RoundExecutor
    calls = {"n": 0}

    class FlakyExecutor:
        def __init__(self, *args, **kwargs):
            self._inner = real(*args, **kwargs)

        def run(self):
            calls["n"] += 1
            if calls["n"] <= n:
                raise UnitExecutionError(0, "probe", _Boom("injected"))
            return self._inner.run()

    monkeypatch.setattr(service_mod, "RoundExecutor", FlakyExecutor)
    return calls


def join_unblocks(svc, timeout=5.0) -> bool:
    """Whether a producer blocked in ``Queue.join()`` wakes up."""
    done = threading.Event()
    th = threading.Thread(target=lambda: (svc._queue.join(), done.set()))
    th.start()
    th.join(timeout)
    return done.is_set()


@pytest.mark.parametrize("name", sorted(REGISTRY))
class TestFailedRoundUnderEveryScheduler:
    def test_failure_requeues_delta_and_settles_queue(
        self, name, monkeypatch
    ):
        wl, svc = make_service(name)
        fail_n_rounds(monkeypatch, 1)
        batch = wl.random_batch(2)
        svc.submit(batch)
        with pytest.raises(UnitExecutionError) as ei:
            svc.run_round()
        # the failed-round policy: surfaced AND re-queued at the front
        assert ei.value.delta_requeued is True
        assert isinstance(ei.value.failed_delta, Delta)
        assert svc.pending_batches() == 1
        # task_done accounting settled despite the failure: a producer
        # blocked in Queue.join() must wake (the historical hang)
        assert join_unblocks(svc)
        # EDB did not advance on the failed round
        assert svc.database().as_dict() == wl.edb.as_dict()

    def test_retry_round_matches_serial_oracle(self, name, monkeypatch):
        wl, svc = make_service(name)
        fail_n_rounds(monkeypatch, 1)
        svc.submit(wl.random_batch(2))
        with pytest.raises(UnitExecutionError):
            svc.run_round()
        rep = svc.run_round()  # retries the re-queued delta, no new input
        assert rep is not None
        assert rep.materialization_ok
        assert svc.pending_batches() == 0
        # no delta was lost: the accumulated EDB re-evaluated from
        # scratch is byte-identical to the round's materialization
        oracle, _ = seminaive_evaluate(wl.program, svc.database())
        assert svc.materialization().as_dict() == oracle.as_dict()

    def test_failure_preserves_interleaved_batches(self, name, monkeypatch):
        """A batch submitted after the crash still lands exactly once."""
        wl, svc = make_service(name)
        fail_n_rounds(monkeypatch, 1)
        first = wl.random_batch(2)
        svc.submit(first)
        with pytest.raises(UnitExecutionError):
            svc.run_round()
        second = wl.random_batch(2)
        svc.submit(second)
        # retried delta comes first, new batch coalesces behind it
        rep = svc.run_round()
        assert rep is not None
        assert rep.metrics.batches_coalesced == 2
        oracle, _ = seminaive_evaluate(wl.program, svc.database())
        assert svc.materialization().as_dict() == oracle.as_dict()


class TestRetryBudget:
    def test_budget_exhaustion_surfaces_and_drops_delta(self, monkeypatch):
        wl, svc = make_service("hybrid", max_round_retries=1)
        fail_n_rounds(monkeypatch, 10)
        svc.submit(wl.random_batch(2))
        with pytest.raises(UnitExecutionError) as e1:
            svc.run_round()
        assert e1.value.delta_requeued is True
        assert svc.pending_batches() == 1
        with pytest.raises(UnitExecutionError) as e2:
            svc.run_round()
        # budget (1 retry) exhausted: dropped from the service, handed
        # to the caller on the exception
        assert e2.value.delta_requeued is False
        assert isinstance(e2.value.failed_delta, Delta)
        assert svc.pending_batches() == 0
        assert join_unblocks(svc)

    def test_service_recovers_after_poison_delta_dropped(self):
        """A structurally-bad delta exhausts its budget, then service
        keeps serving good batches."""
        wl, svc = make_service("hybrid", max_round_retries=1)
        poison = Delta().insert("in_category", ("p0", 1))  # derived pred
        svc.submit(poison)
        for _ in range(2):  # initial attempt + 1 retry
            with pytest.raises(ValueError):
                svc.run_round()
        assert svc.pending_batches() == 0
        svc.submit(wl.random_batch(2))
        rep = svc.run_round()
        assert rep is not None and rep.materialization_ok

    def test_success_resets_the_budget(self, monkeypatch):
        wl, svc = make_service("hybrid", max_round_retries=1)
        calls = fail_n_rounds(monkeypatch, 1)
        svc.submit(wl.random_batch(1))
        with pytest.raises(UnitExecutionError):
            svc.run_round()
        assert svc.run_round() is not None  # retry succeeds
        # a later failure gets a fresh budget: it re-queues again
        calls["n"] = 0  # re-arm the flaky executor for one more failure
        svc.submit(wl.random_batch(1))
        with pytest.raises(UnitExecutionError) as ei:
            svc.run_round()
        assert ei.value.delta_requeued is True

    def test_negative_budget_rejected(self):
        wl = live_workload("retail", seed=1)
        with pytest.raises(ValueError):
            UpdateStreamService(
                wl.program, wl.edb, REGISTRY["hybrid"](),
                max_round_retries=-1,
            )


class TestTypedVerificationError:
    def test_invariant_failure_raises_typed_error(self, monkeypatch):
        wl, svc = make_service("hybrid")
        report = VerificationReport(
            trace_name="t",
            scheduler_name="s",
            processors=4,
            violations=[Violation(kind="precedence", detail="injected")],
        )
        monkeypatch.setattr(
            service_mod.RoundArtifacts, "check", lambda self: report
        )
        svc.submit(wl.random_batch(1))
        with pytest.raises(RoundVerificationError) as ei:
            svc.run_round()
        # typed: carries the report; compatible: still an AssertionError
        assert ei.value.report is report
        assert ei.value.round_index == 0
        assert isinstance(ei.value, AssertionError)
        assert "injected" in str(ei.value)
        # the verification failure follows the same failed-round policy
        assert ei.value.delta_requeued is True
        assert svc.pending_batches() == 1
        assert join_unblocks(svc)


class TestPlanCacheRollback:
    """A failed round must not leak its staged compile into the cache.

    The plan cache stages each round's compile and patches the bound
    plan *before* execution; if the round then fails, the retry must
    recompile from the last committed baseline — never from state the
    failed round staged or patched.
    """

    def test_failed_round_rolls_back_staged_compile(self, monkeypatch):
        wl, svc = make_service("hybrid")
        assert svc.plan_cache is not None
        fail_n_rounds(monkeypatch, 1)
        svc.submit(wl.random_batch(2))
        with pytest.raises(UnitExecutionError):
            svc.run_round()
        stats = svc.plan_cache.stats()
        assert stats["rollbacks"] == 1
        # nothing was committed: the failed round's compile was a miss
        # and the baseline is still empty, so the retry misses again
        # instead of reusing state staged by the failure
        rep = svc.run_round()
        assert rep is not None and rep.materialization_ok
        stats = svc.plan_cache.stats()
        assert stats["misses"] == 2 and stats["hits"] == 0
        # ...and only the *successful* round was committed: the next
        # round reuses its verified baseline. A tiny random batch can
        # coalesce to a no-op round (which never touches the cache),
        # so feed until a round actually compiles.
        while True:
            svc.submit(wl.random_batch(1))
            rep = svc.run_round()
            assert rep.materialization_ok
            if not rep.metrics.noop:
                break
        assert svc.plan_cache.stats()["hits"] == 1

    def test_failure_after_warm_cache_retries_from_committed_state(
        self, monkeypatch
    ):
        """Fail a round *after* the cache is warm: the retry must hit
        the committed baseline (not recompile cold, not reuse the
        failed round's staging) and still match the serial oracle."""
        wl, svc = make_service("hybrid")
        for _ in range(2):
            svc.submit(wl.random_batch(2))
            assert svc.run_round().materialization_ok
        committed_edb = svc.database().as_dict()
        fail_n_rounds(monkeypatch, 1)
        svc.submit(wl.random_batch(2))
        with pytest.raises(UnitExecutionError):
            svc.run_round()
        assert svc.plan_cache.stats()["rollbacks"] == 1
        assert svc.database().as_dict() == committed_edb
        rep = svc.run_round()
        assert rep is not None and rep.materialization_ok
        oracle, _ = seminaive_evaluate(wl.program, svc.database())
        assert svc.materialization().as_dict() == oracle.as_dict()

    def test_verification_failure_rolls_back_too(self, monkeypatch):
        wl, svc = make_service("hybrid")
        report = VerificationReport(
            trace_name="t",
            scheduler_name="s",
            processors=4,
            violations=[Violation(kind="precedence", detail="injected")],
        )
        monkeypatch.setattr(
            service_mod.RoundArtifacts, "check", lambda self: report
        )
        svc.submit(wl.random_batch(1))
        with pytest.raises(RoundVerificationError):
            svc.run_round()
        assert svc.plan_cache.stats()["rollbacks"] == 1
        assert svc.pending_batches() == 1

    def test_cached_stream_with_midstream_failure_matches_uncached(
        self, monkeypatch
    ):
        """Round-by-round differential across a failure: a cached
        service that crashes and retries mid-stream stays byte-identical
        to an uncached service fed the same update stream."""
        wl_a, svc_a = make_service("hybrid")
        wl_b, svc_b = make_service("hybrid", plan_cache=False)
        assert svc_b.plan_cache is None

        calls = fail_n_rounds(monkeypatch, 0)  # armed below
        for i in range(5):
            if i == 2:
                calls["n"] = -1  # next executor run (svc_a's) crashes
            svc_a.submit(wl_a.random_batch(2))
            if i == 2:
                with pytest.raises(UnitExecutionError):
                    svc_a.run_round()
                rep_a = svc_a.run_round()  # retry
            else:
                rep_a = svc_a.run_round()
            svc_b.submit(wl_b.random_batch(2))
            rep_b = svc_b.run_round()
            assert rep_a.materialization_ok and rep_b.materialization_ok
            assert (
                svc_a.materialization().as_dict()
                == svc_b.materialization().as_dict()
            ), f"round {i}: cached (with failure) diverges from uncached"
        assert svc_a.database().as_dict() == svc_b.database().as_dict()

    def test_commit_requires_matching_staged_compile(self):
        from repro.datalog import compile_update

        wl, svc = make_service("hybrid")
        cache = svc.plan_cache
        foreign = compile_update(wl.program, wl.edb, wl.random_batch(1))
        with pytest.raises(ValueError, match="staged"):
            cache.commit(foreign)
        # rollback with nothing staged is a no-op, not an error
        cache.rollback()
        assert cache.stats()["rollbacks"] == 0


class TestRollbackAtEveryUnitIndex:
    """S3: chaos-targeted unit failure at every index of a cached round.

    The plan cache patches the bound plan in place before execution, so
    the rollback contract must hold no matter *which* unit the round
    dies on. For every registered scheduler: warm the cache with one
    round, then for each unit the cached round actually executes,
    inject a one-shot failure at exactly that unit
    (``ChaosPlan(fail_units=(node,), fail_round=1)`` — epoch 1 is the
    first cached round), assert the rollback, and check the retry
    converges byte-identically to an uncached service fed the same
    batches.
    """

    @pytest.mark.parametrize("name", sorted(REGISTRY))
    def test_rollback_matrix(self, name):
        from repro.runtime import ChaosPlan

        wl = live_workload("retail", seed=13)
        batches = [wl.random_batch(2) for _ in range(2)]

        # cold oracle: same stream, no plan cache, no chaos
        cold = UpdateStreamService(
            wl.program, wl.edb, REGISTRY[name](), workers=4,
            plan_cache=False,
        )
        for b in batches:
            cold.submit(b)
            cold.run_round()
        want = cold.materialization().as_dict()

        # probe run discovers which units the cached round executes
        probe = UpdateStreamService(
            wl.program, wl.edb, REGISTRY[name](), workers=4
        )
        probe.submit(batches[0])
        probe.run_round()
        probe.submit(batches[1])
        rep = probe.run_round()
        executed = [
            n
            for n in range(rep.compiled.trace.dag.n_nodes)
            if rep.compiled.trace.propagation.executed[n]
        ]
        assert executed, "cached round executed nothing — bad workload"
        assert probe.materialization().as_dict() == want

        for node in executed:
            svc = UpdateStreamService(
                wl.program,
                wl.edb,
                REGISTRY[name](),
                workers=4,
                chaos=ChaosPlan(fail_units=(node,), fail_round=1),
                max_round_retries=2,
            )
            svc.submit(batches[0])
            assert svc.run_round().materialization_ok  # warm, epoch 0
            svc.submit(batches[1])
            with pytest.raises(UnitExecutionError) as ei:
                svc.run_round()  # cached round, epoch 1: dies at `node`
            assert ei.value.node == node
            assert ei.value.delta_requeued is True
            assert svc.plan_cache.stats()["rollbacks"] == 1
            # retry (epoch 2) draws nothing — the latch is one-shot —
            # and must recompile from the committed baseline
            retry = svc.run_round()
            assert retry is not None and retry.materialization_ok
            assert svc.materialization().as_dict() == want, (
                f"{name}: rollback after failing unit {node} diverged"
            )


class TestQueueWait:
    def test_queue_wait_measured_from_oldest_batch(self):
        wl, svc = make_service("hybrid")
        svc.submit(wl.random_batch(1))
        time.sleep(0.05)
        svc.submit(wl.random_batch(1))
        rep = svc.run_round()
        assert rep is not None
        # latency starts after the drain; the 50ms the oldest batch sat
        # queued shows up in queue_wait_s, not latency_s
        assert rep.metrics.queue_wait_s >= 0.045

    def test_queue_wait_near_zero_for_immediate_round(self):
        wl, svc = make_service("hybrid")
        svc.submit(wl.random_batch(1))
        rep = svc.run_round()
        assert rep is not None
        assert rep.metrics.queue_wait_s < 0.05
        assert rep.metrics.queue_wait_s >= 0.0
