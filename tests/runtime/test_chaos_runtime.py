"""The chaos differential harness — the keystone of the fault layer.

Mirrors the sim chaos suite's contract on the *live* path: under any
seeded fault plan and every registered scheduler, the update-stream
service either produces materializations byte-identical to the
fault-free run, or fails cleanly with a typed error and an intact,
recoverable queue. Replaying the same seed is bit-identical (canonical
fault log, per-round success pattern, final materialization).

Everything here runs real threads: worker-lane kills, injected unit
exceptions and latency, compile/verify phase failures — with the
executor's retry machinery and the service's failed-round policy
absorbing them.
"""

from __future__ import annotations

import multiprocessing
import threading

import pytest

from repro.runtime import (
    ChaosError,
    ChaosPlan,
    HealthPolicy,
    HealthState,
    MaterializationDivergenceError,
    RoundVerificationError,
    ServiceUnavailableError,
    UnitExecutionError,
    UpdateStreamService,
    live_workload,
    process_backend_available,
)
from repro.schedulers import scheduler_registry
from repro.sim.faults import DeadlineExceededError

REGISTRY = scheduler_registry()
ROUNDS = 5

#: every typed error a chaos-stressed round may surface; anything else
#: escaping the service is a bug
TYPED_ERRORS = (
    ChaosError,
    UnitExecutionError,
    RoundVerificationError,
    MaterializationDivergenceError,
    DeadlineExceededError,
)

#: moderate blend of every fault source — enough to hit retries, lane
#: replacement, and phase failures in a handful of rounds
CHAOS_MIX = dict(
    unit_fail_prob=0.25,
    unit_latency_prob=0.15,
    unit_latency_s=(0.0003, 0.0015),
    worker_kill_prob=0.10,
    compile_fail_prob=0.05,
    verify_fail_prob=0.05,
)


def _stream(seed: int):
    """One live workload plus a pre-generated batch stream.

    Batches are generated once and shared between the fault-free and
    chaos runs — ``merge_deltas`` never mutates its inputs, so the two
    services see identical updates.
    """
    wl = live_workload("retail", seed=seed)
    return wl, [wl.random_batch() for _ in range(ROUNDS)]


def _serve(
    sched_name: str, wl, batches, chaos: ChaosPlan | None,
    executor: str = "thread",
):
    """Drive every batch through the service; absorb typed failures.

    Returns ``(service, dropped, round_ok_pattern)`` where ``dropped``
    counts deltas that exhausted the round-retry budget (surfaced on
    the exception, per the failed-round policy) and the pattern records
    each maintain attempt's success/failure for replay comparison.
    """
    svc = UpdateStreamService(
        wl.program,
        wl.edb,
        REGISTRY[sched_name](),
        workers=4,
        chaos=chaos,
        unit_retries=5,
        unit_backoff_s=0.0005,
        max_round_retries=8,
        health=HealthPolicy(degrade_after=3, fail_after=12, probe_after=1),
        executor=executor,
    )
    dropped = 0
    pattern: list[bool] = []
    for delta in batches:
        svc.submit(delta)
        while svc.pending_batches() > 0:
            try:
                svc.run_round()
                pattern.append(True)
            except ServiceUnavailableError:
                return svc, dropped, pattern
            except TYPED_ERRORS as exc:
                pattern.append(False)
                # failed-round policy: the delta is either re-queued
                # (we loop and retry) or surfaced on the exception
                assert exc.failed_delta is not None
                if not exc.delta_requeued:
                    dropped += 1
                    break
    return svc, dropped, pattern


@pytest.mark.parametrize("sched_name", sorted(REGISTRY))
def test_chaos_differential_every_scheduler(sched_name):
    """Seeded chaos vs fault-free: byte-identical final state."""
    wl, batches = _stream(seed=3)
    base, dropped0, _ = _serve(sched_name, wl, batches, chaos=None)
    assert dropped0 == 0
    chaos = ChaosPlan(seed=3, **CHAOS_MIX)
    svc, dropped, pattern = _serve(sched_name, wl, batches, chaos=chaos)
    # the plan actually fired — this is a chaos test, not a no-op
    assert svc.chaos.injected_total > 0
    if dropped == 0 and svc.health.state is not HealthState.FAILED:
        assert svc.materialization() is not None
        assert svc.materialization().as_dict() == (
            base.materialization().as_dict()
        ), f"{sched_name}: chaos run diverged from fault-free run"
        assert svc.database().as_dict() == base.database().as_dict()


@pytest.mark.parametrize("seed", (7, 11, 23))
def test_chaos_differential_seed_matrix(seed):
    """Extra fault-plan seeds on one scheduler."""
    wl, batches = _stream(seed=seed)
    base, _, _ = _serve("hybrid", wl, batches, chaos=None)
    chaos = ChaosPlan(seed=seed, **CHAOS_MIX)
    svc, dropped, _ = _serve("hybrid", wl, batches, chaos=chaos)
    if dropped == 0 and svc.health.state is not HealthState.FAILED:
        assert svc.materialization().as_dict() == (
            base.materialization().as_dict()
        )


def test_same_seed_replay_is_bit_identical():
    """Replaying a chaos seed reproduces the run exactly."""
    wl, batches = _stream(seed=5)
    chaos = ChaosPlan(seed=5, **CHAOS_MIX)
    svc_a, dropped_a, pattern_a = _serve("hybrid", wl, batches, chaos)
    svc_b, dropped_b, pattern_b = _serve("hybrid", wl, batches, chaos)
    assert pattern_a == pattern_b
    assert dropped_a == dropped_b
    assert svc_a.chaos.canonical() == svc_b.chaos.canonical()
    assert svc_a.chaos.injected_total == svc_b.chaos.injected_total
    mat_a, mat_b = svc_a.materialization(), svc_b.materialization()
    assert (mat_a is None) == (mat_b is None)
    if mat_a is not None:
        assert mat_a.as_dict() == mat_b.as_dict()


def test_unrecoverable_round_fails_typed_with_intact_queue():
    """The clean-failure arm of the keystone contract.

    Under certain-death chaos the round fails with a typed error; the
    merged delta is surfaced on the exception once the retry budget is
    gone, nothing hangs, and after the chaos clears the surfaced delta
    can be resubmitted and the service converges to the oracle.
    """
    wl = live_workload("retail", seed=9)
    batch = wl.random_batch()
    oracle = UpdateStreamService(
        wl.program, wl.edb, REGISTRY["hybrid"](), workers=4
    )
    oracle.submit(batch)
    oracle.run_round()

    svc = UpdateStreamService(
        wl.program,
        wl.edb,
        REGISTRY["hybrid"](),
        workers=4,
        chaos=ChaosPlan(seed=9, unit_fail_prob=1.0),
        unit_retries=1,
        unit_backoff_s=0.0005,
        max_round_retries=1,
        health=HealthPolicy(degrade_after=8, fail_after=9, probe_after=1),
    )
    svc.submit(batch)
    failures = []
    for _ in range(2):
        with pytest.raises(UnitExecutionError) as exc_info:
            svc.run_round()
        failures.append(exc_info.value)
    # first failure re-queued the delta, second exhausted the budget
    assert failures[0].delta_requeued is True
    assert failures[1].delta_requeued is False
    failed_delta = failures[1].failed_delta
    assert failed_delta is not None
    assert svc.pending_batches() == 0
    # EDB never advanced — the failed round left no partial state
    assert svc.database().as_dict() == wl.edb.as_dict()

    # chaos clears; the surfaced delta is resubmitted and converges
    svc.chaos = None
    svc.submit(failed_delta)
    report = svc.run_round()
    assert report is not None and report.materialization_ok
    assert svc.materialization().as_dict() == (
        oracle.materialization().as_dict()
    )


# ---------------------------------------------------------------------------
# process-backend chaos: the same keystone contract over forked lanes
# ---------------------------------------------------------------------------

needs_fork = pytest.mark.skipif(
    not process_backend_available(),
    reason="process backend needs fork-capable multiprocessing",
)


def _assert_no_leaks():
    """The process-backend no-leak guarantee, checked after every run.

    No forked worker may outlive its round (``active_children`` also
    reaps zombies), and no executor-owned thread — lanes, pump — may
    outlive the service. This is the enumerate-after-deadline pattern
    that caught the thread backend's straggler leak.
    """
    assert multiprocessing.active_children() == []
    leaked = [
        t.name
        for t in threading.enumerate()
        if t.name.startswith("repro-runtime")
    ]
    assert leaked == []


@needs_fork
def test_process_chaos_bit_identical_to_thread_chaos():
    """Chaos draws moved to the dispatch site change *nothing*.

    Thread lanes draw chaos decisions worker-side; process lanes draw
    them coordinator-side and ship them. Decisions are pure functions
    of (seed, kind, round, node, attempt), so the two backends must
    produce the same canonical fault log, the same injection count,
    the same success pattern, and the same bytes.
    """
    wl, batches = _stream(seed=5)
    chaos = ChaosPlan(seed=5, **CHAOS_MIX)
    t_svc, t_drop, t_pat = _serve("hybrid", wl, batches, chaos, "thread")
    p_svc, p_drop, p_pat = _serve("hybrid", wl, batches, chaos, "process")
    assert p_svc.chaos.injected_total == t_svc.chaos.injected_total > 0
    assert p_svc.chaos.canonical() == t_svc.chaos.canonical()
    assert (p_drop, p_pat) == (t_drop, t_pat)
    mat_t, mat_p = t_svc.materialization(), p_svc.materialization()
    assert (mat_t is None) == (mat_p is None)
    if mat_t is not None:
        assert mat_p.as_dict() == mat_t.as_dict()
    _assert_no_leaks()


@needs_fork
def test_process_same_seed_replay_is_bit_identical():
    """Replaying a chaos seed on the process backend reproduces it."""
    wl, batches = _stream(seed=13)
    chaos = ChaosPlan(seed=13, **CHAOS_MIX)
    a_svc, a_drop, a_pat = _serve("hybrid", wl, batches, chaos, "process")
    b_svc, b_drop, b_pat = _serve("hybrid", wl, batches, chaos, "process")
    assert (a_drop, a_pat) == (b_drop, b_pat)
    assert a_svc.chaos.canonical() == b_svc.chaos.canonical()
    assert a_svc.chaos.injected_total == b_svc.chaos.injected_total
    mat_a, mat_b = a_svc.materialization(), b_svc.materialization()
    assert (mat_a is None) == (mat_b is None)
    if mat_a is not None:
        assert mat_a.as_dict() == mat_b.as_dict()
    _assert_no_leaks()


@needs_fork
def test_process_unrecoverable_round_fails_typed_and_leak_free():
    """Certain-death chaos in forked lanes still fails *cleanly*.

    The injected fault is raised inside a child process, degraded to a
    portable error, pumped back, retried, and finally quarantined —
    surfacing the same typed ``UnitExecutionError`` the thread backend
    raises, with the delta surfaced and zero leaked processes after
    the aborted round tore the lanes down mid-flight.
    """
    wl = live_workload("retail", seed=9)
    batch = wl.random_batch()
    svc = UpdateStreamService(
        wl.program,
        wl.edb,
        REGISTRY["hybrid"](),
        workers=4,
        chaos=ChaosPlan(seed=9, unit_fail_prob=1.0),
        unit_retries=1,
        unit_backoff_s=0.0005,
        max_round_retries=1,
        health=HealthPolicy(degrade_after=8, fail_after=9, probe_after=1),
        executor="process",
    )
    svc.submit(batch)
    with pytest.raises(UnitExecutionError) as exc_info:
        svc.run_round()
    assert exc_info.value.delta_requeued is True
    with pytest.raises(UnitExecutionError) as exc_info:
        svc.run_round()
    assert exc_info.value.delta_requeued is False
    assert exc_info.value.failed_delta is not None
    # the failed rounds left no partial state and no stray children
    assert svc.database().as_dict() == wl.edb.as_dict()
    _assert_no_leaks()


@needs_fork
def test_process_worker_kill_is_a_real_process_death():
    """A chaos worker-kill must kill an actual forked process.

    Under a kill-heavy plan the supervisor has to absorb genuine
    ``os._exit`` deaths — respawning lanes mid-round — and the round
    must still converge to the fault-free bytes with nothing leaked.
    """
    wl, batches = _stream(seed=21)
    base, _, _ = _serve("hybrid", wl, batches, chaos=None)
    chaos = ChaosPlan(seed=21, worker_kill_prob=0.5)
    svc, dropped, _ = _serve("hybrid", wl, batches, chaos, "process")
    kills = [e for e in svc.chaos.canonical() if "kill" in str(e)]
    assert kills, "kill-heavy plan never fired a worker kill"
    assert dropped == 0
    assert svc.materialization().as_dict() == (
        base.materialization().as_dict()
    )
    _assert_no_leaks()


def test_no_chaos_path_unchanged_by_empty_plan():
    """An empty ChaosPlan must not even build an injector."""
    wl = live_workload("retail", seed=2)
    svc = UpdateStreamService(
        wl.program, wl.edb, REGISTRY["hybrid"](), chaos=ChaosPlan()
    )
    assert svc.chaos is None
    svc.submit(wl.random_batch())
    report = svc.run_round()
    assert report.materialization_ok
    assert report.metrics.injected_faults == 0
    assert report.metrics.unit_retries == 0
