"""Tests for the weighted Z-set delta representation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import (
    Database,
    Delta,
    ZSetDelta,
    apply_delta,
    apply_zdelta,
    effective_zdelta,
)

FACTS = st.tuples(st.integers(0, 5), st.integers(0, 5))


def db_from(**preds):
    db = Database()
    for pred, facts in preds.items():
        for f in facts:
            db.add_fact(pred, f)
    return db


class TestAlgebra:
    def test_zero_weights_vanish(self):
        z = ZSetDelta()
        z.add("e", (1, 2), 1)
        z.add("e", (1, 2), -1)
        assert z.is_empty
        assert z.weights == {}
        assert z.weight("e", (1, 2)) == 0

    def test_insert_delete_cancel(self):
        z = ZSetDelta()
        z.insert("e", (1, 2))
        z.delete("e", (1, 2))
        assert z.is_empty

    def test_addition_is_pointwise(self):
        a = ZSetDelta()
        a.insert("e", (1, 2))
        a.insert("e", (3, 4))
        b = ZSetDelta()
        b.delete("e", (1, 2))
        c = a + b
        assert c.weight("e", (1, 2)) == 0
        assert c.weight("e", (3, 4)) == 1
        # operands untouched
        assert a.weight("e", (1, 2)) == 1

    def test_negation_inverts(self):
        z = ZSetDelta()
        z.insert("e", (1, 2))
        z.delete("f", (0,))
        n = -z
        assert n.weight("e", (1, 2)) == -1
        assert n.weight("f", (0,)) == 1
        assert (z + n).is_empty

    def test_op_count_sums_magnitudes(self):
        z = ZSetDelta()
        z.insert("e", (1, 2))
        z.delete("e", (3, 4))
        z.delete("f", (0,))
        assert z.op_count() == 3
        assert z.touched_predicates() == {"e", "f"}
        assert z.touches("e") and not z.touches("g")

    def test_signed_views(self):
        z = ZSetDelta()
        z.insert("e", (1, 2))
        z.delete("e", (3, 4))
        assert z.positive() == {"e": {(1, 2)}}
        assert z.negative() == {"e": {(3, 4)}}


class TestDeltaConversion:
    def test_roundtrip(self):
        d = Delta().insert("e", (1, 2)).delete("e", (3, 4))
        z = ZSetDelta.from_delta(d)
        back = z.to_delta()
        assert back.insertions == {"e": {(1, 2)}}
        assert back.deletions == {"e": {(3, 4)}}

    def test_fact_in_both_raw_sets_is_insertion(self):
        # a raw-dict delta may hold a fact in both sets; apply_delta
        # deletes first, so the fact ends up present — from_delta must
        # agree
        d = Delta(
            insertions={"e": {(1, 2)}}, deletions={"e": {(1, 2)}}
        )
        z = ZSetDelta.from_delta(d)
        assert z.weight("e", (1, 2)) == 1


class TestEffective:
    def test_clamps_against_live_edb(self):
        edb = db_from(e=[(1, 2)])
        d = (
            Delta()
            .insert("e", (1, 2))   # already present → cancels
            .delete("e", (9, 9))   # absent → cancels
            .insert("e", (3, 4))   # genuinely new
        )
        z = effective_zdelta(edb, d)
        assert z.weight("e", (1, 2)) == 0
        assert z.weight("e", (9, 9)) == 0
        assert z.weight("e", (3, 4)) == 1
        assert z.op_count() == 1

    def test_apply_zdelta_matches_apply_delta(self):
        edb = db_from(e=[(1, 2), (3, 4)])
        d = Delta().delete("e", (1, 2)).insert("e", (5, 5))
        z = effective_zdelta(edb, d)
        assert (
            apply_zdelta(edb, z).as_dict() == apply_delta(edb, d).as_dict()
        )

    @given(
        base=st.sets(FACTS, max_size=8),
        ins=st.sets(FACTS, max_size=5),
        dels=st.sets(FACTS, max_size=5),
    )
    @settings(max_examples=200, deadline=None)
    def test_equivalence_property(self, base, ins, dels):
        """apply_zdelta ∘ effective_zdelta ≡ apply_delta, always."""
        edb = db_from(e=list(base))
        d = Delta()
        for f in ins:
            d.insert("e", f)
        for f in dels:
            d.delete("e", f)
        z = effective_zdelta(edb, d)
        assert (
            apply_zdelta(edb, z).as_dict() == apply_delta(edb, d).as_dict()
        )
        # effective weights never exceed ±1 and never no-op against
        # the base: +1 only for absent facts, −1 only for present ones
        for pred, fact, w in z.items():
            assert w in (-1, 1)
            assert (fact in base) == (w == -1)

    @given(base=st.sets(FACTS, max_size=8), churn=st.sets(FACTS, max_size=5))
    @settings(max_examples=100, deadline=None)
    def test_pure_churn_is_effectively_empty(self, base, churn):
        """insert+delete of the same facts clamps to the empty Z-set
        whenever the insert targets absent facts (and to pure deletion
        of the present ones otherwise) — never to spurious work."""
        edb = db_from(e=list(base))
        d = Delta()
        for f in churn:
            d.insert("e", f)
        for f in churn:
            d.delete("e", f)  # later op wins: net deletion request
        z = effective_zdelta(edb, d)
        assert set(z.positive().get("e", set())) == set()
        assert set(z.negative().get("e", set())) == churn & base
