"""Tests for the Datalog AST value classes."""

import pytest

from repro.datalog import Atom, Comparison, Constant, Literal, Rule, Variable


def test_atom_helpers():
    a = Atom("p", (Variable("X"), Constant(1)))
    assert a.arity == 2
    assert [v.name for v in a.variables()] == ["X"]
    assert not a.is_ground()
    assert Atom("q", (Constant("a"),)).is_ground()


def test_comparison_validates_op():
    with pytest.raises(ValueError):
        Comparison("<>", Variable("X"), Constant(1))


def test_literal_exactly_one_payload():
    with pytest.raises(ValueError):
        Literal()
    with pytest.raises(ValueError):
        Literal(
            atom=Atom("p", ()),
            comparison=Comparison("==", Constant(1), Constant(1)),
        )


def test_negated_comparison_rejected():
    with pytest.raises(ValueError, match="dual"):
        Literal(
            comparison=Comparison("==", Constant(1), Constant(1)),
            negated=True,
        )


def test_rule_safety_checked_on_construction():
    q = Literal(atom=Atom("q", (Variable("X"),)))
    Rule(Atom("p", (Variable("X"),)), (q,))  # fine
    with pytest.raises(ValueError, match="unsafe"):
        Rule(Atom("p", (Variable("Y"),)), (q,))


def test_body_predicates():
    r = Rule(
        Atom("p", (Variable("X"),)),
        (
            Literal(atom=Atom("q", (Variable("X"),))),
            Literal(atom=Atom("r", (Variable("X"),)), negated=True),
            Literal(
                comparison=Comparison("<", Variable("X"), Constant(3))
            ),
        ),
    )
    assert list(r.body_predicates()) == [("q", False), ("r", True)]


def test_reprs():
    r = Rule(
        Atom("p", (Variable("X"),)),
        (Literal(atom=Atom("q", (Variable("X"),))),),
    )
    assert repr(r) == "p(X) :- q(X)."
    assert repr(Rule(Atom("f", (Constant(1),)))) == "f(1)."
    assert repr(Constant("has space")) == '"has space"'
