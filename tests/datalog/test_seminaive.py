"""Tests for naive and semi-naive evaluation."""

import pytest

from repro.datalog import (
    Database,
    naive_evaluate,
    parse_program,
    seminaive_evaluate,
)


def tc_program():
    return parse_program(
        """
        path(X, Y) :- edge(X, Y).
        path(X, Z) :- path(X, Y), edge(Y, Z).
        """
    )


def chain_edb(n):
    db = Database()
    for i in range(n - 1):
        db.add_fact("edge", (i, i + 1))
    return db


class TestTransitiveClosure:
    def test_chain_closure_count(self):
        db, _ = seminaive_evaluate(tc_program(), chain_edb(6))
        assert db.count("path") == 5 * 6 // 2  # C(6,2)

    def test_matches_naive(self):
        prog, edb = tc_program(), chain_edb(8)
        assert (
            naive_evaluate(prog, edb).as_dict()
            == seminaive_evaluate(prog, edb)[0].as_dict()
        )

    def test_facts_inline_in_program(self):
        prog = parse_program(
            """
            edge(1, 2). edge(2, 3).
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- path(X, Y), edge(Y, Z).
            """
        )
        db, _ = seminaive_evaluate(prog)
        assert db.as_dict()["path"] == {(1, 2), (2, 3), (1, 3)}

    def test_iteration_count_linear_in_depth(self):
        _, trace = seminaive_evaluate(
            tc_program(), chain_edb(10), record=True
        )
        path_stratum = trace.strata.index(["path"])
        iters = len(trace.iterations[path_stratum])
        assert 8 <= iters <= 11  # fixpoint depth ≈ chain length

    def test_input_database_not_mutated(self):
        edb = chain_edb(4)
        before = edb.as_dict()
        seminaive_evaluate(tc_program(), edb)
        assert edb.as_dict() == before


class TestNegationAndComparisons:
    def test_stratified_negation(self):
        prog = parse_program(
            """
            node(1). node(2). node(3).
            edge(1, 2).
            reach(1).
            reach(Y) :- reach(X), edge(X, Y).
            unreach(X) :- node(X), !reach(X).
            """
        )
        db, _ = seminaive_evaluate(prog)
        assert db.as_dict()["unreach"] == {(3,)}

    def test_comparison_in_recursion(self):
        prog = parse_program(
            """
            num(1). num(2). num(3). num(4).
            small(X) :- num(X), X < 3.
            """
        )
        db, _ = seminaive_evaluate(prog)
        assert db.as_dict()["small"] == {(1,), (2,)}

    def test_unstratifiable_raises(self):
        prog = parse_program("win(X) :- move(X, Y), !win(Y).")
        with pytest.raises(Exception, match="negation"):
            seminaive_evaluate(prog)


class TestNonlinearRecursion:
    def test_doubling_rule(self):
        prog = parse_program(
            """
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- path(X, Y), path(Y, Z).
            """
        )
        db, trace = seminaive_evaluate(prog, chain_edb(9), record=True)
        assert db.count("path") == 8 * 9 // 2
        # nonlinear recursion converges in O(log n) delta rounds
        pi = trace.strata.index(["path"])
        assert len(trace.iterations[pi]) <= 6

    def test_mutual_recursion(self):
        prog = parse_program(
            """
            zero(0).
            succ(0, 1). succ(1, 2). succ(2, 3). succ(3, 4).
            even(X) :- zero(X).
            even(Y) :- succ(X, Y), odd(X).
            odd(Y) :- succ(X, Y), even(X).
            """
        )
        db, _ = seminaive_evaluate(prog)
        assert db.as_dict()["even"] == {(0,), (2,), (4,)}
        assert db.as_dict()["odd"] == {(1,), (3,)}


class TestEvaluationTrace:
    def test_records_produced_facts(self):
        _, trace = seminaive_evaluate(
            tc_program(), chain_edb(4), record=True
        )
        assert trace.total_tasks() > 0
        pi = trace.strata.index(["path"])
        it0 = trace.iterations[pi][0]
        produced = set().union(*it0.values())
        assert (0, 1) in produced  # the base rule fired at iteration 0
