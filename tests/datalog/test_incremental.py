"""Tests for incremental maintenance (insertion deltas + DRed)."""

import pytest

from repro.datalog import (
    Database,
    Delta,
    IncrementalEngine,
    compile_update,
    merge_deltas,
    parse_program,
    seminaive_evaluate,
)


def tc_program():
    return parse_program(
        """
        path(X, Y) :- edge(X, Y).
        path(X, Z) :- path(X, Y), edge(Y, Z).
        """
    )


def chain_edb(n):
    db = Database()
    for i in range(n - 1):
        db.add_fact("edge", (i, i + 1))
    return db


def oracle(prog, facts):
    db = Database()
    for pred, ts in facts.items():
        for t in ts:
            db.add_fact(pred, t)
    return seminaive_evaluate(prog, db)[0].as_dict()


class TestDelta:
    def test_builder_api(self):
        d = Delta().insert("e", (1, 2)).delete("e", (3, 4))
        assert d.insertions == {"e": {(1, 2)}}
        assert d.deletions == {"e": {(3, 4)}}
        assert not d.is_empty
        assert Delta().is_empty
        assert d.touched_predicates() == {"e"}


class TestDeltaNormalization:
    """The builder keeps insert/delete of the same fact netted —
    later operation wins (regression: the sets used to accumulate
    both, leaving same-batch churn to surprise apply_delta's
    deletions-first ordering)."""

    def test_insert_then_delete_is_pure_deletion(self):
        d = Delta().insert("e", (1, 2)).delete("e", (1, 2))
        assert (1, 2) not in d.insertions.get("e", set())
        assert d.deletions == {"e": {(1, 2)}}

    def test_delete_then_insert_is_pure_insertion(self):
        d = Delta().delete("e", (1, 2)).insert("e", (1, 2))
        assert (1, 2) not in d.deletions.get("e", set())
        assert d.insertions == {"e": {(1, 2)}}

    def test_insert_delete_insert_chain(self):
        d = (
            Delta()
            .insert("e", (1, 2))
            .delete("e", (1, 2))
            .insert("e", (1, 2))
        )
        assert d.insertions == {"e": {(1, 2)}}
        assert (1, 2) not in d.deletions.get("e", set())

    def test_delete_insert_delete_chain(self):
        d = (
            Delta()
            .delete("e", (1, 2))
            .insert("e", (1, 2))
            .delete("e", (1, 2))
        )
        assert d.deletions == {"e": {(1, 2)}}
        assert (1, 2) not in d.insertions.get("e", set())
        assert d.touched_predicates() == {"e"}

    def test_netted_churn_is_empty(self):
        d = Delta().insert("e", (1, 2)).delete("e", (1, 2))
        d.insert("e", (1, 2))
        d.delete("e", (1, 2))
        assert d.deletions == {"e": {(1, 2)}}
        assert not any(d.insertions.values())

    def test_merge_deltas_nets_across_batches(self):
        merged = merge_deltas(
            [
                Delta().insert("e", (1, 2)),
                Delta().delete("e", (1, 2)),
                Delta().insert("e", (3, 4)),
            ]
        )
        assert merged.insertions == {"e": {(3, 4)}}
        assert merged.deletions.get("e", set()) == {(1, 2)}

    def test_engine_handles_normalized_empty_sets(self):
        # normalization can leave an empty per-predicate set behind;
        # the engine must treat it as untouched, not zero-arity
        eng = IncrementalEngine(tc_program(), chain_edb(4))
        before = eng.snapshot()
        eng.apply(Delta().insert("edge", (9, 9)).delete("edge", (9, 9)))
        assert eng.snapshot() == before


class TestSelfCancellingCompile:
    """Satellite: a delete+reinsert delta must round-trip to a no-op —
    same materialization, same activation set, same prune decisions as
    compiling the empty delta (regression: `touched` used to be read
    off the raw delta, so cancelled predicates still invalidated
    caches and woke their dependency cones)."""

    def prog_edb(self):
        prog = tc_program()
        edb = chain_edb(5)
        return prog, edb

    def test_delete_reinsert_compiles_like_empty(self):
        prog, edb = self.prog_edb()
        churn = Delta().delete("edge", (1, 2)).insert("edge", (1, 2))
        # builder normalization nets this to a pure insertion of a
        # present fact; raw dicts preserve the both-sets shape
        raw = Delta(
            insertions={"edge": {(1, 2)}}, deletions={"edge": {(1, 2)}}
        )
        empty_cu = compile_update(prog, edb, Delta())
        for delta in (churn, raw):
            cu = compile_update(prog, edb, delta)
            assert cu.db_new.as_dict() == empty_cu.db_new.as_dict()
            assert cu.edb_new.as_dict() == edb.as_dict()
            assert cu.trace.n_active == empty_cu.trace.n_active == 0

    def test_cancelled_ops_do_not_activate(self):
        prog, edb = self.prog_edb()
        # one real op + one cancelled pair: only the real op's cone
        # may activate
        churny = (
            Delta()
            .insert("edge", (9, 10))
            .delete("edge", (2, 3))
            .insert("edge", (2, 3))
        )
        clean = Delta().insert("edge", (9, 10))
        cu_churny = compile_update(prog, edb, churny)
        cu_clean = compile_update(prog, edb, clean)
        assert cu_churny.db_new.as_dict() == cu_clean.db_new.as_dict()
        assert cu_churny.trace.n_active == cu_clean.trace.n_active


class TestInsertions:
    def test_extend_chain(self):
        eng = IncrementalEngine(tc_program(), chain_edb(5))
        assert eng.db.count("path") == 10
        eng.apply(Delta().insert("edge", (4, 5)))
        assert eng.db.count("path") == 15

    def test_duplicate_insert_noop(self):
        eng = IncrementalEngine(tc_program(), chain_edb(5))
        before = eng.snapshot()
        trace = eng.apply(Delta().insert("edge", (0, 1)))
        assert eng.snapshot() == before
        assert trace.total_changed() == 0

    def test_trace_events_recorded(self):
        eng = IncrementalEngine(tc_program(), chain_edb(5))
        trace = eng.apply(Delta().insert("edge", (4, 5)))
        assert any(e[0] == "insert" for e in trace.events)
        assert trace.net_inserted["path"] >= {(4, 5), (0, 5)}


class TestDeletions:
    def test_split_chain(self):
        eng = IncrementalEngine(tc_program(), chain_edb(6))
        eng.apply(Delta().delete("edge", (2, 3)))
        expected = oracle(
            tc_program(),
            {"edge": {(0, 1), (1, 2), (3, 4), (4, 5)}},
        )
        assert eng.snapshot()["path"] == expected["path"]

    def test_rederivation_via_alternative_path(self):
        # two routes 0→1: deleting one keeps path(0,1) derivable
        edb = Database()
        for t in [(0, 1), (0, 2), (2, 1)]:
            edb.add_fact("edge", t)
        eng = IncrementalEngine(tc_program(), edb)
        eng.apply(Delta().delete("edge", (0, 1)))
        assert (0, 1) in eng.db.relations["path"]
        expected = oracle(tc_program(), {"edge": {(0, 2), (2, 1)}})
        assert eng.snapshot()["path"] == expected["path"]

    def test_delete_missing_fact_noop(self):
        eng = IncrementalEngine(tc_program(), chain_edb(4))
        before = eng.snapshot()
        eng.apply(Delta().delete("edge", (9, 9)))
        assert eng.snapshot() == before


class TestMixedAndGuards:
    def test_insert_and_delete_together(self):
        eng = IncrementalEngine(tc_program(), chain_edb(5))
        eng.apply(Delta().insert("edge", (4, 5)).delete("edge", (1, 2)))
        expected = oracle(
            tc_program(),
            {"edge": {(0, 1), (2, 3), (3, 4), (4, 5)}},
        )
        assert eng.snapshot()["path"] == expected["path"]

    def test_updating_idb_rejected(self):
        eng = IncrementalEngine(tc_program(), chain_edb(3))
        with pytest.raises(ValueError, match="derived"):
            eng.apply(Delta().insert("path", (0, 9)))

    def test_empty_delta_noop(self):
        eng = IncrementalEngine(tc_program(), chain_edb(3))
        before = eng.snapshot()
        trace = eng.apply(Delta())
        assert trace.events == []
        assert eng.snapshot() == before


class TestWithNegation:
    def prog(self):
        return parse_program(
            """
            reach(X) :- source(X).
            reach(Y) :- reach(X), edge(X, Y).
            dead(X) :- node(X), !reach(X).
            """
        )

    def base(self):
        db = Database()
        for t in [(1, 2), (2, 3)]:
            db.add_fact("edge", t)
        for x in (1, 2, 3, 4):
            db.add_fact("node", (x,))
        db.add_fact("source", (1,))
        return db

    def test_negation_maintained_on_insert(self):
        eng = IncrementalEngine(self.prog(), self.base())
        assert eng.snapshot()["dead"] == {(4,)}
        eng.apply(Delta().insert("edge", (3, 4)))
        # full-recompute oracle
        exp = oracle(
            self.prog(),
            {
                "edge": {(1, 2), (2, 3), (3, 4)},
                "node": {(1,), (2,), (3,), (4,)},
                "source": {(1,)},
            },
        )
        assert eng.snapshot()["dead"] == exp["dead"]
        assert eng.snapshot()["reach"] == exp["reach"]
