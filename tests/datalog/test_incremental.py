"""Tests for incremental maintenance (insertion deltas + DRed)."""

import pytest

from repro.datalog import (
    Database,
    Delta,
    IncrementalEngine,
    parse_program,
    seminaive_evaluate,
)


def tc_program():
    return parse_program(
        """
        path(X, Y) :- edge(X, Y).
        path(X, Z) :- path(X, Y), edge(Y, Z).
        """
    )


def chain_edb(n):
    db = Database()
    for i in range(n - 1):
        db.add_fact("edge", (i, i + 1))
    return db


def oracle(prog, facts):
    db = Database()
    for pred, ts in facts.items():
        for t in ts:
            db.add_fact(pred, t)
    return seminaive_evaluate(prog, db)[0].as_dict()


class TestDelta:
    def test_builder_api(self):
        d = Delta().insert("e", (1, 2)).delete("e", (3, 4))
        assert d.insertions == {"e": {(1, 2)}}
        assert d.deletions == {"e": {(3, 4)}}
        assert not d.is_empty
        assert Delta().is_empty
        assert d.touched_predicates() == {"e"}


class TestInsertions:
    def test_extend_chain(self):
        eng = IncrementalEngine(tc_program(), chain_edb(5))
        assert eng.db.count("path") == 10
        eng.apply(Delta().insert("edge", (4, 5)))
        assert eng.db.count("path") == 15

    def test_duplicate_insert_noop(self):
        eng = IncrementalEngine(tc_program(), chain_edb(5))
        before = eng.snapshot()
        trace = eng.apply(Delta().insert("edge", (0, 1)))
        assert eng.snapshot() == before
        assert trace.total_changed() == 0

    def test_trace_events_recorded(self):
        eng = IncrementalEngine(tc_program(), chain_edb(5))
        trace = eng.apply(Delta().insert("edge", (4, 5)))
        assert any(e[0] == "insert" for e in trace.events)
        assert trace.net_inserted["path"] >= {(4, 5), (0, 5)}


class TestDeletions:
    def test_split_chain(self):
        eng = IncrementalEngine(tc_program(), chain_edb(6))
        eng.apply(Delta().delete("edge", (2, 3)))
        expected = oracle(
            tc_program(),
            {"edge": {(0, 1), (1, 2), (3, 4), (4, 5)}},
        )
        assert eng.snapshot()["path"] == expected["path"]

    def test_rederivation_via_alternative_path(self):
        # two routes 0→1: deleting one keeps path(0,1) derivable
        edb = Database()
        for t in [(0, 1), (0, 2), (2, 1)]:
            edb.add_fact("edge", t)
        eng = IncrementalEngine(tc_program(), edb)
        eng.apply(Delta().delete("edge", (0, 1)))
        assert (0, 1) in eng.db.relations["path"]
        expected = oracle(tc_program(), {"edge": {(0, 2), (2, 1)}})
        assert eng.snapshot()["path"] == expected["path"]

    def test_delete_missing_fact_noop(self):
        eng = IncrementalEngine(tc_program(), chain_edb(4))
        before = eng.snapshot()
        eng.apply(Delta().delete("edge", (9, 9)))
        assert eng.snapshot() == before


class TestMixedAndGuards:
    def test_insert_and_delete_together(self):
        eng = IncrementalEngine(tc_program(), chain_edb(5))
        eng.apply(Delta().insert("edge", (4, 5)).delete("edge", (1, 2)))
        expected = oracle(
            tc_program(),
            {"edge": {(0, 1), (2, 3), (3, 4), (4, 5)}},
        )
        assert eng.snapshot()["path"] == expected["path"]

    def test_updating_idb_rejected(self):
        eng = IncrementalEngine(tc_program(), chain_edb(3))
        with pytest.raises(ValueError, match="derived"):
            eng.apply(Delta().insert("path", (0, 9)))

    def test_empty_delta_noop(self):
        eng = IncrementalEngine(tc_program(), chain_edb(3))
        before = eng.snapshot()
        trace = eng.apply(Delta())
        assert trace.events == []
        assert eng.snapshot() == before


class TestWithNegation:
    def prog(self):
        return parse_program(
            """
            reach(X) :- source(X).
            reach(Y) :- reach(X), edge(X, Y).
            dead(X) :- node(X), !reach(X).
            """
        )

    def base(self):
        db = Database()
        for t in [(1, 2), (2, 3)]:
            db.add_fact("edge", t)
        for x in (1, 2, 3, 4):
            db.add_fact("node", (x,))
        db.add_fact("source", (1,))
        return db

    def test_negation_maintained_on_insert(self):
        eng = IncrementalEngine(self.prog(), self.base())
        assert eng.snapshot()["dead"] == {(4,)}
        eng.apply(Delta().insert("edge", (3, 4)))
        # full-recompute oracle
        exp = oracle(
            self.prog(),
            {
                "edge": {(1, 2), (2, 3), (3, 4)},
                "node": {(1,), (2,), (3,), (4,)},
                "source": {(1,)},
            },
        )
        assert eng.snapshot()["dead"] == exp["dead"]
        assert eng.snapshot()["reach"] == exp["reach"]
