"""Corner cases of ``Rule.range_restriction`` and ``bound_variables``.

The safety check (``_check_safety``) derives its error messages from
``range_restriction``; these tests pin the public method directly,
including rules that can only be *built* unchecked (``check=False``).
"""

import pytest

from repro.datalog import parse_program, parse_program_lenient
from repro.datalog.ast import (
    Atom,
    Comparison,
    Constant,
    Literal,
    Rule,
    Variable,
)


def _rule(src: str) -> Rule:
    program, errors = parse_program_lenient(src)
    assert not errors
    return program.rules[0]


def test_safe_rule_has_no_violations():
    r = _rule("p(X, Y) :- q(X), r(X, Y).")
    assert r.range_restriction() == []


def test_head_variable_bound_only_in_negated_atom():
    r = _rule("p(X, Y) :- q(X), !r(Y).")
    names = [name for name, _lit in r.range_restriction()]
    # Y is unsafe twice over: unbound in the head and in the negation
    assert names == ["Y", "Y"]
    head_viol, body_viol = r.range_restriction()
    assert head_viol[1] is None
    assert body_viol[1].negated


def test_variable_bound_only_in_comparison():
    r = _rule("p(X) :- q(X), Y < X.")
    [(name, lit)] = r.range_restriction()
    assert name == "Y" and lit.is_comparison


def test_comparison_only_body():
    r = Rule(
        head=Atom("p", (Constant(1),)),
        body=(
            Literal(
                comparison=Comparison("<", Variable("X"), Variable("Y"))
            ),
        ),
        check=False,
    )
    names = sorted(name for name, _lit in r.range_restriction())
    assert names == ["X", "Y"]


def test_head_constants_need_no_binding():
    r = _rule("p(1, X) :- q(X).")
    assert r.range_restriction() == []


def test_zero_arity_predicates():
    r = _rule("tick :- tock, !gone.")
    assert r.range_restriction() == []


def test_non_ground_fact_is_a_head_violation():
    r = Rule(head=Atom("p", (Variable("X"),)), body=(), check=False)
    [(name, lit)] = r.range_restriction()
    assert name == "X" and lit is None


def test_assignment_chain_counts_as_bound():
    r = _rule("p(X, Z) :- q(X), Y = X + 1, Z = Y * 2.")
    assert r.range_restriction() == []
    assert {"X", "Y", "Z"} <= r.bound_variables()


def test_assignment_with_unbound_input():
    r = _rule("p(X) :- q(X), Y = W + 1.")
    [(name, lit)] = r.range_restriction()
    assert name == "W" and lit.is_assignment


def test_bound_variables_ignores_negation_and_comparisons():
    r = _rule("p(X) :- q(X), !r(Y), X < Z.")
    assert r.bound_variables() == {"X"}


def test_checked_construction_still_raises():
    with pytest.raises(ValueError, match="unsafe"):
        parse_program("p(X, Y) :- q(X).")


def test_violations_ordered_head_first_then_body_order():
    r = _rule("p(A, B) :- q(X), !r(A), !s(B).")
    viols = r.range_restriction()
    # A and B head violations first (lit None), then body in order
    assert [v[1] is None for v in viols] == [True, True, False, False]
    assert [v[0] for v in viols] == ["A", "B", "A", "B"]
