"""Compiler correctness under repeated updates.

The service recompiles the activation set every round against the
accumulated EDB. These properties drive compile → apply → compile again
over random update sequences and check, at every step, that

* the compiled databases chain (round *i*'s new state is round
  *i+1*'s old state),
* the compiled activation flags equal the *real* per-node output diffs
  of an execution plan (the :mod:`repro.tasks.activation` ground truth
  the simulator propagates is derived from exactly these flags), and
* the propagated executed set ``W`` is *sufficient*: running only its
  nodes, with every skipped node keeping its old value, reproduces the
  new materialization byte-identically.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import apply_delta, seminaive_evaluate
from repro.datalog.compiler import compile_update
from repro.datalog.units import build_execution_plan
from repro.runtime.workloads_live import live_workload


def check_round(cu):
    """One compiled round against its execution-plan ground truth."""
    plan = build_execution_plan(cu)
    values, diffs = plan.execute_serial()
    assert plan.materialization(values).as_dict() == cu.db_new.as_dict()
    dag = cu.trace.dag
    for node, changed in diffs.items():
        lo, hi = dag.out_edge_range(node)
        if hi > lo:
            assert bool(cu.trace.changed_edges[lo]) == changed
    # sufficiency of W: a node the propagation deactivates may still
    # have a changed *potential* output (e.g. a boundary-iteration task
    # whose old evaluation stopped one fixpoint round earlier), but
    # skipping it must not change where the round lands
    executed = cu.trace.propagation.executed
    sparse = plan.new_store()
    for node in np.argsort(cu.trace.levels, kind="stable"):
        if executed[int(node)]:
            unit = plan.units[int(node)]
            sparse.set(unit.node, unit.execute(sparse))
    assert plan.materialization(sparse).as_dict() == cu.db_new.as_dict()


def run_sequence(workload_name: str, seed: int, sizes: list[int]) -> None:
    wl = live_workload(workload_name, seed=seed)
    edb = wl.edb
    prev_db_new = None
    for size in sizes:
        delta = wl.random_batch(size)
        cu = compile_update(wl.program, edb, delta)
        # EDB chaining: compiled new state == delta applied to old state
        assert cu.edb_new.as_dict() == apply_delta(edb, delta).as_dict()
        if prev_db_new is not None:
            assert cu.db_old.as_dict() == prev_db_new.as_dict()
        # agreement with from-scratch evaluation of the new EDB
        scratch, _ = seminaive_evaluate(wl.program, cu.edb_new)
        assert cu.db_new.as_dict() == scratch.as_dict()
        check_round(cu)
        edb = cu.edb_new
        prev_db_new = cu.db_new


@given(
    seed=st.integers(0, 2**16),
    sizes=st.lists(st.integers(1, 4), min_size=2, max_size=4),
)
@settings(max_examples=10, deadline=None)
def test_repeated_updates_retail(seed, sizes):
    run_sequence("retail", seed, sizes)


@given(
    seed=st.integers(0, 2**16),
    sizes=st.lists(st.integers(1, 4), min_size=2, max_size=4),
)
@settings(max_examples=10, deadline=None)
def test_repeated_updates_tc(seed, sizes):
    run_sequence("tc", seed, sizes)


def test_long_sequence_smoke():
    """A longer deterministic chain on the aggregate-heavy workload."""
    run_sequence("analytics", seed=42, sizes=[2] * 6)
