"""Tests for the predicate dependency graph and stratification."""

import pytest

from repro.datalog import DependencyGraph, StratificationError, parse_program
from repro.datalog.depgraph import condensation_sccs


class TestSccs:
    def test_linear_chain(self):
        sccs = condensation_sccs(
            ["a", "b", "c"], {"a": {"b"}, "b": {"c"}}
        )
        assert sccs == [["a"], ["b"], ["c"]]

    def test_cycle_grouped(self):
        sccs = condensation_sccs(
            ["a", "b", "c"], {"a": {"b"}, "b": {"a", "c"}}
        )
        assert ["a", "b"] in sccs
        assert sccs.index(["a", "b"]) < sccs.index(["c"])

    def test_dependency_order(self):
        # x -> y, x -> z, y -> z
        sccs = condensation_sccs(
            ["x", "y", "z"], {"x": {"y", "z"}, "y": {"z"}}
        )
        order = {c[0]: i for i, c in enumerate(sccs)}
        assert order["x"] < order["y"] < order["z"]

    def test_matches_networkx(self):
        nx = pytest.importorskip("networkx")
        import random

        rnd = random.Random(0)
        for _ in range(20):
            n = rnd.randint(2, 12)
            nodes = [f"n{i}" for i in range(n)]
            edges: dict[str, set[str]] = {}
            for _e in range(rnd.randint(0, 3 * n)):
                u, v = rnd.choice(nodes), rnd.choice(nodes)
                if u != v:
                    edges.setdefault(u, set()).add(v)
            ours = condensation_sccs(nodes, edges)
            g = nx.DiGraph()
            g.add_nodes_from(nodes)
            for u, vs in edges.items():
                g.add_edges_from((u, v) for v in vs)
            theirs = {frozenset(c) for c in nx.strongly_connected_components(g)}
            assert {frozenset(c) for c in ours} == theirs
            # dependency order: every edge goes to same-or-later SCC
            pos = {p: i for i, c in enumerate(ours) for p in c}
            for u, vs in edges.items():
                for v in vs:
                    assert pos[u] <= pos[v]


class TestStratification:
    def test_tc_strata(self):
        prog = parse_program(
            """
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- path(X, Y), edge(Y, Z).
            """
        )
        dg = DependencyGraph(prog)
        strata = dg.stratify()
        assert strata.index(["edge"]) < strata.index(["path"])
        assert dg.recursive_predicates() == {"path"}
        assert dg.is_stratifiable()

    def test_mutual_recursion_one_stratum(self):
        prog = parse_program(
            """
            even(X) :- zero(X).
            even(Y) :- succ(X, Y), odd(X).
            odd(Y) :- succ(X, Y), even(X).
            """
        )
        dg = DependencyGraph(prog)
        strata = dg.stratify()
        assert ["even", "odd"] in strata
        assert dg.recursive_predicates() == {"even", "odd"}

    def test_stratified_negation_ok(self):
        prog = parse_program(
            """
            reach(X) :- source(X).
            reach(Y) :- reach(X), edge(X, Y).
            unreach(X) :- node(X), !reach(X).
            """
        )
        dg = DependencyGraph(prog)
        strata = dg.stratify()
        assert strata.index(["reach"]) < strata.index(["unreach"])

    def test_negation_in_cycle_rejected(self):
        prog = parse_program(
            """
            win(X) :- move(X, Y), !win(Y).
            """
        )
        dg = DependencyGraph(prog)
        assert not dg.is_stratifiable()
        with pytest.raises(StratificationError):
            dg.stratify()

    def test_nonrecursive_program(self):
        prog = parse_program("q(X) :- p(X).")
        dg = DependencyGraph(prog)
        assert dg.recursive_predicates() == set()
