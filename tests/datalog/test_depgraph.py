"""Tests for the predicate dependency graph and stratification."""

import pytest

from repro.datalog import DependencyGraph, StratificationError, parse_program
from repro.datalog.depgraph import condensation_sccs


class TestSccs:
    def test_linear_chain(self):
        sccs = condensation_sccs(
            ["a", "b", "c"], {"a": {"b"}, "b": {"c"}}
        )
        assert sccs == [["a"], ["b"], ["c"]]

    def test_cycle_grouped(self):
        sccs = condensation_sccs(
            ["a", "b", "c"], {"a": {"b"}, "b": {"a", "c"}}
        )
        assert ["a", "b"] in sccs
        assert sccs.index(["a", "b"]) < sccs.index(["c"])

    def test_dependency_order(self):
        # x -> y, x -> z, y -> z
        sccs = condensation_sccs(
            ["x", "y", "z"], {"x": {"y", "z"}, "y": {"z"}}
        )
        order = {c[0]: i for i, c in enumerate(sccs)}
        assert order["x"] < order["y"] < order["z"]

    def test_matches_networkx(self):
        nx = pytest.importorskip("networkx")
        import random

        rnd = random.Random(0)
        for _ in range(20):
            n = rnd.randint(2, 12)
            nodes = [f"n{i}" for i in range(n)]
            edges: dict[str, set[str]] = {}
            for _e in range(rnd.randint(0, 3 * n)):
                u, v = rnd.choice(nodes), rnd.choice(nodes)
                if u != v:
                    edges.setdefault(u, set()).add(v)
            ours = condensation_sccs(nodes, edges)
            g = nx.DiGraph()
            g.add_nodes_from(nodes)
            for u, vs in edges.items():
                g.add_edges_from((u, v) for v in vs)
            theirs = {frozenset(c) for c in nx.strongly_connected_components(g)}
            assert {frozenset(c) for c in ours} == theirs
            # dependency order: every edge goes to same-or-later SCC
            pos = {p: i for i, c in enumerate(ours) for p in c}
            for u, vs in edges.items():
                for v in vs:
                    assert pos[u] <= pos[v]


class TestStratification:
    def test_tc_strata(self):
        prog = parse_program(
            """
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- path(X, Y), edge(Y, Z).
            """
        )
        dg = DependencyGraph(prog)
        strata = dg.stratify()
        assert strata.index(["edge"]) < strata.index(["path"])
        assert dg.recursive_predicates() == {"path"}
        assert dg.is_stratifiable()

    def test_mutual_recursion_one_stratum(self):
        prog = parse_program(
            """
            even(X) :- zero(X).
            even(Y) :- succ(X, Y), odd(X).
            odd(Y) :- succ(X, Y), even(X).
            """
        )
        dg = DependencyGraph(prog)
        strata = dg.stratify()
        assert ["even", "odd"] in strata
        assert dg.recursive_predicates() == {"even", "odd"}

    def test_stratified_negation_ok(self):
        prog = parse_program(
            """
            reach(X) :- source(X).
            reach(Y) :- reach(X), edge(X, Y).
            unreach(X) :- node(X), !reach(X).
            """
        )
        dg = DependencyGraph(prog)
        strata = dg.stratify()
        assert strata.index(["reach"]) < strata.index(["unreach"])

    def test_negation_in_cycle_rejected(self):
        prog = parse_program(
            """
            win(X) :- move(X, Y), !win(Y).
            """
        )
        dg = DependencyGraph(prog)
        assert not dg.is_stratifiable()
        with pytest.raises(StratificationError):
            dg.stratify()

    def test_nonrecursive_program(self):
        prog = parse_program("q(X) :- p(X).")
        dg = DependencyGraph(prog)
        assert dg.recursive_predicates() == set()


class TestNegationCycleWitnesses:
    """``negation_cycles`` names the offending path; ``stratify``'s
    error message embeds it."""

    def test_self_negation_cycle(self):
        dg = DependencyGraph(
            parse_program("win(X) :- move(X, Y), !win(Y).")
        )
        [(cycle, kind)] = dg.negation_cycles()
        assert cycle == ["win", "win"]
        assert kind == "negation"

    def test_error_message_names_the_cycle_path(self):
        prog = parse_program(
            """
            p(X) :- r(X), !q(X).
            q(X) :- p(X).
            """
        )
        with pytest.raises(StratificationError) as exc_info:
            DependencyGraph(prog).stratify()
        msg = str(exc_info.value)
        assert "inside its own recursive" in msg
        assert "'p' -> 'q' -> 'p'" in msg

    def test_mutual_negation_reports_both_edges(self):
        prog = parse_program(
            """
            odd(X) :- succ(Y, X), !even(Y).
            even(X) :- succ(Y, X), !odd(Y).
            """
        )
        cycles = DependencyGraph(prog).negation_cycles()
        assert len(cycles) == 2
        assert {tuple(c) for c, _k in cycles} == {
            ("even", "odd", "even"),
            ("odd", "even", "odd"),
        }

    def test_negation_through_comparison_literals(self):
        # comparisons add no dependency edges: the negative edge still
        # closes the cycle even with filters interleaved
        prog = parse_program(
            """
            big(X) :- val(X), X > 10, !small(X).
            small(X) :- big(X), X < 100.
            """
        )
        dg = DependencyGraph(prog)
        assert not dg.is_stratifiable()
        [(cycle, kind)] = dg.negation_cycles()
        assert kind == "negation"
        assert cycle[0] == cycle[-1]
        assert set(cycle) == {"big", "small"}

    def test_aggregate_edge_inside_cycle(self):
        prog = parse_program(
            """
            total(sum(X)) :- val(X).
            val(Y) :- total(Y).
            """
        )
        dg = DependencyGraph(prog)
        assert not dg.is_stratifiable()
        [(cycle, kind)] = dg.negation_cycles()
        assert kind == "aggregation"
        with pytest.raises(StratificationError, match="aggregation"):
            dg.stratify()

    def test_stratifiable_program_has_no_cycles(self):
        prog = parse_program(
            """
            reach(X) :- source(X).
            reach(Y) :- reach(X), edge(X, Y).
            unreach(X) :- node(X), !reach(X).
            """
        )
        assert DependencyGraph(prog).negation_cycles() == []

    def test_long_cycle_path_is_a_real_walk(self):
        prog = parse_program(
            """
            a(X) :- d(X), !b(X).
            b(X) :- c(X).
            c(X) :- a(X).
            """
        )
        [(cycle, kind)] = DependencyGraph(prog).negation_cycles()
        assert kind == "negation"
        assert cycle[0] == cycle[-1]
        # consecutive nodes are real dependency edges
        deps = {("a", "b"), ("b", "c"), ("c", "a")}
        edges = list(zip(cycle, cycle[1:]))
        assert all((dst, src) in deps or (src, dst) in deps
                   for src, dst in edges)
