"""Tests for the Datalog parser."""

import pytest

from repro.datalog import (
    Atom,
    Constant,
    ParseError,
    Variable,
    parse_program,
    parse_rule,
)


class TestFacts:
    def test_ground_fact(self):
        r = parse_rule("edge(1, 2).")
        assert r.is_fact
        assert r.head == Atom("edge", (Constant(1), Constant(2)))

    def test_symbol_and_string_constants(self):
        r = parse_rule('likes(alice, "Bob Smith").')
        assert r.head.terms == (Constant("alice"), Constant("Bob Smith"))

    def test_zero_arity(self):
        r = parse_rule("tick.")
        assert r.head == Atom("tick", ())

    def test_nonground_fact_rejected(self):
        with pytest.raises(ParseError, match="ground"):
            parse_rule("edge(X, 2).")


class TestRules:
    def test_simple_rule(self):
        r = parse_rule("path(X, Y) :- edge(X, Y).")
        assert not r.is_fact
        assert r.head.predicate == "path"
        assert [l.atom.predicate for l in r.body] == ["edge"]
        assert r.head.terms == (Variable("X"), Variable("Y"))

    def test_multi_literal_body(self):
        r = parse_rule("path(X, Z) :- path(X, Y), edge(Y, Z).")
        assert len(r.body) == 2

    def test_negated_literal(self):
        r = parse_rule("alive(X) :- person(X), !dead(X).")
        assert r.body[1].negated

    def test_comparison_literal(self):
        r = parse_rule("adult(X) :- age(X, A), A >= 18.")
        cmp_ = r.body[1].comparison
        assert cmp_.op == ">="
        assert cmp_.right == Constant(18)

    def test_not_equal_between_vars(self):
        r = parse_rule("sib(X, Y) :- par(P, X), par(P, Y), X != Y.")
        assert r.body[2].comparison.op == "!="

    def test_unsafe_head_var_rejected(self):
        with pytest.raises(ParseError, match="unsafe"):
            parse_rule("p(X, Y) :- q(X).")

    def test_unsafe_negation_rejected(self):
        with pytest.raises(ParseError, match="unsafe"):
            parse_rule("p(X) :- q(X), !r(Y).")

    def test_unsafe_comparison_rejected(self):
        with pytest.raises(ParseError, match="unsafe"):
            parse_rule("p(X) :- q(X), Y < 3.")


class TestPrograms:
    def test_program_roundtrip(self):
        text = """
        % transitive closure
        edge(1, 2). edge(2, 3).
        path(X, Y) :- edge(X, Y).
        path(X, Z) :- path(X, Y), edge(Y, Z).
        """
        prog = parse_program(text)
        assert len(prog) == 4
        assert prog.predicates() == {"edge", "path"}
        assert prog.idb_predicates() == {"path"}
        assert prog.edb_predicates() == {"edge"}
        assert len(prog.rules_for("path")) == 2
        assert len(prog.facts) == 2

    def test_empty_program(self):
        assert len(parse_program("")) == 0

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ParseError, match="arit"):
            parse_program("p(1). p(1, 2).")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("p(1). extra")

    def test_missing_period_rejected(self):
        with pytest.raises(ParseError):
            parse_program("p(1)")

    def test_unbalanced_paren_rejected(self):
        with pytest.raises(ParseError):
            parse_program("p(1.")

    def test_repr_is_parseable(self):
        prog = parse_program("p(X) :- q(X), !r(X).\nq(1).")
        again = parse_program(repr(prog))
        assert repr(again) == repr(prog)
