"""Tests for arithmetic assignments (``X = Y + 1``)."""

import pytest

from repro.datalog import (
    Database,
    ParseError,
    naive_evaluate,
    parse_program,
    parse_rule,
    seminaive_evaluate,
)
from repro.datalog.ast import Assignment, Constant, Variable


class TestParsing:
    def test_assignment_with_op(self):
        r = parse_rule("next(X, Y) :- num(X), Y = X + 1.")
        a = r.body[1].assignment
        assert a.target == Variable("Y")
        assert a.op == "+"
        assert a.right == Constant(1)

    def test_plain_copy_assignment(self):
        r = parse_rule("c(X, Y) :- v(X), Y = X.")
        assert r.body[1].assignment.op is None

    def test_all_arith_ops(self):
        for op in ("+", "-", "*"):
            r = parse_rule(f"t(X, Y) :- v(X), Y = X {op} 2.")
            assert r.body[1].assignment.op == op

    def test_negative_literal_still_lexes(self):
        r = parse_rule("p(-5).")
        assert r.head.terms == (Constant(-5),)

    def test_subtraction_requires_spacing(self):
        # "X - 5" is subtraction; "-5" is a negative literal
        r = parse_rule("t(X, Y) :- v(X), Y = X - 5.")
        assert r.body[1].assignment.op == "-"

    def test_constant_target_rejected(self):
        with pytest.raises(ParseError, match="target"):
            parse_rule("t(X) :- v(X), 3 = X.")

    def test_unbound_input_rejected(self):
        with pytest.raises(ParseError, match="unsafe"):
            parse_rule("t(X, Y) :- v(X), Y = Z + 1.")

    def test_bare_arith_rejected(self):
        with pytest.raises(ParseError, match="arithmetic"):
            parse_rule("t(X) :- v(X), X + 1.")

    def test_repr_roundtrip(self):
        text = "next(X, Y) :- num(X), Y = X + 1."
        assert repr(parse_rule(text)) == text

    def test_ast_validation(self):
        with pytest.raises(ValueError, match="together"):
            Assignment(Variable("X"), Constant(1), op="+")
        with pytest.raises(ValueError, match="unknown arithmetic"):
            Assignment(Variable("X"), Constant(1), "/", Constant(2))


class TestEvaluation:
    def test_successor(self):
        prog = parse_program(
            """
            num(1). num(2).
            next(X, Y) :- num(X), Y = X + 1.
            """
        )
        db, _ = seminaive_evaluate(prog)
        assert db.as_dict()["next"] == {(1, 2), (2, 3)}

    def test_assignment_as_equality_filter(self):
        # Y already bound by an atom: the assignment filters
        prog = parse_program(
            """
            e(1, 2). e(2, 4). e(3, 4).
            double(X, Y) :- e(X, Y), Y = X * 2.
            """
        )
        db, _ = seminaive_evaluate(prog)
        assert db.as_dict()["double"] == {(1, 2), (2, 4)}

    def test_chained_assignments(self):
        prog = parse_program(
            """
            v(3).
            t(X, Z) :- v(X), Y = X + 1, Z = Y * 2.
            """
        )
        db, _ = seminaive_evaluate(prog)
        assert db.as_dict()["t"] == {(3, 8)}

    def test_distance_counting(self):
        """Path lengths via arithmetic — bounded by a comparison."""
        prog = parse_program(
            """
            edge(a, b). edge(b, c). edge(c, d).
            dist(a, 0).
            dist(Y, D2) :- dist(X, D), edge(X, Y), D2 = D + 1, D < 10.
            """
        )
        db, _ = seminaive_evaluate(prog)
        assert ("d", 3) in db.as_dict()["dist"]

    def test_naive_matches_seminaive(self):
        prog = parse_program(
            """
            edge(1, 2). edge(2, 3).
            dist(1, 0).
            dist(Y, D2) :- dist(X, D), edge(X, Y), D2 = D + 1, D < 5.
            """
        )
        edb = Database()
        assert (
            naive_evaluate(prog, edb).as_dict()
            == seminaive_evaluate(prog, edb)[0].as_dict()
        )

    def test_divergent_fixpoint_guard(self):
        prog = parse_program(
            """
            n(0).
            n(Y) :- n(X), Y = X + 1.
            """
        )
        with pytest.raises(RuntimeError, match="exceeded"):
            seminaive_evaluate(prog, max_iterations=50)
        with pytest.raises(RuntimeError, match="exceeded"):
            naive_evaluate(prog, max_iterations=50)

    def test_query_with_assignment(self):
        from repro.datalog import query_facts

        prog = parse_program("num(2). num(5).")
        db, _ = seminaive_evaluate(prog)
        rows = query_facts(db, "num(X), Y = X * 10")
        assert {(r["X"], r["Y"]) for r in rows} == {(2, 20), (5, 50)}
