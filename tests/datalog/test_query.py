"""Tests for the goal/query interface."""

import pytest

from repro.datalog import parse_program, seminaive_evaluate
from repro.datalog.parser import ParseError
from repro.datalog.query import parse_goal, query_facts


@pytest.fixture(scope="module")
def db():
    prog = parse_program(
        """
        edge(1, 2). edge(2, 3). edge(3, 4).
        red(2).
        path(X, Y) :- edge(X, Y).
        path(X, Z) :- path(X, Y), edge(Y, Z).
        """
    )
    return seminaive_evaluate(prog)[0]


def test_single_goal(db):
    rows = query_facts(db, "path(1, X)")
    assert sorted(r["X"] for r in rows) == [2, 3, 4]


def test_conjunction_with_comparison(db):
    rows = query_facts(db, "path(1, X), X > 2")
    assert sorted(r["X"] for r in rows) == [3, 4]


def test_negation(db):
    rows = query_facts(db, "path(1, X), !red(X)")
    assert sorted(r["X"] for r in rows) == [3, 4]


def test_join_goal(db):
    rows = query_facts(db, "edge(X, Y), edge(Y, Z)")
    assert {(r["X"], r["Y"], r["Z"]) for r in rows} == {
        (1, 2, 3),
        (2, 3, 4),
    }


def test_ground_goal(db):
    assert query_facts(db, "path(1, 4)") == [{}]
    assert query_facts(db, "path(4, 1)") == []


def test_trailing_period_tolerated(db):
    assert len(query_facts(db, "path(1, X).")) == 3


def test_duplicates_collapsed(db):
    # path(1,3) via two different rule firings is still one answer
    rows = query_facts(db, "path(X, Y)")
    assert len(rows) == len({(r["X"], r["Y"]) for r in rows})


def test_unsafe_goal_rejected(db):
    with pytest.raises(ParseError, match="unsafe"):
        parse_goal("!red(X)")
    with pytest.raises(ParseError, match="unsafe"):
        parse_goal("edge(X, Y), Z > 1")


def test_trailing_garbage_rejected(db):
    with pytest.raises(ParseError, match="trailing"):
        parse_goal("edge(X, Y) edge")
