"""Tests for counting-based incremental maintenance."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import Database, Delta, IncrementalEngine, parse_program
from repro.datalog.counting import CountingEngine, RecursionError_

JOIN2 = """
t(X, Z) :- e(X, Y), e(Y, Z).
"""

DIAMOND = """
left(X, Y) :- e(X, Y), color(X).
right(X, Y) :- e(X, Y), color(Y).
both(X, Y) :- left(X, Y), right(X, Y).
"""

NEG = """
lit(X) :- node(X), flag(X).
dark(X) :- node(X), !lit(X).
"""


def edb_from(**preds):
    db = Database()
    for name, facts in preds.items():
        for f in facts:
            db.add_fact(name, f)
    return db


class TestBasics:
    def test_recursive_program_rejected(self):
        prog = parse_program(
            "p(X, Y) :- e(X, Y). p(X, Z) :- p(X, Y), e(Y, Z)."
        )
        with pytest.raises(RecursionError_):
            CountingEngine(prog)

    def test_updating_idb_rejected(self):
        eng = CountingEngine(parse_program(JOIN2), edb_from(e={(1, 2)}))
        with pytest.raises(ValueError, match="derived"):
            eng.apply(Delta().insert("t", (0, 0)))

    def test_counts_multiple_derivations(self):
        # t(1,3) via y=2 and via y=9: two derivations
        eng = CountingEngine(
            parse_program(JOIN2),
            edb_from(e={(1, 2), (2, 3), (1, 9), (9, 3)}),
        )
        assert eng.count_of("t", (1, 3)) == 2
        # deleting one derivation keeps the fact
        eng.apply(Delta().delete("e", (1, 2)))
        assert eng.count_of("t", (1, 3)) == 1
        assert (1, 3) in eng.db.relations["t"]
        # deleting the second removes it
        eng.apply(Delta().delete("e", (9, 3)))
        assert eng.count_of("t", (1, 3)) == 0
        assert (1, 3) not in eng.db.relations["t"]

    def test_self_join_no_double_count(self):
        # e(1,1): t(1,1) derived once through the self-pair
        eng = CountingEngine(parse_program(JOIN2), edb_from(e={(1, 1)}))
        assert eng.count_of("t", (1, 1)) == 1
        eng.apply(Delta().delete("e", (1, 1)))
        assert eng.snapshot()["t"] == set()

    def test_empty_delta(self):
        eng = CountingEngine(parse_program(JOIN2), edb_from(e={(1, 2)}))
        assert eng.apply(Delta()).total_changed() == 0


class TestAgainstDRed:
    edge_sets = st.sets(
        st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=10
    )

    @given(initial=edge_sets, ins=edge_sets, dels=edge_sets)
    @settings(max_examples=40, deadline=None)
    def test_join2_matches_dred(self, initial, ins, dels):
        prog = parse_program(JOIN2)
        ce = CountingEngine(prog, edb_from(e=initial))
        de = IncrementalEngine(prog, edb_from(e=initial))
        d = Delta()
        for f in dels:
            d.delete("e", f)
        for f in ins:
            d.insert("e", f)
        if d.is_empty:
            return
        ce.apply(d)
        de.apply(d)
        assert ce.snapshot() == de.snapshot()

    @given(
        edges=edge_sets,
        colors=st.sets(st.integers(0, 5), max_size=4),
        update=st.tuples(
            st.booleans(),
            st.sampled_from(["e", "color"]),
            st.integers(0, 5),
            st.integers(0, 5),
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_diamond_matches_dred(self, edges, colors, update):
        prog = parse_program(DIAMOND)
        edb = edb_from(e=edges, color={(c,) for c in colors})
        ce = CountingEngine(prog, edb)
        de = IncrementalEngine(prog, edb)
        is_insert, pred, a, b = update
        fact = (a, b) if pred == "e" else (a,)
        d = Delta()
        (d.insert if is_insert else d.delete)(pred, fact)
        ce.apply(d)
        de.apply(d)
        assert ce.snapshot() == de.snapshot()

    @given(
        nodes=st.sets(st.integers(0, 5), min_size=1, max_size=6),
        flags=st.sets(st.integers(0, 5), max_size=4),
        update=st.tuples(st.booleans(), st.integers(0, 5)),
    )
    @settings(max_examples=40, deadline=None)
    def test_negation_matches_dred(self, nodes, flags, update):
        prog = parse_program(NEG)
        edb = edb_from(
            node={(n,) for n in nodes}, flag={(f,) for f in flags}
        )
        ce = CountingEngine(prog, edb)
        de = IncrementalEngine(prog, edb)
        is_insert, x = update
        d = Delta()
        (d.insert if is_insert else d.delete)("flag", (x,))
        ce.apply(d)
        de.apply(d)
        assert ce.snapshot() == de.snapshot()

    def test_deletion_reenables_negated_subgoal(self):
        """Regression for the two-view negation approximation: one
        update deletes both a flag (turning a node dark) and the
        node's companion fact, in the same pass. The negated subgoal
        !lit(x) flips mid-update; the old signed two-pass propagation
        raced the flip and drove the dark-counter negative."""
        prog = parse_program(
            """
            h(X) :- c(X), !d(X).
            d(X) :- e(X), !b(X).
            """
        )
        edb = edb_from(b={(2,)}, e={(2,)}, c={(1,)})
        ce = CountingEngine(prog, edb)
        de = IncrementalEngine(prog, edb)
        # delete b(2): d(2) appears; delete c(1): h(1) loses support —
        # both directions in one update, crossing the negation
        d = Delta().delete("b", (2,)).delete("c", (1,))
        ce.apply(d)
        de.apply(d)
        assert ce.snapshot() == de.snapshot()
        assert ce.count_of("h", (1,)) == 0
        # re-adding c(1) must restore h(1) from a clean count
        d2 = Delta().insert("c", (1,))
        ce.apply(d2)
        de.apply(d2)
        assert ce.snapshot() == de.snapshot()
        assert ce.count_of("h", (1,)) == 1

    @given(
        b0=st.sets(st.integers(0, 3), max_size=3),
        e0=st.sets(st.integers(0, 3), max_size=3),
        c0=st.sets(st.integers(0, 3), max_size=3),
        seq=st.lists(
            st.tuples(
                st.booleans(),
                st.sampled_from(["b", "e", "c"]),
                st.integers(0, 3),
            ),
            min_size=1,
            max_size=6,
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_negation_chain_sequences_match(self, b0, e0, c0, seq):
        """Counting stays exact (and counts stay non-negative) under
        mixed-sign updates crossing a two-level negation chain."""
        prog = parse_program(
            """
            h(X) :- c(X), !d(X).
            d(X) :- e(X), !b(X).
            """
        )
        edb = edb_from(
            b={(x,) for x in b0},
            e={(x,) for x in e0},
            c={(x,) for x in c0},
        )
        ce = CountingEngine(prog, edb)
        de = IncrementalEngine(prog, edb)
        for is_insert, pred, x in seq:
            d = Delta()
            (d.insert if is_insert else d.delete)(pred, (x,))
            ce.apply(d)
            de.apply(d)
            assert ce.snapshot() == de.snapshot()
            for p, counter in ce.counts.items():
                for fact, n in counter.items():
                    assert n >= 0, (p, fact, n)

    @given(initial=edge_sets, seq=st.lists(
        st.tuples(st.booleans(), st.integers(0, 5), st.integers(0, 5)),
        max_size=6,
    ))
    @settings(max_examples=25, deadline=None)
    def test_update_sequences_match(self, initial, seq):
        prog = parse_program(JOIN2)
        ce = CountingEngine(prog, edb_from(e=initial))
        de = IncrementalEngine(prog, edb_from(e=initial))
        for is_insert, a, b in seq:
            d = Delta()
            (d.insert if is_insert else d.delete)("e", (a, b))
            ce.apply(d)
            de.apply(d)
            assert ce.snapshot() == de.snapshot()
