"""Tests for stratified aggregation (count/sum/min/max)."""

import pytest

from repro.datalog import (
    Database,
    Delta,
    IncrementalEngine,
    ParseError,
    StratificationError,
    compile_update,
    parse_program,
    seminaive_evaluate,
)
from repro.datalog.ast import Aggregate, Variable
from repro.datalog.counting import CountingEngine, RecursionError_


class TestParsing:
    def test_aggregate_head_parses(self):
        prog = parse_program("total(C, sum(Q)) :- sales(C, Q).")
        rule = prog.proper_rules[0]
        assert rule.has_aggregate
        agg = next(rule.head.aggregates())
        assert agg.op == "sum" and agg.var == Variable("Q")

    def test_all_operators(self):
        for op in ("count", "sum", "min", "max"):
            prog = parse_program(f"t(C, {op}(Q)) :- s(C, Q).")
            assert prog.proper_rules[0].has_aggregate

    def test_aggregate_in_body_rejected(self):
        # the grammar cannot even produce an aggregate in a body atom
        with pytest.raises(ParseError):
            parse_program("t(C) :- s(C, sum(Q)).")

    def test_ast_level_body_aggregate_rejected(self):
        from repro.datalog.ast import Atom, Literal, Rule

        body_atom = Atom("s", (Variable("C"), Aggregate("sum", Variable("Q"))))
        with pytest.raises(ValueError, match="heads"):
            Rule(
                Atom("t", (Variable("C"),)),
                (Literal(atom=body_atom),),
            )

    def test_two_aggregates_rejected(self):
        with pytest.raises(ParseError, match="one aggregate"):
            parse_program("t(sum(A), sum(B)) :- s(A, B).")

    def test_unknown_op_is_plain_atom_call(self):
        # avg(Q) is not an aggregate op — parses as unexpected "(" term
        with pytest.raises(ParseError):
            parse_program("t(C, avg(Q)) :- s(C, Q).")

    def test_unbound_aggregate_var_rejected(self):
        with pytest.raises(ParseError, match="unsafe"):
            parse_program("t(C, sum(Q)) :- s(C, R).")

    def test_bad_op_in_ast(self):
        with pytest.raises(ValueError, match="unknown aggregate"):
            Aggregate("median", Variable("X"))


class TestEvaluation:
    def base(self):
        return parse_program(
            """
            sales(shirts, 10). sales(shirts, 5). sales(pants, 7).
            total(C, sum(Q)) :- sales(C, Q).
            lines(C, count(Q)) :- sales(C, Q).
            lo(C, min(Q)) :- sales(C, Q).
            hi(C, max(Q)) :- sales(C, Q).
            """
        )

    def test_all_aggregates(self):
        db, _ = seminaive_evaluate(self.base())
        d = db.as_dict()
        assert d["total"] == {("shirts", 15), ("pants", 7)}
        assert d["lines"] == {("shirts", 2), ("pants", 1)}
        assert d["lo"] == {("shirts", 5), ("pants", 7)}
        assert d["hi"] == {("shirts", 10), ("pants", 7)}

    def test_empty_group_emits_nothing(self):
        prog = parse_program("total(C, sum(Q)) :- sales(C, Q).")
        db, _ = seminaive_evaluate(prog)
        assert db.as_dict().get("total", set()) == set()

    def test_aggregate_feeds_downstream_rules(self):
        prog = parse_program(
            """
            sales(a, 10). sales(a, 20). sales(b, 1).
            total(C, sum(Q)) :- sales(C, Q).
            big(C) :- total(C, T), T > 15.
            """
        )
        db, _ = seminaive_evaluate(prog)
        assert db.as_dict()["big"] == {("a",)}

    def test_aggregate_over_recursive_predicate(self):
        prog = parse_program(
            """
            edge(1, 2). edge(2, 3). edge(1, 3).
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- path(X, Y), edge(Y, Z).
            out_reach(X, count(Y)) :- path(X, Y).
            """
        )
        db, _ = seminaive_evaluate(prog)
        assert db.as_dict()["out_reach"] == {(1, 2), (2, 1)}

    def test_aggregation_through_itself_rejected(self):
        prog = parse_program(
            """
            t(C, sum(Q)) :- s(C, Q).
            s(C, Q) :- t(C, Q).
            """
        )
        from repro.datalog import DependencyGraph

        with pytest.raises(StratificationError):
            DependencyGraph(prog).stratify()


class TestIncremental:
    def setup_engine(self):
        prog = parse_program("total(C, sum(Q)) :- sales(C, Q).")
        edb = Database()
        for f in [("a", 3), ("a", 4), ("b", 1)]:
            edb.add_fact("sales", f)
        return prog, edb

    def test_insert_updates_aggregate(self):
        prog, edb = self.setup_engine()
        eng = IncrementalEngine(prog, edb)
        eng.apply(Delta().insert("sales", ("a", 10)))
        assert eng.snapshot()["total"] == {("a", 17), ("b", 1)}

    def test_delete_updates_aggregate(self):
        prog, edb = self.setup_engine()
        eng = IncrementalEngine(prog, edb)
        eng.apply(Delta().delete("sales", ("a", 3)))
        assert eng.snapshot()["total"] == {("a", 4), ("b", 1)}

    def test_group_disappears_when_empty(self):
        prog, edb = self.setup_engine()
        eng = IncrementalEngine(prog, edb)
        eng.apply(Delta().delete("sales", ("b", 1)))
        assert eng.snapshot()["total"] == {("a", 7)}

    def test_matches_recompute_oracle(self):
        prog, edb = self.setup_engine()
        eng = IncrementalEngine(prog, edb)
        eng.apply(
            Delta().insert("sales", ("c", 9)).delete("sales", ("a", 4))
        )
        final = Database()
        for f in [("a", 3), ("b", 1), ("c", 9)]:
            final.add_fact("sales", f)
        oracle, _ = seminaive_evaluate(prog, final)
        assert eng.snapshot()["total"] == oracle.as_dict()["total"]

    def test_counting_engine_rejects_aggregates(self):
        prog, edb = self.setup_engine()
        with pytest.raises(RecursionError_, match="aggregate"):
            CountingEngine(prog, edb)


class TestCompilation:
    def test_aggregate_update_compiles_and_activates(self):
        prog = parse_program(
            """
            total(C, sum(Q)) :- sales(C, Q).
            big(C) :- total(C, T), T > 10.
            """
        )
        edb = Database()
        for f in [("a", 6), ("a", 6), ("b", 2)]:
            edb.add_fact("sales", f)
        cu = compile_update(prog, edb, Delta().insert("sales", ("b", 20)))
        trace = cu.trace
        assert trace.n_active_jobs >= 2  # both rules re-fire with changes
        from repro.schedulers import LevelBasedScheduler
        from repro.sim import simulate

        res = simulate(trace, LevelBasedScheduler(), processors=2)
        assert res.tasks_executed == trace.n_active
