"""Property-based parser tests: generated programs round-trip through
``repr`` → ``parse`` → ``repr`` stably, and evaluation is invariant
under re-parsing."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import (
    parse_program,
    seminaive_evaluate,
)
from repro.datalog.ast import (
    Aggregate,
    Atom,
    Comparison,
    Constant,
    Literal,
    Program,
    Rule,
    Variable,
)

predicates = st.sampled_from(["p", "q", "r", "edge", "node"])
var_names = st.sampled_from(["X", "Y", "Z", "W"])
constants = st.one_of(
    st.integers(-99, 99).map(Constant),
    st.sampled_from(["a", "b", "foo"]).map(Constant),
    st.text(
        alphabet=string.ascii_letters + " ", min_size=1, max_size=8
    ).map(lambda s: Constant(s.strip() or "x")),
)


@st.composite
def safe_rules(draw):
    """A random safe rule: positive atoms first, filters after."""
    n_pos = draw(st.integers(1, 3))
    bound_vars: list[Variable] = []
    body = []
    for _ in range(n_pos):
        arity = draw(st.integers(1, 3))
        terms = []
        for _ in range(arity):
            if draw(st.booleans()):
                v = Variable(draw(var_names))
                bound_vars.append(v)
                terms.append(v)
            else:
                terms.append(draw(constants))
        # encode the arity into the name so generated programs never
        # use one predicate at two arities
        name = f"{draw(predicates)}{arity}"
        body.append(Literal(atom=Atom(name, tuple(terms))))
    if not bound_vars:
        v = Variable("X")
        body.insert(0, Literal(atom=Atom("seed", (v,))))
        bound_vars.append(v)
    # optional filter over bound variables
    if draw(st.booleans()):
        op = draw(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
        body.append(
            Literal(
                comparison=Comparison(
                    op, draw(st.sampled_from(bound_vars)), Constant(0)
                )
            )
        )
    # optional negated atom over bound variables (distinct head pred)
    if draw(st.booleans()):
        body.append(
            Literal(
                atom=Atom("blocked", (draw(st.sampled_from(bound_vars)),)),
                negated=True,
            )
        )
    head_arity = draw(st.integers(1, 2))
    head_terms = tuple(
        draw(st.sampled_from(bound_vars)) for _ in range(head_arity)
    )
    if draw(st.booleans()):
        head_terms = head_terms[:-1] + (
            Aggregate(
                draw(st.sampled_from(["count", "sum", "min", "max"])),
                draw(st.sampled_from(bound_vars)),
            ),
        )
    return Rule(Atom("out", head_terms), tuple(body))


@given(rule=safe_rules())
@settings(max_examples=150, deadline=None)
def test_rule_repr_reparses_identically(rule):
    text = repr(rule)
    reparsed = parse_program(text).rules[0]
    assert repr(reparsed) == text


@given(rules=st.lists(safe_rules(), min_size=1, max_size=4))
@settings(max_examples=60, deadline=None)
def test_program_repr_roundtrip(rules):
    # distinct head names avoid arity clashes between generated rules
    renamed = []
    for i, r in enumerate(rules):
        renamed.append(Rule(Atom(f"out{i}", r.head.terms), r.body))
    prog = Program(renamed)
    again = parse_program(repr(prog))
    assert repr(again) == repr(prog)


@given(
    facts=st.sets(
        st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=8
    )
)
@settings(max_examples=40, deadline=None)
def test_evaluation_invariant_under_reparse(facts):
    lines = [f"edge({a}, {b})." for a, b in sorted(facts)]
    lines += [
        "path(X, Y) :- edge(X, Y).",
        "path(X, Z) :- path(X, Y), edge(Y, Z).",
        "fanout(X, count(Y)) :- path(X, Y).",
    ]
    text = "\n".join(lines)
    prog1 = parse_program(text)
    prog2 = parse_program(repr(prog1))
    db1, _ = seminaive_evaluate(prog1)
    db2, _ = seminaive_evaluate(prog2)
    assert db1.as_dict() == db2.as_dict()
