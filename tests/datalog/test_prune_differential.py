"""Differential guard: analyzer-pruned compilation is a pure optimization.

Dead-rule pruning and join-order hints from
:mod:`repro.verify.program` must never change what a maintenance round
produces: for any stream, round by round, the pruned pipeline's
materializations must be byte-identical to the unpruned ones — cold
and cached, serial and under every registered scheduler — including
streams that flip a rule between dead and live mid-stream.
"""

import random

import pytest

from repro.datalog import (
    CompiledProgramCache,
    Database,
    Delta,
    compile_update,
    parse_program,
)
from repro.datalog.units import build_execution_plan
from repro.runtime.executor import RoundExecutor
from repro.runtime.service import UpdateStreamService
from repro.schedulers import scheduler_registry
from repro.verify.program import analyze_program

pytestmark = pytest.mark.timeout(300)

# `trail` reads `barrier`, which starts empty: the analyzer prunes the
# rule until a barrier fact arrives
DEAD_RULES = """
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
blocked(X) :- barrier(X).
trail(X, Y) :- path(X, Y), blocked(X).
"""

# `wide` contains a repairable cross product: the analyzer emits a
# join-order hint that the execution plan applies
HINTED = """
hop(X, Y) :- edge(X, Y).
wide(X, W) :- edge(X, Y), label(Z, W), edge(Y, Z).
"""


def _edb(edges, barriers=(), labels=()):
    db = Database()
    db.relation("edge", 2)
    db.relation("barrier", 1)
    for t in edges:
        db.add_fact("edge", t)
    for b in barriers:
        db.add_fact("barrier", (b,))
    if labels:
        db.relation("label", 2)
        for t in labels:
            db.add_fact("label", t)
    return db


def _edge_stream(rng, rounds):
    deltas = []
    pool = []
    for _ in range(rounds):
        d = Delta()
        for _ in range(rng.randint(1, 3)):
            t = (rng.randint(0, 5), rng.randint(0, 5))
            if pool and rng.random() < 0.3:
                d.delete("edge", pool[rng.randrange(len(pool))])
            else:
                d.insert("edge", t)
                pool.append(t)
        deltas.append(d)
    return deltas


def test_cold_pruned_compile_is_byte_identical():
    program = parse_program(DEAD_RULES)
    analysis = analyze_program(program)
    edb = _edb({(0, 1), (1, 2)})
    delta = Delta().insert("edge", (2, 3))

    plain = compile_update(program, edb, delta)
    pruned = compile_update(program, edb, delta, analysis=analysis)
    # pruning actually happened
    assert len(pruned.program.rules) == 2 < len(plain.program.rules)
    assert plain.db_old.as_dict() == pruned.db_old.as_dict()
    assert plain.db_new.as_dict() == pruned.db_new.as_dict()


def test_pruning_stops_when_the_dead_predicate_goes_live():
    program = parse_program(DEAD_RULES)
    analysis = analyze_program(program)
    edb = _edb({(0, 1), (1, 2)})
    delta = Delta().insert("barrier", (0,))
    cu = compile_update(program, edb, delta, analysis=analysis)
    assert len(cu.program.rules) == 4  # barrier is live on the new side
    ref = compile_update(program, edb, delta)
    assert cu.db_new.as_dict() == ref.db_new.as_dict()


@pytest.mark.parametrize("sched_name", sorted(scheduler_registry()))
def test_every_scheduler_matches_unpruned(sched_name):
    """The pruned cached pipeline, driven concurrently by each
    scheduler, matches the unpruned cold pipeline round for round —
    across a stream that flips `barrier` empty → live → empty."""
    factory = scheduler_registry()[sched_name]
    program = parse_program(DEAD_RULES)
    analysis = analyze_program(program)
    rng = random.Random(hash(sched_name) % 997)
    deltas = _edge_stream(rng, rounds=5)
    # flip rounds: barrier gains a fact, then loses it; a predicate is
    # only prunable when dead on *both* sides, so round 0 prunes, rounds
    # 1-3 do not (barrier live on at least one side), round 4 prunes
    deltas[1].insert("barrier", (1,))
    deltas[3].delete("barrier", (1,))

    cache = CompiledProgramCache(program, analysis=analysis)
    edb_plain = _edb({(0, 1), (1, 2)})
    edb_pruned = edb_plain.copy()
    pruned_rounds = 0
    for i, delta in enumerate(deltas):
        cu1 = compile_update(program, edb_plain, delta)
        plan1 = build_execution_plan(cu1)
        out1 = RoundExecutor(plan1, factory(), workers=3).run()

        cu2 = cache.compile(program, edb_pruned, delta)
        plan2 = cache.plan(cu2)
        out2 = RoundExecutor(plan2, factory(), workers=3).run()
        if len(cu2.program.rules) < len(program.rules):
            pruned_rounds += 1

        label = f"{sched_name} round {i}"
        assert (
            plan1.materialization(out1.values).as_dict()
            == plan2.materialization(out2.values).as_dict()
        ), f"{label}: materializations differ"
        assert cu1.db_new.as_dict() == cu2.db_new.as_dict(), (
            f"{label}: recorded materializations differ"
        )

        cache.commit(cu2)
        edb_plain = cu1.edb_new
        edb_pruned = cu2.edb_new
    assert pruned_rounds >= 2  # rounds 0 and 4 prune (barrier empty)


def test_cache_hits_survive_steady_state_pruning():
    """With a stable dead set, the cache's old-side reuse still works
    (the augmented EDB keeps identity across rounds)."""
    program = parse_program(DEAD_RULES)
    cache = CompiledProgramCache(
        program, analysis=analyze_program(program)
    )
    edb = _edb({(0, 1)})
    rng = random.Random(11)
    deltas = _edge_stream(rng, rounds=5)
    for delta in deltas:
        cu = cache.compile(program, edb, delta)
        assert len(cu.program.rules) == 2  # pruning every round
        cache.plan(cu)
        cache.commit(cu)
        edb = cu.edb_new
    assert cache.hits == len(deltas) - 1
    # structure-matched rounds patched in place (DAG depth can vary
    # round to round, so not every round patches)
    assert cache.plan_patches >= 1


def test_join_order_hints_do_not_change_results():
    program = parse_program(HINTED)
    analysis = analyze_program(program)
    assert analysis.join_orders  # the hint exists
    edb = _edb({(0, 1), (1, 2)}, labels={(2, 9), (5, 7)})
    delta = Delta().insert("edge", (2, 5)).insert("label", (3, 4))

    cu = compile_update(program, edb, delta)
    plain = build_execution_plan(cu)
    hinted = build_execution_plan(
        cu, join_orders=analysis.join_orders_for(cu.program)
    )
    v1, d1 = plain.execute_serial()
    v2, d2 = hinted.execute_serial()
    assert plain.materialization(v1).as_dict() == (
        hinted.materialization(v2).as_dict()
    )
    assert d1 == d2


def test_service_with_and_without_analysis_agree():
    """End to end: two services over the same stream — analyzer on and
    off — commit identical materializations every round."""
    program = parse_program(DEAD_RULES)
    rng = random.Random(23)
    deltas = _edge_stream(rng, rounds=4)
    deltas[2].insert("barrier", (2,))

    results = {}
    for analyze in (False, True):
        svc = UpdateStreamService(
            program,
            _edb({(0, 1), (1, 2)}),
            scheduler_registry()["hybrid"](),
            workers=2,
            analyze=analyze,
        )
        mats = []
        for delta in deltas:
            svc.submit(delta)
            report = svc.run_round()
            assert report.materialization_ok
            mats.append(svc.materialization().as_dict())
        results[analyze] = mats
    assert results[False] == results[True]
