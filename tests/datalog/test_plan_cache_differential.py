"""Differential harness: cached and cold compilation are byte-identical.

The plan cache (:mod:`repro.datalog.plancache`) must be a pure
optimization: for any program and any update stream, round by round,
the cached pipeline must produce exactly what cold compilation
produces — the same materializations, the same activation flags, the
same serial-oracle results — under every registered scheduler.

Two layers of evidence:

* hypothesis-generated rule programs + seeded update streams, run
  through both pipelines with the serial reference executor;
* every registered scheduler driving the *same* cached plan through the
  concurrent executor, compared against the cold plan's outcome.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import (
    CompiledProgramCache,
    Database,
    Delta,
    compile_update,
    parse_program,
)
from repro.datalog.units import build_execution_plan
from repro.runtime.executor import RoundExecutor
from repro.schedulers import scheduler_registry

pytestmark = pytest.mark.timeout(300)

TC = """
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
"""

NONLINEAR = """
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), path(Y, Z).
"""

REACH_NEG = """
node(X) :- edge(X, Y).
node(Y) :- edge(X, Y).
reach(X) :- source(X).
reach(Y) :- reach(X), edge(X, Y).
dead(X) :- node(X), !reach(X).
"""

TWO_STRATA = """
link(X, Y) :- edge(X, Y).
link(X, Y) :- edge(Y, X).
comp(X, Z) :- link(X, Z).
comp(X, Z) :- comp(X, Y), link(Y, Z).
big(X) :- comp(X, Y), comp(Y, X).
"""

PROGRAMS = {
    "tc": TC,
    "nonlinear": NONLINEAR,
    "negation": REACH_NEG,
    "two-strata": TWO_STRATA,
}


def _edb(edges, sources=()):
    db = Database()
    db.relation("edge", 2)
    db.relation("source", 1)
    for t in edges:
        db.add_fact("edge", t)
    for s in sources:
        db.add_fact("source", (s,))
    return db


def _stream(rng, rounds, known_edges):
    """A seeded update stream of insert/delete batches over ``edge``."""
    deltas = []
    pool = list(known_edges)
    for _ in range(rounds):
        d = Delta()
        for _ in range(rng.randint(1, 4)):
            t = (rng.randint(0, 6), rng.randint(0, 6))
            if pool and rng.random() < 0.4:
                d.delete("edge", pool[rng.randrange(len(pool))])
            else:
                d.insert("edge", t)
                pool.append(t)
        deltas.append(d)
    return deltas


def _run_cold(program, edb, delta):
    cu = compile_update(program, edb, delta)
    plan = build_execution_plan(cu)
    values, diffs = plan.execute_serial()
    return cu, plan, plan.materialization(values).as_dict(), diffs


def _run_cached(cache, program, edb, delta):
    cu = cache.compile(program, edb, delta)
    plan = cache.plan(cu)
    values, diffs = plan.execute_serial()
    mat = plan.materialization(values).as_dict()
    return cu, plan, mat, diffs


def _assert_round_identical(cold, cached, label):
    cu1, _p1, mat1, diffs1 = cold
    cu2, _p2, mat2, diffs2 = cached
    assert mat1 == mat2, f"{label}: materializations differ"
    assert diffs1 == diffs2, f"{label}: serial-oracle change flags differ"
    assert cu1.node_keys == cu2.node_keys, f"{label}: DAG structure differs"
    assert (
        cu1.trace.changed_edges.tolist() == cu2.trace.changed_edges.tolist()
    ), f"{label}: compiled activation flags differ"
    assert (
        cu1.trace.initial_tasks.tolist() == cu2.trace.initial_tasks.tolist()
    ), f"{label}: initial task sets differ"
    assert cu1.db_new.as_dict() == cu2.db_new.as_dict(), (
        f"{label}: recorded new materializations differ"
    )


@given(
    key=st.sampled_from(sorted(PROGRAMS)),
    edges=st.sets(
        st.tuples(st.integers(0, 6), st.integers(0, 6)), max_size=10
    ),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=20, deadline=None)
def test_cached_pipeline_is_byte_identical_serial(key, edges, seed):
    """Hypothesis sweep: every round of every stream matches cold."""
    program = parse_program(PROGRAMS[key])
    rng = random.Random(seed)
    deltas = _stream(rng, rounds=4, known_edges=edges)

    cache = CompiledProgramCache(program)
    edb_cold = _edb(edges, sources=(0, 3))
    edb_cached = edb_cold.copy()
    for i, delta in enumerate(deltas):
        cold = _run_cold(program, edb_cold, delta)
        cached = _run_cached(cache, program, edb_cached, delta)
        _assert_round_identical(cold, cached, f"{key} round {i}")
        cache.commit(cached[0])
        edb_cold = cold[0].edb_new
        edb_cached = cached[0].edb_new
    # the cache must actually have been exercised, not silently cold
    assert cache.hits + cache.misses == len(deltas)
    assert cache.hits >= len(deltas) - 1


@pytest.mark.parametrize("sched_name", sorted(scheduler_registry()))
def test_every_scheduler_matches_cold_concurrently(sched_name):
    """Each registered scheduler executes the cached plan to the same
    outcome — values, change flags, materialization — as the cold plan.
    """
    factory = scheduler_registry()[sched_name]
    program = parse_program(TWO_STRATA)
    rng = random.Random(hash(sched_name) % 1000)
    edges = {(0, 1), (1, 2), (2, 0), (3, 4)}
    deltas = _stream(rng, rounds=5, known_edges=edges)

    cache = CompiledProgramCache(program)
    edb_cold = _edb(edges)
    edb_cached = edb_cold.copy()
    for i, delta in enumerate(deltas):
        cu1 = compile_update(program, edb_cold, delta)
        plan1 = build_execution_plan(cu1)
        out1 = RoundExecutor(plan1, factory(), workers=3).run()

        cu2 = cache.compile(program, edb_cached, delta)
        plan2 = cache.plan(cu2)
        out2 = RoundExecutor(plan2, factory(), workers=3).run()

        label = f"{sched_name} round {i}"
        assert out1.diffs == out2.diffs, f"{label}: change flags differ"
        assert (
            plan1.materialization(out1.values).as_dict()
            == plan2.materialization(out2.values).as_dict()
        ), f"{label}: materializations differ"
        # the concurrent outcome must also match the serial oracle
        _v, oracle_diffs = plan2.execute_serial()
        executed = {n: oracle_diffs[n] for n in out2.diffs}
        assert out2.diffs == executed, f"{label}: diverges from oracle"

        cache.commit(cu2)
        edb_cold = cu1.edb_new
        edb_cached = cu2.edb_new
    assert cache.hits == len(deltas) - 1


def test_rule_edit_mid_stream_invalidates_and_recovers():
    """Swapping the program mid-stream falls back to a cold compile."""
    prog_a = parse_program(TC)
    prog_b = parse_program(NONLINEAR)
    cache = CompiledProgramCache(prog_a)
    edb = _edb({(0, 1), (1, 2)})

    cu = cache.compile(prog_a, edb, Delta().insert("edge", (2, 3)))
    cache.plan(cu)
    cache.commit(cu)
    assert cache.misses == 1 and cache.invalidations == 0

    # same EDB, different rules: everything cached is invalid
    cu2 = cache.compile(prog_b, cu.edb_new, Delta().insert("edge", (3, 4)))
    plan2 = cache.plan(cu2)
    assert cache.invalidations == 1
    assert cache.misses == 2  # no stale old-side reuse across programs
    values, _ = plan2.execute_serial()
    ref = compile_update(prog_b, cu.edb_new, Delta().insert("edge", (3, 4)))
    assert (
        plan2.materialization(values).as_dict() == ref.db_new.as_dict()
    )


def test_edb_schema_change_invalidates():
    """An out-of-band EDB with a different schema flushes the cache."""
    program = parse_program(TC)
    cache = CompiledProgramCache(program)
    edb = _edb({(0, 1)})
    cu = cache.compile(program, edb, Delta().insert("edge", (1, 2)))
    cache.commit(cu)

    other = Database()
    other.relation("edge", 2)
    other.add_fact("edge", (0, 1))
    other.relation("weight", 3)  # new predicate: schema differs
    cache.compile(program, other, Delta().insert("edge", (5, 6)))
    assert cache.invalidations == 1
