"""Tests for relation storage and indexing."""

import pytest

from repro.datalog import Database, Relation


class TestRelation:
    def test_add_and_contains(self):
        r = Relation("edge", 2)
        assert r.add((1, 2))
        assert not r.add((1, 2))  # dedup
        assert (1, 2) in r
        assert len(r) == 1

    def test_arity_enforced(self):
        r = Relation("edge", 2)
        with pytest.raises(ValueError, match="arity"):
            r.add((1, 2, 3))

    def test_discard(self):
        r = Relation("edge", 2)
        r.add((1, 2))
        assert r.discard((1, 2))
        assert not r.discard((1, 2))
        assert len(r) == 0

    def test_match_full_scan(self):
        r = Relation("e", 2)
        r.add((1, 2))
        r.add((3, 4))
        assert set(r.match()) == {(1, 2), (3, 4)}
        assert set(r.match(None)) == {(1, 2), (3, 4)}

    def test_match_with_index(self):
        r = Relation("e", 2)
        for t in [(1, 2), (1, 3), (2, 3)]:
            r.add(t)
        assert set(r.match({0: 1})) == {(1, 2), (1, 3)}
        assert set(r.match({1: 3})) == {(1, 3), (2, 3)}
        assert set(r.match({0: 1, 1: 3})) == {(1, 3)}
        assert set(r.match({0: 99})) == set()

    def test_index_maintained_after_build(self):
        r = Relation("e", 2)
        r.add((1, 2))
        assert set(r.match({0: 1})) == {(1, 2)}  # builds the index
        r.add((1, 5))
        r.discard((1, 2))
        assert set(r.match({0: 1})) == {(1, 5)}

    def test_copy_is_independent(self):
        r = Relation("e", 1)
        r.add((1,))
        c = r.copy()
        c.add((2,))
        assert len(r) == 1 and len(c) == 2


class TestDatabase:
    def test_relation_get_or_create(self):
        db = Database()
        r = db.relation("p", 2)
        assert db.relation("p") is r
        with pytest.raises(ValueError, match="arity"):
            db.relation("p", 3)
        with pytest.raises(KeyError):
            db.relation("unknown")

    def test_facts_and_counts(self):
        db = Database()
        db.add_fact("p", (1,))
        db.add_fact("p", (2,))
        assert db.count("p") == 2
        assert db.count("missing") == 0
        assert db.total_facts() == 2
        assert db.has_fact("p", (1,))
        assert not db.has_fact("p", (9,))
        assert not db.has_fact("missing", (1,))

    def test_copy_and_as_dict(self):
        db = Database()
        db.add_fact("p", (1,))
        c = db.copy()
        c.add_fact("p", (2,))
        assert db.as_dict() == {"p": {(1,)}}
        assert c.as_dict() == {"p": {(1,), (2,)}}
