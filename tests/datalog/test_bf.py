"""Tests for the Backward/Forward maintenance strategy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import (
    Database,
    Delta,
    IncrementalEngine,
    parse_program,
    seminaive_evaluate,
)
from repro.datalog.bf import (
    MAINTENANCE_STRATEGIES,
    BackwardForwardEngine,
    make_engine,
)
from repro.datalog.counting import CountingEngine


def tc_program():
    return parse_program(
        """
        path(X, Y) :- edge(X, Y).
        path(X, Z) :- path(X, Y), edge(Y, Z).
        """
    )


def db_from(**preds):
    db = Database()
    for pred, facts in preds.items():
        for f in facts:
            db.add_fact(pred, f)
    return db


def oracle(prog, edb):
    return seminaive_evaluate(prog, edb)[0].as_dict()


class TestFactory:
    def test_registry_names(self):
        assert MAINTENANCE_STRATEGIES["dred"] is IncrementalEngine
        assert MAINTENANCE_STRATEGIES["bf"] is BackwardForwardEngine

    def test_make_engine(self):
        prog = tc_program()
        edb = db_from(edge=[(0, 1)])
        assert type(make_engine("dred", prog, edb)) is IncrementalEngine
        assert isinstance(make_engine("bf", prog, edb), BackwardForwardEngine)
        flat = parse_program("a(X) :- b(X).")
        assert isinstance(
            make_engine("counting", flat, db_from(b=[(1,)])),
            CountingEngine,
        )

    def test_unknown_strategy_raises(self):
        with pytest.raises(KeyError, match="counting"):
            make_engine("nope", tc_program())


class TestEquivalence:
    def test_diamond_deletion(self):
        # two routes 0→3: deleting one edge keeps everything reachable
        edb = db_from(edge=[(0, 1), (1, 3), (0, 2), (2, 3)])
        eng = BackwardForwardEngine(tc_program(), edb)
        eng.apply(Delta().delete("edge", (0, 1)))
        exp = oracle(tc_program(), db_from(edge=[(1, 3), (0, 2), (2, 3)]))
        assert eng.snapshot()["path"] == exp["path"]

    def test_chain_split(self):
        eng = BackwardForwardEngine(tc_program(), db_from(
            edge=[(i, i + 1) for i in range(5)]
        ))
        eng.apply(Delta().delete("edge", (2, 3)))
        exp = oracle(
            tc_program(), db_from(edge=[(0, 1), (1, 2), (3, 4), (4, 5)])
        )
        assert eng.snapshot()["path"] == exp["path"]

    def test_mixed_round_matches_dred(self):
        edb = db_from(edge=[(0, 1), (1, 2), (2, 3), (0, 3)])
        delta = Delta().delete("edge", (1, 2)).insert("edge", (3, 4))
        a = BackwardForwardEngine(tc_program(), edb)
        b = IncrementalEngine(tc_program(), edb)
        ta = a.apply(delta)
        tb = b.apply(delta)
        assert a.snapshot() == b.snapshot()
        # identical *net* deltas even though the churn differs
        assert ta.net_inserted == tb.net_inserted
        assert ta.net_deleted == tb.net_deleted

    def test_negation_strata_shared_with_base(self):
        prog = parse_program(
            """
            reach(X) :- source(X).
            reach(Y) :- reach(X), edge(X, Y).
            dead(X) :- node(X), !reach(X).
            """
        )
        edb = db_from(
            edge=[(1, 2), (2, 3)],
            node=[(1,), (2,), (3,), (4,)],
            source=[(1,)],
        )
        eng = BackwardForwardEngine(prog, edb)
        eng.apply(Delta().delete("edge", (2, 3)))
        exp = oracle(
            prog,
            db_from(
                edge=[(1, 2)],
                node=[(1,), (2,), (3,), (4,)],
                source=[(1,)],
            ),
        )
        assert eng.snapshot()["dead"] == exp["dead"]
        assert eng.snapshot()["reach"] == exp["reach"]


class TestChurn:
    def test_bf_deletes_less_than_dred_overdeletes(self):
        """The whole point: on a diamond, DRed over-deletes facts it
        immediately re-derives; BF never touches them."""
        edb = db_from(edge=[(0, 1), (1, 3), (0, 2), (2, 3), (3, 4)])
        delta = Delta().delete("edge", (0, 1))
        dred = IncrementalEngine(tc_program(), edb)
        bf = BackwardForwardEngine(tc_program(), edb)
        t_dred = dred.apply(delta)
        t_bf = bf.apply(delta)
        assert dred.snapshot() == bf.snapshot()
        overdeleted = sum(
            e[4] for e in t_dred.events if e[0] == "overdelete"
        )
        rederived = sum(
            e[4] for e in t_dred.events if e[0] == "rederive"
        )
        bf_deleted = sum(e[4] for e in t_bf.events if e[0] == "bf_delete")
        assert rederived > 0, "diamond must force DRed re-derivations"
        assert bf_deleted == overdeleted - rederived
        assert bf_deleted < overdeleted


class TestRandomizedDifferential:
    edge = st.tuples(st.integers(0, 6), st.integers(0, 6))

    @given(
        base=st.sets(edge, min_size=2, max_size=12),
        steps=st.lists(
            st.tuples(st.booleans(), edge), min_size=1, max_size=5
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_bf_tracks_oracle_and_dred(self, base, steps):
        prog = tc_program()
        edb = db_from(edge=list(base))
        bf = BackwardForwardEngine(prog, edb)
        dred = IncrementalEngine(prog, edb)
        live = set(base)
        for is_insert, fact in steps:
            if is_insert:
                d = Delta().insert("edge", fact)
                live.add(fact)
            else:
                d = Delta().delete("edge", fact)
                live.discard(fact)
            bf.apply(d)
            dred.apply(d)
            exp = oracle(prog, db_from(edge=list(live)))
            assert bf.snapshot() == exp
            assert dred.snapshot() == exp
