"""Tests for the Datalog-update → computation-DAG compiler."""

import numpy as np
import pytest

from repro.datalog import Database, Delta, parse_program, seminaive_evaluate
from repro.datalog.compiler import compile_update
from repro.schedulers import LevelBasedScheduler
from repro.sim import simulate

TC = """
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
"""


def chain_edb(n):
    db = Database()
    for i in range(n - 1):
        db.add_fact("edge", (i, i + 1))
    return db


def test_updates_to_idb_rejected():
    with pytest.raises(ValueError, match="derived"):
        compile_update(
            parse_program(TC), chain_edb(3), Delta().insert("path", (0, 2))
        )


def test_dag_is_valid_and_deep():
    cu = compile_update(
        parse_program(TC), chain_edb(8), Delta().insert("edge", (7, 8))
    )
    t = cu.trace
    assert t.dag.n_nodes > 10
    # fixpoint unrolling makes the DAG at least as deep as the chain
    assert t.n_levels >= 7
    # EDB sources exist and the touched one is the initial task
    assert t.initial_tasks.size == 1
    assert t.dag.name_of(int(t.initial_tasks[0])) == "edb:edge"


def test_activation_reaches_every_affected_iteration():
    cu = compile_update(
        parse_program(TC), chain_edb(6), Delta().insert("edge", (0, 99))
    )
    t = cu.trace
    # inserting at the head cascades through every unrolled iteration
    assert t.n_active_jobs >= 4


def test_no_change_update_activates_nothing_downstream():
    # delete a fact that was never present: EDB node runs, nothing changes
    prog = parse_program(TC)
    cu = compile_update(
        prog, chain_edb(4), Delta().delete("edge", (99, 100))
    )
    t = cu.trace
    assert t.n_active_jobs == 0  # only the EDB source node re-runs


def test_task_outputs_respect_function_of_inputs():
    """A task activated by the update but producing identical output
    must stop the cascade (the paper's central 'may or may not affect
    the output' behavior)."""
    # two chains; update touches only one of them via a shared EDB node
    prog = parse_program(
        """
        a(X) :- base(X).
        b(X) :- a(X), X < 3.
        """
    )
    edb = Database()
    edb.add_fact("base", (1,))
    edb.add_fact("base", (5,))
    cu = compile_update(prog, edb, Delta().insert("base", (7,)))
    t = cu.trace
    # rule a fires with changed output; rule b's join output is unchanged
    # (7 fails X < 3), so b's task runs but its predicate state must not
    # propagate a change
    sim = simulate(t, LevelBasedScheduler(), processors=2)
    assert sim.tasks_executed == t.n_active
    names = [t.dag.name_of(i) for i in np.flatnonzero(t.propagation.executed)]
    # the b-state predicate node is NOT re-run
    assert not any(n.startswith("b@") for n in names)


def test_eval_artifacts_exposed():
    cu = compile_update(
        parse_program(TC), chain_edb(4), Delta().insert("edge", (3, 4))
    )
    assert cu.db_old.count("path") == 6
    assert cu.db_new.count("path") == 10
    assert cu.eval_old.strata == cu.eval_new.strata


def test_schedulable_by_all(diamond=None):
    from repro.schedulers import (
        HybridScheduler,
        LogicBloxScheduler,
        OracleScheduler,
    )

    cu = compile_update(
        parse_program(TC), chain_edb(7),
        Delta().insert("edge", (2, 6)).delete("edge", (4, 5)),
    )
    t = cu.trace
    counts = set()
    for S in [LevelBasedScheduler, LogicBloxScheduler, HybridScheduler,
              OracleScheduler]:
        res = simulate(t, S(), processors=4)
        counts.add(res.tasks_executed)
    assert len(counts) == 1
