"""Property-based tests: incremental maintenance ≡ from-scratch evaluation.

For random edge sets and random update sequences, applying deltas
incrementally must land on exactly the database a full recomputation
from the final EDB produces — for positive programs, recursive
programs, and stratified-negation programs alike.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import (
    Database,
    Delta,
    IncrementalEngine,
    naive_evaluate,
    parse_program,
    seminaive_evaluate,
)

TC = """
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
"""

REACH_NEG = """
reach(X) :- source(X).
reach(Y) :- reach(X), edge(X, Y).
dead(X) :- node(X), !reach(X).
"""

NONLINEAR = """
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), path(Y, Z).
"""

edge_strategy = st.sets(
    st.tuples(st.integers(0, 7), st.integers(0, 7)),
    max_size=14,
)


def edb_from(edges, extra=None):
    db = Database()
    db.relation("edge", 2)
    for t in edges:
        db.add_fact("edge", t)
    for pred, facts in (extra or {}).items():
        for f in facts:
            db.add_fact(pred, f)
    return db


@given(edges=edge_strategy)
@settings(max_examples=40, deadline=None)
def test_seminaive_matches_naive_tc(edges):
    prog = parse_program(TC)
    edb = edb_from(edges)
    assert (
        seminaive_evaluate(prog, edb)[0].as_dict()
        == naive_evaluate(prog, edb).as_dict()
    )


@given(edges=edge_strategy)
@settings(max_examples=40, deadline=None)
def test_seminaive_matches_naive_nonlinear(edges):
    prog = parse_program(NONLINEAR)
    edb = edb_from(edges)
    assert (
        seminaive_evaluate(prog, edb)[0].as_dict()
        == naive_evaluate(prog, edb).as_dict()
    )


@given(
    initial=edge_strategy,
    inserts=edge_strategy,
    delete_idx=st.lists(st.integers(0, 30), max_size=6),
)
@settings(max_examples=40, deadline=None)
def test_incremental_tc_matches_recompute(initial, inserts, delete_idx):
    prog = parse_program(TC)
    eng = IncrementalEngine(prog, edb_from(initial))

    delta = Delta()
    deletes = set()
    pool = sorted(initial)
    for i in delete_idx:
        if pool:
            deletes.add(pool[i % len(pool)])
    for t in deletes:
        delta.delete("edge", t)
    for t in inserts:
        delta.insert("edge", t)
    # deletions apply before insertions (Delta contract)
    current = (set(initial) - deletes) | set(inserts)
    if delta.is_empty:
        return
    eng.apply(delta)

    oracle, _ = seminaive_evaluate(prog, edb_from(current))
    assert eng.snapshot().get("path", set()) == oracle.as_dict().get(
        "path", set()
    )


@given(
    initial=edge_strategy,
    updates=st.lists(
        st.tuples(
            st.booleans(), st.integers(0, 7), st.integers(0, 7)
        ),
        max_size=8,
    ),
)
@settings(max_examples=30, deadline=None)
def test_incremental_sequence_of_updates(initial, updates):
    """Many small updates applied one at a time stay consistent."""
    prog = parse_program(TC)
    eng = IncrementalEngine(prog, edb_from(initial))
    current = set(initial)
    for is_insert, a, b in updates:
        d = Delta()
        if is_insert:
            d.insert("edge", (a, b))
            current.add((a, b))
        else:
            d.delete("edge", (a, b))
            current.discard((a, b))
        eng.apply(d)
        oracle, _ = seminaive_evaluate(prog, edb_from(current))
        assert eng.snapshot().get("path", set()) == oracle.as_dict().get(
            "path", set()
        )


@given(
    edges=edge_strategy,
    sources=st.sets(st.integers(0, 7), max_size=3),
    update=st.tuples(st.booleans(), st.integers(0, 7), st.integers(0, 7)),
)
@settings(max_examples=40, deadline=None)
def test_incremental_with_negation_matches_recompute(edges, sources, update):
    prog = parse_program(REACH_NEG)
    nodes = {(i,) for i in range(8)}
    extra = {"node": nodes, "source": {(s,) for s in sources}}
    eng = IncrementalEngine(prog, edb_from(edges, extra))
    current = set(edges)
    is_insert, a, b = update
    d = Delta()
    if is_insert:
        d.insert("edge", (a, b))
        current.add((a, b))
    else:
        d.delete("edge", (a, b))
        current.discard((a, b))
    eng.apply(d)
    oracle, _ = seminaive_evaluate(prog, edb_from(current, extra))
    got, want = eng.snapshot(), oracle.as_dict()
    assert got.get("reach", set()) == want.get("reach", set())
    assert got.get("dead", set()) == want.get("dead", set())
