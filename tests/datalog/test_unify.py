"""Tests for matching and body-join evaluation."""

import pytest

from repro.datalog import Atom, Comparison, Constant, Database, Literal, Variable
from repro.datalog.unify import (
    apply_subst,
    eval_comparison,
    join_body,
    match_atom,
)

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


class TestMatchAtom:
    def test_binds_variables(self):
        s = match_atom(Atom("e", (X, Y)), (1, 2), {})
        assert s == {"X": 1, "Y": 2}

    def test_constant_mismatch(self):
        assert match_atom(Atom("e", (Constant(5), Y)), (1, 2), {}) is None

    def test_repeated_variable_must_agree(self):
        assert match_atom(Atom("e", (X, X)), (1, 2), {}) is None
        assert match_atom(Atom("e", (X, X)), (2, 2), {}) == {"X": 2}

    def test_existing_binding_respected(self):
        assert match_atom(Atom("e", (X, Y)), (1, 2), {"X": 9}) is None
        s = match_atom(Atom("e", (X, Y)), (1, 2), {"X": 1})
        assert s == {"X": 1, "Y": 2}

    def test_input_not_mutated(self):
        base = {"X": 1}
        match_atom(Atom("e", (X, Y)), (1, 2), base)
        assert base == {"X": 1}


class TestApplySubst:
    def test_grounding(self):
        assert apply_subst(Atom("e", (X, Constant(7))), {"X": 3}) == (3, 7)

    def test_unbound_raises(self):
        with pytest.raises(KeyError):
            apply_subst(Atom("e", (X,)), {})


class TestComparison:
    @pytest.mark.parametrize(
        "op,expected",
        [("==", False), ("!=", True), ("<", True), ("<=", True),
         (">", False), (">=", False)],
    )
    def test_ops(self, op, expected):
        c = Comparison(op, X, Y)
        assert eval_comparison(c, {"X": 1, "Y": 2}) is expected


class TestJoinBody:
    def _db(self):
        db = Database()
        for t in [(1, 2), (2, 3), (3, 4)]:
            db.add_fact("e", t)
        db.add_fact("red", (2,))
        return db

    def test_single_atom(self):
        body = (Literal(atom=Atom("e", (X, Y))),)
        subs = list(join_body(body, self._db()))
        assert len(subs) == 3

    def test_join_two_atoms(self):
        body = (
            Literal(atom=Atom("e", (X, Y))),
            Literal(atom=Atom("e", (Y, Z))),
        )
        subs = {(s["X"], s["Y"], s["Z"]) for s in join_body(body, self._db())}
        assert subs == {(1, 2, 3), (2, 3, 4)}

    def test_negation_filters(self):
        body = (
            Literal(atom=Atom("e", (X, Y))),
            Literal(atom=Atom("red", (Y,)), negated=True),
        )
        subs = {(s["X"], s["Y"]) for s in join_body(body, self._db())}
        assert subs == {(2, 3), (3, 4)}

    def test_comparison_filters(self):
        body = (
            Literal(atom=Atom("e", (X, Y))),
            Literal(comparison=Comparison(">", X, Constant(1))),
        )
        subs = {s["X"] for s in join_body(body, self._db())}
        assert subs == {2, 3}

    def test_filters_defer_until_bound(self):
        # comparison references Y which binds in the SECOND atom
        body = (
            Literal(atom=Atom("e", (X, Y))),
            Literal(comparison=Comparison("==", Z, Constant(4))),
            Literal(atom=Atom("e", (Y, Z))),
        )
        subs = list(join_body(body, self._db()))
        assert {(s["X"], s["Z"]) for s in subs} == {(2, 4)}

    def test_missing_relation_yields_nothing(self):
        body = (Literal(atom=Atom("ghost", (X,))),)
        assert list(join_body(body, self._db())) == []

    def test_initial_subst(self):
        body = (Literal(atom=Atom("e", (X, Y))),)
        subs = list(join_body(body, self._db(), subst={"X": 2}))
        assert [(s["X"], s["Y"]) for s in subs] == [(2, 3)]

    def test_delta_override(self):
        from repro.datalog import Relation

        delta = Relation("e", 2)
        delta.add((2, 3))
        body = (
            Literal(atom=Atom("e", (X, Y))),
            Literal(atom=Atom("e", (Y, Z))),
        )
        subs = {
            (s["X"], s["Y"], s["Z"])
            for s in join_body(
                body, self._db(), delta_overrides={"e": delta}, delta_at=0
            )
        }
        # the first occurrence restricted to Δ = {(2,3)}
        assert subs == {(2, 3, 4)}
