"""Tests for derivation provenance (explain)."""

import pytest

from repro.datalog import parse_program, seminaive_evaluate
from repro.datalog.provenance import explain

TC = """
edge(1, 2). edge(2, 3). edge(3, 4).
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
"""


@pytest.fixture(scope="module")
def tc():
    prog = parse_program(TC)
    db, _ = seminaive_evaluate(prog)
    return prog, db


class TestBasics:
    def test_base_fact_is_leaf(self, tc):
        prog, db = tc
        d = explain(prog, db, "edge", (1, 2))
        assert d is not None and d.is_leaf
        assert d.depth() == 1

    def test_one_hop(self, tc):
        prog, db = tc
        d = explain(prog, db, "path", (1, 2))
        assert d.rule_index == 0
        assert [c.fact for c in d.children] == [(1, 2)]
        assert d.children[0].is_leaf

    def test_deep_derivation(self, tc):
        prog, db = tc
        d = explain(prog, db, "path", (1, 4))
        assert d is not None
        assert d.depth() >= 4  # chains through path(1,3), path(1,2)
        # every leaf is an edge fact
        def leaves(n):
            if n.is_leaf:
                yield n
            for c in n.children:
                yield from leaves(c)
        assert all(l.predicate == "edge" for l in leaves(d))

    def test_absent_fact(self, tc):
        prog, db = tc
        assert explain(prog, db, "path", (4, 1)) is None
        assert explain(prog, db, "edge", (9, 9)) is None

    def test_pretty_output(self, tc):
        prog, db = tc
        text = explain(prog, db, "path", (1, 3)).pretty()
        assert "path(1, 3)" in text
        assert "[rule 1" in text
        assert "base fact" in text
        assert "└─" in text


class TestTricky:
    def test_program_fact_for_idb_predicate(self):
        prog = parse_program(
            """
            special(0, 99).
            path(X, Y) :- edge(X, Y).
            special(X, Y) :- path(X, Y), Y > 50.
            """
        )
        db, _ = seminaive_evaluate(prog)
        d = explain(prog, db, "special", (0, 99))
        assert d is not None and d.is_leaf  # the program fact wins

    def test_negation_contributes_no_children(self):
        prog = parse_program(
            """
            node(1). node(2). edge(1, 2).
            covered(Y) :- edge(X, Y).
            root(X) :- node(X), !covered(X).
            """
        )
        db, _ = seminaive_evaluate(prog)
        d = explain(prog, db, "root", (1,))
        assert [c.predicate for c in d.children] == ["node"]

    def test_aggregate_children_are_group_members(self):
        prog = parse_program(
            """
            sale(a, 3). sale(a, 4). sale(b, 1).
            total(C, sum(Q)) :- sale(C, Q).
            """
        )
        db, _ = seminaive_evaluate(prog)
        d = explain(prog, db, "total", ("a", 7))
        assert d is not None
        facts = {c.fact for c in d.children}
        assert facts == {("a", 3), ("a", 4)}
        assert explain(prog, db, "total", ("a", 99)) is None

    def test_cycle_does_not_loop(self):
        # mutually recursive even/odd: explain must terminate
        prog = parse_program(
            """
            zero(0).
            succ(0, 1). succ(1, 2). succ(2, 3).
            even(X) :- zero(X).
            even(Y) :- succ(X, Y), odd(X).
            odd(Y) :- succ(X, Y), even(X).
            """
        )
        db, _ = seminaive_evaluate(prog)
        d = explain(prog, db, "even", (2,))
        assert d is not None
        assert d.depth() >= 3

    def test_arithmetic_in_derivation(self):
        prog = parse_program(
            """
            num(4).
            double(X, Y) :- num(X), Y = X * 2.
            """
        )
        db, _ = seminaive_evaluate(prog)
        d = explain(prog, db, "double", (4, 8))
        assert d is not None
        assert [c.fact for c in d.children] == [(4,)]
