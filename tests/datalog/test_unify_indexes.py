"""Index maintenance edge cases for the join-backing hash indexes.

:class:`~repro.datalog.database.Relation` builds per-bound-pattern hash
indexes lazily and maintains them incrementally on insert/discard; the
plan cache (:class:`~repro.datalog.plancache.RelationIndexCache`)
additionally *derives* a changed relation's successor by cloning the
predecessor's indexes and replaying the delta. These tests pin the
corners where incremental maintenance classically goes wrong:
retraction down to an empty relation, duplicate re-derivation under
counting semantics, and (property-tested) exact equivalence between
indexed probes and brute-force scans through arbitrary add/discard
histories.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import (
    CountingEngine,
    Database,
    Delta,
    RelationIndexCache,
    parse_program,
    seminaive_evaluate,
)
from repro.datalog.database import Relation


def _scan(tuples, bound):
    return {
        t for t in tuples if all(t[p] == v for p, v in bound.items())
    }


# ----------------------------------------------------------------------
# retraction to empty
# ----------------------------------------------------------------------
def test_retraction_to_empty_relation_clears_index_buckets():
    rel = Relation("edge", 2)
    facts = [(1, 2), (1, 3), (2, 3)]
    for t in facts:
        rel.add(t)
    # build two indexes, then retract everything through them
    assert set(rel.match({0: 1})) == {(1, 2), (1, 3)}
    assert set(rel.match({1: 3})) == {(1, 3), (2, 3)}
    for t in facts:
        assert rel.discard(t)
    assert len(rel) == 0
    assert set(rel.match({0: 1})) == set()
    assert set(rel.match({1: 3})) == set()
    assert set(rel.match()) == set()
    # empty buckets must be dropped, not left as empty sets
    for positions in rel.index_patterns():
        assert rel._indexes[positions] == {}
    # the indexes still maintain correctly after re-insertion
    rel.add((5, 3))
    assert set(rel.match({0: 5})) == {(5, 3)}
    assert set(rel.match({1: 3})) == {(5, 3)}


def test_discard_absent_and_double_discard_are_noops():
    rel = Relation("r", 2)
    rel.add((1, 1))
    assert set(rel.match({0: 1})) == {(1, 1)}
    assert not rel.discard((9, 9))
    assert rel.discard((1, 1))
    assert not rel.discard((1, 1))
    assert set(rel.match({0: 1})) == set()


def test_cache_derives_to_and_from_empty():
    cache = RelationIndexCache()
    full = frozenset({(0, 1), (1, 2)})
    rel = cache.get("edge", 2, full)
    rel.match({0: 0})  # build an index worth inheriting
    empty = cache.get("edge", 2, frozenset(), derive_from=full)
    assert len(empty) == 0
    assert set(empty.match({0: 0})) == set()
    assert cache.derives == 1
    # and back up from empty: indexes inherited from the empty entry
    refill = cache.get("edge", 2, full, derive_from=frozenset())
    assert set(refill.match({0: 1})) == {(1, 2)}
    # the original entry was never mutated by either derivation
    assert set(rel) == set(full)
    assert set(rel.match({0: 0})) == {(0, 1)}


def test_cache_same_value_returns_same_object():
    cache = RelationIndexCache()
    facts = frozenset({(1, 2)})
    a = cache.get("edge", 2, facts)
    b = cache.get("edge", 2, facts, derive_from=frozenset({(9, 9)}))
    assert a is b
    assert cache.hits == 1


def test_cache_eviction_respects_lru_bound():
    cache = RelationIndexCache(max_entries=2)
    for i in range(5):
        cache.get("edge", 2, frozenset({(i, i)}))
    assert len(cache) == 2
    assert cache.evictions == 3


# ----------------------------------------------------------------------
# duplicate re-derivation under counting semantics
# ----------------------------------------------------------------------
DIAMOND = """
mid(X, Z) :- left(X, Z).
mid(X, Z) :- right(X, Z).
out(X) :- mid(X, Z).
"""


def test_counting_duplicate_rederivation_survives_single_retraction():
    """A fact derivable two ways keeps count 1 per support; deleting
    one support must not delete the fact, deleting both must."""
    program = parse_program(DIAMOND)
    edb = Database()
    edb.add_fact("left", (1, 7))
    edb.add_fact("right", (1, 7))
    eng = CountingEngine(program, edb)
    assert eng.count_of("mid", (1, 7)) == 2
    # out has one derivation (one substitution), regardless of how many
    # ways its body fact is itself derived
    assert eng.count_of("out", (1,)) == 1

    eng.apply(Delta().delete("left", (1, 7)))
    assert eng.count_of("mid", (1, 7)) == 1
    assert (1, 7) in eng.snapshot()["mid"]
    assert (1,) in eng.snapshot()["out"]

    # re-inserting the same support restores the duplicate count
    eng.apply(Delta().insert("left", (1, 7)))
    assert eng.count_of("mid", (1, 7)) == 2

    eng.apply(Delta().delete("left", (1, 7)).delete("right", (1, 7)))
    assert eng.count_of("mid", (1, 7)) == 0
    assert (1, 7) not in eng.snapshot()["mid"]
    assert (1,) not in eng.snapshot()["out"]


def test_counting_matches_seminaive_with_shared_indexed_relations():
    """Counting maintenance lands on the same database as a fresh
    semi-naive evaluation whose EDB inputs come from the index cache."""
    program = parse_program(DIAMOND)
    edb = Database()
    for t in [(1, 2), (2, 3)]:
        edb.add_fact("left", t)
    edb.add_fact("right", (1, 2))
    eng = CountingEngine(program, edb)
    eng.apply(Delta().insert("right", (2, 3)).delete("left", (1, 2)))

    final = Database()
    final.add_fact("left", (2, 3))
    for t in [(1, 2), (2, 3)]:
        final.add_fact("right", t)
    cache = RelationIndexCache()
    shared = {
        p: cache.get(p, rel.arity, frozenset(rel))
        for p, rel in final.relations.items()
    }
    db, _ = seminaive_evaluate(
        program, final, shared_relations=shared
    )
    got = eng.snapshot()
    for pred in ("mid", "out"):
        assert got.get(pred, set()) == set(db.relations[pred])


def test_shared_relations_reject_writable_predicates():
    program = parse_program(DIAMOND)
    db = Database()
    db.add_fact("left", (1, 2))
    with pytest.raises(ValueError, match="writes it"):
        seminaive_evaluate(
            program, db, shared_relations={"mid": Relation("mid", 2)}
        )


# ----------------------------------------------------------------------
# index/scan equivalence property
# ----------------------------------------------------------------------
ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["add", "discard"]),
        st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(0, 3)),
    ),
    max_size=40,
)
probe_strategy = st.lists(
    st.dictionaries(st.integers(0, 2), st.integers(0, 3), max_size=3),
    min_size=1,
    max_size=8,
)


@given(ops=ops_strategy, probes=probe_strategy)
@settings(max_examples=60, deadline=None)
def test_index_probe_equals_scan_through_arbitrary_history(ops, probes):
    """After any add/discard history — with indexes built at arbitrary
    points along the way — every probe equals the brute-force scan."""
    rel = Relation("r", 3)
    model: set = set()
    for i, (op, t) in enumerate(ops):
        if op == "add":
            assert rel.add(t) == (t not in model)
            model.add(t)
        else:
            assert rel.discard(t) == (t in model)
            model.discard(t)
        # interleave probes so indexes are created mid-history and
        # then maintained incrementally by later ops
        probe = probes[i % len(probes)]
        assert set(rel.match(probe)) == _scan(model, probe)
    assert set(rel) == model
    for probe in probes:
        assert set(rel.match(probe)) == _scan(model, probe)
    full = {0: 9, 1: 9, 2: 9}
    assert set(rel.match(full)) == _scan(model, full)


@given(ops=ops_strategy)
@settings(max_examples=40, deadline=None)
def test_copy_indexed_clone_is_independent_and_equivalent(ops):
    """A derived copy answers probes like a fresh relation, and
    mutating it never leaks back into the original."""
    rel = Relation("r", 3)
    for _op, t in ops:
        rel.add(t)
    before = set(rel)
    rel.match({0: 1})
    rel.match({1: 2, 2: 3})
    clone = rel.copy_indexed()
    assert clone.index_patterns() == rel.index_patterns()
    for _op, t in ops:
        clone.discard(t)
    clone.add((3, 3, 3))
    assert set(rel) == before, "mutating the clone leaked into the base"
    assert set(rel.match({0: 1})) == _scan(before, {0: 1})
    assert set(clone.match({0: 3})) == {(3, 3, 3)}
