"""Tests for the Datalog tokenizer."""

import pytest

from repro.datalog.lexer import LexError, tokenize


def kinds(text):
    return [(t.kind, t.text) for t in tokenize(text)]


def test_simple_fact():
    assert kinds("edge(1, 2).") == [
        ("IDENT", "edge"),
        ("PUNCT", "("),
        ("INT", "1"),
        ("PUNCT", ","),
        ("INT", "2"),
        ("PUNCT", ")"),
        ("PUNCT", "."),
    ]


def test_rule_arrow_and_vars():
    toks = kinds("p(X) :- q(X).")
    assert ("ARROW", ":-") in toks
    assert ("VAR", "X") in toks


def test_underscore_is_variable():
    assert kinds("_x")[0][0] == "VAR"


def test_negation_bang():
    assert ("BANG", "!") in kinds("p(X) :- q(X), !r(X).")


def test_comparison_operators():
    for op in ("==", "!=", "<", "<=", ">", ">="):
        assert ("OP", op) in kinds(f"X {op} Y")


def test_bang_followed_by_ident_not_neq():
    # "!=": one token; "!r": bang then ident
    assert kinds("!=")[0] == ("OP", "!=")
    assert kinds("!r")[0] == ("BANG", "!")


def test_string_literal():
    assert ("STRING", "hello world") in kinds('p("hello world").')


def test_unterminated_string():
    with pytest.raises(LexError, match="unterminated"):
        list(tokenize('p("oops'))
    with pytest.raises(LexError, match="unterminated"):
        list(tokenize('p("oops\n").'))


def test_negative_integer():
    assert ("INT", "-5") in kinds("p(-5).")


def test_comments_skipped():
    assert kinds("p(1). % trailing comment\n% whole line\nq(2).") == kinds(
        "p(1). q(2)."
    )


def test_line_and_column_tracking():
    toks = list(tokenize("a.\n  b."))
    assert (toks[0].line, toks[0].col) == (1, 1)
    b = [t for t in toks if t.text == "b"][0]
    assert (b.line, b.col) == (2, 3)


def test_unexpected_character():
    with pytest.raises(LexError, match="unexpected"):
        list(tokenize("p(#)."))
