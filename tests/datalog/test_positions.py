"""Source positions: lexer → parser → AST nodes → error messages."""

import pytest

from repro.datalog import parse_program, parse_program_lenient
from repro.datalog.lexer import LexError, tokenize
from repro.datalog.parser import ParseError


def test_parse_error_carries_line_and_column():
    with pytest.raises(ParseError) as exc_info:
        parse_program("p(X :- q(X).")
    exc = exc_info.value
    assert exc.line == 1 and exc.col == 5
    assert "line 1, column 5" in str(exc)


def test_parse_error_position_on_later_line():
    with pytest.raises(ParseError) as exc_info:
        parse_program("p(X) :- q(X).\nr(Y) :- s(Y.\n")
    exc = exc_info.value
    assert exc.line == 2


def test_lex_error_carries_position():
    with pytest.raises(LexError) as exc_info:
        list(tokenize('p(X) :- q("unterminated'))
    assert exc_info.value.line == 1
    assert exc_info.value.col is not None


def test_atoms_are_stamped_with_positions():
    program = parse_program("p(X) :- q(X),\n    r(X).")
    (rule,) = program.rules
    assert (rule.head.line, rule.head.col) == (1, 1)
    q, r = (lit.atom for lit in rule.body)
    assert (q.line, q.col) == (1, 9)
    assert (r.line, r.col) == (2, 5)


def test_comparisons_and_assignments_are_stamped():
    (rule,) = parse_program("p(X, Y) :- q(X), Y = X + 1, X < 9.").rules
    _, assign, cmp_ = rule.body
    assert assign.assignment.line == 1 and assign.assignment.col == 18
    assert cmp_.comparison.line == 1 and cmp_.comparison.col == 29


def test_positions_do_not_change_equality_or_repr():
    a = parse_program("p(X) :- q(X).").rules[0]
    b = parse_program("\n\n   p(X) :- q(X).").rules[0]
    assert a == b
    assert hash(a) == hash(b)
    assert repr(a) == repr(b)
    assert a.head.line != b.head.line


def test_lenient_parse_recovers_per_clause():
    program, errors = parse_program_lenient(
        "p(X) :- q(X).\n"
        "broken( :- nope.\n"
        "r(Y) :- p(Y).\n"
    )
    assert [r.head.predicate for r in program.rules] == ["p", "r"]
    assert len(errors) == 1
    assert errors[0].line == 2


def test_lenient_parse_collects_multiple_errors():
    program, errors = parse_program_lenient(
        "a( :- x.\nb(Y) :- y(Y).\nc( :- z.\n"
    )
    assert [r.head.predicate for r in program.rules] == ["b"]
    assert [e.line for e in errors] == [1, 3]


def test_lenient_parse_never_evaluates_safety():
    program, errors = parse_program_lenient("p(X, Y) :- q(X).\n")
    assert not errors  # unsafe, but lenient parsing defers to analysis
    assert len(program.rules) == 1


def test_lenient_parse_survives_lex_garbage():
    program, errors = parse_program_lenient("p(X) :- q(X). @@@")
    assert errors  # the garbage is reported, the prefix kept when possible
