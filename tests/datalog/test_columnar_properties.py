"""Property-based tests for the columnar storage layer.

Three equivalences must hold for *arbitrary* inputs, not just the
workload suites:

* interning is lossless — ``extern ∘ intern`` is the identity, and ids
  are stable across repeated interning;
* :class:`ColumnarZSet` is the same Z-set algebra as the dict-backed
  :class:`ZSetDelta` under add / negate / merge / coalesce;
* :func:`eval_rule_columnar` derives exactly the fact set the
  per-tuple :func:`~repro.datalog.unify.eval_rule` join derives, for
  random rules, databases, and Δ-override positions.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import (
    ColumnarZSet,
    Database,
    InternPool,
    ZSetDelta,
    eval_rule_columnar,
    parse_rule,
)
from repro.datalog.database import Relation
from repro.datalog.unify import eval_rule

# ---------------------------------------------------------------------------
# interning
# ---------------------------------------------------------------------------

values = st.one_of(
    st.integers(-(10**6), 10**6),
    st.text(max_size=8),
    st.booleans(),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.tuples(st.integers(0, 9), st.text(max_size=3)),
)


@given(vs=st.lists(values, max_size=60))
@settings(max_examples=60, deadline=None)
def test_intern_extern_round_trip(vs):
    pool = InternPool()
    ids = [pool.intern(v) for v in vs]
    assert [pool.extern(i) for i in ids] == vs
    # interning again must hand back the same ids, and grow nothing
    n = len(pool)
    assert [pool.intern(v) for v in vs] == ids
    assert len(pool) == n


@given(
    facts=st.lists(
        st.tuples(st.integers(0, 9), st.text(max_size=4)), max_size=30
    )
)
@settings(max_examples=40, deadline=None)
def test_intern_fact_extern_row_round_trip(facts):
    pool = InternPool()
    for fact in facts:
        row = pool.intern_fact("p", fact)
        assert pool.extern_row(row) == fact
        # the per-predicate memo must agree with itself
        assert pool.intern_fact("p", fact) == row


# ---------------------------------------------------------------------------
# ColumnarZSet ≡ ZSetDelta
# ---------------------------------------------------------------------------

ops = st.lists(
    st.tuples(
        st.sampled_from(["p", "q", "r"]),
        st.tuples(st.integers(0, 4), st.integers(0, 4)),
        st.integers(-3, 3),
    ),
    max_size=40,
)


def build_pair(op_list, pool=None):
    if pool is None:
        pool = InternPool()
    zd, czs = ZSetDelta(), ColumnarZSet(pool)
    for pred, fact, w in op_list:
        zd.add(pred, fact, w)
        czs.add(pred, fact, w)
    return zd, czs


@given(op_list=ops)
@settings(max_examples=60, deadline=None)
def test_columnar_zset_add_coalesce_equiv(op_list):
    zd, czs = build_pair(op_list)
    assert czs.to_zdelta() == zd
    assert czs.is_empty == zd.is_empty
    assert czs.op_count() == zd.op_count()
    for pred, fact, _ in op_list:
        assert czs.weight(pred, fact) == zd.weights.get(pred, {}).get(
            fact, 0
        )


@given(op_list=ops)
@settings(max_examples=40, deadline=None)
def test_columnar_zset_negate_equiv(op_list):
    zd, czs = build_pair(op_list)
    assert (-czs).to_zdelta() == -zd
    # negation is an involution on both sides
    assert (-(-czs)).to_zdelta() == zd


@given(a=ops, b=ops)
@settings(max_examples=40, deadline=None)
def test_columnar_zset_merge_equiv(a, b):
    pool = InternPool()
    zd_a, czs_a = build_pair(a, pool)
    zd_b, czs_b = build_pair(b, pool)
    assert (czs_a + czs_b).to_zdelta() == zd_a + zd_b
    # merging the negation cancels to empty
    assert (czs_a + (-czs_a)).to_zdelta() == ZSetDelta()


@given(op_list=ops)
@settings(max_examples=40, deadline=None)
def test_columnar_zset_from_zdelta_round_trip(op_list):
    zd, _ = build_pair(op_list)
    pool = InternPool()
    assert ColumnarZSet.from_zdelta(pool, zd).to_zdelta() == zd


# ---------------------------------------------------------------------------
# eval_rule_columnar ≡ eval_rule
# ---------------------------------------------------------------------------

RULES = [
    "h(X, Y) :- e(X, Y).",
    "h(X, Z) :- e(X, Y), e(Y, Z).",
    "h(X, Z) :- e(X, Y), f(Y, Z).",
    "h(X) :- e(X, X).",
    "h(X, Y) :- e(X, Y), X != Y.",
    "h(X, Y) :- e(X, Y), X < Y.",
    "h(Y, X) :- e(X, Y), f(Y, X).",
    "h(X, Z) :- e(X, Y), f(Y, Z), !e(Z, X).",
    "h(X, Y) :- e(X, Y), !f(X, Y).",
    "h(X, S) :- e(X, Y), S = Y + 1.",
    "h(X, Z) :- e(X, Y), e(Y, Z), f(Z, X).",
]

edges = st.sets(
    st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=12
)


def relation_from(name, facts):
    rel = Relation(name, 2)
    for t in facts:
        rel.add(t)
    return rel


@given(
    rule_src=st.sampled_from(RULES),
    e_facts=edges,
    f_facts=edges,
    delta_facts=edges,
    delta_seed=st.integers(0, 7),
)
@settings(max_examples=120, deadline=None)
def test_eval_rule_columnar_matches_per_tuple(
    rule_src, e_facts, f_facts, delta_facts, delta_seed
):
    """Random rule × database × Δ-position: identical derived sets."""
    rule = parse_rule(rule_src)
    db = Database()
    db.relations["e"] = relation_from("e", e_facts)
    db.relations["f"] = relation_from("f", f_facts)
    pool = InternPool()

    # plain (non-incremental) evaluation
    assert eval_rule_columnar(rule, db, pool) == eval_rule(rule, db)

    # Δ-restricted evaluation at every positive body position
    positive = [
        i
        for i, lit in enumerate(rule.body)
        if getattr(lit, "atom", None) is not None and not lit.negated
    ]
    if not positive:
        return
    delta_at = positive[delta_seed % len(positive)]
    pred = rule.body[delta_at].atom.predicate
    overrides = {pred: relation_from(pred, delta_facts)}
    assert eval_rule_columnar(
        rule, db, pool, delta_overrides=overrides, delta_at=delta_at
    ) == eval_rule(
        rule, db, delta_overrides=overrides, delta_at=delta_at
    )
