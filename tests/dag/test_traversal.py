"""Tests for traversal utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag import (
    Dag,
    ancestors,
    chain,
    critical_path,
    critical_path_length,
    descendants,
    is_ancestor,
    random_dag,
    reachable_mask,
    topological_order,
    transitive_closure_sets,
)


class TestTopologicalOrder:
    def test_respects_edges(self, diamond):
        order = topological_order(diamond)
        pos = {int(u): i for i, u in enumerate(order)}
        for u, v in diamond.edges():
            assert pos[u] < pos[v]

    def test_covers_all_nodes(self):
        dag = random_dag(50, 0.1, rng=3)
        assert sorted(topological_order(dag)) == list(range(50))

    def test_empty(self):
        assert topological_order(Dag(0, [])).size == 0


class TestReachability:
    def test_descendants(self, diamond):
        assert list(descendants(diamond, 0)) == [1, 2, 3]
        assert list(descendants(diamond, 1)) == [3]
        assert list(descendants(diamond, 3)) == []

    def test_ancestors(self, diamond):
        assert list(ancestors(diamond, 3)) == [0, 1, 2]
        assert list(ancestors(diamond, 0)) == []

    def test_reachable_mask_includes_starts(self, diamond):
        mask = reachable_mask(diamond, [1])
        assert mask[1] and mask[3]
        assert not mask[0] and not mask[2]

    def test_reachable_multiple_starts(self, two_chains):
        mask = reachable_mask(two_chains, [0, 3])
        assert mask.all()

    def test_is_ancestor(self, diamond):
        assert is_ancestor(diamond, 0, 3)
        assert is_ancestor(diamond, 1, 3)
        assert not is_ancestor(diamond, 1, 2)
        assert not is_ancestor(diamond, 3, 0)
        assert not is_ancestor(diamond, 0, 0)  # proper ancestry only


class TestCriticalPath:
    def test_unit_weights(self, diamond):
        assert critical_path_length(diamond) == 3.0  # 0,1,3

    def test_weighted(self):
        dag = Dag(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        w = np.array([1.0, 10.0, 1.0, 1.0])
        assert critical_path_length(dag, w) == 12.0

    def test_path_nodes(self, diamond):
        path = critical_path(diamond)
        assert len(path) == 3
        assert path[0] == 0 and path[-1] == 3
        for a, b in zip(path, path[1:]):
            assert diamond.has_edge(a, b)

    def test_chain(self):
        assert critical_path_length(chain(7)) == 7.0
        assert critical_path(chain(7)) == list(range(7))

    def test_empty(self):
        assert critical_path_length(Dag(0, [])) == 0.0
        assert critical_path(Dag(0, [])) == []


class TestTransitiveClosure:
    def test_diamond(self, diamond):
        sets = transitive_closure_sets(diamond)
        assert sets[0] == {0, 1, 2, 3}
        assert sets[1] == {1, 3}
        assert sets[3] == {3}

    @given(st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_matches_networkx(self, seed):
        nx = pytest.importorskip("networkx")
        dag = random_dag(25, 0.15, rng=seed)
        sets = transitive_closure_sets(dag)
        g = nx.DiGraph()
        g.add_nodes_from(range(dag.n_nodes))
        g.add_edges_from(dag.edges())
        for u in range(dag.n_nodes):
            assert sets[u] == nx.descendants(g, u) | {u}
