"""Tests for the CSR-backed Dag core."""

import numpy as np
import pytest

from repro.dag import Dag


class TestConstruction:
    def test_empty_graph(self):
        dag = Dag(0, [])
        assert dag.n_nodes == 0
        assert dag.n_edges == 0
        assert dag.sources().size == 0
        assert dag.sinks().size == 0

    def test_nodes_without_edges(self):
        dag = Dag(3, [])
        assert dag.n_nodes == 3
        assert list(dag.sources()) == [0, 1, 2]
        assert list(dag.sinks()) == [0, 1, 2]

    def test_diamond(self, diamond):
        assert diamond.n_nodes == 4
        assert diamond.n_edges == 4
        assert list(diamond.out_neighbors(0)) == [1, 2]
        assert list(diamond.in_neighbors(3)) == [1, 2]
        assert list(diamond.sources()) == [0]
        assert list(diamond.sinks()) == [3]

    def test_edges_as_numpy_array(self):
        edges = np.array([[0, 1], [1, 2]], dtype=np.int64)
        dag = Dag(3, edges)
        assert dag.n_edges == 2
        assert dag.has_edge(0, 1)

    def test_negative_n_nodes_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Dag(-1, [])

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            Dag(2, [(0, 5)])
        with pytest.raises(ValueError):
            Dag(2, [(-1, 0)])

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            Dag(2, [(1, 1)])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Dag(2, [(0, 1), (0, 1)])

    def test_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            Dag(3, [(0, 1), (1, 2), (2, 0)])

    def test_two_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            Dag(2, [(0, 1), (1, 0)])

    def test_bad_edge_shape_rejected(self):
        with pytest.raises(ValueError, match="shaped"):
            Dag(3, np.array([[0, 1, 2]]))

    def test_validate_false_skips_checks(self):
        # cyclic input accepted when validation is off (trusted caller)
        dag = Dag(2, [(0, 1), (1, 0)], validate=False)
        assert dag.n_edges == 2


class TestAccessors:
    def test_degrees(self, diamond):
        assert diamond.out_degree(0) == 2
        assert diamond.in_degree(0) == 0
        assert diamond.in_degree(3) == 2
        assert list(diamond.out_degrees()) == [2, 1, 1, 0]
        assert list(diamond.in_degrees()) == [0, 1, 1, 2]

    def test_has_edge(self, diamond):
        assert diamond.has_edge(0, 1)
        assert diamond.has_edge(2, 3)
        assert not diamond.has_edge(1, 2)
        assert not diamond.has_edge(3, 0)

    def test_edges_iterator(self, diamond):
        assert sorted(diamond.edges()) == [(0, 1), (0, 2), (1, 3), (2, 3)]

    def test_edge_array_roundtrip(self, diamond):
        arr = diamond.edge_array()
        rebuilt = Dag(diamond.n_nodes, arr)
        assert rebuilt == diamond

    def test_edge_index_dense_and_unique(self, diamond):
        indexes = {diamond.edge_index(u, v) for u, v in diamond.edges()}
        assert indexes == set(range(diamond.n_edges))

    def test_edge_index_missing_edge(self, diamond):
        with pytest.raises(KeyError):
            diamond.edge_index(1, 2)

    def test_out_edge_range_covers_neighbors(self, diamond):
        lo, hi = diamond.out_edge_range(0)
        assert hi - lo == diamond.out_degree(0)

    def test_neighbors_sorted(self):
        dag = Dag(4, [(0, 3), (0, 1), (0, 2)])
        assert list(dag.out_neighbors(0)) == [1, 2, 3]

    def test_len(self, diamond):
        assert len(diamond) == 4

    def test_equality(self, diamond):
        other = Dag(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        assert diamond == other
        assert diamond != Dag(4, [(0, 1), (0, 2), (1, 3)])
        assert diamond.__eq__(42) is NotImplemented


class TestNames:
    def test_default_names(self, diamond):
        assert diamond.name_of(2) == "n2"
        assert diamond.node_names is None

    def test_custom_names(self):
        dag = Dag(2, [(0, 1)], node_names=["src", "dst"])
        assert dag.name_of(0) == "src"
        assert dag.node_names == ("src", "dst")

    def test_name_count_mismatch(self):
        with pytest.raises(ValueError, match="entries"):
            Dag(2, [(0, 1)], node_names=["only-one"])
