"""Tests for level computation (the LevelBased precomputation)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag import (
    Dag,
    chain,
    compute_levels,
    layered_dag,
    level_histogram,
    level_spans,
    nodes_by_level,
    num_levels,
    random_dag,
)


def test_diamond_levels(diamond):
    assert list(compute_levels(diamond)) == [0, 1, 1, 2]


def test_chain_levels():
    dag = chain(5)
    assert list(compute_levels(dag)) == [0, 1, 2, 3, 4]
    assert num_levels(compute_levels(dag)) == 5


def test_level_is_longest_path_not_shortest():
    # 0→3 directly, but also 0→1→2→3: level(3) must be 3, not 1
    dag = Dag(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
    assert list(compute_levels(dag)) == [0, 1, 2, 3]


def test_isolated_nodes_are_level_zero():
    assert list(compute_levels(Dag(3, []))) == [0, 0, 0]


def test_empty_graph():
    levels = compute_levels(Dag(0, []))
    assert levels.size == 0
    assert num_levels(levels) == 0
    assert level_histogram(levels).size == 0
    assert nodes_by_level(levels) == []


def test_histogram(diamond):
    hist = level_histogram(compute_levels(diamond))
    assert list(hist) == [1, 2, 1]


def test_nodes_by_level(diamond):
    buckets = nodes_by_level(compute_levels(diamond))
    assert [sorted(b.tolist()) for b in buckets] == [[0], [1, 2], [3]]


def test_level_spans():
    levels = np.array([0, 0, 1, 1, 2])
    spans = np.array([1.0, 5.0, 2.0, 3.0, 7.0])
    assert list(level_spans(levels, spans)) == [5.0, 3.0, 7.0]


def test_level_spans_empty():
    assert level_spans(np.array([], dtype=np.int32), np.array([])).size == 0


def test_layered_dag_levels_match_layers():
    sizes = [4, 6, 5, 3]
    dag = layered_dag(sizes, edge_prob=0.5, rng=7)
    levels = compute_levels(dag)
    expected = np.repeat(np.arange(len(sizes)), sizes)
    assert np.array_equal(levels, expected)


@given(st.integers(0, 400), st.floats(0.01, 0.3))
@settings(max_examples=25, deadline=None)
def test_levels_match_networkx(seed, p):
    """Oracle: networkx longest-path from sources."""
    nx = pytest.importorskip("networkx")
    dag = random_dag(30, edge_prob=p, rng=seed)
    levels = compute_levels(dag)
    g = nx.DiGraph()
    g.add_nodes_from(range(dag.n_nodes))
    g.add_edges_from(dag.edges())
    expected = np.zeros(dag.n_nodes, dtype=int)
    for u in nx.topological_sort(g):
        for v in g.successors(u):
            expected[v] = max(expected[v], expected[u] + 1)
    assert np.array_equal(levels, expected)


@given(st.integers(0, 1000))
@settings(max_examples=25, deadline=None)
def test_level_parent_invariant(seed):
    """Every node's level is exactly 1 + max parent level."""
    dag = random_dag(40, edge_prob=0.15, rng=seed)
    levels = compute_levels(dag)
    for v in range(dag.n_nodes):
        parents = dag.in_neighbors(v)
        if parents.size == 0:
            assert levels[v] == 0
        else:
            assert levels[v] == 1 + max(levels[p] for p in parents)
