"""Tests for the DOT exporter (Figure 1 rendering support)."""

import io

from repro.dag import Dag
from repro.dag.dot import roles_from_trace_sets, to_dot, write_dot


def test_basic_dot_output(diamond):
    dot = to_dot(diamond)
    assert dot.startswith("digraph computation_dag {")
    assert dot.rstrip().endswith("}")
    assert "n0 -> n1;" in dot
    assert "n2 -> n3;" in dot
    assert dot.count("->") == diamond.n_edges


def test_roles_colored(diamond):
    dot = to_dot(diamond, roles={0: "source", 3: "activated"})
    assert "fillcolor" in dot
    assert dot.count("fillcolor") == 2


def test_max_nodes_truncates(diamond):
    dot = to_dot(diamond, max_nodes=2)
    assert "n3" not in dot
    assert "n0 -> n1;" in dot
    assert "n1 -> n3;" not in dot


def test_custom_names():
    dag = Dag(2, [(0, 1)], node_names=["edge", "path"])
    dot = to_dot(dag)
    assert 'label="edge"' in dot
    assert 'label="path"' in dot


def test_write_dot(diamond):
    buf = io.StringIO()
    write_dot(diamond, buf)
    assert buf.getvalue() == to_dot(diamond)


def test_roles_from_trace_sets_priority():
    roles = roles_from_trace_sets(
        sources=[0], activated=[1, 2], executed=[2], descendants=[1, 2, 3]
    )
    assert roles[0] == "source"
    assert roles[1] == "activated"
    assert roles[2] == "executed"  # executed wins over activated
    assert roles[3] == "descendant"
