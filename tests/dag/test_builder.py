"""Tests for DagBuilder."""

import pytest

from repro.dag import DagBuilder


def test_add_nodes_and_edges():
    b = DagBuilder()
    a = b.add_node("a")
    c = b.add_node()
    assert (a, c) == (0, 1)
    assert b.add_edge(a, c)
    assert not b.add_edge(a, c)  # dedup
    dag = b.build()
    assert dag.n_nodes == 2
    assert dag.n_edges == 1
    assert dag.name_of(0) == "a"
    assert dag.name_of(1) == "n1"


def test_keyed_nodes():
    b = DagBuilder()
    x = b.node(("rule", 1))
    y = b.node(("rule", 2), name="second")
    assert b.node(("rule", 1)) == x  # get-or-create
    assert b.has_key(("rule", 2))
    assert not b.has_key("missing")
    assert b.id_of(("rule", 2)) == y
    with pytest.raises(KeyError):
        b.id_of("missing")
    assert b.build().name_of(y) == "second"


def test_add_edge_by_key():
    b = DagBuilder()
    assert b.add_edge_by_key("a", "b")
    assert not b.add_edge_by_key("a", "b")
    dag = b.build()
    assert dag.has_edge(0, 1)


def test_edge_validation():
    b = DagBuilder()
    u = b.add_node()
    with pytest.raises(ValueError, match="out of range"):
        b.add_edge(u, 5)
    with pytest.raises(ValueError, match="self-loop"):
        b.add_edge(u, u)


def test_cycle_detected_at_build():
    b = DagBuilder()
    u, v = b.add_node(), b.add_node()
    b.add_edge(u, v)
    b.add_edge(v, u)
    with pytest.raises(ValueError, match="cycle"):
        b.build()


def test_counts():
    b = DagBuilder()
    assert (b.n_nodes, b.n_edges) == (0, 0)
    b.add_edge_by_key("x", "y")
    assert (b.n_nodes, b.n_edges) == (2, 1)
