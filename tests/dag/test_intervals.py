"""Tests for the interval-list ancestor index (LogicBlox's data structure)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag import (
    Dag,
    IntervalIndex,
    chain,
    diamond_mesh,
    is_ancestor,
    merge_intervals,
    random_dag,
    transitive_closure_sets,
)


class TestMergeIntervals:
    def test_empty(self):
        assert merge_intervals([]) == []

    def test_disjoint_kept(self):
        assert merge_intervals([(5, 6), (1, 2)]) == [(1, 2), (5, 6)]

    def test_overlap_merged(self):
        assert merge_intervals([(1, 4), (3, 7)]) == [(1, 7)]

    def test_adjacent_integers_merged(self):
        assert merge_intervals([(1, 3), (4, 6)]) == [(1, 6)]

    def test_contained_absorbed(self):
        assert merge_intervals([(1, 10), (3, 5)]) == [(1, 10)]

    @given(
        st.lists(
            st.tuples(st.integers(0, 50), st.integers(0, 50)).map(
                lambda t: (min(t), max(t))
            ),
            max_size=20,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_merge_preserves_covered_set(self, intervals):
        merged = merge_intervals(intervals)
        covered = {
            x for lo, hi in intervals for x in range(lo, hi + 1)
        }
        covered_m = {
            x for lo, hi in merged for x in range(lo, hi + 1)
        }
        assert covered == covered_m
        # result is sorted, disjoint, non-adjacent
        for (l1, h1), (l2, h2) in zip(merged, merged[1:]):
            assert h1 + 1 < l2


class TestIndexBasics:
    def test_chain_descendants(self):
        dag = chain(6)
        idx = IntervalIndex(dag)
        # every node's list covers exactly its suffix of the chain
        for u in range(6):
            covered = {
                d
                for d in range(6)
                if any(
                    lo <= idx.postorder(d) <= hi
                    for lo, hi in idx.intervals(u)
                )
            }
            assert covered == set(range(u, 6))

    def test_chain_lists_are_single_interval(self):
        idx = IntervalIndex(chain(10))
        assert idx.max_list_length() == 1
        assert idx.total_intervals == 10

    def test_is_ancestor_diamond(self, diamond):
        idx = IntervalIndex(diamond)
        assert idx.is_ancestor(0, 3)
        assert idx.is_ancestor(0, 1)
        assert not idx.is_ancestor(1, 2)
        assert not idx.is_ancestor(3, 0)
        assert not idx.is_ancestor(2, 2)  # proper

    def test_binary_search_mode_matches_scan(self, diamond):
        idx = IntervalIndex(diamond)
        for a in range(4):
            for d in range(4):
                assert idx.is_ancestor(a, d, scan=True) == idx.is_ancestor(
                    a, d, scan=False
                )

    def test_ops_counted(self, diamond):
        idx = IntervalIndex(diamond)
        idx.reset_ops()
        idx.is_ancestor(0, 3)
        assert idx.ops >= 1
        idx.reset_ops()
        assert idx.ops == 0

    def test_memory_cells_accounting(self):
        idx = IntervalIndex(chain(10))
        assert idx.memory_cells == 2 * idx.total_intervals + 10

    def test_empty_graph(self):
        idx = IntervalIndex(Dag(0, []))
        assert idx.total_intervals == 0
        assert idx.max_list_length() == 0

    def test_interval_array_view(self, diamond):
        idx = IntervalIndex(diamond)
        arr = idx.interval_array(0)
        assert arr.shape[1] == 2
        assert idx.list_lengths()[0] == arr.shape[0]


class TestIndexAgainstOracle:
    @given(st.integers(0, 500), st.floats(0.02, 0.3))
    @settings(max_examples=30, deadline=None)
    def test_matches_bfs_reachability(self, seed, p):
        dag = random_dag(25, edge_prob=p, rng=seed)
        idx = IntervalIndex(dag)
        closure = transitive_closure_sets(dag)
        for a in range(dag.n_nodes):
            for d in range(dag.n_nodes):
                expected = a != d and d in closure[a]
                assert idx.is_ancestor(a, d) == expected, (a, d)

    @given(st.integers(0, 200))
    @settings(max_examples=15, deadline=None)
    def test_matches_is_ancestor_on_layered(self, seed):
        from repro.dag import layered_dag

        dag = layered_dag([3, 4, 4, 3], edge_prob=0.4, rng=seed, skip_prob=0.4)
        idx = IntervalIndex(dag)
        for a in range(dag.n_nodes):
            for d in range(dag.n_nodes):
                assert idx.is_ancestor(a, d) == is_ancestor(dag, a, d)


class TestFragmentation:
    @staticmethod
    def _chain_with_riders(m: int) -> Dag:
        """Descending chain c_m → … → c_1 → s with a rider t_i → c_i per
        link: descendants(t_i) = {c_i, …, c_1, s}, whose postorders
        interleave with the riders' — Θ(i) fragments each, Θ(m²) mass.
        This is the O(V²)-space worst case of Section II-C."""
        s = 0
        c = list(range(1, m + 1))
        t = list(range(m + 1, 2 * m + 1))
        edges = [(c[0], s)]
        edges += [(c[i], c[i - 1]) for i in range(1, m)]
        edges += [(t[i], c[i]) for i in range(m)]
        edges += [(t[i], s) for i in range(m)]
        return Dag(2 * m + 1, edges)

    def test_chain_with_riders_fragments_quadratically(self):
        small = IntervalIndex(self._chain_with_riders(16))
        big = IntervalIndex(self._chain_with_riders(32))
        # doubling m should roughly quadruple the mass
        assert big.total_intervals > 3 * small.total_intervals
        assert big.max_list_length() >= 16

    def test_mesh_stays_compact(self):
        """Counterpoint: a complete layered mesh has 'everything below'
        as each descendant set — near-contiguous, so the encoding stays
        small despite Θ(w²) edges ("usually compact")."""
        idx = IntervalIndex(diamond_mesh(8, 4))
        assert idx.max_list_length() <= 3

    def test_tree_stays_linear(self):
        """Tree-like DAGs keep the encoding compact ("usually compact")."""
        edges = [(i, 2 * i + 1) for i in range(31)] + [
            (i, 2 * i + 2) for i in range(31)
        ]
        edges = [(u, v) for u, v in edges if v < 63]
        dag = Dag(63, edges)
        idx = IntervalIndex(dag)
        assert idx.max_list_length() == 1  # forward tree: perfect intervals
