"""Tests for transitive reduction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag import Dag, chain, compute_levels, random_dag
from repro.dag.reduction import (
    reduction_stats,
    redundant_edges,
    transitive_reduction,
)
from repro.dag.traversal import transitive_closure_sets


def test_shortcut_edge_detected():
    dag = Dag(3, [(0, 1), (1, 2), (0, 2)])
    mask = redundant_edges(dag)
    assert mask[dag.edge_index(0, 2)]
    assert not mask[dag.edge_index(0, 1)]
    assert not mask[dag.edge_index(1, 2)]


def test_diamond_keeps_all_edges(diamond):
    assert not redundant_edges(diamond).any()


def test_chain_is_already_minimal():
    dag = chain(6)
    assert transitive_reduction(dag) == dag


def test_empty_graph():
    dag = Dag(0, [])
    assert redundant_edges(dag).size == 0
    assert transitive_reduction(dag).n_nodes == 0


def test_reduction_preserves_names():
    dag = Dag(3, [(0, 1), (1, 2), (0, 2)], node_names=["a", "b", "c"])
    red = transitive_reduction(dag)
    assert red.node_names == ("a", "b", "c")
    assert red.n_edges == 2


def test_stats():
    dag = Dag(3, [(0, 1), (1, 2), (0, 2)])
    s = reduction_stats(dag)
    assert s == {
        "edges": 3,
        "redundant": 1,
        "fraction_redundant": pytest.approx(1 / 3),
    }


@given(seed=st.integers(0, 10**6), p=st.floats(0.05, 0.4))
@settings(max_examples=30, deadline=None)
def test_reduction_preserves_reachability_and_levels(seed, p):
    dag = random_dag(25, edge_prob=p, rng=seed)
    red = transitive_reduction(dag)
    assert red.n_edges <= dag.n_edges
    assert transitive_closure_sets(red) == transitive_closure_sets(dag)
    assert np.array_equal(compute_levels(red), compute_levels(dag))
    # the reduction is a fixpoint
    assert not redundant_edges(red).any()


@given(seed=st.integers(0, 10**6))
@settings(max_examples=15, deadline=None)
def test_matches_networkx(seed):
    nx = pytest.importorskip("networkx")
    dag = random_dag(20, edge_prob=0.25, rng=seed)
    g = nx.DiGraph()
    g.add_nodes_from(range(dag.n_nodes))
    g.add_edges_from(dag.edges())
    expected = set(nx.transitive_reduction(g).edges())
    assert set(transitive_reduction(dag).edges()) == expected
