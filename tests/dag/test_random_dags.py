"""Tests for the random DAG constructions."""

import numpy as np
import pytest

from repro.dag import (
    chain,
    compute_levels,
    diamond_mesh,
    layered_dag,
    random_dag,
)
from repro.dag.random_dags import as_rng


def test_as_rng_accepts_seed_none_and_generator():
    g = np.random.default_rng(1)
    assert as_rng(g) is g
    assert isinstance(as_rng(5), np.random.Generator)
    assert isinstance(as_rng(None), np.random.Generator)


def test_chain_structure():
    dag = chain(4)
    assert sorted(dag.edges()) == [(0, 1), (1, 2), (2, 3)]
    assert chain(0).n_nodes == 0
    assert chain(1).n_edges == 0


def test_layered_every_nonsource_has_parent():
    dag = layered_dag([3, 4, 5], edge_prob=0.2, rng=0)
    indeg = dag.in_degrees()
    assert (indeg[3:] >= 1).all()
    assert (indeg[:3] == 0).all()


def test_layered_deterministic_given_seed():
    a = layered_dag([3, 4, 5], edge_prob=0.5, rng=42)
    b = layered_dag([3, 4, 5], edge_prob=0.5, rng=42)
    assert a == b


def test_layered_rejects_empty_layer():
    with pytest.raises(ValueError):
        layered_dag([3, 0, 2])


def test_layered_skip_edges_do_not_change_levels():
    sizes = [4, 4, 4, 4, 4]
    dag = layered_dag(sizes, edge_prob=0.3, rng=1, skip_prob=0.8)
    levels = compute_levels(dag)
    expected = np.repeat(np.arange(5), 4)
    assert np.array_equal(levels, expected)


def test_random_dag_edges_point_forward():
    dag = random_dag(30, 0.2, rng=0)
    for u, v in dag.edges():
        assert u < v


def test_random_dag_empty():
    assert random_dag(0, 0.5).n_nodes == 0


def test_diamond_mesh_shape():
    dag = diamond_mesh(3, 4)
    assert dag.n_nodes == 12
    assert dag.n_edges == 3 * 3 * 3
    levels = compute_levels(dag)
    assert list(levels) == [0] * 3 + [1] * 3 + [2] * 3 + [3] * 3
