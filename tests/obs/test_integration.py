"""End-to-end tracing: service spans reconcile with RoundMetrics, the
simulator records on the sim clock without perturbing results, and the
``repro trace`` CLI emits a schema-valid Chrome trace."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs import (
    PID_SIM,
    TraceRecorder,
    chrome_trace,
    validate_chrome_trace,
)
from repro.runtime import (
    ChaosPlan,
    UpdateStreamService,
    live_workload,
    make_stream,
    process_backend_available,
)
from repro.schedulers import scheduler_registry
from repro.sim import simulate
from repro.workloads import make_trace

REGISTRY = scheduler_registry()


def traced_service(rounds=6, scheduler="levelbased"):
    wl = live_workload("retail", seed=5)
    rec = TraceRecorder()
    svc = UpdateStreamService(
        wl.program, wl.edb, REGISTRY[scheduler](), workers=4, sink=rec
    )
    for batches in make_stream(wl, "steady", rounds=rounds, batch_size=2):
        for delta in batches:
            svc.submit(delta)
        svc.run_round()
    return rec, svc


class TestServiceReconciliation:
    @pytest.fixture(scope="class")
    def run(self):
        return traced_service()

    def test_round_span_covers_99_percent_of_latency(self, run):
        rec, svc = run
        rounds = {
            r.args["index"]: r
            for r in rec.records()
            if r.name == "round"
        }
        assert len(rounds) == len(svc.metrics.rounds)
        for m in svc.metrics.rounds:
            span = rounds[m.index]
            assert span.duration >= 0.99 * m.latency_s

    def test_phase_spans_reconcile_with_metrics(self, run):
        rec, svc = run
        records = rec.records()
        rounds = sorted(
            (r for r in records if r.name == "round"),
            key=lambda r: r.args["index"],
        )
        by_parent_window = {}
        for r in records:
            if r.cat == "phase" and r.parent == "round":
                by_parent_window.setdefault(r.name, []).append(r)

        def child_in(round_span, name):
            return next(
                c
                for c in by_parent_window.get(name, ())
                if round_span.t0 <= c.t0 and (c.t1 or 0) <= (round_span.t1 or 0)
            )

        for m, round_span in zip(svc.metrics.rounds, rounds):
            tol = max(0.01 * m.latency_s, 1e-3)
            compile_spans = (
                child_in(round_span, "compile").duration
                + child_in(round_span, "plan-build").duration
            )
            assert compile_spans == pytest.approx(m.compile_s, abs=tol)
            assert child_in(round_span, "execute").duration == pytest.approx(
                m.execute_s, abs=tol
            )
            assert child_in(round_span, "verify").duration == pytest.approx(
                m.verify_s, abs=tol
            )

    def test_queue_phases_recorded_per_round(self, run):
        rec, svc = run
        n = len(svc.metrics.rounds)
        names = [r.name for r in rec.records()]
        assert names.count("queue_wait") == n
        assert names.count("drain") == n
        assert names.count("merge") == n

    def test_unit_spans_carry_worker_lanes_and_counters(self, run):
        rec, svc = run
        records = rec.records()
        units = [r for r in records if r.cat == "unit"]
        total_tasks = sum(m.tasks_executed for m in svc.metrics.rounds)
        assert len(units) == total_tasks
        service_tid = next(r.tid for r in records if r.name == "round")
        assert all(u.tid != service_tid for u in units)
        worker_labels = set(rec.thread_names().values())
        assert any(lbl.startswith("repro-runtime") for lbl in worker_labels)
        # scheduler decision counters attributed to the execute span
        ex = next(r for r in records if r.name == "execute")
        assert ex.args.get("select_calls", 0) >= 1
        assert "ready_scan_ops" in ex.args
        assert ex.args.get("scheduler_ops", 0) >= 1

    def test_export_is_schema_valid(self, run):
        rec, _ = run
        assert validate_chrome_trace(chrome_trace(rec)) == []


def traced_chaos_service(rounds=6):
    """A chaos-stressed service with retries generous enough that
    every round still succeeds — so spans, metrics, and the chaos log
    all describe the same set of completed rounds."""
    wl = live_workload("retail", seed=5)
    rec = TraceRecorder()
    svc = UpdateStreamService(
        wl.program,
        wl.edb,
        REGISTRY["hybrid"](),
        workers=4,
        sink=rec,
        chaos=ChaosPlan(
            seed=17,
            unit_fail_prob=0.3,
            unit_latency_prob=0.2,
            unit_latency_s=(0.0003, 0.001),
            worker_kill_prob=0.15,
        ),
        unit_retries=8,
        unit_backoff_s=0.0005,
    )
    for batches in make_stream(wl, "steady", rounds=rounds, batch_size=2):
        for delta in batches:
            svc.submit(delta)
        svc.run_round()
    return rec, svc


class TestChaosReconciliation:
    """S4: fault counters agree across spans, metrics, and the log."""

    @pytest.fixture(scope="class")
    def run(self):
        return traced_chaos_service()

    def test_execute_span_args_match_round_metrics(self, run):
        rec, svc = run
        executes = [r for r in rec.records() if r.name == "execute"]
        assert len(executes) == len(svc.metrics.rounds)
        for span, m in zip(executes, svc.metrics.rounds):
            assert span.args["unit_retries"] == m.unit_retries
            assert span.args["injected_faults"] == m.injected_faults
        # the chaos plan actually bit — this is not a vacuous check
        assert sum(m.unit_retries for m in svc.metrics.rounds) > 0
        assert sum(m.injected_faults for m in svc.metrics.rounds) > 0

    def test_chaos_instants_reconcile_with_metrics(self, run):
        rec, svc = run
        injected = [
            r for r in rec.records() if r.name.startswith("chaos:")
        ]
        # every round succeeded, so each injection the injector counted
        # is attributed to exactly one round's metrics
        assert len(injected) == sum(
            m.injected_faults for m in svc.metrics.rounds
        )
        assert len(injected) == svc.chaos.injected_total
        # retries leave their own markers, distinct from injections
        retry_notes = [
            r for r in rec.records() if r.name == "unit-retry"
        ]
        assert len(retry_notes) == sum(
            m.unit_retries for m in svc.metrics.rounds
        )

    def test_registry_counters_aggregate_fault_metrics(self, run):
        _, svc = run
        reg = svc.metrics.registry
        assert reg.counter("unit_retries").value == sum(
            m.unit_retries for m in svc.metrics.rounds
        )
        assert reg.counter("injected_faults").value == sum(
            m.injected_faults for m in svc.metrics.rounds
        )
        assert reg.counter("degraded_rounds").value == 0
        assert all(not m.degraded for m in svc.metrics.rounds)

    def test_chaos_trace_is_schema_valid(self, run):
        rec, _ = run
        assert validate_chrome_trace(chrome_trace(rec)) == []


def traced_backend_service(executor, storage, rounds=4):
    """A traced run pinned to one executor×storage cell."""
    wl = live_workload("retail", seed=5)
    rec = TraceRecorder()
    svc = UpdateStreamService(
        wl.program,
        wl.edb,
        REGISTRY["levelbased"](),
        workers=4,
        sink=rec,
        executor=executor,
        storage=storage,
    )
    for batches in make_stream(wl, "steady", rounds=rounds, batch_size=2):
        for delta in batches:
            svc.submit(delta)
        svc.run_round()
    return rec, svc


class TestBackendReconciliation:
    """Backend and interning stats agree across spans and metrics."""

    @pytest.fixture(scope="class")
    def run(self):
        if not process_backend_available():  # pragma: no cover - non-linux
            pytest.skip("process backend needs fork")
        return traced_backend_service("process", "columnar")

    def test_round_spans_carry_backend_and_storage(self, run):
        rec, svc = run
        rounds = [r for r in rec.records() if r.name == "round"]
        assert len(rounds) == len(svc.metrics.rounds)
        for span, m in zip(
            sorted(rounds, key=lambda r: r.args["index"]),
            svc.metrics.rounds,
        ):
            assert span.args["backend"] == m.backend == "process"
            assert span.args["storage"] == svc.storage == "columnar"

    def test_execute_span_backend_matches_outcome(self, run):
        rec, svc = run
        executes = [r for r in rec.records() if r.name == "execute"]
        assert len(executes) == len(svc.metrics.rounds)
        assert all(r.args["backend"] == "process" for r in executes)

    def test_unit_spans_pumped_from_children_reconcile(self, run):
        """Child-side unit spans survive the diff-shipping hand-off.

        Workers are forked processes that cannot reach the sink; the
        pump thread records each unit span parent-side from the
        child's timestamps. Count, identity args, and thread
        attribution must all still reconcile with RoundMetrics.
        """
        rec, svc = run
        records = rec.records()
        units = [r for r in records if r.cat == "unit"]
        total_tasks = sum(m.tasks_executed for m in svc.metrics.rounds)
        assert len(units) == total_tasks
        assert all(
            {"node", "label", "attempt"} <= set(u.args) for u in units
        )
        service_tid = next(r.tid for r in records if r.name == "round")
        assert all(u.tid != service_tid for u in units)
        pump_labels = set(rec.thread_names().values())
        assert any("pump" in lbl for lbl in pump_labels)

    def test_interning_stats_populate_round_metrics(self, run):
        _, svc = run
        rounds = svc.metrics.rounds
        assert all(m.intern_table_size > 0 for m in rounds)
        # the shared pool only ever grows
        sizes = [m.intern_table_size for m in rounds]
        assert sizes == sorted(sizes)
        assert sum(m.columnar_builds for m in rounds) > 0
        assert sum(m.columnar_probes for m in rounds) > 0

    def test_row_storage_reports_zero_interning(self):
        _, svc = traced_backend_service("thread", "row", rounds=2)
        for m in svc.metrics.rounds:
            assert m.backend == "thread"
            assert m.intern_table_size == 0
            assert m.columnar_builds == 0
            assert m.columnar_probes == 0

    def test_backend_trace_is_schema_valid(self, run):
        rec, _ = run
        assert validate_chrome_trace(chrome_trace(rec)) == []


class TestSimulatorTracing:
    def test_sim_spans_on_sim_clock_without_perturbing_result(self):
        trace = make_trace(2, scale=0.5)
        base = simulate(trace, REGISTRY["hybrid"](), processors=4)
        rec = TraceRecorder()
        traced = simulate(
            trace, REGISTRY["hybrid"](), processors=4, sink=rec
        )
        # tracing must not change the simulation (golden determinism)
        assert traced.makespan == base.makespan
        assert traced.scheduling_ops == base.scheduling_ops
        assert traced.tasks_executed == base.tasks_executed
        records = rec.records()
        tasks = [r for r in records if r.cat == "sim-task"]
        assert len(tasks) == base.tasks_executed
        assert all(r.pid == PID_SIM for r in tasks)
        assert all(0 <= r.tid < 4 for r in tasks)
        assert all((r.t1 or 0) <= base.makespan + 1e-9 for r in tasks)
        run_span = next(r for r in records if r.cat == "sim-run")
        assert run_span.t0 == 0.0
        assert run_span.t1 == pytest.approx(base.makespan)
        assert run_span.args["scheduler_ops"] == base.scheduling_ops

    def test_fault_run_records_retry_markers(self):
        from repro.sim import FaultPlan

        trace = make_trace(2, scale=0.5)
        rec = TraceRecorder()
        simulate(
            trace,
            REGISTRY["hybrid"](),
            processors=4,
            faults=FaultPlan(seed=7, task_fail_prob=0.1, max_retries=None),
            sink=rec,
        )
        records = rec.records()
        assert any(r.cat == "sim-fault" for r in records)
        assert any(r.name == "retry" for r in records)


class TestTraceCli:
    def test_trace_command_writes_valid_chrome_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.jsonl"
        rc = main(
            [
                "trace",
                "--stream", "retail",
                "--scheduler", "levelbased",
                "--rounds", "4",
                "-o", str(out),
                "--jsonl", str(jsonl),
            ]
        )
        assert rc == 0
        payload = json.loads(out.read_text())
        assert validate_chrome_trace(payload) == []
        assert sum(1 for ln in jsonl.read_text().splitlines() if ln) > 0
        text = capsys.readouterr().out
        assert "slowest" in text
        assert "queue-wait" in text

    def test_trace_command_with_chaos_records_injections(
        self, tmp_path, capsys
    ):
        out = tmp_path / "chaos-trace.json"
        rc = main(
            [
                "trace",
                "--stream", "retail",
                "--scheduler", "hybrid",
                "--rounds", "5",
                "--chaos-seed", "7",
                "-o", str(out),
            ]
        )
        assert rc == 0
        payload = json.loads(out.read_text())
        assert validate_chrome_trace(payload) == []
        chaos_events = [
            ev
            for ev in payload["traceEvents"]
            if str(ev.get("name", "")).startswith("chaos:")
        ]
        assert chaos_events, "chaos run produced no chaos:* instants"
        assert "chaos:" in capsys.readouterr().out

    def test_trace_command_rejects_unknown_workload(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown live program"):
            main(["trace", "--stream", "nope", "-o", str(tmp_path / "t.json")])
