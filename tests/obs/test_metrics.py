"""Histogram accuracy, counter semantics, and the registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs import Counter, Histogram, MetricsRegistry


class TestHistogram:
    @pytest.mark.parametrize("q", [10.0, 50.0, 90.0, 99.0])
    def test_percentiles_within_relative_precision(self, q):
        rng = np.random.default_rng(42)
        samples = rng.lognormal(mean=-5.0, sigma=1.2, size=5000)
        h = Histogram("latency_s", precision=0.01)
        h.observe_many(samples)
        exact = float(np.percentile(samples, q))
        est = h.percentile(q)
        # bucketing error ≤ precision; sampling-rank convention adds a
        # little slack, 2% covers both comfortably on 5000 samples
        assert est == pytest.approx(exact, rel=0.02)

    def test_exact_count_sum_min_max(self):
        vals = [0.003, 0.018, 0.5, 0.0072]
        h = Histogram()
        h.observe_many(vals)
        assert h.count == 4
        assert h.sum == pytest.approx(sum(vals))
        assert h.min == min(vals)
        assert h.max == max(vals)
        assert h.mean == pytest.approx(sum(vals) / 4)

    def test_percentile_clamped_to_observed_range(self):
        h = Histogram()
        h.observe(0.25)
        for q in (0.0, 50.0, 100.0):
            assert h.percentile(q) == pytest.approx(0.25, rel=0.01)
        assert h.percentile(100.0) <= h.max
        assert h.percentile(0.0) >= h.min

    def test_empty_histogram(self):
        h = Histogram()
        assert h.percentile(99.0) == 0.0
        assert h.mean == 0.0
        assert h.to_json_dict()["count"] == 0

    def test_zero_and_tiny_values_use_zero_bucket(self):
        h = Histogram(min_value=1e-9)
        h.observe(0.0)
        h.observe(1e-12)
        h.observe(0.1)
        assert h.zero_count == 2
        assert h.percentile(0.0) == 0.0
        assert h.percentile(100.0) == pytest.approx(0.1, rel=0.01)

    def test_memory_is_bucket_bounded(self):
        rng = np.random.default_rng(7)
        h = Histogram(precision=0.01)
        h.observe_many(rng.uniform(1e-4, 1e-1, size=20000))
        # ~6.9 decades of log1p(0.01)*2 buckets ≈ 350 max for the range
        assert len(h.counts) < 400

    def test_json_shape(self):
        h = Histogram("x")
        h.observe_many([0.01, 0.02, 0.04])
        d = h.to_json_dict()
        assert d["type"] == "histogram"
        assert d["count"] == 3
        assert {"p50", "p90", "p99"} <= set(d)
        assert all(c >= 1 for _, c in d["buckets"])

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            Histogram(precision=0.0)
        with pytest.raises(ValueError):
            Histogram(precision=1.5)
        with pytest.raises(ValueError):
            Histogram(min_value=0.0)
        h = Histogram()
        with pytest.raises(ValueError):
            h.percentile(101.0)


class TestCounter:
    def test_increments(self):
        c = Counter("tasks")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert c.to_json_dict() == {"type": "counter", "value": 5}

    def test_rejects_negative(self):
        c = Counter("tasks")
        with pytest.raises(ValueError):
            c.inc(-1)


class TestRegistry:
    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        h = reg.histogram("latency_s")
        assert reg.histogram("latency_s") is h
        c = reg.counter("rounds")
        assert reg.counter("rounds") is c

    def test_json_dict_merges_both_kinds(self):
        reg = MetricsRegistry()
        reg.histogram("latency_s").observe(0.02)
        reg.counter("rounds").inc()
        d = reg.to_json_dict()
        assert d["latency_s"]["type"] == "histogram"
        assert d["rounds"]["type"] == "counter"
