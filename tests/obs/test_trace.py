"""Span recording: nesting, per-thread buffers, and the no-op sink."""

from __future__ import annotations

import threading
from time import perf_counter

from repro.obs import (
    NULL_SINK,
    PID_REAL,
    PID_SIM,
    NullSink,
    TraceRecorder,
    TraceSink,
)
from repro.obs.trace import _NOOP_SPAN


class TestRecorderSpans:
    def test_span_records_bounds_and_category(self):
        rec = TraceRecorder()
        with rec.span("round", "round", args={"index": 0}):
            pass
        (r,) = rec.records()
        assert r.name == "round"
        assert r.cat == "round"
        assert r.pid == PID_REAL
        assert r.t1 is not None and r.t1 >= r.t0 >= 0.0
        assert r.args["index"] == 0
        assert r.duration == r.t1 - r.t0

    def test_nested_spans_carry_parent_links(self):
        rec = TraceRecorder()
        with rec.span("round", "round"):
            with rec.span("compile", "phase"):
                pass
            with rec.span("execute", "phase"):
                with rec.span("unit:3", "unit"):
                    pass
        by_name = {r.name: r for r in rec.records()}
        assert by_name["round"].parent is None
        assert by_name["compile"].parent == "round"
        assert by_name["execute"].parent == "round"
        assert by_name["unit:3"].parent == "execute"

    def test_inner_spans_close_before_outer(self):
        rec = TraceRecorder()
        with rec.span("outer"):
            with rec.span("inner"):
                pass
        by_name = {r.name: r for r in rec.records()}
        assert by_name["outer"].t0 <= by_name["inner"].t0
        assert by_name["inner"].t1 <= by_name["outer"].t1

    def test_exception_stamps_error_and_closes_span(self):
        rec = TraceRecorder()
        try:
            with rec.span("round", "round"):
                raise ValueError("boom")
        except ValueError:
            pass
        (r,) = rec.records()
        assert r.args["error"] == "ValueError"
        assert r.t1 is not None

    def test_add_to_current_attributes_to_innermost(self):
        rec = TraceRecorder()
        with rec.span("outer"):
            rec.add_to_current("ops", 2)
            with rec.span("inner"):
                rec.add_to_current("ops", 5)
                rec.add_to_current("ops", 1)
        by_name = {r.name: r for r in rec.records()}
        assert by_name["outer"].args["ops"] == 2
        assert by_name["inner"].args["ops"] == 6

    def test_add_to_current_without_open_span_is_noop(self):
        rec = TraceRecorder()
        rec.add_to_current("ops", 3)
        assert rec.records() == []

    def test_current_span_reflects_stack(self):
        rec = TraceRecorder()
        assert rec.current_span() is None
        with rec.span("a") as sp:
            assert rec.current_span() is sp
        assert rec.current_span() is None


class TestThreads:
    def test_worker_spans_land_in_own_lane(self):
        rec = TraceRecorder()
        seen_tids = {}
        # keep all threads alive together so OS thread ids are distinct
        barrier = threading.Barrier(4)

        def work(i):
            rec.set_thread_name(f"worker-{i}")
            with rec.span(f"unit:{i}", "unit"):
                barrier.wait(timeout=5)
            seen_tids[i] = threading.get_ident()

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(4)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        records = rec.records()
        assert len(records) == 4
        tids = {r.name: r.tid for r in records}
        for i in range(4):
            assert tids[f"unit:{i}"] == seen_tids[i]
        names = rec.thread_names()
        for i in range(4):
            assert names[seen_tids[i]] == f"worker-{i}"

    def test_parent_links_do_not_cross_threads(self):
        rec = TraceRecorder()
        with rec.span("service-side"):
            done = threading.Event()

            def worker():
                with rec.span("worker-side"):
                    pass
                done.set()

            th = threading.Thread(target=worker)
            th.start()
            th.join()
            assert done.wait(1)
        by_name = {r.name: r for r in rec.records()}
        assert by_name["worker-side"].parent is None


class TestExplicitRecords:
    def test_record_span_sim_domain(self):
        rec = TraceRecorder()
        rec.record_span("task:7", "sim-task", 1.5, 2.25, tid=3,
                        args={"alloc": 2})
        (r,) = rec.records()
        assert r.pid == PID_SIM
        assert (r.t0, r.t1, r.tid) == (1.5, 2.25, 3)
        assert r.args["alloc"] == 2

    def test_record_span_abs_is_epoch_relative(self):
        rec = TraceRecorder()
        a = perf_counter()
        b = perf_counter()
        rec.record_span_abs("drain", "phase", a, b)
        (r,) = rec.records()
        assert r.pid == PID_REAL
        assert abs(r.t0 - (a - rec.epoch)) < 1e-9
        assert abs((r.t1 or 0.0) - (b - rec.epoch)) < 1e-9

    def test_record_instant(self):
        rec = TraceRecorder()
        rec.record_instant("round-failed", args={"round": 2})
        (r,) = rec.records()
        assert r.t1 is None
        assert r.duration == 0.0
        assert r.cat == "instant"

    def test_records_sorted_by_domain_then_time(self):
        rec = TraceRecorder()
        rec.record_span("sim-late", "sim", 9.0, 10.0)
        with rec.span("real"):
            pass
        rec.record_span("sim-early", "sim", 1.0, 2.0)
        names = [r.name for r in rec.records()]
        assert names == ["real", "sim-early", "sim-late"]


class TestDisabledSink:
    def test_null_sink_is_disabled_tracesink(self):
        assert isinstance(NULL_SINK, NullSink)
        assert isinstance(NULL_SINK, TraceSink)
        assert NULL_SINK.enabled is False

    def test_span_returns_shared_noop_object(self):
        # zero-allocation guarantee: every call yields the same object
        s1 = NULL_SINK.span("a", "phase", args={"x": 1})
        s2 = NULL_SINK.span("b")
        assert s1 is s2 is _NOOP_SPAN

    def test_noop_span_supports_full_surface(self):
        with NULL_SINK.span("a") as sp:
            sp.add("ops", 3)
            sp.set("k", "v")

    def test_all_record_methods_are_noops(self):
        NULL_SINK.record_span("x", "c", 0.0, 1.0)
        NULL_SINK.record_span_abs("x", "c", 0.0, 1.0)
        NULL_SINK.record_instant("x")
        NULL_SINK.add_to_current("ops")
        NULL_SINK.set_thread_name("w")

    def test_noop_span_swallows_nothing(self):
        # the no-op context manager must not suppress exceptions
        try:
            with NULL_SINK.span("a"):
                raise KeyError("x")
        except KeyError:
            pass
        else:  # pragma: no cover
            raise AssertionError("exception was swallowed")
