"""Exporters: Chrome trace_event schema, JSONL, and the validator."""

from __future__ import annotations

import io
import json

from repro.obs import (
    PID_REAL,
    PID_SIM,
    TraceRecorder,
    chrome_trace,
    jsonl_records,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)


def recorded() -> TraceRecorder:
    rec = TraceRecorder()
    rec.set_thread_name("service")
    with rec.span("round", "round", args={"index": 0}):
        with rec.span("compile", "phase"):
            pass
    rec.record_span("task:3", "sim-task", 0.5, 1.5, tid=1)
    rec.record_instant("round-failed", args={"round": 0})
    return rec


class TestChromeExport:
    def test_emitted_payload_passes_validator(self):
        payload = chrome_trace(recorded())
        assert validate_chrome_trace(payload) == []

    def test_span_becomes_complete_event_in_microseconds(self):
        rec = TraceRecorder()
        rec.record_span("task:1", "sim-task", 1.0, 3.0, tid=2)
        payload = chrome_trace(rec)
        (ev,) = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert ev["name"] == "task:1"
        assert ev["ts"] == 1.0 * 1e6
        assert ev["dur"] == 2.0 * 1e6
        assert ev["pid"] == PID_SIM
        assert ev["tid"] == 2

    def test_instants_carry_scope(self):
        payload = chrome_trace(recorded())
        instants = [e for e in payload["traceEvents"] if e["ph"] == "i"]
        assert instants and all(e["s"] == "t" for e in instants)

    def test_metadata_names_processes_and_threads(self):
        payload = chrome_trace(recorded())
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        proc = {
            e["pid"]: e["args"]["name"]
            for e in meta
            if e["name"] == "process_name"
        }
        assert "wall clock" in proc[PID_REAL]
        assert "sim clock" in proc[PID_SIM]
        thread = [e for e in meta if e["name"] == "thread_name"]
        assert any(e["args"]["name"] == "service" for e in thread)

    def test_write_chrome_trace_roundtrips(self):
        rec = recorded()
        buf = io.StringIO()
        n = write_chrome_trace(rec, buf)
        payload = json.loads(buf.getvalue())
        assert len(payload["traceEvents"]) == n
        assert validate_chrome_trace(payload) == []


class TestJsonl:
    def test_records_carry_parent_and_duration(self):
        recs = jsonl_records(recorded())
        by_name = {r["name"]: r for r in recs}
        assert by_name["compile"]["parent"] == "round"
        assert by_name["compile"]["type"] == "span"
        assert by_name["compile"]["dur_s"] >= 0.0
        assert by_name["round-failed"]["type"] == "instant"
        assert "dur_s" not in by_name["round-failed"]

    def test_write_jsonl_one_object_per_line(self):
        buf = io.StringIO()
        n = write_jsonl(recorded(), buf)
        lines = [ln for ln in buf.getvalue().splitlines() if ln]
        assert len(lines) == n
        for ln in lines:
            json.loads(ln)


class TestValidator:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([1, 2]) != []

    def test_rejects_missing_trace_events(self):
        assert validate_chrome_trace({"foo": []}) != []

    def test_rejects_empty_event_list(self):
        assert validate_chrome_trace({"traceEvents": []}) != []

    def test_rejects_missing_required_keys(self):
        errs = validate_chrome_trace(
            {"traceEvents": [{"name": "x", "ph": "X"}]}
        )
        assert any("missing keys" in e for e in errs)

    def test_rejects_unknown_phase(self):
        errs = validate_chrome_trace(
            {
                "traceEvents": [
                    {"name": "x", "ph": "Q", "ts": 0, "pid": 1, "tid": 0}
                ]
            }
        )
        assert any("unknown phase" in e for e in errs)

    def test_rejects_complete_event_without_dur(self):
        errs = validate_chrome_trace(
            {
                "traceEvents": [
                    {"name": "x", "ph": "X", "ts": 0, "pid": 1, "tid": 0}
                ]
            }
        )
        assert any("'dur'" in e for e in errs)

    def test_rejects_negative_dur(self):
        errs = validate_chrome_trace(
            {
                "traceEvents": [
                    {
                        "name": "x", "ph": "X", "ts": 0, "dur": -1,
                        "pid": 1, "tid": 0,
                    }
                ]
            }
        )
        assert any("'dur'" in e for e in errs)

    def test_rejects_instant_without_scope(self):
        errs = validate_chrome_trace(
            {
                "traceEvents": [
                    {"name": "x", "ph": "i", "ts": 0, "pid": 1, "tid": 0}
                ]
            }
        )
        assert any("scope" in e for e in errs)

    def test_rejects_metadata_without_name_arg(self):
        errs = validate_chrome_trace(
            {
                "traceEvents": [
                    {
                        "name": "process_name", "ph": "M", "ts": 0,
                        "pid": 1, "tid": 0, "args": {},
                    }
                ]
            }
        )
        assert any("args.name" in e for e in errs)

    def test_rejects_non_integer_pid(self):
        errs = validate_chrome_trace(
            {
                "traceEvents": [
                    {
                        "name": "x", "ph": "X", "ts": 0, "dur": 1,
                        "pid": "real", "tid": 0,
                    }
                ]
            }
        )
        assert any("'pid'" in e for e in errs)
