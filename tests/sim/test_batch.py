"""Tests for the batch comparison runner."""

import numpy as np
import pytest

from repro.dag import Dag
from repro.schedulers import (
    HybridScheduler,
    LevelBasedScheduler,
    LogicBloxScheduler,
)
from repro.sim.batch import compare
from repro.tasks import JobTrace
from repro.workloads import theorem9_example


def small_traces():
    dag = Dag(4, [(0, 1), (2, 3)])
    t1 = JobTrace(
        dag=dag,
        work=np.array([10.0, 1.0, 1.0, 1.0]),
        initial_tasks=np.array([0, 2]),
        changed_edges=np.ones(2, dtype=bool),
        name="two-chains",
    )
    t2 = theorem9_example(6)
    return [t1, t2]


def test_grid_structure():
    grid = compare(
        small_traces(),
        [LevelBasedScheduler, HybridScheduler],
        processors=4,
    )
    assert set(grid.results) == {"two-chains", "theorem9(L=6)"}
    assert grid.schedulers() == ["LevelBased", "Hybrid"]
    for row in grid.results.values():
        assert set(row) == {"LevelBased", "Hybrid"}


def test_accepts_instances_and_factories():
    grid = compare(
        small_traces()[:1],
        [LevelBasedScheduler(), lambda: LogicBloxScheduler("cached")],
        processors=2,
    )
    assert set(grid.results["two-chains"]) == {
        "LevelBased",
        "LogicBlox(cached)",
    }


def test_best_and_win_counts():
    grid = compare(
        small_traces(),
        [LevelBasedScheduler, HybridScheduler],
        processors=8,
    )
    # the hybrid never loses on these instances (ties go to list order)
    assert grid.best("theorem9(L=6)") == "Hybrid"
    wins = grid.win_counts()
    assert sum(wins.values()) == 2
    for trace_name in grid.results:
        ms = grid.makespans(trace_name)
        # tolerance covers the hybrid's slightly higher charged overhead
        assert ms["Hybrid"] <= ms["LevelBased"] + 1e-4


def test_render_quantities():
    grid = compare(
        small_traces()[:1], [LevelBasedScheduler], processors=2
    )
    assert "makespan" in grid.render()
    assert "overhead" in grid.render("overhead")
    assert "ops" in grid.render("ops")
    with pytest.raises(ValueError):
        grid.render("latency")
