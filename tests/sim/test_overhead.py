"""Tests for the overhead cost model and memory accounting."""

import pytest

from repro.sim import MemoryStats, OverheadModel


def test_time_for():
    m = OverheadModel(op_cost=2e-6)
    assert m.time_for(0) == 0.0
    assert m.time_for(1000) == pytest.approx(2e-3)


def test_negative_ops_rejected():
    with pytest.raises(ValueError):
        OverheadModel().time_for(-1)


def test_default_is_inline():
    assert OverheadModel().charge_inline is True


def test_memory_stats_total():
    ms = MemoryStats(precompute_cells=100, runtime_peak_cells=40)
    assert ms.total_peak_cells == 140
