"""Tests for schedule timeline analysis."""

import numpy as np
import pytest

from repro.dag import Dag
from repro.schedulers import LevelBasedScheduler, LogicBloxScheduler
from repro.sim import OverheadModel, simulate
from repro.sim.timeline import (
    average_utilization,
    busy_profile,
    idle_gaps,
    level_envelopes,
    render_gantt,
)
from repro.tasks import JobTrace

NO_OVERHEAD = OverheadModel(op_cost=0.0)


def two_chain_trace():
    dag = Dag(4, [(0, 1), (2, 3)])
    return JobTrace(
        dag=dag,
        work=np.array([10.0, 1.0, 1.0, 1.0]),
        initial_tasks=np.array([0, 2]),
        changed_edges=np.ones(2, dtype=bool),
    )


def run(trace, scheduler, P=2):
    return simulate(
        trace, scheduler, processors=P, overhead=NO_OVERHEAD,
        record_schedule=True,
    )


class TestBusyProfile:
    def test_profile_steps(self):
        res = run(two_chain_trace(), LevelBasedScheduler())
        times, busy = busy_profile(res)
        assert busy[0] == 2  # both sources start at t=0
        assert busy[-1] == 0  # everything finished
        assert np.all(np.diff(times) >= 0)

    def test_empty_schedule(self):
        res = run(two_chain_trace(), LevelBasedScheduler())
        res.schedule.clear()
        times, busy = busy_profile(res)
        assert times.size == 0
        assert average_utilization(res) == 0.0

    def test_average_utilization_bounds(self):
        res = run(two_chain_trace(), LogicBloxScheduler())
        u = average_utilization(res)
        assert 0.0 < u <= 1.0


class TestMergeTolerance:
    """Float-noise event merging (phantom-dip fix for real runs)."""

    @staticmethod
    def noisy_result():
        """Back-to-back tasks whose boundary differs by float noise."""
        from repro.sim.result import DispatchRecord

        res = run(two_chain_trace(), LevelBasedScheduler())
        res.schedule.clear()
        res.schedule.extend(
            [
                DispatchRecord(node=0, start=0.0, finish=1.0, processors=1),
                DispatchRecord(
                    node=1, start=1.0 + 1e-12, finish=2.0, processors=1
                ),
            ]
        )
        return res

    def test_exact_grouping_shows_phantom_dip(self):
        times, busy = busy_profile(self.noisy_result(), merge_tol=0.0)
        assert 0 in busy[:-1]  # one-tick dip at the noisy boundary

    def test_default_tolerance_absorbs_noise(self):
        times, busy = busy_profile(self.noisy_result())
        assert np.all(busy[:-1] >= 1)
        assert busy[-1] == 0

    def test_tolerance_does_not_merge_real_gaps(self):
        from repro.sim.result import DispatchRecord

        res = run(two_chain_trace(), LevelBasedScheduler())
        res.schedule.clear()
        res.schedule.extend(
            [
                DispatchRecord(node=0, start=0.0, finish=1.0, processors=1),
                DispatchRecord(node=1, start=1.5, finish=2.0, processors=1),
            ]
        )
        gaps = idle_gaps(res)
        assert gaps == [(1.0, 1.5)]


class TestLevelEnvelopes:
    def test_levelbased_envelopes_do_not_overlap(self):
        trace = two_chain_trace()
        res = run(trace, LevelBasedScheduler())
        envs = level_envelopes(trace, res)
        assert [e.level for e in envs] == [0, 1]
        assert envs[1].first_start >= envs[0].last_finish - 1e-9
        assert envs[0].n_tasks == 2

    def test_logicblox_envelopes_overlap(self):
        trace = two_chain_trace()
        res = run(trace, LogicBloxScheduler())
        envs = level_envelopes(trace, res)
        # node 3 starts while node 0 (level 0) still runs
        assert envs[1].first_start < envs[0].last_finish

    def test_width(self):
        trace = two_chain_trace()
        res = run(trace, LevelBasedScheduler())
        envs = level_envelopes(trace, res)
        assert envs[0].width == pytest.approx(10.0, abs=1e-6)


class TestIdleGaps:
    def test_no_gap_in_packed_schedule(self):
        res = run(two_chain_trace(), LogicBloxScheduler())
        assert idle_gaps(res) == []


class TestGantt:
    def test_render(self):
        trace = two_chain_trace()
        res = run(trace, LevelBasedScheduler())
        art = render_gantt(trace, res)
        assert "4 tasks" in art
        assert art.count("|") == 2 * 4  # two bars per row

    def test_truncation(self):
        trace = two_chain_trace()
        res = run(trace, LevelBasedScheduler())
        art = render_gantt(trace, res, max_rows=2)
        assert "more tasks" in art

    def test_empty(self):
        res = run(two_chain_trace(), LevelBasedScheduler())
        res.schedule.clear()
        assert render_gantt(two_chain_trace(), res) == "(empty schedule)"
