"""Tests for the discrete-event simulation engine."""

import numpy as np
import pytest

from repro.dag import Dag, chain
from repro.schedulers import (
    LevelBasedScheduler,
    OracleScheduler,
    Scheduler,
)
from repro.sim import (
    InvalidDispatchError,
    OverheadModel,
    SchedulerStallError,
    simulate,
)
from repro.tasks import ExecutionModel, JobTrace


def full_trace(dag, work=None, **over):
    work = np.ones(dag.n_nodes) if work is None else np.asarray(work, float)
    kwargs = dict(
        dag=dag,
        work=work,
        initial_tasks=dag.sources(),
        changed_edges=np.ones(dag.n_edges, dtype=bool),
    )
    kwargs.update(over)
    return JobTrace(**kwargs)


class TestBasicRuns:
    def test_single_chain_serializes(self):
        trace = full_trace(chain(5))
        res = simulate(trace, LevelBasedScheduler(), processors=4)
        assert res.makespan == pytest.approx(5.0, abs=1e-4)
        assert res.tasks_executed == 5
        assert res.total_work == 5.0

    def test_parallel_tasks_use_processors(self):
        dag = Dag(4, [])  # four independent unit tasks
        trace = full_trace(dag)
        res = simulate(trace, LevelBasedScheduler(), processors=4)
        assert res.execution_makespan == pytest.approx(1.0, abs=1e-4)
        res1 = simulate(trace, LevelBasedScheduler(), processors=1)
        assert res1.execution_makespan == pytest.approx(4.0, abs=1e-4)

    def test_empty_update_is_noop(self, diamond):
        trace = JobTrace(
            dag=diamond,
            work=np.ones(4),
            initial_tasks=np.array([], dtype=np.int64),
            changed_edges=np.ones(4, dtype=bool),
        )
        res = simulate(trace, LevelBasedScheduler())
        assert res.makespan == 0.0
        assert res.tasks_executed == 0

    def test_only_activated_tasks_run(self, diamond):
        flags = np.zeros(4, dtype=bool)
        flags[diamond.edge_index(0, 1)] = True
        trace = JobTrace(
            dag=diamond,
            work=np.ones(4),
            initial_tasks=np.array([0]),
            changed_edges=flags,
        )
        res = simulate(trace, LevelBasedScheduler())
        assert res.tasks_executed == 2  # 0 and 1 only

    def test_zero_duration_plumbing(self, diamond):
        trace = full_trace(diamond, work=[0.0, 1.0, 1.0, 0.0])
        res = simulate(trace, LevelBasedScheduler(), processors=2)
        assert res.tasks_executed == 4
        assert res.execution_makespan == pytest.approx(1.0, abs=1e-4)

    def test_invalid_processor_count(self, diamond_trace):
        with pytest.raises(ValueError):
            simulate(diamond_trace, LevelBasedScheduler(), processors=0)

    def test_schedule_recording(self, diamond_trace):
        res = simulate(
            diamond_trace, LevelBasedScheduler(), record_schedule=True
        )
        assert len(res.schedule) == 4
        by_node = {r.node: r for r in res.schedule}
        # node 3 starts only after both parents finish
        assert by_node[3].start >= max(by_node[1].finish, by_node[2].finish)

    def test_result_summary_text(self, diamond_trace):
        res = simulate(diamond_trace, LevelBasedScheduler())
        text = res.summary()
        assert "LevelBased" in text and "makespan" in text


class TestMalleableTasks:
    def test_fully_parallel_splits_across_processors(self):
        dag = Dag(1, [])
        trace = JobTrace(
            dag=dag,
            work=np.array([8.0]),
            span=np.array([0.0]),
            models=np.array([ExecutionModel.MALLEABLE], dtype=np.int8),
            initial_tasks=np.array([0]),
            changed_edges=np.zeros(0, dtype=bool),
        )
        res = simulate(trace, LevelBasedScheduler(), processors=4)
        assert res.execution_makespan == pytest.approx(2.0, abs=1e-4)

    def test_span_floor_respected(self):
        dag = Dag(1, [])
        trace = JobTrace(
            dag=dag,
            work=np.array([8.0]),
            span=np.array([5.0]),
            models=np.array([ExecutionModel.MALLEABLE], dtype=np.int8),
            initial_tasks=np.array([0]),
            changed_edges=np.zeros(0, dtype=bool),
        )
        res = simulate(trace, LevelBasedScheduler(), processors=8)
        assert res.execution_makespan == pytest.approx(5.0, abs=1e-4)

    def test_reallot_joins_running_task(self):
        # a unit task and a big divisible task start together; when the
        # unit task finishes its processor must join the divisible one
        dag = Dag(2, [])
        trace = JobTrace(
            dag=dag,
            work=np.array([1.0, 9.0]),
            span=np.array([1.0, 0.0]),
            models=np.array(
                [ExecutionModel.SEQUENTIAL, ExecutionModel.MALLEABLE],
                dtype=np.int8,
            ),
            initial_tasks=np.array([0, 1]),
            changed_edges=np.zeros(0, dtype=bool),
        )
        res = simulate(trace, OracleScheduler(), processors=2)
        # work 9 at rate 1 until t=1 (8 left), then rate 2 → 1 + 4 = 5
        assert res.execution_makespan == pytest.approx(5.0, abs=1e-4)
        res_off = simulate(
            trace, OracleScheduler(), processors=2, reallot=False
        )
        assert res_off.execution_makespan == pytest.approx(9.0, abs=1e-4)

    def test_unit_model(self):
        dag = chain(3)
        trace = JobTrace(
            dag=dag,
            work=np.array([5.0, 5.0, 5.0]),  # ignored by UNIT
            models=np.full(3, ExecutionModel.UNIT, dtype=np.int8),
            initial_tasks=np.array([0]),
            changed_edges=np.ones(2, dtype=bool),
        )
        res = simulate(trace, LevelBasedScheduler(), processors=1)
        assert res.execution_makespan == pytest.approx(3.0, abs=1e-4)


class _Misbehaving(Scheduler):
    """Dispatches newest activations first, violating precedence."""

    name = "misbehaving"

    def prepare(self, ctx):
        self._all = []

    def on_activate(self, v, t):
        self._all.append(v)

    def on_complete(self, v, t):
        pass

    def select(self, max_tasks, t):
        out = self._all[-max_tasks:][::-1]
        self._all = self._all[: -len(out)] if out else self._all
        return out


class _Lazy(Scheduler):
    """Never dispatches anything."""

    name = "lazy"

    def prepare(self, ctx):
        pass

    def on_activate(self, v, t):
        pass

    def on_complete(self, v, t):
        pass

    def select(self, max_tasks, t):
        return []


class TestValidation:
    def test_unsafe_dispatch_aborts(self, diamond):
        # LIFO dispatch on one processor tries to run node 3 while its
        # activated parent 2 is still waiting
        trace = full_trace(diamond)
        with pytest.raises(InvalidDispatchError):
            simulate(trace, _Misbehaving(), processors=1)

    def test_stall_detected(self, diamond_trace):
        with pytest.raises(SchedulerStallError):
            simulate(diamond_trace, _Lazy())

    def test_over_dispatch_rejected(self):
        class Greedy(_Misbehaving):
            name = "greedy"

            def select(self, max_tasks, t):
                return list(self._all)  # ignores max_tasks

        dag = Dag(5, [])
        trace = full_trace(dag)
        with pytest.raises(InvalidDispatchError, match="idle"):
            simulate(trace, Greedy(), processors=2)

    def test_premature_dispatch_of_unactivated_task_rejected(self, diamond):
        class Eager(_Misbehaving):
            name = "eager"

            def select(self, max_tasks, t):
                return [3]  # node 3 has not even been activated yet

        with pytest.raises(InvalidDispatchError, match="dispatched task 3"):
            simulate(full_trace(diamond), Eager(), processors=2)

    def test_duplicate_dispatch_rejected(self):
        class Echo(_Misbehaving):
            name = "echo"

            def select(self, max_tasks, t):
                return [0]  # keeps re-dispatching the running task

        dag = Dag(2, [])
        with pytest.raises(InvalidDispatchError):
            simulate(full_trace(dag), Echo(), processors=2)

    def test_negative_processor_count(self, diamond_trace):
        with pytest.raises(ValueError, match="positive"):
            simulate(diamond_trace, LevelBasedScheduler(), processors=-3)

    def test_stall_error_names_pending_count(self, diamond_trace):
        with pytest.raises(SchedulerStallError, match="pending"):
            simulate(diamond_trace, _Lazy())


class TestOverheadCharging:
    def test_inline_overhead_extends_makespan(self, diamond_trace):
        cheap = simulate(
            diamond_trace,
            LevelBasedScheduler(),
            overhead=OverheadModel(op_cost=0.0),
        )
        dear = simulate(
            diamond_trace,
            LevelBasedScheduler(),
            overhead=OverheadModel(op_cost=0.5),
        )
        assert dear.makespan > cheap.makespan
        assert dear.scheduling_overhead > 0
        assert dear.execution_makespan == pytest.approx(
            cheap.execution_makespan, abs=1e-6
        )

    def test_tally_mode_does_not_delay(self, diamond_trace):
        res = simulate(
            diamond_trace,
            LevelBasedScheduler(),
            overhead=OverheadModel(op_cost=0.5, charge_inline=False),
        )
        assert res.scheduling_overhead > 0
        assert res.makespan == pytest.approx(
            res.execution_makespan, abs=1e-6
        )

    def test_ops_recorded(self, diamond_trace):
        res = simulate(diamond_trace, LevelBasedScheduler())
        assert res.scheduling_ops > 0
        assert res.precompute_ops > 0
        assert res.extras["select_calls"] >= 1
