"""Chaos harness: every registered scheduler under random fault plans.

Property-based sweep over (scheduler, random trace, random fault plan)
triples. Three guarantees are enforced:

* a faulted run either finishes strict-mode clean or aborts with the
  designated permanent-failure error — never a stall, an invalid
  dispatch, or an invariant violation;
* replaying the same plan on the same trace yields a bit-identical
  fault log;
* a livelock (always-failing task with unlimited retries) is caught by
  the no-progress watchdog with a structured error, for every
  scheduler.

``derandomize=True`` keeps the sweep reproducible in CI: the examples
are a pure function of the property, not of a per-run entropy source.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.schedulers import scheduler_registry
from repro.sim import (
    FaultLog,
    FaultPlan,
    NoProgressError,
    TaskFailedPermanentlyError,
    simulate,
)

from ..conftest import random_job_trace

ALL_SCHEDULERS = sorted(scheduler_registry())

CHAOS_SETTINGS = settings(
    max_examples=12,
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def fault_plans(draw) -> FaultPlan:
    """Small but adversarial plans: every fault source can co-occur."""
    return FaultPlan(
        seed=draw(st.integers(0, 2**16)),
        task_fail_prob=draw(st.sampled_from([0.0, 0.2, 0.5, 0.9])),
        max_retries=draw(st.sampled_from([None, 0, 1, 3, 8])),
        on_exhaustion=draw(st.sampled_from(["raise", "degrade"])),
        backoff_base=0.25,
        proc_fail_rate=draw(st.sampled_from([0.0, 0.3, 1.0])),
        proc_downtime=(0.2, 1.0),
        min_processors=draw(st.integers(1, 2)),
        straggler_prob=draw(st.sampled_from([0.0, 0.4])),
    )


def fault_log_json(result) -> list:
    return FaultLog(result.fault_log).to_json_list()


@pytest.mark.timeout(300)
@pytest.mark.parametrize("name", ALL_SCHEDULERS)
@CHAOS_SETTINGS
@given(trace_seed=st.integers(0, 10**6), plan=fault_plans())
def test_chaos_run_is_strict_clean_and_replayable(name, trace_seed, plan):
    trace = random_job_trace(trace_seed, layers=(2, 4, 5, 4, 2))
    factory = scheduler_registry()[name]
    try:
        res = simulate(
            trace, factory(), processors=3, faults=plan, strict=True
        )
    except TaskFailedPermanentlyError:
        # legal only when the plan actually allows permanent failure
        assert plan.on_exhaustion == "raise"
        assert plan.max_retries is not None
        assert plan.task_fail_prob > 0.0
        # the abort itself must replay identically
        with pytest.raises(TaskFailedPermanentlyError) as replay:
            simulate(trace, factory(), processors=3, faults=plan)
        return
    replay = simulate(trace, factory(), processors=3, faults=plan)
    assert fault_log_json(replay) == fault_log_json(res)
    assert replay.makespan == res.makespan
    assert replay.tasks_executed == res.tasks_executed


@pytest.mark.timeout(120)
@pytest.mark.parametrize("name", ALL_SCHEDULERS)
def test_livelock_watchdog_fires_for_every_scheduler(name):
    trace = random_job_trace(7, layers=(2, 3, 2))
    with pytest.raises(NoProgressError) as exc:
        simulate(
            trace,
            scheduler_registry()[name](),
            processors=3,
            faults=FaultPlan(seed=1, task_fail_prob=1.0, max_retries=None,
                             backoff_cap=0.5),
            watchdog=300,
        )
    assert exc.value.events > 300
    assert exc.value.pending > 0
