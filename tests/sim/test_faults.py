"""Fault-injection layer tests.

Covers the :class:`FaultPlan` surface (validation, JSON round-trip,
backoff math), counter-based determinism, the golden byte-identity
guarantee of the no-fault path, retry/degrade semantics, processor
churn, watchdog/deadline aborts, and the event-heap compaction
regression for repeated reallotment.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.dag import Dag
from repro.schedulers import scheduler_registry
from repro.sim import (
    DeadlineExceededError,
    FaultEvent,
    FaultInjector,
    FaultLog,
    FaultPlan,
    NoProgressError,
    SimulationResult,
    TaskFailedPermanentlyError,
    simulate,
)
from repro.tasks import ExecutionModel, JobTrace

from ..conftest import random_job_trace

GOLDEN_DIR = Path(__file__).with_name("golden")


def flaky_plan(**over):
    base = dict(seed=3, task_fail_prob=0.35, max_retries=10)
    base.update(over)
    return FaultPlan(**base)


def single_malleable_trace(total_work=400.0):
    dag = Dag(1, [])
    return JobTrace(
        dag=dag,
        work=np.array([total_work]),
        span=np.array([0.0]),
        models=np.array([ExecutionModel.MALLEABLE], dtype=np.int8),
        initial_tasks=np.array([0]),
        changed_edges=np.zeros(0, dtype=bool),
        name="one-malleable",
    )


# ----------------------------------------------------------------------
# FaultPlan
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_default_plan_is_empty(self):
        assert FaultPlan().is_empty()
        assert not flaky_plan().is_empty()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(task_fail_prob=-0.1),
            dict(task_fail_prob=1.5),
            dict(fail_fraction=(0.9, 0.1)),
            dict(fail_fraction=(-0.1, 0.5)),
            dict(max_retries=-1),
            dict(backoff_base=-1.0),
            dict(backoff_factor=0.0),
            dict(on_exhaustion="explode"),
            dict(proc_fail_rate=-2.0),
            dict(proc_downtime=(5.0, 1.0)),
            dict(min_processors=0),
            dict(straggler_prob=2.0),
            dict(straggler_factor=(0.5, 2.0)),
        ],
    )
    def test_validation_rejects(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)

    def test_backoff_schedule_is_capped_exponential(self):
        plan = FaultPlan(backoff_base=0.5, backoff_factor=2.0,
                         backoff_cap=3.0)
        delays = [plan.backoff_delay(k) for k in (1, 2, 3, 4, 5)]
        assert delays == [0.5, 1.0, 2.0, 3.0, 3.0]

    def test_json_round_trip(self):
        plan = FaultPlan(
            seed=9, task_fail_prob=0.2, max_retries=None,
            on_exhaustion="degrade", proc_fail_rate=0.1,
            straggler_prob=0.3, straggler_factor=(2.0, 5.0),
        )
        assert FaultPlan.from_json_dict(plan.to_json_dict()) == plan

    def test_json_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown"):
            FaultPlan.from_json_dict({"seed": 1, "chaos_level": 11})


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_attempt_outcomes_replay_identically(self):
        plan = flaky_plan(straggler_prob=0.4)
        a, b = FaultInjector(plan), FaultInjector(plan)
        for node in range(50):
            for attempt in (1, 2, 3):
                assert a.attempt_outcome(node, attempt) == b.attempt_outcome(
                    node, attempt
                )

    def test_same_seed_gives_bit_identical_fault_log(self):
        trace = random_job_trace(23)
        plan = flaky_plan(straggler_prob=0.2, proc_fail_rate=0.1)
        logs = []
        for _ in range(2):
            res = simulate(
                trace, scheduler_registry()["hybrid"](), processors=4,
                faults=plan,
            )
            logs.append(json.dumps(
                FaultLog(res.fault_log).to_json_list(), sort_keys=True
            ))
        assert logs[0] == logs[1]

    def test_different_seed_differs(self):
        trace = random_job_trace(23)
        make = scheduler_registry()["levelbased"]
        r1 = simulate(trace, make(), processors=4, faults=flaky_plan(seed=1))
        r2 = simulate(trace, make(), processors=4, faults=flaky_plan(seed=2))
        as_json = lambda r: FaultLog(r.fault_log).to_json_list()  # noqa: E731
        assert as_json(r1) != as_json(r2)


# ----------------------------------------------------------------------
# golden byte-identity of the no-fault path
# ----------------------------------------------------------------------
def _datalog_trace(cached: bool) -> JobTrace:
    """Mirrors scripts/make_golden_results.py::datalog_trace.

    The goldens were generated through the *cached* pipeline; checking
    them here through the *cold* pipeline pins byte-identity of the two
    compilation paths on top of the engine's numeric output.
    """
    from repro.datalog import (
        CompiledProgramCache,
        Database,
        Delta,
        compile_update,
        parse_program,
    )

    program = parse_program(
        """
        path(X, Y) :- edge(X, Y).
        path(X, Z) :- path(X, Y), edge(Y, Z).
        """
    )
    edb = Database()
    edb.relation("edge", 2)
    for t in [(0, 1), (1, 2), (2, 3), (3, 4)]:
        edb.add_fact("edge", t)
    deltas = [
        Delta().insert("edge", (4, 5)).delete("edge", (1, 2)),
        Delta().insert("edge", (1, 2)).insert("edge", (5, 6)),
    ]
    cache = CompiledProgramCache(program) if cached else None
    cu = None
    for delta in deltas:
        if cache is not None:
            cu = cache.compile(program, edb, delta, name="dlog")
            cache.commit(cu)
        else:
            cu = compile_update(program, edb, delta, name="dlog")
        edb = cu.edb_new
    return cu.trace


TRACES = {
    "diamond": lambda: JobTrace(
        dag=Dag(4, [(0, 1), (0, 2), (1, 3), (2, 3)]),
        work=np.ones(4),
        initial_tasks=np.array([0]),
        changed_edges=np.ones(4, dtype=bool),
        name="diamond",
    ),
    "rand7": lambda: random_job_trace(7),
    "rand23": lambda: random_job_trace(23),
    "dlog": lambda: _datalog_trace(cached=False),
}


@pytest.mark.parametrize(
    "golden", sorted(GOLDEN_DIR.glob("*.json")), ids=lambda p: p.stem
)
@pytest.mark.parametrize("faults", [None, FaultPlan()],
                         ids=["no-plan", "empty-plan"])
def test_no_fault_run_matches_golden_bytes(golden, faults):
    trace_name, sched_name = golden.stem.split("__", 1)
    res = simulate(
        TRACES[trace_name](),
        scheduler_registry()[sched_name](),
        processors=4,
        record_schedule=True,
        faults=faults,
    )
    assert json.dumps(res.to_json_dict(), sort_keys=True) + "\n" == (
        golden.read_text()
    )


@pytest.mark.parametrize("sched_name", sorted(scheduler_registry()))
def test_datalog_golden_trace_cached_equals_cold(sched_name):
    """The cached and cold compilation pipelines simulate to identical
    JSON for every registered scheduler (the dlog goldens were written
    through the cached path; the golden test reads the cold one)."""
    res_cold = simulate(
        _datalog_trace(cached=False), scheduler_registry()[sched_name](),
        processors=4, record_schedule=True,
    )
    res_cached = simulate(
        _datalog_trace(cached=True), scheduler_registry()[sched_name](),
        processors=4, record_schedule=True,
    )
    assert (
        json.dumps(res_cold.to_json_dict(), sort_keys=True)
        == json.dumps(res_cached.to_json_dict(), sort_keys=True)
    )


# ----------------------------------------------------------------------
# retry / exhaustion semantics
# ----------------------------------------------------------------------
class TestRetry:
    def test_failed_tasks_retry_and_run_completes(self):
        trace = random_job_trace(7)
        res = simulate(
            trace, scheduler_registry()["levelbased"](), processors=4,
            faults=flaky_plan(), strict=True,
        )
        log = FaultLog(res.fault_log)
        assert log.select("task-fail")
        assert len(log.select("task-retry")) == len(log.select("task-fail"))
        assert res.tasks_executed == trace.propagation.executed.sum()

    def test_retry_waits_out_the_backoff(self):
        trace = random_job_trace(7)
        res = simulate(
            trace, scheduler_registry()["oracle"](), processors=4,
            faults=flaky_plan(backoff_base=0.25),
        )
        fails = {
            (e.node, e.attempt): e for e in res.fault_log
            if e.kind == "task-fail"
        }
        for e in res.fault_log:
            if e.kind == "task-retry":
                cause = fails.get((e.node, e.attempt - 1))
                if cause is not None and "backoff" in cause.data:
                    assert e.time >= cause.time + cause.data["backoff"] - 1e-9

    def test_exhaustion_raises_by_default(self, diamond_trace):
        with pytest.raises(TaskFailedPermanentlyError) as exc:
            simulate(
                diamond_trace, scheduler_registry()["levelbased"](),
                faults=FaultPlan(seed=1, task_fail_prob=1.0, max_retries=2),
            )
        assert exc.value.attempts == 3

    def test_degrade_quarantines_and_reports_partial_completion(self):
        trace = random_job_trace(23)
        res = simulate(
            trace, scheduler_registry()["hybrid"](), processors=4,
            faults=FaultPlan(seed=5, task_fail_prob=0.5, max_retries=1,
                             on_exhaustion="degrade"),
            strict=True,
        )
        lost = res.extras.get("quarantined_nodes", [])
        assert lost, "this seed is known to exhaust at least one task"
        n_active = int(trace.propagation.executed.sum())
        assert res.tasks_executed == n_active - len(lost)
        directly = {e.node for e in res.fault_log if e.kind == "quarantine"}
        assert directly <= set(lost)


# ----------------------------------------------------------------------
# processor churn
# ----------------------------------------------------------------------
class TestChurn:
    def test_churn_run_is_strict_clean(self):
        trace = random_job_trace(7)
        res = simulate(
            trace, scheduler_registry()["levelbased"](), processors=4,
            faults=FaultPlan(seed=8, proc_fail_rate=0.4), strict=True,
        )
        applied = [e for e in res.fault_log
                   if e.kind == "proc-fail" and e.data["applied"]]
        assert applied
        assert res.tasks_executed == trace.propagation.executed.sum()

    def test_capacity_never_drops_below_floor(self):
        trace = random_job_trace(23)
        res = simulate(
            trace, scheduler_registry()["hybrid"](), processors=4,
            faults=FaultPlan(seed=8, proc_fail_rate=1.5, min_processors=2),
        )
        capacity = 4
        for e in res.fault_log:
            if e.kind == "proc-fail" and e.data["applied"]:
                capacity -= 1
            elif e.kind == "proc-recover":
                capacity += 1
            assert capacity >= 2

    def test_stragglers_inflate_durations(self):
        trace = random_job_trace(7)
        make = scheduler_registry()["levelbased"]
        clean = simulate(trace, make(), processors=4)
        slow = simulate(
            trace, make(), processors=4,
            faults=FaultPlan(seed=4, straggler_prob=0.5,
                             straggler_factor=(2.0, 3.0)),
        )
        events = [e for e in slow.fault_log if e.kind == "straggler"]
        assert events
        assert all(2.0 <= e.data["factor"] <= 3.0 for e in events)
        assert slow.makespan > clean.makespan


# ----------------------------------------------------------------------
# watchdog and deadline
# ----------------------------------------------------------------------
class TestAborts:
    def test_watchdog_fires_on_livelock(self, diamond_trace):
        # every attempt fails and retries are unlimited: sim time
        # advances forever without a single task resolving
        with pytest.raises(NoProgressError) as exc:
            simulate(
                diamond_trace, scheduler_registry()["levelbased"](),
                faults=FaultPlan(seed=1, task_fail_prob=1.0,
                                 max_retries=None),
                watchdog=200,
            )
        assert exc.value.events > 200
        assert exc.value.pending > 0

    def test_deadline_exceeded_is_structured(self, diamond_trace):
        with pytest.raises(DeadlineExceededError):
            simulate(
                diamond_trace, scheduler_registry()["levelbased"](),
                faults=FaultPlan(seed=1, task_fail_prob=1.0,
                                 max_retries=None),
                deadline=0.0,
            )


# ----------------------------------------------------------------------
# serialization
# ----------------------------------------------------------------------
class TestSerialization:
    def test_result_round_trips_with_fault_log(self):
        trace = random_job_trace(7)
        res = simulate(
            trace, scheduler_registry()["levelbased"](), processors=4,
            faults=flaky_plan(), record_schedule=True,
        )
        assert res.fault_log
        back = SimulationResult.from_json_dict(res.to_json_dict())
        assert back.fault_log == res.fault_log
        assert back.to_json_dict() == res.to_json_dict()

    def test_empty_fault_log_is_omitted_from_json(self, diamond_trace):
        res = simulate(diamond_trace, scheduler_registry()["levelbased"]())
        assert "fault_log" not in res.to_json_dict()

    def test_fault_event_round_trip(self):
        ev = FaultEvent("task-fail", 1.5, node=3, attempt=2,
                        data={"lost": 0.75})
        assert FaultEvent.from_json_dict(ev.to_json_dict()) == ev


# ----------------------------------------------------------------------
# event-heap compaction (reallot_idle growth regression)
# ----------------------------------------------------------------------
class TestHeapCompaction:
    def test_churned_malleable_task_keeps_heap_bounded(self):
        # One divisible task, heavy churn: every kill shrinks the
        # allotment and every recovery re-grows it via reallot_idle,
        # superseding the task's pending completion event each time.
        # Before eager compaction the heap accumulated one stale entry
        # per version bump — O(churn events) for a single running task.
        stats: dict = {}
        res = simulate(
            single_malleable_trace(400.0),
            scheduler_registry()["oracle"](),
            processors=8,
            faults=FaultPlan(seed=2, proc_fail_rate=2.0,
                             proc_downtime=(0.1, 0.5)),
            debug_stats=stats,
        )
        churn = [e for e in res.fault_log
                 if e.kind == "proc-fail" and e.data["applied"]]
        assert len(churn) > 60, "scenario must actually churn"
        assert stats["peak_event_heap"] <= 80

    def test_no_fault_run_reports_heap_stats(self, diamond_trace):
        stats: dict = {}
        simulate(diamond_trace, scheduler_registry()["levelbased"](),
                 debug_stats=stats)
        assert 0 < stats["peak_event_heap"] <= 4
