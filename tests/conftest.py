"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dag import Dag
from repro.tasks import JobTrace


@pytest.fixture
def diamond() -> Dag:
    """0 → {1, 2} → 3."""
    return Dag(4, [(0, 1), (0, 2), (1, 3), (2, 3)])


@pytest.fixture
def two_chains() -> Dag:
    """Two independent chains 0→1→2 and 3→4."""
    return Dag(5, [(0, 1), (1, 2), (3, 4)])


@pytest.fixture
def diamond_trace(diamond: Dag) -> JobTrace:
    """Diamond with unit work, everything activated."""
    return JobTrace(
        dag=diamond,
        work=np.ones(4),
        initial_tasks=np.array([0]),
        changed_edges=np.ones(diamond.n_edges, dtype=bool),
        name="diamond",
    )


def random_job_trace(seed: int, layers=(3, 5, 8, 8, 5, 3)) -> JobTrace:
    """A small random trace; helper importable by test modules."""
    from repro.dag import layered_dag

    rng = np.random.default_rng(seed)
    dag = layered_dag(list(layers), edge_prob=0.3, rng=rng, skip_prob=0.3)
    n_init = 1 + int(rng.integers(0, min(3, dag.sources().size)))
    return JobTrace(
        dag=dag,
        work=rng.uniform(0.5, 3.0, dag.n_nodes),
        initial_tasks=dag.sources()[:n_init],
        changed_edges=rng.random(dag.n_edges) < 0.6,
        name=f"rand{seed}",
    )
