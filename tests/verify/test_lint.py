"""Contract-linter tests: exact rule ids on the bad fixtures, a clean
bill of health for every shipped scheduler, and suppression semantics."""

from pathlib import Path

import pytest

from repro.verify import (
    ALL_RULES,
    LintFinding,
    format_findings,
    lint_paths,
    lint_source,
)

FIXTURE = Path(__file__).with_name("fixtures_bad_schedulers.py")
SCHEDULERS_DIR = Path(__file__).parents[2] / "src" / "repro" / "schedulers"


@pytest.fixture(scope="module")
def findings() -> list[LintFinding]:
    return lint_paths([FIXTURE])


def by_class(findings, name):
    return [f for f in findings if f.message.startswith(name + ":")]


# ----------------------------------------------------------------------
# the shipped schedulers are contract-clean
# ----------------------------------------------------------------------
def test_shipped_schedulers_lint_clean():
    assert lint_paths([SCHEDULERS_DIR]) == []


# ----------------------------------------------------------------------
# clairvoyance
# ----------------------------------------------------------------------
def test_clairvoyant_scheduler_all_ground_truth_reads_fire(findings):
    msgs = [f.message for f in by_class(findings, "ClairvoyantScheduler")]
    rules = {f.rule for f in by_class(findings, "ClairvoyantScheduler")}
    assert rules == {"clairvoyance"}
    assert any("trace.propagation" in m for m in msgs)
    assert any("trace.fresh_activation_state" in m for m in msgs)
    assert any(".will_execute" in m for m in msgs)
    assert any("._ready_events" in m for m in msgs)
    assert any(".push_ready_events" in m for m in msgs)
    assert len(msgs) == 5


def test_level_family_may_not_touch_oracle(findings):
    fam = by_class(findings, "PeekingLevelScheduler")
    assert {f.rule for f in fam} == {"clairvoyance"}
    msgs = [f.message for f in fam]
    assert any("accesses the readiness oracle" in m for m in msgs)
    assert any(".drain_ready_events" in m for m in msgs)


def test_oracle_feed_allowed_outside_family():
    src = """
from repro.schedulers.base import Scheduler

class FeedScheduler(Scheduler):
    def prepare(self, ctx): self._oracle = ctx.oracle
    def on_activate(self, v, t): self.ops += 1
    def on_complete(self, v, t): self.ops += 1
    def select(self, max_tasks, t):
        self.ops += 1
        return self._oracle.drain_ready_events()[:max_tasks]
"""
    assert lint_source(src) == []


def test_alias_chain_through_local_and_self_resolves():
    src = """
class AliasScheduler(Scheduler):
    def prepare(self, ctx):
        handle = ctx.oracle
        self._o = handle
    def select(self, max_tasks, t):
        return self._o._ready_events[:max_tasks]
"""
    fs = lint_source(src)
    assert [f.rule for f in fs] == ["clairvoyance"]
    assert "._ready_events" in fs[0].message


# ----------------------------------------------------------------------
# ops-accounting
# ----------------------------------------------------------------------
def test_uncharged_loops_in_hooks_fire(findings):
    under = by_class(findings, "UndercountingScheduler")
    assert {f.rule for f in under} == {"ops-accounting"}
    assert {m.split("loop in ")[1].split("(")[0] for m in
            (f.message for f in under)} == {"on_complete", "select"}


def test_charged_loop_is_clean():
    src = """
class FineScheduler(Scheduler):
    def select(self, max_tasks, t):
        out = []
        for v in self._queue:
            self.ops += 1
            out.append(v)
        return out
"""
    assert lint_source(src) == []


def test_loop_outside_hooks_is_not_checked():
    src = """
class PrepScheduler(Scheduler):
    def prepare(self, ctx):
        for v in range(10):
            pass
"""
    assert lint_source(src) == []


def test_delegating_loop_counts_as_charged():
    src = """
class DelegatingScheduler(Scheduler):
    def select(self, max_tasks, t):
        out = []
        for v in self._queue:
            out.extend(self._probe(v))
        return out
"""
    assert lint_source(src) == []


# ----------------------------------------------------------------------
# api-contract
# ----------------------------------------------------------------------
def test_structural_rules_fire(findings):
    sloppy = by_class(findings, "SloppyScheduler")
    assert {f.rule for f in sloppy} == {"api-contract"}
    msgs = [f.message for f in sloppy]
    assert any("super().__init__()" in m for m in msgs)
    assert any("reset_counters" in m for m in msgs)
    assert any("SchedulerContext" in m for m in msgs)
    assert len(msgs) == 3


def test_uncharged_on_failure_override_fires(findings):
    unc = by_class(findings, "UnchargedFailureScheduler")
    assert {f.rule for f in unc} == {"api-contract"}
    assert len(unc) == 1
    assert "on_failure" in unc[0].message
    assert "self.ops" in unc[0].message


def test_charged_on_failure_is_clean():
    src = """
class RetryScheduler(Scheduler):
    def on_failure(self, v, t):
        self._queue.append(v)
        self.ops += 1
"""
    assert lint_source(src) == []


def test_delegating_on_failure_is_clean():
    # the Scheduler default re-runs on_activate; an override that keeps
    # the delegation inherits that hook's charge
    src = """
class DelegatingRetryScheduler(Scheduler):
    def on_failure(self, v, t):
        self.on_activate(v, t)
"""
    assert lint_source(src) == []


# ----------------------------------------------------------------------
# suppression
# ----------------------------------------------------------------------
def test_suppressions(findings):
    sup = by_class(findings, "SuppressedScheduler")
    # two of the three violations carry a matching waiver; the third
    # names the wrong rule and must survive
    assert len(sup) == 1
    assert sup[0].rule == "clairvoyance"
    assert "trace.n_active" in sup[0].message


# ----------------------------------------------------------------------
# mechanics: scope, locations, formatting
# ----------------------------------------------------------------------
def test_non_scheduler_classes_are_skipped():
    src = """
class Helper:
    def prepare(self, ctx):
        ctx.processors = 0
        return ctx.trace.propagation
"""
    assert lint_source(src) == []


def test_cross_file_base_resolution(tmp_path):
    base = "class MyBase(LevelBasedScheduler):\n    pass\n"
    sub = (
        "class Sub(MyBase):\n"
        "    def prepare(self, ctx):\n"
        "        self._o = ctx.oracle\n"
    )
    from repro.verify import lint_modules

    fs = lint_modules([("base.py", base), ("sub.py", sub)])
    assert [f.rule for f in fs] == ["clairvoyance"]
    assert fs[0].path == "sub.py"


def test_findings_carry_location_and_format(findings):
    f = findings[0]
    assert f.path.endswith("fixtures_bad_schedulers.py")
    assert f.line > 0 and f.col > 0
    assert f.rule in ALL_RULES
    text = format_findings(findings)
    assert f"{f.path}:{f.line}:{f.col}: [{f.rule}]" in text
    assert "hint:" in text


def test_lint_paths_rejects_non_python(tmp_path):
    with pytest.raises(ValueError, match="not a python file"):
        lint_paths([tmp_path / "nope.txt"])


# ----------------------------------------------------------------------
# api-contract: ops charged outside an active span
# ----------------------------------------------------------------------
def test_off_span_charges_fire(findings):
    off = by_class(findings, "OffSpanChargingScheduler")
    assert {f.rule for f in off} == {"api-contract"}
    assert len(off) == 2
    msgs = [f.message for f in off]
    assert any("__init__() charges self.ops" in m for m in msgs)
    assert any("recompute_priorities() charges self.ops" in m for m in msgs)
    assert all("outside an active span" in m for m in msgs)


def test_helper_reachable_from_hook_is_clean():
    # the engine opens a span around select(); a helper it calls
    # transitively charges inside that span
    src = """
class LayeredScheduler(Scheduler):
    def select(self, max_tasks, t):
        return self._scan(max_tasks)

    def _scan(self, max_tasks):
        return self._probe(max_tasks)

    def _probe(self, max_tasks):
        self.ops += max_tasks
        return []
"""
    assert lint_source(src) == []


def test_charge_ops_outside_hooks_fires():
    src = """
class SneakyScheduler(Scheduler):
    def select(self, max_tasks, t):
        self.ops += 1
        return []

    def refresh(self):
        self.charge_ops(3, "refresh_ops")
"""
    found = lint_source(src)
    assert len(found) == 1
    assert found[0].rule == "api-contract"
    assert "refresh() charges self.ops" in found[0].message


def test_off_span_charge_suppressible():
    src = """
class WaivedScheduler(Scheduler):
    def select(self, max_tasks, t):
        self.ops += 1
        return []

    def refresh(self):
        self.charge_ops(3)  # verify: ignore[api-contract]
"""
    assert lint_source(src) == []
