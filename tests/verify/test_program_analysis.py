"""Tests for the whole-program Datalog static analyzer.

One seeded fixture exercises all five finding classes — safety,
stratification, arity, dead/unreachable rules, duplicate rules, and
cartesian joins — and the runtime hooks (dead-rule pruning, join-order
hints) the compiler and plan cache consume.
"""

import json

import pytest

from repro.datalog import parse_program
from repro.verify import findings_to_json
from repro.verify.program import (
    ALL_PROGRAM_RULES,
    analyze_path,
    analyze_program,
    analyze_source,
)

BAD = """\
% edb: edge/2, label/2
% output: report, pairs, link3, odd, even

report(X, Z) :- edge(X, Y), !label(Y, Z).
report(X, Z) :- edge(X, Z).
report(A, B) :- edge(A, B).
pairs(X, Y) :- edge(X, A), label(Y, B).
link3(X, Z) :- edge(X, Y), label(Z, W), edge(Y, W).
odd(X) :- edge(X, Y), !even(Y).
even(X) :- edge(X, Y), !odd(Y).
spook(X) :- shadow(X, X).
tri(X) :- edge(X, Y), edge(Y, X), edge(X, Y, Z).
"""

CLEAN = """\
% edb: edge/2, source/1
% output: reach

reach(X) :- source(X).
reach(Y) :- reach(X), edge(X, Y).
"""


@pytest.fixture(scope="module")
def bad():
    return analyze_source(BAD, "bad.dlog")


def test_clean_program_has_no_findings():
    assert analyze_source(CLEAN, "ok.dlog").findings == []


def test_all_five_classes_detected(bad):
    rules = {f.rule for f in bad.findings}
    assert {
        "safety",
        "stratification",
        "arity",
        "dead-rule",
        "duplicate-rule",
        "cartesian-join",
    } <= rules
    assert rules <= set(ALL_PROGRAM_RULES)


def test_findings_carry_file_and_line(bad):
    by_rule = {}
    for f in bad.findings:
        by_rule.setdefault(f.rule, f)
    # every class anchors to the offending source line
    assert by_rule["safety"].line == 4
    assert by_rule["duplicate-rule"].line == 6
    assert by_rule["cartesian-join"].line == 7
    assert by_rule["stratification"].line == 9
    assert by_rule["dead-rule"].line == 11
    assert by_rule["arity"].line == 12
    for f in bad.findings:
        assert f.path == "bad.dlog"
        assert f.format().startswith(f"bad.dlog:{f.line}:{f.col}:")


def test_safety_names_the_unbound_variable(bad):
    msgs = [f.message for f in bad.findings if f.rule == "safety"]
    assert any("head variable Z" in m for m in msgs)
    assert any("!label(Y, Z)" in m for m in msgs)


def test_stratification_names_the_cycle(bad):
    strat = [f for f in bad.findings if f.rule == "stratification"]
    assert len(strat) == 2  # one per negative edge inside the SCC
    assert any("odd -> even -> odd" in f.message for f in strat)
    assert all(f.severity == "error" for f in strat)


def test_arity_reports_the_declaration_source(bad):
    (f,) = [f for f in bad.findings if f.rule == "arity"]
    assert "arity 3" in f.message and "arity 2" in f.message
    assert "edb declaration" in f.message


def test_duplicate_is_alpha_renaming_aware(bad):
    (f,) = [f for f in bad.findings if f.rule == "duplicate-rule"]
    assert "report#3: duplicate of report#2" in f.message


def test_cartesian_hint_gives_a_repair_order(bad):
    carts = {f.line: f for f in bad.findings if f.rule == "cartesian-join"}
    assert "no reordering helps" in carts[7].hint
    assert "edge(X, Y), edge(Y, W), label(Z, W)" in carts[8].hint


def test_rule_ids_are_stable_per_head(bad):
    assert bad.rule_ids == [
        "report#1", "report#2", "report#3", "pairs#1", "link3#1",
        "odd#1", "even#1", "spook#1", "tri#1",
    ]


def test_dead_rule_flags_both_kinds(bad):
    dead = [f for f in bad.findings if f.rule == "dead-rule"]
    assert any("can never fire" in f.message for f in dead)
    assert any("unreachable from the declared outputs" in f.message
               for f in dead)
    assert sorted(bad.unreachable_rules) == [7, 8]


def test_undefined_predicate_warns(bad):
    (f,) = [f for f in bad.findings if f.rule == "undefined-predicate"]
    assert "'shadow'" in f.message and f.severity == "warning"


def test_errors_exclude_warnings(bad):
    errors = bad.errors()
    assert errors and all(f.severity == "error" for f in errors)
    assert {f.rule for f in errors} == {"safety", "stratification", "arity"}


def test_findings_sorted_by_position(bad):
    keys = [(f.path, f.line, f.col, f.rule) for f in bad.findings]
    assert keys == sorted(keys)


def test_json_round_trip(bad):
    data = json.loads(json.dumps(findings_to_json(bad.findings)))
    assert len(data) == len(bad.findings)
    assert data[0]["path"] == "bad.dlog"
    assert {d["severity"] for d in data} == {"error", "warning"}


def test_suppression_silences_one_rule_on_one_line():
    src = BAD.replace(
        "pairs(X, Y) :- edge(X, A), label(Y, B).",
        "pairs(X, Y) :- edge(X, A), label(Y, B)."
        "  % verify: ignore[cartesian-join]",
    )
    an = analyze_source(src, "bad.dlog")
    carts = [f for f in an.findings if f.rule == "cartesian-join"]
    assert [f.line for f in carts] == [8]  # line 7's is suppressed


def test_bare_suppression_silences_every_rule_on_the_line():
    src = "p(X, Z) :- q(X).  % verify: ignore\n"
    an = analyze_source(src, "p.dlog")
    assert an.findings == []


def test_malformed_pragmas_are_reported():
    an = analyze_source(
        "% edb: edge/two\n% output: Report\np(X) :- edge(X, X).\n",
        "p.dlog",
    )
    assert [f.rule for f in an.findings].count("pragma") == 2
    assert all(f.severity == "error" for f in an.findings
               if f.rule == "pragma")


def test_undeclared_output_warns():
    an = analyze_source(
        "% edb: edge/2\n% output: ghost\np(X) :- edge(X, X).\n",
        "p.dlog",
    )
    assert any(
        f.rule == "pragma" and "ghost" in f.message
        and f.severity == "warning"
        for f in an.findings
    )


def test_syntax_errors_recover_and_keep_analyzing():
    src = "p(X :- q(X).\nr(Y) :- s(Y, Y, Y).\nr(Z) :- s(Z, Z).\n"
    an = analyze_source(src, "p.dlog")
    rules = [f.rule for f in an.findings]
    assert "syntax" in rules  # the bad clause
    assert "arity" in rules  # analysis continued past it
    (syntax,) = [f for f in an.findings if f.rule == "syntax"]
    assert syntax.line == 1


def test_analyze_path_reads_the_example(tmp_path):
    p = tmp_path / "prog.dlog"
    p.write_text(CLEAN)
    an = analyze_path(p)
    assert an.findings == [] and an.path == str(p)


# ----------------------------------------------------------------------
# runtime hooks
# ----------------------------------------------------------------------
def test_prunable_rules_tracks_live_predicates():
    prog = parse_program(
        "path(X, Y) :- edge(X, Y).\n"
        "path(X, Z) :- path(X, Y), edge(Y, Z).\n"
        "trail(X, Y) :- path(X, Y), barrier(X).\n"
    )
    an = analyze_program(prog)
    assert sorted(an.prunable_rules({"edge"})) == [2]
    assert an.prunable_rules({"edge", "barrier"}) == frozenset()
    # no live EDB at all: nothing fires
    assert sorted(an.prunable_rules(())) == [0, 1, 2]


def test_pruned_program_is_identity_when_nothing_dies():
    prog = parse_program("p(X) :- q(X).\n")
    an = analyze_program(prog)
    assert an.pruned_program({"q"}) is prog
    assert len(an.pruned_program(()).rules) == 0


def test_negation_is_ignored_conservatively():
    # r reads !s; s empty makes the negation *more* permissive, so the
    # rule must not be considered dead
    prog = parse_program("r(X) :- q(X), !s(X).\ns(X) :- t(X).\n")
    an = analyze_program(prog)
    assert 0 not in an.prunable_rules({"q"})


def test_join_orders_rekeyed_for_pruned_program():
    prog = parse_program(
        "gone(X) :- vanished(X).\n"
        "wide(X, Z) :- edge(X, Y), label(Z, W), edge(Y, W).\n"
    )
    an = analyze_program(prog)
    assert an.join_orders == {1: (0, 2, 1)}
    pruned = an.pruned_program({"edge", "label"})
    assert len(pruned.rules) == 1
    assert an.join_orders_for(pruned) == {0: (0, 2, 1)}
    assert an.join_orders_for(prog) == {1: (0, 2, 1)}
