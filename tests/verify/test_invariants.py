"""Invariant-checker tests: clean runs verify OK, and every mutation of
a recorded result is rejected with the right violation kind."""

import dataclasses
import json

import numpy as np
import pytest

from repro.dag import Dag
from repro.sim import DispatchRecord, SimulationResult, simulate
from repro.schedulers import HybridScheduler, LevelBasedScheduler
from repro.tasks import ExecutionModel, JobTrace
from repro.verify import (
    VIOLATION_KINDS,
    InvariantViolationError,
    check_invariants,
)


@pytest.fixture
def run(diamond_trace):
    res = simulate(
        diamond_trace, LevelBasedScheduler(), processors=2,
        record_schedule=True,
    )
    return diamond_trace, res


def mutate(res: SimulationResult, **field_overrides) -> SimulationResult:
    return dataclasses.replace(res, **field_overrides)


# ----------------------------------------------------------------------
# the happy path
# ----------------------------------------------------------------------
def test_clean_run_verifies_ok(run):
    trace, res = run
    report = check_invariants(trace, res, reallot=True)
    assert report.ok
    assert report.kinds() == set()
    assert "OK" in report.summary()
    assert report.bounds["makespan_upper"] >= report.bounds["work_lower"]
    assert report.bounds["critical_path"] > 0


def test_no_schedule_is_an_error(diamond_trace):
    res = simulate(diamond_trace, LevelBasedScheduler(), processors=2)
    with pytest.raises(ValueError, match="no recorded schedule"):
        check_invariants(diamond_trace, res)


# ----------------------------------------------------------------------
# active set / exactly-once
# ----------------------------------------------------------------------
def test_missing_task_detected(run):
    trace, res = run
    bad = mutate(res, schedule=res.schedule[:-1])
    report = check_invariants(trace, bad)
    assert "missing-task" in report.kinds()


def test_duplicate_execution_detected(run):
    trace, res = run
    bad = mutate(res, schedule=res.schedule + [res.schedule[0]])
    report = check_invariants(trace, bad)
    assert "duplicate-execution" in report.kinds()


def test_unknown_node_is_spurious(run):
    trace, res = run
    ghost = DispatchRecord(node=99, start=0.0, finish=1.0, processors=1)
    report = check_invariants(trace, mutate(res, schedule=res.schedule + [ghost]))
    assert "spurious-execution" in report.kinds()


def test_deactivated_node_execution_is_spurious(diamond):
    # only edges out of node 0 carry changes: node 3 deactivates
    trace = JobTrace(
        dag=diamond,
        work=np.ones(4),
        initial_tasks=np.array([0]),
        changed_edges=np.array([True, True, False, False]),
        name="diamond-partial",
    )
    res = simulate(
        trace, LevelBasedScheduler(), processors=2, record_schedule=True
    )
    assert {r.node for r in res.schedule} == {0, 1, 2}
    ghost = DispatchRecord(node=3, start=5.0, finish=6.0, processors=1)
    report = check_invariants(trace, mutate(res, schedule=res.schedule + [ghost]))
    assert "spurious-execution" in report.kinds()
    assert any(v.node == 3 for v in report.violations)


# ----------------------------------------------------------------------
# precedence / capacity / allotment / duration
# ----------------------------------------------------------------------
def test_precedence_violation_detected(run):
    trace, res = run
    # yank the sink's start to before its parents finish
    sched = [
        dataclasses.replace(r, start=0.0, finish=1.0)
        if r.node == 3 else r
        for r in res.schedule
    ]
    report = check_invariants(trace, mutate(res, schedule=sched))
    assert "precedence" in report.kinds()


def test_capacity_violation_detected(run):
    trace, res = run
    # claim the same schedule ran on a single processor
    report = check_invariants(trace, mutate(res, processors=1))
    assert "capacity" in report.kinds()


def test_allotment_violations_detected(run):
    trace, res = run
    wide = [dataclasses.replace(res.schedule[0], processors=2)]
    report = check_invariants(
        trace, mutate(res, schedule=wide + res.schedule[1:])
    )
    assert "allotment" in report.kinds()  # non-malleable with 2 procs

    out_of_range = [dataclasses.replace(res.schedule[0], processors=99)]
    report = check_invariants(
        trace, mutate(res, schedule=out_of_range + res.schedule[1:])
    )
    assert "allotment" in report.kinds()


def test_malleable_allotment_cap():
    trace = JobTrace(
        dag=Dag(1, []),
        work=np.array([2.0]),
        span=np.array([1.0]),
        models=np.array([ExecutionModel.MALLEABLE], dtype=np.int8),
        initial_tasks=np.array([0]),
        changed_edges=np.zeros(0, dtype=bool),
        name="one-malleable",
    )
    res = simulate(
        trace, LevelBasedScheduler(), processors=4,
        record_schedule=True, reallot=False,
    )
    assert check_invariants(trace, res, reallot=False).ok
    # 3 processors can never help a work=2, span=1 task
    sched = [dataclasses.replace(res.schedule[0], processors=3)]
    report = check_invariants(
        trace, mutate(res, schedule=sched), reallot=False
    )
    assert "allotment" in report.kinds()


def test_too_short_duration_detected(run):
    trace, res = run
    r0 = res.schedule[0]
    sched = [dataclasses.replace(r0, finish=r0.start + 0.5)]
    report = check_invariants(
        trace, mutate(res, schedule=sched + res.schedule[1:])
    )
    assert "duration" in report.kinds()


# ----------------------------------------------------------------------
# paper bounds and self-consistency
# ----------------------------------------------------------------------
def test_makespan_upper_bound_enforced(run):
    trace, res = run
    report = check_invariants(
        trace, mutate(res, execution_makespan=res.execution_makespan + 1e6)
    )
    assert "makespan-bound" in report.kinds()


def test_impossibly_good_makespan_rejected(run):
    trace, res = run
    report = check_invariants(trace, mutate(res, makespan=1e-9))
    assert "makespan-lower" in report.kinds()


def test_consistency_checks(run):
    trace, res = run
    assert "result-consistency" in check_invariants(
        trace, mutate(res, tasks_executed=res.tasks_executed + 1)
    ).kinds()
    assert "result-consistency" in check_invariants(
        trace, mutate(res, total_work=res.total_work + 5.0)
    ).kinds()
    assert "result-consistency" in check_invariants(
        trace, mutate(res, utilization=1.5)
    ).kinds()


def test_violation_kinds_are_the_documented_set(run):
    trace, res = run
    report = check_invariants(trace, mutate(res, processors=1, makespan=0.0))
    assert report.kinds() <= set(VIOLATION_KINDS)
    assert not report.ok
    assert "violation(s)" in report.summary()


# ----------------------------------------------------------------------
# strict mode and serialization
# ----------------------------------------------------------------------
def test_strict_mode_records_and_passes(diamond_trace):
    res = simulate(
        diamond_trace, HybridScheduler(), processors=3, strict=True
    )
    assert res.schedule  # strict implies record_schedule


def test_invariant_violation_error_carries_report(run):
    trace, res = run
    report = check_invariants(trace, mutate(res, schedule=res.schedule[:-1]))
    err = InvariantViolationError(report)
    assert err.report is report
    assert "missing-task" in str(err)


def test_result_json_roundtrip(run):
    _, res = run
    payload = json.loads(json.dumps(res.to_json_dict()))
    back = SimulationResult.from_json_dict(payload)
    assert back == res
    with pytest.raises(ValueError, match="schema"):
        SimulationResult.from_json_dict({**payload, "schema": 99})
