"""Deliberately contract-violating schedulers for the linter tests.

Never simulated — these classes exist as *source* for
:func:`repro.verify.lint.lint_paths`. Each violation is marked with a
``# line:`` comment naming the rule the tests expect on that line.
"""

from repro.schedulers.base import Scheduler, SchedulerContext
from repro.schedulers.levelbased import LevelBasedScheduler


class ClairvoyantScheduler(Scheduler):
    """Reads every piece of ground truth a scheduler must not see."""

    name = "cheater"

    def __init__(self) -> None:
        super().__init__()
        self._plan: list[int] = []

    def prepare(self, ctx: SchedulerContext) -> None:
        outcome = ctx.trace.propagation  # line: clairvoyance (realized)
        state = ctx.trace.fresh_activation_state()  # line: clairvoyance
        self._plan = list(outcome.executed)
        self._will = state.will_execute  # line: clairvoyance (ActivationState)
        self._peek = ctx.oracle._ready_events  # line: clairvoyance (private)
        ctx.oracle.push_ready_events([0])  # line: clairvoyance (engine-side)

    def on_activate(self, v: int, t: float) -> None:
        self.ops += 1

    def on_complete(self, v: int, t: float) -> None:
        self.ops += 1

    def select(self, max_tasks: int, t: float) -> list[int]:
        self.ops += 1
        return self._plan[:max_tasks]


class PeekingLevelScheduler(LevelBasedScheduler):
    """LevelBased-family member consuming the off-limits oracle feed."""

    name = "peeking-level"

    def prepare(self, ctx: SchedulerContext) -> None:
        super().prepare(ctx)
        self._oracle = ctx.oracle  # line: clairvoyance (family oracle)

    def select(self, max_tasks: int, t: float) -> list[int]:
        out = super().select(max_tasks, t)
        for v in self._oracle.drain_ready_events():  # line: clairvoyance
            if len(out) < max_tasks:
                self.ops += 1
                out.append(v)
        return out


class UndercountingScheduler(Scheduler):
    """Scans its whole queue every round without charging a single op."""

    name = "undercounter"

    def __init__(self) -> None:
        super().__init__()
        self._queue: list[int] = []
        self._oracle = None

    def prepare(self, ctx: SchedulerContext) -> None:
        self._oracle = ctx.oracle

    def on_activate(self, v: int, t: float) -> None:
        self._queue.append(v)  # no loop: bookkeeping alone is fine

    def on_complete(self, v: int, t: float) -> None:
        for _ in self._queue:  # line: ops-accounting
            pass

    def select(self, max_tasks: int, t: float) -> list[int]:
        out = []
        for v in list(self._queue):  # line: ops-accounting
            if self._oracle.is_ready(v) and len(out) < max_tasks:
                self._queue.remove(v)
                out.append(v)
        return out


class SloppyScheduler(Scheduler):
    """Structural API misuse: counters, reserved hooks, shared context."""

    name = "sloppy"

    def __init__(self) -> None:  # line: api-contract (no super().__init__)
        self.ops = 0

    def reset_counters(self) -> None:  # line: api-contract (reserved)
        self.ops = 0

    def prepare(self, ctx: SchedulerContext) -> None:
        ctx.processors = 1  # line: api-contract (mutates context)

    def on_activate(self, v: int, t: float) -> None:
        self.ops += 1

    def on_complete(self, v: int, t: float) -> None:
        self.ops += 1

    def select(self, max_tasks: int, t: float) -> list[int]:
        self.ops += 1
        return []


class UnchargedFailureScheduler(Scheduler):
    """Overrides on_failure but treats the requeue as free work."""

    name = "uncharged-failure"

    def __init__(self) -> None:
        super().__init__()
        self._queue: list[int] = []

    def prepare(self, ctx: SchedulerContext) -> None:
        pass

    def on_activate(self, v: int, t: float) -> None:
        self._queue.append(v)
        self.ops += 1

    def on_complete(self, v: int, t: float) -> None:
        self.ops += 1

    def on_failure(self, v: int, t: float) -> None:  # line: api-contract
        self._queue.append(v)  # requeued for free: never charges ops

    def select(self, max_tasks: int, t: float) -> list[int]:
        out = self._queue[:max_tasks]
        del self._queue[: len(out)]
        self.ops += len(out) + 1
        return out


class SuppressedScheduler(Scheduler):
    """Same sins as above, waived (or not) by inline suppressions."""

    name = "suppressed"

    def __init__(self) -> None:
        super().__init__()
        self._hint = None

    def prepare(self, ctx: SchedulerContext) -> None:
        self._hint = ctx.trace.propagation  # verify: ignore[clairvoyance]
        self._all = ctx.trace.active_nodes  # verify: ignore
        self._bad = ctx.trace.n_active  # verify: ignore[ops-accounting]

    def on_activate(self, v: int, t: float) -> None:
        self.ops += 1

    def on_complete(self, v: int, t: float) -> None:
        self.ops += 1

    def select(self, max_tasks: int, t: float) -> list[int]:
        self.ops += 1
        return []


class OffSpanChargingScheduler(Scheduler):
    """Charges ops from entry points no engine hook ever reaches."""

    name = "off-span"

    def __init__(self) -> None:
        super().__init__()
        self.ops += 5  # line: api-contract (outside an active span)
        self._queue: list[int] = []

    def prepare(self, ctx: SchedulerContext) -> None:
        pass

    def on_activate(self, v: int, t: float) -> None:
        self._queue.append(v)
        self.ops += 1

    def on_complete(self, v: int, t: float) -> None:
        self.ops += 1

    def select(self, max_tasks: int, t: float) -> list[int]:
        out = self._queue[:max_tasks]
        del self._queue[: len(out)]
        self.ops += len(out) + 1
        return out

    def recompute_priorities(self) -> None:
        """Externally-invoked maintenance: its ops bypass the trace."""
        self.charge_ops(len(self._queue))  # line: api-contract (off-span)
