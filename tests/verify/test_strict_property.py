"""Property tests: every registered scheduler survives strict mode on
random traces, and random corruptions of a recorded result are always
rejected with the expected violation kind."""

import dataclasses

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.sim import simulate
from repro.tasks import ExecutionModel, JobTrace
from repro.verify import check_invariants
from tests.schedulers.test_validity_properties import (
    SCHEDULER_FACTORIES,
    build_trace,
)

IDS = ["LevelBased", "LBL3", "LBXfresh", "LBXcached", "SignalProp",
       "Hybrid", "Oracle", "CriticalPath"]


@pytest.mark.parametrize("factory", SCHEDULER_FACTORIES, ids=IDS)
@given(seed=st.integers(0, 10**6), processors=st.integers(1, 6))
@settings(max_examples=15, deadline=None)
def test_all_schedulers_pass_strict(factory, seed, processors):
    """strict=True (invariants + paper bounds) holds for every scheduler."""
    simulate(build_trace(seed), factory(), processors=processors, strict=True)


@pytest.mark.parametrize("factory", SCHEDULER_FACTORIES, ids=IDS)
@given(seed=st.integers(0, 10**6), processors=st.integers(1, 6),
       reallot=st.booleans())
@settings(max_examples=8, deadline=None)
def test_strict_with_mixed_models(factory, seed, processors, reallot):
    rng = np.random.default_rng(seed)
    base = build_trace(seed)
    n = base.dag.n_nodes
    models = rng.choice(
        [ExecutionModel.UNIT, ExecutionModel.SEQUENTIAL,
         ExecutionModel.MALLEABLE],
        size=n,
    ).astype(np.int8)
    trace = JobTrace(
        dag=base.dag,
        work=base.work,
        span=base.work * rng.uniform(0.0, 1.0, n),
        models=models,
        initial_tasks=base.initial_tasks,
        changed_edges=base.changed_edges,
    )
    simulate(
        trace, factory(), processors=processors, strict=True,
        reallot=reallot,
    )


@given(seed=st.integers(0, 10**6), victim=st.integers(0, 10**6))
@settings(max_examples=25, deadline=None)
def test_dropped_record_always_rejected(seed, victim):
    trace = build_trace(seed)
    res = simulate(trace, SCHEDULER_FACTORIES[0](), processors=3,
                   record_schedule=True)
    # dropping the only record leaves nothing to verify (ValueError path)
    assume(len(res.schedule) > 1)
    i = victim % len(res.schedule)
    bad = dataclasses.replace(
        res, schedule=res.schedule[:i] + res.schedule[i + 1:]
    )
    report = check_invariants(trace, bad, reallot=True)
    assert "missing-task" in report.kinds()
    assert any(v.node == res.schedule[i].node for v in report.violations)


@given(seed=st.integers(0, 10**6), victim=st.integers(0, 10**6))
@settings(max_examples=25, deadline=None)
def test_duplicated_record_always_rejected(seed, victim):
    trace = build_trace(seed)
    res = simulate(trace, SCHEDULER_FACTORIES[0](), processors=3,
                   record_schedule=True)
    rec = res.schedule[victim % len(res.schedule)]
    bad = dataclasses.replace(res, schedule=res.schedule + [rec])
    assert "duplicate-execution" in check_invariants(
        trace, bad, reallot=True
    ).kinds()


@given(seed=st.integers(0, 10**6), victim=st.integers(0, 10**6))
@settings(max_examples=25, deadline=None)
def test_time_travelling_start_always_rejected(seed, victim):
    trace = build_trace(seed)
    res = simulate(trace, SCHEDULER_FACTORIES[0](), processors=3,
                   record_schedule=True)
    i = victim % len(res.schedule)
    r = res.schedule[i]
    # a start before t=0 precedes even a source's (instant) readiness
    warped = dataclasses.replace(
        r, start=-10.0, finish=-10.0 + (r.finish - r.start)
    )
    sched = list(res.schedule)
    sched[i] = warped
    assert "precedence" in check_invariants(
        trace, dataclasses.replace(res, schedule=sched), reallot=True
    ).kinds()
