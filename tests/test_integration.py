"""Cross-module integration tests: the full pipeline, determinism,
serialization, and odd-shaped inputs."""

import io

import numpy as np
import pytest

from repro.dag import Dag
from repro.datalog import Database, Delta, compile_update, parse_program
from repro.schedulers import (
    HybridScheduler,
    LevelBasedScheduler,
    LogicBloxScheduler,
    LookaheadScheduler,
    OracleScheduler,
    SignalPropagationScheduler,
)
from repro.sim import simulate
from repro.tasks import JobTrace
from repro.workloads import make_trace

ALL_SCHEDULERS = [
    LevelBasedScheduler,
    lambda: LookaheadScheduler(4),
    LogicBloxScheduler,
    lambda: LogicBloxScheduler("cached"),
    SignalPropagationScheduler,
    HybridScheduler,
    OracleScheduler,
]


class TestDeterminism:
    def test_repeated_simulation_identical(self):
        trace = make_trace(5, scale=0.5)
        for factory in (LevelBasedScheduler, HybridScheduler):
            a = simulate(trace, factory(), processors=4)
            b = simulate(trace, factory(), processors=4)
            assert a.makespan == b.makespan
            assert a.scheduling_ops == b.scheduling_ops

    def test_serialization_preserves_simulation(self):
        trace = make_trace(5, scale=0.4)
        buf = io.StringIO()
        trace.dump(buf)
        buf.seek(0)
        reloaded = JobTrace.load(buf)
        a = simulate(trace, LevelBasedScheduler(), processors=4)
        b = simulate(reloaded, LevelBasedScheduler(), processors=4)
        assert a.makespan == b.makespan
        assert a.tasks_executed == b.tasks_executed


class TestDatalogToSchedule:
    def test_full_pipeline_all_schedulers(self):
        prog = parse_program(
            """
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- path(X, Y), edge(Y, Z).
            blocked(X) :- node(X), !reachable(X).
            reachable(Y) :- path(X, Y).
            reachable(X) :- path(X, Y).
            """
        )
        edb = Database()
        for t in [(1, 2), (2, 3), (3, 4), (5, 6)]:
            edb.add_fact("edge", t)
        for n in range(1, 8):
            edb.add_fact("node", (n,))
        cu = compile_update(
            prog, edb, Delta().insert("edge", (4, 5)).delete("edge", (5, 6))
        )
        counts = set()
        for factory in ALL_SCHEDULERS:
            res = simulate(cu.trace, factory(), processors=4)
            counts.add(res.tasks_executed)
        assert len(counts) == 1
        assert counts.pop() == cu.trace.n_active


class TestOddShapes:
    def test_disconnected_components(self):
        dag = Dag(6, [(0, 1), (2, 3), (4, 5)])
        trace = JobTrace(
            dag=dag,
            work=np.ones(6),
            initial_tasks=np.array([0, 4]),
            changed_edges=np.ones(3, dtype=bool),
        )
        for factory in ALL_SCHEDULERS:
            res = simulate(trace, factory(), processors=2)
            assert res.tasks_executed == 4  # component of 2/3 untouched

    def test_initial_task_is_a_sink(self):
        dag = Dag(3, [(0, 1), (1, 2)])
        trace = JobTrace(
            dag=dag,
            work=np.ones(3),
            initial_tasks=np.array([2]),
            changed_edges=np.zeros(2, dtype=bool),
        )
        for factory in ALL_SCHEDULERS:
            res = simulate(trace, factory(), processors=2)
            assert res.tasks_executed == 1

    def test_single_node_graph(self):
        dag = Dag(1, [])
        trace = JobTrace(
            dag=dag,
            work=np.array([3.0]),
            initial_tasks=np.array([0]),
            changed_edges=np.zeros(0, dtype=bool),
        )
        for factory in ALL_SCHEDULERS:
            res = simulate(trace, factory(), processors=1)
            assert res.execution_makespan == pytest.approx(3.0, abs=1e-6)

    def test_wide_flat_graph(self):
        n = 200
        dag = Dag(n, [])
        trace = JobTrace(
            dag=dag,
            work=np.ones(n),
            initial_tasks=np.arange(n),
            changed_edges=np.zeros(0, dtype=bool),
        )
        for factory in (LevelBasedScheduler, HybridScheduler):
            res = simulate(trace, factory(), processors=10)
            # execution makespan is makespan minus charged overhead — an
            # approximation good to the overhead's magnitude
            assert res.execution_makespan == pytest.approx(20.0, abs=1e-4)

    def test_deep_chain_one_processor(self):
        from repro.dag import chain

        dag = chain(300)
        trace = JobTrace(
            dag=dag,
            work=np.ones(300),
            initial_tasks=np.array([0]),
            changed_edges=np.ones(299, dtype=bool),
        )
        res = simulate(trace, LevelBasedScheduler(), processors=1)
        assert res.execution_makespan == pytest.approx(300.0, abs=1e-6)


class TestProcessorScaling:
    def test_more_processors_never_hurt_levelbased_much(self):
        trace = make_trace(5, scale=0.5)
        m1 = simulate(trace, LevelBasedScheduler(), processors=1).makespan
        m4 = simulate(trace, LevelBasedScheduler(), processors=4).makespan
        m16 = simulate(trace, LevelBasedScheduler(), processors=16).makespan
        assert m4 <= m1 * 1.01
        assert m16 <= m4 * 1.05  # greedy anomalies stay small

    def test_speedup_bounded_by_processor_count(self):
        trace = make_trace(5, scale=0.5)
        m1 = simulate(trace, OracleScheduler(), processors=1).makespan
        m8 = simulate(trace, OracleScheduler(), processors=8).makespan
        assert m1 / m8 <= 8.01
