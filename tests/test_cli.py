"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


def test_stats_generated_trace(capsys):
    assert main(["stats", "--trace", "5", "--scale", "0.3"]) == 0
    out = capsys.readouterr().out
    assert "nodes" in out and "active jobs" in out


def test_simulate(capsys):
    rc = main(
        ["simulate", "--trace", "5", "--scale", "0.3",
         "--scheduler", "levelbased", "-P", "4"]
    )
    assert rc == 0
    assert "LevelBased" in capsys.readouterr().out


def test_unknown_scheduler():
    with pytest.raises(SystemExit):
        main(["simulate", "--trace", "5", "--scheduler", "wat"])


def test_lbl_scheduler_spec(capsys):
    rc = main(
        ["simulate", "--trace", "5", "--scale", "0.3",
         "--scheduler", "lbl:7", "-P", "4"]
    )
    assert rc == 0
    assert "LBL(k=7)" in capsys.readouterr().out


def test_bad_lbl_depth():
    with pytest.raises(SystemExit, match="look-ahead"):
        main(["simulate", "--trace", "5", "--scheduler", "lbl:x"])


def test_missing_trace_args():
    with pytest.raises(SystemExit):
        main(["stats"])


def test_compare(capsys):
    assert main(["compare", "--trace", "5", "--scale", "0.3", "-P", "4"]) == 0
    out = capsys.readouterr().out
    assert "Hybrid" in out and "LogicBlox" in out


def test_generate_and_reload(tmp_path, capsys):
    out = tmp_path / "t.json"
    assert main(
        ["generate", "--trace", "5", "--scale", "0.2", "-o", str(out)]
    ) == 0
    data = json.loads(out.read_text())
    assert data["schema"] == 1
    # stats on the file round-trips
    assert main(["stats", "--trace-file", str(out)]) == 0
    assert "nodes" in capsys.readouterr().out


def test_simulate_strict_writes_result(tmp_path, capsys):
    out = tmp_path / "result.json"
    rc = main(
        ["simulate", "--trace", "5", "--scale", "0.2", "--strict",
         "-o", str(out)]
    )
    assert rc == 0
    assert "wrote" in capsys.readouterr().out
    data = json.loads(out.read_text())
    assert data["schema"] == 1
    assert data["result"]["schedule"]  # strict recorded the schedule


def test_verify_lint_clean_schedulers(capsys):
    assert main(["verify", "--lint", "src/repro/schedulers"]) == 0
    assert "lint: clean" in capsys.readouterr().out


def test_verify_lint_reports_findings(tmp_path, capsys):
    bad = tmp_path / "bad_sched.py"
    bad.write_text(
        "from repro.schedulers.base import Scheduler\n"
        "class Cheat(Scheduler):\n"
        "    def prepare(self, ctx):\n"
        "        self._w = ctx.trace.propagation\n"
    )
    assert main(["verify", "--lint", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "[clairvoyance]" in out and "lint: 1 finding(s)" in out


def test_verify_result_file_ok(tmp_path, capsys):
    out = tmp_path / "result.json"
    main(["simulate", "--trace", "5", "--scale", "0.2", "-o", str(out)])
    capsys.readouterr()
    assert main(["verify", "--trace", str(out)]) == 0
    assert "OK" in capsys.readouterr().out


def test_verify_result_file_detects_corruption(tmp_path, capsys):
    out = tmp_path / "result.json"
    main(["simulate", "--trace", "5", "--scale", "0.2", "-o", str(out)])
    capsys.readouterr()
    data = json.loads(out.read_text())
    data["result"]["schedule"].pop()
    out.write_text(json.dumps(data))
    assert main(["verify", "--trace", str(out)]) == 1
    assert "missing-task" in capsys.readouterr().out


def test_verify_requires_an_input(capsys):
    assert main(["verify"]) == 2
    assert "nothing to do" in capsys.readouterr().err


def test_verify_program_clean(tmp_path, capsys):
    prog = tmp_path / "ok.dlog"
    prog.write_text(
        "% edb: edge/2\n"
        "% output: path\n"
        "path(X, Y) :- edge(X, Y).\n"
        "path(X, Z) :- path(X, Y), edge(Y, Z).\n"
    )
    assert main(["verify", "--program", str(prog)]) == 0
    assert "clean" in capsys.readouterr().out


def test_verify_program_reports_findings(tmp_path, capsys):
    prog = tmp_path / "bad.dlog"
    prog.write_text("p(X, Y) :- q(X).\n")
    assert main(["verify", "--program", str(prog)]) == 1
    out = capsys.readouterr().out
    assert "[safety]" in out and "1:1" in out


def test_verify_program_json_format(tmp_path, capsys):
    prog = tmp_path / "bad.dlog"
    prog.write_text("p(X, Y) :- q(X).\n")
    assert main(["verify", "--program", str(prog), "--format", "json"]) == 1
    data = json.loads(capsys.readouterr().out)
    assert data["schema"] == 1
    findings = data["programs"][0]["findings"]
    assert findings and findings[0]["rule"] == "safety"
    assert findings[0]["line"] == 1


def test_verify_program_missing_file_is_usage_error(tmp_path, capsys):
    missing = tmp_path / "nope.dlog"
    assert main(["verify", "--program", str(missing)]) == 2
    assert "cannot analyze" in capsys.readouterr().err


def test_verify_lint_bad_path_is_usage_error(tmp_path, capsys):
    assert main(["verify", "--lint", str(tmp_path / "nope.txt")]) == 2
    assert "verify:" in capsys.readouterr().err


def test_datalog_command(tmp_path, capsys):
    prog = tmp_path / "p.dl"
    prog.write_text(
        """
        edge(1, 2). edge(2, 3).
        path(X, Y) :- edge(X, Y).
        path(X, Z) :- path(X, Y), edge(Y, Z).
        """
    )
    assert main(["datalog", str(prog)]) == 0
    out = capsys.readouterr().out
    assert "path/2 (3 facts)" in out
    assert "path(1, 3)" in out


def test_serve_with_chaos_seed(capsys):
    rc = main(
        [
            "serve", "--program", "retail", "--rounds", "4",
            "--scheduler", "hybrid", "--chaos-seed", "7",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "chaos seed 7" in out
    assert "chaos:" in out
    assert "health=" in out


def test_serve_with_chaos_spec_file(tmp_path, capsys):
    from repro.runtime import ChaosPlan

    spec = tmp_path / "chaos.json"
    spec.write_text(
        json.dumps(
            ChaosPlan(
                seed=3, unit_fail_prob=0.2, unit_latency_prob=0.1
            ).to_json_dict()
        )
    )
    rc = main(
        [
            "serve", "--program", "retail", "--rounds", "3",
            "--chaos-spec", str(spec),
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "chaos seed 3" in out


def test_serve_chaos_options(capsys):
    rc = main(
        [
            "serve", "--program", "retail", "--rounds", "3",
            "--chaos-seed", "11", "--unit-retries", "5",
            "--unit-timeout", "0.5", "--shed-policy", "coalesce-harder",
        ]
    )
    assert rc == 0
    assert "final materialization matches" in capsys.readouterr().out


def test_serve_no_chaos_unchanged(capsys):
    rc = main(["serve", "--program", "retail", "--rounds", "3"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "chaos" not in out
