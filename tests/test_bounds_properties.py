"""Property tests for the paper's analytical guarantees (Section IV).

* Lemma 3 — unit tasks: LevelBased makespan ≤ w/P + L.
* Lemma 5 — fully parallelizable tasks: makespan ≤ w/P + L.
* Lemma 7 — arbitrary tasks: makespan ≤ w/P + Σ_i S_i.
* 2-approximation in the work-dominated regime (w/P ≥ L).

All bounds are over the *realized* active set: w is the total activated
work, L the number of levels of G, and S_i the per-level maximum span
among activated tasks. Overhead charging is disabled — the bounds are
statements about the schedule, not the scheduling cost.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag import layered_dag, level_spans
from repro.schedulers import LevelBasedScheduler, lower_bounds
from repro.sim import OverheadModel, simulate
from repro.tasks import ExecutionModel, JobTrace

NO_OVERHEAD = OverheadModel(op_cost=0.0)


def random_structure(seed):
    rng = np.random.default_rng(seed)
    n_layers = int(rng.integers(2, 7))
    layers = [int(rng.integers(1, 6)) for _ in range(n_layers)]
    dag = layered_dag(
        layers,
        edge_prob=float(rng.uniform(0.1, 0.6)),
        rng=rng,
        skip_prob=float(rng.uniform(0, 0.4)),
    )
    sources = dag.sources()
    k = 1 + int(rng.integers(0, sources.size))
    return rng, dag, sources[:k]


@given(seed=st.integers(0, 10**6), P=st.integers(1, 8))
@settings(max_examples=30, deadline=None)
def test_lemma3_unit_tasks(seed, P):
    rng, dag, initial = random_structure(seed)
    trace = JobTrace(
        dag=dag,
        work=np.ones(dag.n_nodes),
        models=np.full(dag.n_nodes, ExecutionModel.UNIT, dtype=np.int8),
        initial_tasks=initial,
        changed_edges=rng.random(dag.n_edges) < 0.7,
    )
    res = simulate(
        trace, LevelBasedScheduler(), processors=P, overhead=NO_OVERHEAD
    )
    w = trace.propagation.executed.sum()  # unit tasks: work = count
    L = trace.n_levels
    assert res.makespan <= w / P + L + 1e-9


@given(seed=st.integers(0, 10**6), P=st.integers(1, 8))
@settings(max_examples=30, deadline=None)
def test_lemma5_fully_parallel_tasks(seed, P):
    rng, dag, initial = random_structure(seed)
    work = rng.uniform(0.1, 5.0, dag.n_nodes)
    trace = JobTrace(
        dag=dag,
        work=work,
        span=np.zeros(dag.n_nodes),
        models=np.full(dag.n_nodes, ExecutionModel.MALLEABLE, dtype=np.int8),
        initial_tasks=initial,
        changed_edges=rng.random(dag.n_edges) < 0.7,
    )
    res = simulate(
        trace, LevelBasedScheduler(), processors=P, overhead=NO_OVERHEAD
    )
    w = trace.total_active_work
    L = trace.n_levels
    assert res.makespan <= w / P + L + 1e-6


@given(seed=st.integers(0, 10**6), P=st.integers(1, 8))
@settings(max_examples=30, deadline=None)
def test_lemma7_arbitrary_tasks(seed, P):
    rng, dag, initial = random_structure(seed)
    work = rng.uniform(0.1, 5.0, dag.n_nodes)
    span = work * rng.uniform(0.1, 1.0, dag.n_nodes)
    trace = JobTrace(
        dag=dag,
        work=work,
        span=span,
        models=np.full(dag.n_nodes, ExecutionModel.MALLEABLE, dtype=np.int8),
        initial_tasks=initial,
        changed_edges=rng.random(dag.n_edges) < 0.7,
    )
    res = simulate(
        trace, LevelBasedScheduler(), processors=P, overhead=NO_OVERHEAD
    )
    w = trace.total_active_work
    active_span = np.where(trace.propagation.executed, span, 0.0)
    sum_si = float(level_spans(trace.levels, active_span).sum())
    assert res.makespan <= w / P + sum_si + 1e-6


@given(seed=st.integers(0, 10**6))
@settings(max_examples=30, deadline=None)
def test_two_approximation_when_work_dominated(seed):
    """w/P ≥ L ⇒ makespan ≤ 2·OPT (unit tasks, Section II-B)."""
    rng, dag, initial = random_structure(seed)
    trace = JobTrace(
        dag=dag,
        work=np.ones(dag.n_nodes),
        models=np.full(dag.n_nodes, ExecutionModel.UNIT, dtype=np.int8),
        initial_tasks=initial,
        changed_edges=rng.random(dag.n_edges) < 0.9,
    )
    w = float(trace.propagation.executed.sum())
    L = trace.n_levels
    P = max(1, int(w // max(L, 1)))  # force the work-dominated regime
    if w / P < L:
        return
    res = simulate(
        trace, LevelBasedScheduler(), processors=P, overhead=NO_OVERHEAD
    )
    opt_lb = max(w / P, 1.0)  # any schedule needs ≥ w/P and ≥ one task
    assert res.makespan <= 2 * opt_lb + 1e-9


@given(seed=st.integers(0, 10**6), P=st.integers(1, 8))
@settings(max_examples=30, deadline=None)
def test_never_below_lower_bounds(seed, P):
    rng, dag, initial = random_structure(seed)
    work = rng.uniform(0.1, 5.0, dag.n_nodes)
    trace = JobTrace(
        dag=dag,
        work=work,
        initial_tasks=initial,
        changed_edges=rng.random(dag.n_edges) < 0.7,
    )
    res = simulate(
        trace, LevelBasedScheduler(), processors=P, overhead=NO_OVERHEAD
    )
    lbs = lower_bounds(trace, P)
    assert res.makespan >= lbs["combined"] - 1e-9
