"""Tests for the binary (.npz) trace format."""

import numpy as np
import pytest

from repro.dag import Dag
from repro.tasks import ExecutionModel, JobTrace
from repro.tasks.serialize import load_npz, save_npz


def sample_trace():
    dag = Dag(4, [(0, 1), (0, 2), (1, 3), (2, 3)], node_names=list("abcd"))
    return JobTrace(
        dag=dag,
        work=np.array([1.0, 2.0, 3.0, 4.0]),
        span=np.array([1.0, 2.0, 1.5, 4.0]),
        models=np.array(
            [ExecutionModel.SEQUENTIAL] * 3 + [ExecutionModel.MALLEABLE],
            dtype=np.int8,
        ),
        is_task=np.array([True, True, False, True]),
        initial_tasks=np.array([0]),
        changed_edges=np.array([True, False, True, True]),
        name="bin",
        metadata={"k": [1, 2]},
    )


def test_roundtrip(tmp_path):
    t = sample_trace()
    p = tmp_path / "t.npz"
    save_npz(t, p)
    t2 = load_npz(p)
    assert t2.dag == t.dag
    assert t2.dag.node_names == ("a", "b", "c", "d")
    for attr in ("work", "span", "models", "is_task", "changed_edges",
                 "initial_tasks"):
        assert np.array_equal(getattr(t2, attr), getattr(t, attr)), attr
    assert t2.name == "bin"
    assert t2.metadata == {"k": [1, 2]}
    assert t2.n_active == t.n_active


def test_roundtrip_without_names(tmp_path):
    dag = Dag(2, [(0, 1)])
    t = JobTrace(
        dag=dag,
        work=np.ones(2),
        initial_tasks=np.array([0]),
        changed_edges=np.ones(1, dtype=bool),
    )
    p = tmp_path / "t.npz"
    save_npz(t, p)
    assert load_npz(p).dag.node_names is None


def test_simulation_equivalence(tmp_path):
    from repro.schedulers import LevelBasedScheduler
    from repro.sim import simulate
    from repro.workloads import make_trace

    t = make_trace(5, scale=0.4)
    p = tmp_path / "t5.npz"
    save_npz(t, p)
    t2 = load_npz(p)
    a = simulate(t, LevelBasedScheduler(), processors=4)
    b = simulate(t2, LevelBasedScheduler(), processors=4)
    assert a.makespan == b.makespan


def test_npz_much_smaller_than_json(tmp_path):
    import io

    from repro.workloads import make_trace

    t = make_trace(5)
    npz = tmp_path / "t.npz"
    save_npz(t, npz)
    buf = io.StringIO()
    t.dump(buf)
    assert npz.stat().st_size < 0.5 * len(buf.getvalue())


def test_bad_schema_rejected(tmp_path):
    import json

    import numpy as np

    p = tmp_path / "bad.npz"
    np.savez(p, meta_json=np.array(json.dumps({"schema": 99})),
             edges=np.zeros((0, 2)))
    with pytest.raises(ValueError, match="schema"):
        load_npz(p)
