"""Tests for the JobTrace container and its JSON round-trip."""

import io

import numpy as np
import pytest

from repro.dag import Dag
from repro.tasks import ExecutionModel, JobTrace


def make_trace(**over):
    dag = Dag(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
    kwargs = dict(
        dag=dag,
        work=np.array([1.0, 2.0, 3.0, 4.0]),
        initial_tasks=np.array([0]),
        changed_edges=np.ones(4, dtype=bool),
        name="t",
    )
    kwargs.update(over)
    return JobTrace(**kwargs)


class TestValidation:
    def test_defaults(self):
        t = make_trace()
        assert np.array_equal(t.span, t.work)
        assert (t.models == ExecutionModel.SEQUENTIAL).all()
        assert t.is_task.all()

    def test_work_shape_checked(self):
        with pytest.raises(ValueError, match="work"):
            make_trace(work=np.ones(3))

    def test_span_shape_checked(self):
        with pytest.raises(ValueError, match="span"):
            make_trace(span=np.ones(2))

    def test_changed_edges_shape_checked(self):
        with pytest.raises(ValueError, match="changed_edges"):
            make_trace(changed_edges=np.ones(7, dtype=bool))

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            make_trace(work=np.array([1.0, -1.0, 1.0, 1.0]))

    def test_initial_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            make_trace(initial_tasks=np.array([99]))

    def test_initial_tasks_deduped(self):
        t = make_trace(initial_tasks=np.array([0, 0, 0]))
        assert list(t.initial_tasks) == [0]


class TestDerived:
    def test_levels_cached(self):
        t = make_trace()
        assert list(t.levels) == [0, 1, 1, 2]
        assert t.n_levels == 3
        assert t.levels is t.levels  # cached object

    def test_propagation_counts(self):
        t = make_trace()
        assert t.n_active == 4
        assert t.n_active_jobs == 4
        assert sorted(t.active_nodes) == [0, 1, 2, 3]
        assert t.total_active_work == 10.0

    def test_active_jobs_excludes_plumbing(self):
        t = make_trace(is_task=np.array([True, False, True, True]))
        assert t.n_active == 4
        assert t.n_active_jobs == 3

    def test_fresh_activation_state_independent(self):
        t = make_trace()
        s1 = t.fresh_activation_state()
        s1.bootstrap()
        s1.mark_dispatched(0)
        s2 = t.fresh_activation_state()
        s2.bootstrap()
        assert s2.is_ready(0)  # unaffected by s1


class TestSerialization:
    def test_json_roundtrip(self):
        t = make_trace(metadata={"k": 1})
        buf = io.StringIO()
        t.dump(buf)
        buf.seek(0)
        t2 = JobTrace.load(buf)
        assert t2.dag == t.dag
        assert np.array_equal(t2.work, t.work)
        assert np.array_equal(t2.changed_edges, t.changed_edges)
        assert np.array_equal(t2.initial_tasks, t.initial_tasks)
        assert t2.name == "t"
        assert t2.metadata == {"k": 1}
        assert t2.n_active == t.n_active

    def test_node_names_roundtrip(self):
        dag = Dag(2, [(0, 1)], node_names=["a", "b"])
        t = JobTrace(
            dag=dag,
            work=np.ones(2),
            initial_tasks=np.array([0]),
            changed_edges=np.ones(1, dtype=bool),
        )
        buf = io.StringIO()
        t.dump(buf)
        buf.seek(0)
        assert JobTrace.load(buf).dag.node_names == ("a", "b")

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            JobTrace.from_json_dict({"schema": 999})
