"""Tests for trace statistics (Table I columns)."""

import numpy as np

from repro.dag import Dag
from repro.tasks import JobTrace, trace_stats


def test_diamond_stats(diamond_trace):
    st = trace_stats(diamond_trace)
    assert st.table1_row() == (4, 4, 1, 4, 3)
    assert st.n_task_nodes == 4
    assert st.n_descendants == 3  # 1, 2, 3 descend from the initial task
    assert st.total_active_work == 4.0


def test_descendants_exclude_initial_and_plumbing():
    dag = Dag(4, [(0, 1), (1, 2), (2, 3)])
    t = JobTrace(
        dag=dag,
        work=np.ones(4),
        initial_tasks=np.array([0]),
        changed_edges=np.array([True, False, False]),
        is_task=np.array([True, True, False, True]),
    )
    st = trace_stats(t)
    assert st.n_initial == 1
    assert st.n_descendants == 2  # nodes 1 and 3 (2 is plumbing)
    assert st.n_active_jobs == 2  # 0 and 1 execute; only tasks counted


def test_figure1_shape_property():
    """Most descendants need not be recomputed (Figure 1's point)."""
    rng = np.random.default_rng(0)
    from repro.dag import layered_dag

    dag = layered_dag([4, 8, 8, 8, 4], edge_prob=0.4, rng=rng)
    t = JobTrace(
        dag=dag,
        work=np.ones(dag.n_nodes),
        initial_tasks=dag.sources()[:1],
        changed_edges=rng.random(dag.n_edges) < 0.25,
    )
    st = trace_stats(t)
    assert st.n_active_jobs - st.n_initial <= st.n_descendants
