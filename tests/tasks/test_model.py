"""Tests for task execution models."""

import pytest

from repro.tasks import ExecutionModel, execution_time, max_useful_processors


class TestExecutionTime:
    def test_unit(self):
        assert execution_time(5.0, 5.0, ExecutionModel.UNIT, 1) == 1.0
        assert execution_time(5.0, 5.0, ExecutionModel.UNIT, 8) == 1.0

    def test_sequential_ignores_extra_processors(self):
        assert execution_time(7.0, 7.0, ExecutionModel.SEQUENTIAL, 1) == 7.0
        assert execution_time(7.0, 7.0, ExecutionModel.SEQUENTIAL, 4) == 7.0

    def test_malleable_brent_bound(self):
        # work 12, span 2: 4 procs → 3; 12 procs → span floor 2
        assert execution_time(12.0, 2.0, ExecutionModel.MALLEABLE, 4) == 3.0
        assert execution_time(12.0, 2.0, ExecutionModel.MALLEABLE, 12) == 2.0

    def test_fully_parallel_span_zero(self):
        assert execution_time(10.0, 0.0, ExecutionModel.MALLEABLE, 5) == 2.0

    def test_zero_processors_rejected(self):
        with pytest.raises(ValueError):
            execution_time(1.0, 1.0, ExecutionModel.UNIT, 0)

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            execution_time(1.0, 1.0, 99, 1)


class TestMaxUsefulProcessors:
    def test_sequential_and_unit_use_one(self):
        assert max_useful_processors(9.0, 9.0, ExecutionModel.SEQUENTIAL) == 1
        assert max_useful_processors(1.0, 1.0, ExecutionModel.UNIT) == 1

    def test_malleable_cap(self):
        assert max_useful_processors(12.0, 3.0, ExecutionModel.MALLEABLE) == 4
        assert max_useful_processors(10.0, 3.0, ExecutionModel.MALLEABLE) == 4

    def test_fully_parallel_unbounded(self):
        cap = max_useful_processors(10.0, 0.0, ExecutionModel.MALLEABLE)
        assert cap > 10**6

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            max_useful_processors(1.0, 1.0, 99)
