"""Tests for activation semantics — the active graph H of Section II-A."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag import Dag, layered_dag
from repro.tasks import ActivationState, propagate_changes


def _flags(dag, changed_pairs):
    flags = np.zeros(dag.n_edges, dtype=bool)
    for u, v in changed_pairs:
        flags[dag.edge_index(u, v)] = True
    return flags


class TestPropagateChanges:
    def test_full_cascade(self, diamond):
        res = propagate_changes(
            diamond, np.array([0]), np.ones(diamond.n_edges, dtype=bool)
        )
        assert res.executed.all()
        assert res.n_active == 4

    def test_change_stops_where_output_unchanged(self, diamond):
        # 0 changes only its edge to 1; 1's output doesn't change
        flags = _flags(diamond, [(0, 1)])
        res = propagate_changes(diamond, np.array([0]), flags)
        assert list(np.flatnonzero(res.executed)) == [0, 1]
        # node 3 is a descendant but never activated
        assert not res.activated[3]

    def test_no_initial_no_activity(self, diamond):
        res = propagate_changes(
            diamond, np.array([], dtype=np.int64),
            np.ones(diamond.n_edges, dtype=bool),
        )
        assert res.n_active == 0

    def test_initial_non_source(self, diamond):
        # dirtying an internal node (rule redefinition) re-runs it
        flags = _flags(diamond, [(1, 3)])
        res = propagate_changes(diamond, np.array([1]), flags)
        assert list(np.flatnonzero(res.executed)) == [1, 3]

    def test_active_edges_subset_of_changed(self, diamond):
        flags = np.ones(diamond.n_edges, dtype=bool)
        flags[diamond.edge_index(0, 2)] = False
        res = propagate_changes(diamond, np.array([0]), flags)
        assert res.executed[1] and res.executed[3]
        assert not res.executed[2]
        assert not res.active_edges[diamond.edge_index(0, 2)]
        # edge (2,3) flagged changed but 2 never executes → not realized
        assert not res.active_edges[diamond.edge_index(2, 3)]


class TestActivationState:
    def test_bootstrap_dispatches_sources(self, diamond_trace):
        st_ = diamond_trace.fresh_activation_state()
        dispatchable, activated = st_.bootstrap()
        assert dispatchable == [0]
        assert activated == [0]

    def test_full_run_order(self, diamond_trace):
        s = diamond_trace.fresh_activation_state()
        dispatchable, _ = s.bootstrap()
        s.mark_dispatched(0)
        d1, a1 = s.complete(0)
        assert sorted(d1) == [1, 2]
        assert sorted(a1) == [1, 2]
        s.mark_dispatched(1)
        d2, _ = s.complete(1)
        assert d2 == []  # 3 still waits for 2
        s.mark_dispatched(2)
        d3, a3 = s.complete(2)
        assert d3 == [3]
        s.mark_dispatched(3)
        s.complete(3)
        assert s.all_done()
        assert s.pending_count() == 0

    def test_deactivation_cascade(self, diamond):
        # only edge (0,1) changes; 2 deactivates, unblocking 3 never needed
        flags = _flags(diamond, [(0, 1)])
        s = ActivationState(diamond, np.array([0]), flags)
        s.bootstrap()
        s.mark_dispatched(0)
        d, a = s.complete(0)
        assert d == [1] and a == [1]
        s.mark_dispatched(1)
        s.complete(1)
        assert s.all_done()

    def test_dispatch_before_ready_raises(self, diamond_trace):
        s = diamond_trace.fresh_activation_state()
        s.bootstrap()
        # node 3 hasn't even been activated yet at bootstrap time
        with pytest.raises(RuntimeError, match="never activated"):
            s.mark_dispatched(3)
        # once activated but with an unresolved parent, it still must wait
        s.mark_dispatched(0)
        s.complete(0)  # activates 1 and 2
        s.mark_dispatched(1)
        s.complete(1)  # activates 3, but 2 is still unresolved
        with pytest.raises(RuntimeError, match="unresolved parent"):
            s.mark_dispatched(3)

    def test_dispatch_unactivated_raises(self, diamond):
        flags = _flags(diamond, [(0, 1)])
        s = ActivationState(diamond, np.array([0]), flags)
        s.bootstrap()
        s.mark_dispatched(0)
        s.complete(0)
        with pytest.raises(RuntimeError, match="never activated"):
            s.mark_dispatched(2)

    def test_double_dispatch_raises(self, diamond_trace):
        s = diamond_trace.fresh_activation_state()
        s.bootstrap()
        s.mark_dispatched(0)
        with pytest.raises(RuntimeError, match="twice"):
            s.mark_dispatched(0)

    def test_complete_without_dispatch_raises(self, diamond_trace):
        s = diamond_trace.fresh_activation_state()
        s.bootstrap()
        with pytest.raises(RuntimeError, match="before dispatch"):
            s.complete(0)

    def test_double_complete_raises(self, diamond_trace):
        s = diamond_trace.fresh_activation_state()
        s.bootstrap()
        s.mark_dispatched(0)
        s.complete(0)
        with pytest.raises(RuntimeError, match="twice"):
            s.complete(0)

    def test_is_ready(self, diamond_trace):
        s = diamond_trace.fresh_activation_state()
        s.bootstrap()
        assert s.is_ready(0)
        assert not s.is_ready(3)
        s.mark_dispatched(0)
        assert not s.is_ready(0)  # dispatched


class TestEquivalence:
    """Event-driven state must agree with one-shot propagation."""

    @given(st.integers(0, 300))
    @settings(max_examples=30, deadline=None)
    def test_event_driven_matches_batch(self, seed):
        rng = np.random.default_rng(seed)
        dag = layered_dag([3, 5, 5, 3], edge_prob=0.35, rng=rng, skip_prob=0.3)
        flags = rng.random(dag.n_edges) < 0.5
        k = 1 + int(rng.integers(0, 3))
        initial = dag.sources()[:k]
        batch = propagate_changes(dag, initial, flags)

        s = ActivationState(dag, initial, flags)
        ready, _ = s.bootstrap()
        executed = []
        frontier = list(ready)
        while frontier:
            v = frontier.pop()
            s.mark_dispatched(v)
            executed.append(v)
            d, _ = s.complete(v)
            frontier.extend(d)
        assert s.all_done()
        assert sorted(executed) == list(np.flatnonzero(batch.executed))
