"""Tests for shape comparisons."""

import pytest

from repro.analysis import compare_pair, ratio


def test_ratio_guards_zero():
    assert ratio(1.0, 0.0) == float("inf")
    assert ratio(0.0, 0.0) == 1.0
    assert ratio(4.0, 2.0) == 2.0


def test_same_winner_detection():
    c = compare_pair("makespan", paper=(57.74, 26.5), measured=(40.0, 20.0))
    assert c.same_winner
    assert c.paper_ratio == pytest.approx(2.179, abs=1e-3)
    flipped = compare_pair("makespan", paper=(57.74, 26.5), measured=(10, 20))
    assert not flipped.same_winner


def test_tie_band():
    c = compare_pair("m", paper=(1.0, 1.05), measured=(1.02, 1.0))
    assert c.same_winner  # both within the 10% tie band


def test_factor_agreement():
    exact = compare_pair("m", paper=(2.0, 1.0), measured=(4.0, 2.0))
    assert exact.factor_agreement() == pytest.approx(1.0)
    off2x = compare_pair("m", paper=(2.0, 1.0), measured=(4.0, 1.0))
    assert off2x.factor_agreement() == pytest.approx(0.5)


def test_describe_mentions_flip():
    c = compare_pair("overhead", paper=(10, 1), measured=(1, 10))
    assert "FLIPPED" in c.describe()
