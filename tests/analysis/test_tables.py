"""Tests for the table renderer."""

from repro.analysis import format_seconds, render_table


def test_format_seconds_ranges():
    assert format_seconds(None) == "—"
    assert format_seconds(0) == "0 s"
    assert format_seconds(9736) == "9,736 s"
    assert format_seconds(26.5) == "26.50 s"
    assert format_seconds(0.0107) == "10.7 ms"
    assert format_seconds(3.2e-5) == "32.0 µs"
    assert format_seconds(5e-9) == "5.0 ns"


def test_render_table_alignment():
    out = render_table(
        ["trace", "makespan"],
        [["#1", "26.5 s"], ["#10", "9,893 s"]],
        title="Table II",
    )
    lines = out.splitlines()
    assert lines[0] == "Table II"
    assert "trace" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    assert len(lines) == 5
    # right-aligned columns: every row has the same width
    assert len(set(len(l) for l in lines[1:])) == 1
