#!/usr/bin/env python3
"""Pathological instances and the hybrid rescue (Sections IV–VI).

Two demonstrations:

1. **Theorem 9** — on the Figure 2 instance, LevelBased's level barrier
   costs Θ(L²) against the optimal Θ(L); LBL(k) recovers as its
   look-ahead window grows.
2. **The §VI synthetic instance** — a chain that drip-unblocks a huge
   pre-activated queue. The production scheduler rescans the queue on
   every round (quadratic ops); the hybrid keeps the shared ready queue
   fed through its LevelBased component, so the scans never run.

Run:  python examples/pathological_rescue.py
"""

from repro.analysis import format_seconds, render_table
from repro.schedulers import (
    HybridScheduler,
    LevelBasedScheduler,
    LogicBloxScheduler,
    LookaheadScheduler,
    OracleScheduler,
)
from repro.sim import OverheadModel, simulate
from repro.workloads import logicblox_killer, theorem9_example


def theorem9_demo() -> None:
    L = 32
    trace = theorem9_example(L)
    no_overhead = OverheadModel(op_cost=0.0)
    rows = []
    for scheduler in (
        LevelBasedScheduler(),
        LookaheadScheduler(4),
        LookaheadScheduler(16),
        LookaheadScheduler(L),
        OracleScheduler(),
    ):
        res = simulate(
            trace, scheduler, processors=2 * L, overhead=no_overhead
        )
        rows.append([res.scheduler_name, f"{res.makespan:.0f}"])
    print(
        render_table(
            ["scheduler", "makespan"],
            rows,
            title=f"Theorem 9 tight example, L = {L} "
                  f"(optimal = {L}, LevelBased = L(L-1)/2+1 = "
                  f"{L * (L - 1) // 2 + 1})",
        )
    )


def killer_demo() -> None:
    trace = logicblox_killer(
        12, width_per_step=450, task_work=1e-4, compact_index=True
    )
    rows = []
    for scheduler in (
        LogicBloxScheduler(),
        LevelBasedScheduler(),
        HybridScheduler(),
    ):
        res = simulate(trace, scheduler, processors=8)
        rows.append(
            [res.scheduler_name, format_seconds(res.makespan),
             format_seconds(res.scheduling_overhead), res.scheduling_ops]
        )
    print()
    print(
        render_table(
            ["scheduler", "makespan", "overhead", "ops"],
            rows,
            title="The §VI synthetic instance (a 12-link chain gates a "
                  "5,400-task queue)",
        )
    )
    print(
        "\nThe production scheduler re-probes the whole blocked queue every"
        "\nscheduling round; LevelBased (and therefore the hybrid) identifies"
        "\nthe same ready tasks from its level buckets in O(1)."
    )


if __name__ == "__main__":
    theorem9_demo()
    killer_demo()
