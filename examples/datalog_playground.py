#!/usr/bin/env python3
"""Datalog engine playground — parse, evaluate, update, inspect.

Shows the engine features the other examples use implicitly: parsing,
stratification (including a rejection), semi-naive evaluation traces,
transitive closure with deletions (DRed re-derivation), and exporting a
compiled computation DAG to Graphviz DOT.

Run:  python examples/datalog_playground.py
"""

from repro.datalog import (
    Database,
    Delta,
    DependencyGraph,
    IncrementalEngine,
    StratificationError,
    compile_update,
    explain,
    parse_program,
    seminaive_evaluate,
)
from repro.dag.dot import to_dot


def main() -> None:
    # --- parse and stratify -------------------------------------------
    program = parse_program(
        """
        % who can reach whom, and who is isolated
        link(a, b). link(b, c). link(c, d). link(b, d).
        node(a). node(b). node(c). node(d). node(e).
        reach(X, Y) :- link(X, Y).
        reach(X, Z) :- reach(X, Y), link(Y, Z).
        isolated(X) :- node(X), !connected(X).
        connected(X) :- reach(X, Y).
        connected(Y) :- reach(X, Y).
        """
    )
    strata = DependencyGraph(program).stratify()
    print("strata (evaluated bottom-up):")
    for i, s in enumerate(strata):
        print(f"  {i}: {s}")

    db, trace = seminaive_evaluate(program, record=True)
    print(f"\nreach: {sorted(db.relations['reach'])}")
    print(f"isolated: {sorted(db.relations['isolated'])}")
    print(
        "semi-naive iterations per stratum:",
        [len(it) for it in trace.iterations],
    )

    # --- unstratifiable programs are rejected -------------------------
    try:
        DependencyGraph(
            parse_program("win(X) :- move(X, Y), !win(Y).")
        ).stratify()
    except StratificationError as exc:
        print(f"\nrejected as expected: {exc}")

    # --- incremental updates with deletion ----------------------------
    tc = parse_program(
        """
        path(X, Y) :- edge(X, Y).
        path(X, Z) :- path(X, Y), edge(Y, Z).
        """
    )
    edb = Database()
    for t in [(1, 2), (2, 3), (3, 4), (1, 3)]:
        edb.add_fact("edge", t)
    engine = IncrementalEngine(tc, edb)
    print(f"\npaths before: {sorted(engine.db.relations['path'])}")
    print("\nwhy does path(1, 4) hold?")
    print(explain(tc, engine.db, "path", (1, 4)).pretty())
    engine.apply(Delta().delete("edge", (2, 3)))
    # path(1,3) survives via the direct edge — DRed re-derivation
    print(f"paths after -edge(2,3): {sorted(engine.db.relations['path'])}")
    assert (1, 3) in engine.db.relations["path"]

    # --- compile an update into a schedulable DAG ---------------------
    compiled = compile_update(tc, edb, Delta().insert("edge", (4, 5)))
    t = compiled.trace
    print(
        f"\ncompiled computation DAG: {t.dag.n_nodes} nodes, "
        f"{t.dag.n_edges} edges, {t.n_levels} levels, "
        f"{t.n_active_jobs} activated task(s)"
    )
    print("DOT preview (first lines):")
    for line in to_dot(t.dag, max_nodes=8).splitlines()[:8]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
