#!/usr/bin/env python3
"""Quickstart — schedule one incremental-maintenance workload.

Builds a small synthetic computation DAG, applies an update, and runs
the paper's three main schedulers over it, printing makespan and
scheduling overhead for each. This is the 60-second tour of the public
API:

    trace      = workloads.make_synthetic_trace(...)   # the workload
    scheduler  = schedulers.HybridScheduler()          # the algorithm
    result     = sim.simulate(trace, scheduler, P)     # the experiment

Run:  python examples/quickstart.py
"""

from repro.analysis import format_seconds, render_table
from repro.schedulers import (
    HybridScheduler,
    LevelBasedScheduler,
    LogicBloxScheduler,
)
from repro.sim import simulate
from repro.tasks import trace_stats
from repro.workloads import make_synthetic_trace


def main() -> None:
    # A 2,000-node computation DAG, 40 levels deep; an update dirties
    # three base predicates and the change cascades to ~200 tasks.
    trace = make_synthetic_trace(
        n_nodes=2000,
        n_edges=3200,
        n_levels=40,
        n_initial=3,
        target_active_tasks=200,
        mean_work=0.5,
        sigma=1.0,
        seed=42,
        name="quickstart",
    )
    st = trace_stats(trace)
    print(
        f"workload: {st.n_nodes} nodes, {st.n_edges} edges, "
        f"{st.n_levels} levels; update activates {st.n_active_jobs} tasks\n"
    )

    rows = []
    for scheduler in (
        LevelBasedScheduler(),
        LogicBloxScheduler(),
        HybridScheduler(),
    ):
        result = simulate(trace, scheduler, processors=8)
        rows.append(
            [
                result.scheduler_name,
                format_seconds(result.makespan),
                format_seconds(result.scheduling_overhead),
                result.scheduling_ops,
                f"{result.utilization:.0%}",
            ]
        )
    print(
        render_table(
            ["scheduler", "makespan", "sched overhead", "ops", "util"],
            rows,
            title="8 processors, one update",
        )
    )
    print(
        "\nLevelBased pays a level barrier on deep traces; the production"
        "\n(LogicBlox-style) scheduler avoids it with ancestor checks; the"
        "\nhybrid gets the better makespan at near-LevelBased overhead."
    )


if __name__ == "__main__":
    main()
