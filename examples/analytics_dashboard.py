#!/usr/bin/env python3
"""Analytics dashboard — aggregates, live queries, and a schedule Gantt.

The closing tour: an aggregation-heavy retail program is materialized,
queried, updated incrementally, re-queried (answers stay consistent),
and finally the maintenance computation is scheduled — with the
realized schedule rendered as a textual Gantt chart, making the
LevelBased level barrier visible next to the hybrid's overlap.

Run:  python examples/analytics_dashboard.py
"""

from repro.datalog import (
    Delta,
    IncrementalEngine,
    compile_update,
    query_facts,
)
from repro.schedulers import HybridScheduler, LevelBasedScheduler
from repro.sim import level_envelopes, render_gantt, simulate
from repro.workloads.datalog_workloads import retail_analytics


def main() -> None:
    program, edb, delta = retail_analytics(
        n_products=40, n_stores=10, n_sales=180, seed=3
    )
    engine = IncrementalEngine(program, edb)

    print("category totals over 50 units (hot):")
    for row in sorted(
        query_facts(engine.db, "total_qty(C, T), T > 50"),
        key=lambda r: -r["T"],
    )[:5]:
        print(f"  category {row['C']}: {row['T']} units")
    quiet_before = {r["S"] for r in query_facts(engine.db, "quiet_store(S)")}
    print(f"quiet stores: {sorted(quiet_before) or 'none'}")

    # apply the day's sales incrementally; queries stay consistent
    engine.apply(delta)
    quiet_after = {r["S"] for r in query_facts(engine.db, "quiet_store(S)")}
    print(f"\nafter today's sales, quiet stores: {sorted(quiet_after) or 'none'}")
    woke_up = quiet_before - quiet_after
    if woke_up:
        print(f"stores that got busy: {sorted(woke_up)}")

    # schedule the same maintenance work and draw it
    compiled = compile_update(program, edb, delta, work_per_derivation=0.02)
    trace = compiled.trace
    for scheduler in (LevelBasedScheduler(), HybridScheduler()):
        res = simulate(
            trace, scheduler, processors=4, record_schedule=True
        )
        print(f"\n=== {res.scheduler_name} "
              f"(makespan {res.makespan:.3f} s) ===")
        print(render_gantt(trace, res, width=56, max_rows=14))
        envs = level_envelopes(trace, res)
        overlaps = sum(
            1
            for a, b in zip(envs, envs[1:])
            if b.first_start < a.last_finish - 1e-12
        )
        print(f"level envelopes overlapping: {overlaps}/{len(envs) - 1}")


if __name__ == "__main__":
    main()
