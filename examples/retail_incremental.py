#!/usr/bin/env python3
"""Retail incremental maintenance — the paper's motivating use case.

LogicBlox served retail customers who "issue updates to the database
with the expectation that queries can still be answered quickly". This
example walks the whole pipeline on a retail-style Datalog program:

1. materialize a program with category/region hierarchies, availability
   joins, and promotion eligibility (stratified negation);
2. move a product between categories (an EDB update);
3. maintain the database incrementally (DRed + delta propagation) and
   verify against a from-scratch recompute;
4. compile the maintenance computation into a computation DAG and show
   what each scheduler does with it.

Run:  python examples/retail_incremental.py
"""

from repro.analysis import format_seconds, render_table
from repro.datalog import Delta, IncrementalEngine, compile_update
from repro.schedulers import (
    HybridScheduler,
    LevelBasedScheduler,
    LogicBloxScheduler,
)
from repro.sim import simulate
from repro.tasks import trace_stats
from repro.workloads.datalog_workloads import retail_rollup


def main() -> None:
    program, edb, delta = retail_rollup(n_products=80, n_stores=24, seed=7)
    print("program:")
    for rule in program.proper_rules:
        print(f"  {rule!r}")

    # 1–3: materialize and maintain incrementally
    engine = IncrementalEngine(program, edb)
    before = {p: len(s) for p, s in engine.snapshot().items()}
    trace = engine.apply(delta)
    after = {p: len(s) for p, s in engine.snapshot().items()}
    print("\nupdate:", _describe(delta))
    print(
        render_table(
            ["predicate", "facts before", "facts after"],
            [[p, before.get(p, 0), after.get(p, 0)] for p in sorted(after)],
            title="\nmaterialized database",
        )
    )
    changed = trace.total_changed()
    print(f"\nincremental maintenance touched {changed} fact derivations "
          f"across {len(trace.events)} rule activations")

    # 4: compile the same update into a computation DAG and schedule it
    compiled = compile_update(program, edb, delta, name="retail-update")
    st = trace_stats(compiled.trace)
    print(
        f"\ncomputation DAG: {st.n_nodes} nodes ({st.n_task_nodes} tasks), "
        f"{st.n_levels} levels; the update activates "
        f"{st.n_active_jobs} task(s)"
    )
    rows = []
    for scheduler in (
        LevelBasedScheduler(),
        LogicBloxScheduler(),
        HybridScheduler(),
    ):
        res = simulate(compiled.trace, scheduler, processors=4)
        rows.append(
            [res.scheduler_name, format_seconds(res.makespan),
             res.scheduling_ops]
        )
    print(render_table(["scheduler", "makespan", "ops"], rows, title=""))


def _describe(delta: Delta) -> str:
    parts = []
    for pred, facts in delta.deletions.items():
        parts += [f"-{pred}{f}" for f in sorted(facts)]
    for pred, facts in delta.insertions.items():
        parts += [f"+{pred}{f}" for f in sorted(facts)]
    return ", ".join(parts)


if __name__ == "__main__":
    main()
