"""DOT / adjacency exports for visualizing computation DAGs (Figure 1).

The paper's Figure 1 renders a 64,910-node production DAG ("a mile long
at 300 DPI"). We export DOT with nodes colored by role — source,
activated, executed, untouched — so the same picture can be regenerated
with Graphviz from any trace.
"""

from __future__ import annotations

from typing import Iterable, TextIO

from .graph import Dag

__all__ = ["to_dot", "write_dot"]

_ROLE_STYLE = {
    "source": 'fillcolor="#4477AA", style=filled',
    "activated": 'fillcolor="#EE6677", style=filled',
    "executed": 'fillcolor="#CCBB44", style=filled',
    "descendant": 'fillcolor="#BBBBBB", style=filled',
    "plain": "",
}


def to_dot(
    dag: Dag,
    roles: dict[int, str] | None = None,
    max_nodes: int | None = None,
    graph_name: str = "computation_dag",
) -> str:
    """Render ``dag`` to DOT text.

    Parameters
    ----------
    roles:
        Optional map node-id → one of ``source | activated | executed |
        descendant | plain`` controlling the fill color.
    max_nodes:
        If given and the DAG is larger, only the subgraph induced by the
        first ``max_nodes`` node ids is emitted (Figure-1-scale DAGs do
        not fit in a reviewable DOT file).
    """
    roles = roles or {}
    limit = dag.n_nodes if max_nodes is None else min(max_nodes, dag.n_nodes)
    lines = [f"digraph {graph_name} {{", "  rankdir=TB;", "  node [shape=box];"]
    for u in range(limit):
        style = _ROLE_STYLE.get(roles.get(u, "plain"), "")
        attrs = f' [label="{dag.name_of(u)}"'
        if style:
            attrs += f", {style}"
        attrs += "]"
        lines.append(f"  n{u}{attrs};")
    for u in range(limit):
        for v in dag.out_neighbors(u):
            if v < limit:
                lines.append(f"  n{u} -> n{int(v)};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def write_dot(
    dag: Dag,
    fh: TextIO,
    roles: dict[int, str] | None = None,
    max_nodes: int | None = None,
) -> None:
    """Write :func:`to_dot` output to an open text file."""
    fh.write(to_dot(dag, roles=roles, max_nodes=max_nodes))


def roles_from_trace_sets(
    sources: Iterable[int],
    activated: Iterable[int],
    executed: Iterable[int],
    descendants: Iterable[int],
) -> dict[int, str]:
    """Build the role map Figure 1 uses, with executed ⊂ activated ⊂
    descendants precedence (later assignments win)."""
    roles: dict[int, str] = {}
    for u in descendants:
        roles[int(u)] = "descendant"
    for u in activated:
        roles[int(u)] = "activated"
    for u in executed:
        roles[int(u)] = "executed"
    for u in sources:
        roles[int(u)] = "source"
    return roles
