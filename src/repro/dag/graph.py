"""Core immutable DAG structure backed by CSR adjacency arrays.

The computation DAGs studied in the paper are large (Figure 1's production
DAG has 64,910 nodes and 101,327 edges), so the representation matters.
We store both forward (out-edges) and reverse (in-edges) adjacency in
compressed-sparse-row form using ``numpy`` ``int32`` arrays: two
``(V+1)``-length offset arrays and two ``E``-length target arrays.
Neighbor lookups return array *views* (no copies), per the standard
guidance for memory-lean numerical Python.

The class is deliberately immutable: schedulers, the simulator, and the
level/interval indexes all share one :class:`Dag` instance, and nothing
may mutate it after construction. Use :class:`repro.dag.builder.DagBuilder`
to construct and validate instances.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["Dag"]


def _build_csr(
    n: int, sources: np.ndarray, targets: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Build (offsets, adjacency) sorted by source node, then target.

    Runs in O(V + E) using a counting sort over source ids; adjacency
    lists come out sorted by target because we do a stable two-key sort.
    """
    order = np.lexsort((targets, sources))
    src_sorted = sources[order]
    adj = np.ascontiguousarray(targets[order], dtype=np.int32)
    counts = np.bincount(src_sorted, minlength=n)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return offsets, adj


class Dag:
    """An immutable directed acyclic graph over nodes ``0..n_nodes-1``.

    Parameters
    ----------
    n_nodes:
        Number of nodes. Node ids are dense integers ``0..n_nodes-1``.
    edges:
        Either an ``(E, 2)`` integer array or an iterable of
        ``(u, v)`` pairs meaning *output of u feeds v*.
    node_names:
        Optional sequence of human-readable names (e.g. Datalog predicate
        names); used by the DOT exporter and debugging output only.
    validate:
        When true (default), check edge endpoints are in range and that
        the graph is acyclic. Construction from trusted callers (e.g. the
        builder, which has already validated) may pass ``False``.

    Notes
    -----
    Acyclicity is verified with Kahn's algorithm in O(V + E). Duplicate
    edges are rejected: the activation semantics treat an edge as *the*
    dataflow channel between two tasks, and a duplicated channel would
    double-count change signals.
    """

    __slots__ = (
        "_n",
        "_out_offsets",
        "_out_adj",
        "_in_offsets",
        "_in_adj",
        "_node_names",
    )

    def __init__(
        self,
        n_nodes: int,
        edges: Iterable[tuple[int, int]] | np.ndarray,
        node_names: Sequence[str] | None = None,
        validate: bool = True,
    ) -> None:
        if n_nodes < 0:
            raise ValueError(f"n_nodes must be non-negative, got {n_nodes}")
        self._n = int(n_nodes)

        edge_arr = np.asarray(
            edges if isinstance(edges, np.ndarray) else list(edges), dtype=np.int64
        )
        if edge_arr.size == 0:
            edge_arr = edge_arr.reshape(0, 2)
        if edge_arr.ndim != 2 or edge_arr.shape[1] != 2:
            raise ValueError(f"edges must be (E, 2)-shaped, got {edge_arr.shape}")

        srcs = edge_arr[:, 0]
        tgts = edge_arr[:, 1]
        if validate and edge_arr.size:
            if srcs.min() < 0 or tgts.min() < 0:
                raise ValueError("edge endpoints must be non-negative")
            if max(srcs.max(), tgts.max()) >= self._n:
                raise ValueError(
                    f"edge endpoint out of range for n_nodes={self._n}"
                )
            if np.any(srcs == tgts):
                bad = int(srcs[srcs == tgts][0])
                raise ValueError(f"self-loop at node {bad}")

        self._out_offsets, self._out_adj = _build_csr(self._n, srcs, tgts)
        self._in_offsets, self._in_adj = _build_csr(self._n, tgts, srcs)

        if validate:
            self._check_no_duplicate_edges()
            self._check_acyclic()

        if node_names is not None and len(node_names) != self._n:
            raise ValueError(
                f"node_names has {len(node_names)} entries for {self._n} nodes"
            )
        self._node_names = tuple(node_names) if node_names is not None else None

    # ------------------------------------------------------------------
    # validation helpers
    # ------------------------------------------------------------------
    def _check_no_duplicate_edges(self) -> None:
        for u in range(self._n):
            row = self.out_neighbors(u)
            if row.size > 1 and np.any(row[1:] == row[:-1]):
                dup = int(row[np.flatnonzero(row[1:] == row[:-1])[0]])
                raise ValueError(f"duplicate edge ({u}, {dup})")

    def _check_acyclic(self) -> None:
        indeg = self.in_degrees().copy()
        stack = list(np.flatnonzero(indeg == 0))
        seen = 0
        while stack:
            u = stack.pop()
            seen += 1
            for v in self.out_neighbors(u):
                indeg[v] -= 1
                if indeg[v] == 0:
                    stack.append(int(v))
        if seen != self._n:
            raise ValueError("graph contains a cycle")

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Number of nodes (``|V|``)."""
        return self._n

    @property
    def n_edges(self) -> int:
        """Number of edges (``|E|``)."""
        return int(self._out_adj.size)

    @property
    def node_names(self) -> tuple[str, ...] | None:
        """Optional human-readable node names (or ``None``)."""
        return self._node_names

    def name_of(self, u: int) -> str:
        """Name of node ``u`` (falls back to ``"n<u>"``)."""
        if self._node_names is not None:
            return self._node_names[u]
        return f"n{u}"

    def out_neighbors(self, u: int) -> np.ndarray:
        """Children of ``u`` as a sorted read-only array view."""
        return self._out_adj[self._out_offsets[u] : self._out_offsets[u + 1]]

    def in_neighbors(self, u: int) -> np.ndarray:
        """Parents of ``u`` as a sorted read-only array view."""
        return self._in_adj[self._in_offsets[u] : self._in_offsets[u + 1]]

    def out_degree(self, u: int) -> int:
        """Number of children of ``u``."""
        return int(self._out_offsets[u + 1] - self._out_offsets[u])

    def in_degree(self, u: int) -> int:
        """Number of parents of ``u``."""
        return int(self._in_offsets[u + 1] - self._in_offsets[u])

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every node, shape ``(V,)``."""
        return np.diff(self._out_offsets).astype(np.int64)

    def in_degrees(self) -> np.ndarray:
        """In-degree of every node, shape ``(V,)``."""
        return np.diff(self._in_offsets).astype(np.int64)

    def sources(self) -> np.ndarray:
        """Nodes with in-degree 0 — the base-data predicates."""
        return np.flatnonzero(self.in_degrees() == 0)

    def sinks(self) -> np.ndarray:
        """Nodes with out-degree 0 — the final outputs/views."""
        return np.flatnonzero(self.out_degrees() == 0)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the edge ``(u, v)`` exists (binary search, O(log d))."""
        row = self.out_neighbors(u)
        i = int(np.searchsorted(row, v))
        return i < row.size and int(row[i]) == v

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over all edges ``(u, v)`` in source order."""
        for u in range(self._n):
            for v in self.out_neighbors(u):
                yield u, int(v)

    def edge_array(self) -> np.ndarray:
        """All edges as an ``(E, 2)`` int64 array (a copy)."""
        srcs = np.repeat(np.arange(self._n, dtype=np.int64), self.out_degrees())
        return np.column_stack((srcs, self._out_adj.astype(np.int64)))

    def edge_index(self, u: int, v: int) -> int:
        """Position of edge ``(u, v)`` in the CSR out-adjacency.

        Edge indices give a dense id space ``0..E-1`` used by the
        activation machinery to store per-edge change flags.
        """
        row = self.out_neighbors(u)
        i = int(np.searchsorted(row, v))
        if i >= row.size or int(row[i]) != v:
            raise KeyError(f"no edge ({u}, {v})")
        return int(self._out_offsets[u]) + i

    def out_edge_range(self, u: int) -> tuple[int, int]:
        """Half-open range of edge indices for ``u``'s out-edges."""
        return int(self._out_offsets[u]), int(self._out_offsets[u + 1])

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Dag(n_nodes={self._n}, n_edges={self.n_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Dag):
            return NotImplemented
        return (
            self._n == other._n
            and np.array_equal(self._out_offsets, other._out_offsets)
            and np.array_equal(self._out_adj, other._out_adj)
        )

    def __hash__(self) -> int:
        return hash((self._n, self.n_edges))
