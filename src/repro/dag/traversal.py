"""Traversal utilities: topological order, reachability, critical path.

These are shared by the simulator (ground-truth readiness), the
LookAhead scheduler (descendant checks), the oracle scheduler (critical
path lower bound), and the workload generators (descendant counts for
Figure 1's statistics).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .graph import Dag

__all__ = [
    "topological_order",
    "descendants",
    "ancestors",
    "reachable_mask",
    "is_ancestor",
    "critical_path_length",
    "critical_path",
    "transitive_closure_sets",
]


def topological_order(dag: Dag) -> np.ndarray:
    """A topological order of all nodes (Kahn), shape ``(V,)``."""
    n = dag.n_nodes
    indeg = dag.in_degrees().copy()
    order = np.empty(n, dtype=np.int64)
    frontier = list(np.flatnonzero(indeg == 0))
    k = 0
    while frontier:
        u = frontier.pop()
        order[k] = u
        k += 1
        for v in dag.out_neighbors(u):
            indeg[v] -= 1
            if indeg[v] == 0:
                frontier.append(int(v))
    if k != n:
        raise ValueError("graph contains a cycle")
    return order


def reachable_mask(
    dag: Dag, starts: Iterable[int], reverse: bool = False
) -> np.ndarray:
    """Boolean mask of nodes reachable from ``starts`` (excl. unreached).

    ``reverse=True`` follows in-edges (i.e. computes ancestors).
    The start nodes themselves are included in the mask. BFS, O(V + E).
    """
    mask = np.zeros(dag.n_nodes, dtype=bool)
    frontier: list[int] = []
    for s in starts:
        if not mask[s]:
            mask[s] = True
            frontier.append(int(s))
    neigh = dag.in_neighbors if reverse else dag.out_neighbors
    while frontier:
        u = frontier.pop()
        for v in neigh(u):
            if not mask[v]:
                mask[v] = True
                frontier.append(int(v))
    return mask


def descendants(dag: Dag, u: int) -> np.ndarray:
    """Sorted ids of all proper descendants of ``u``."""
    mask = reachable_mask(dag, [u])
    mask[u] = False
    return np.flatnonzero(mask)


def ancestors(dag: Dag, u: int) -> np.ndarray:
    """Sorted ids of all proper ancestors of ``u``."""
    mask = reachable_mask(dag, [u], reverse=True)
    mask[u] = False
    return np.flatnonzero(mask)


def is_ancestor(dag: Dag, a: int, d: int) -> bool:
    """Whether ``a`` is a proper ancestor of ``d`` (BFS from ``a``).

    This is the *reference* implementation used to test the interval
    index; it is O(V + E) per query, which is exactly why the LogicBlox
    scheduler precomputes interval lists instead.
    """
    if a == d:
        return False
    return bool(reachable_mask(dag, [a])[d])


def critical_path_length(dag: Dag, weights: np.ndarray | None = None) -> float:
    """Weight of the heaviest path, counting node weights.

    With unit weights this is the number of nodes on the longest chain
    (the ``C`` in the paper's O(w/P + C) bound uses path *time*; pass the
    task durations as ``weights``). Returns 0.0 for an empty graph.
    """
    n = dag.n_nodes
    if n == 0:
        return 0.0
    w = np.ones(n, dtype=np.float64) if weights is None else np.asarray(
        weights, dtype=np.float64
    )
    dist = w.copy()
    for u in topological_order(dag):
        du = dist[u]
        for v in dag.out_neighbors(u):
            cand = du + w[v]
            if cand > dist[v]:
                dist[v] = cand
    return float(dist.max())


def critical_path(dag: Dag, weights: np.ndarray | None = None) -> list[int]:
    """One heaviest path as a list of node ids, source to sink."""
    n = dag.n_nodes
    if n == 0:
        return []
    w = np.ones(n, dtype=np.float64) if weights is None else np.asarray(
        weights, dtype=np.float64
    )
    dist = w.copy()
    pred = np.full(n, -1, dtype=np.int64)
    for u in topological_order(dag):
        du = dist[u]
        for v in dag.out_neighbors(u):
            cand = du + w[v]
            if cand > dist[v]:
                dist[v] = cand
                pred[v] = u
    path = [int(np.argmax(dist))]
    while pred[path[-1]] >= 0:
        path.append(int(pred[path[-1]]))
    path.reverse()
    return path


def transitive_closure_sets(dag: Dag) -> list[set[int]]:
    """Descendant set of each node (including itself).

    Reverse-topological DP: descendants(u) = {u} ∪ union over children.
    O(V^2) space in the worst case — used by tests as an oracle for the
    interval index, and by the paper's space analysis of the LogicBlox
    preprocessing (Section II-C).
    """
    desc: list[set[int]] = [set() for _ in range(dag.n_nodes)]
    for u in reversed(topological_order(dag)):
        s = {int(u)}
        for v in dag.out_neighbors(u):
            s |= desc[v]
        desc[u] = s
    return desc
