"""Interval-list ancestor index (Agrawal/Borgida/Jagadish [4], Nuutila [31]).

This is the data structure at the heart of the production LogicBlox
scheduler (Section II-C): ancestor relationships are encoded as lists of
postorder-number intervals generated from a DFS traversal of the DAG.

Construction
------------
1. DFS from the source nodes builds a spanning forest and assigns each
   node a postorder number ``post[u]``; within the forest, the subtree of
   ``u`` occupies the contiguous interval ``[low[u], post[u]]``.
2. Sweeping nodes in reverse topological order, each node's interval list
   is the merge of its own tree interval with the lists of *all* its DAG
   children (tree and non-tree). Overlapping/adjacent intervals coalesce.

A node's list then covers exactly the postorder numbers of its
descendants (including itself), so *"is a an ancestor of d"* reduces to
*"does post[d] fall in some interval of a's list"*.

Costs (and why the paper cares)
-------------------------------
The encoding is "usually, but not always, compact": on tree-like DAGs
most lists are a single interval and queries are O(1), but adversarial
DAGs fragment the lists — worst case Θ(V) intervals per node, Θ(V²)
total space, and Θ(n) per query when the scan walks the whole list.
Those are precisely the worst cases the LevelBased scheduler avoids.

The index counts every interval examined in :attr:`IntervalIndex.ops`;
the simulator's overhead model converts those counts into scheduling
time, reproducing Table III's overhead column.
"""

from __future__ import annotations

from bisect import bisect_right

import numpy as np

from .graph import Dag
from .traversal import topological_order

__all__ = ["IntervalIndex", "merge_intervals"]


def merge_intervals(intervals: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Coalesce a list of integer intervals; adjacent ones merge too.

    ``[(1, 3), (4, 6)]`` becomes ``[(1, 6)]`` because the intervals hold
    consecutive integers. Input need not be sorted. O(k log k).
    """
    if not intervals:
        return []
    intervals = sorted(intervals)
    out = [intervals[0]]
    for lo, hi in intervals[1:]:
        plo, phi = out[-1]
        if lo <= phi + 1:
            if hi > phi:
                out[-1] = (plo, hi)
        else:
            out.append((lo, hi))
    return out


class IntervalIndex:
    """Ancestor/descendant oracle built from DFS intervals.

    Parameters
    ----------
    dag:
        The graph to index. Indexing costs O(V + E + total interval
        mass); the mass is O(V²) in the worst case.

    Attributes
    ----------
    ops:
        Running count of intervals examined by queries since the last
        :meth:`reset_ops`. The LogicBlox scheduler reports this to the
        overhead model.
    """

    _EMPTY = np.empty((0, 2), dtype=np.int64)

    def __init__(self, dag: Dag) -> None:
        self._dag = dag
        n = dag.n_nodes
        self._post = np.full(n, -1, dtype=np.int64)
        self._arrays: list[np.ndarray] = [self._EMPTY] * n
        self.ops: int = 0
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        dag = self._dag
        n = dag.n_nodes
        post = self._post
        low = np.full(n, -1, dtype=np.int64)
        visited = np.zeros(n, dtype=bool)
        counter = 0

        # Iterative DFS from every source; first visit claims tree
        # membership. Stack entries are (node, child-iterator-state).
        roots = [int(r) for r in dag.sources()]
        if n and not roots:  # defensive: Dag guarantees acyclicity
            raise ValueError("DAG with nodes but no sources")
        for root in roots:
            if visited[root]:
                continue
            visited[root] = True
            stack: list[tuple[int, int]] = [(root, 0)]
            while stack:
                u, i = stack.pop()
                children = dag.out_neighbors(u)
                advanced = False
                while i < children.size:
                    c = int(children[i])
                    i += 1
                    if not visited[c]:
                        visited[c] = True
                        stack.append((u, i))
                        stack.append((c, 0))
                        advanced = True
                        break
                if not advanced:
                    post[u] = counter
                    counter += 1
        if counter != n:  # load-bearing even under `python -O`
            raise RuntimeError(
                f"interval-index DFS visited {counter} of {n} nodes; "
                "the DAG's source set does not cover every node"
            )

        # Tree-subtree low bound: min postorder over the tree subtree.
        # Because children finish before parents in DFS, the subtree of u
        # occupies a contiguous postorder block ending at post[u]; its
        # start is the minimum of the block, computed by the same DFS
        # ordering: low[u] = min(post[u], low of tree children). We can
        # recover it without storing the tree: a node's tree subtree is
        # exactly the contiguous run of postorders assigned between
        # entering and leaving it, so low equals the smallest postorder
        # not yet assigned when u was entered. Rather than re-running the
        # DFS, note the run is contiguous: low[u] = post[u] - (size of
        # tree subtree) + 1. We track sizes with a second pass below.
        #
        # Simpler and equally O(V + E): recompute via one more DFS that
        # records, for each node, the counter value at entry time.
        visited[:] = False
        entry_counter = np.zeros(n, dtype=np.int64)
        counter = 0
        for root in roots:
            if visited[root]:
                continue
            visited[root] = True
            entry_counter[root] = counter
            stack = [(root, 0)]
            while stack:
                u, i = stack.pop()
                children = dag.out_neighbors(u)
                advanced = False
                while i < children.size:
                    c = int(children[i])
                    i += 1
                    if not visited[c]:
                        visited[c] = True
                        entry_counter[c] = counter
                        stack.append((u, i))
                        stack.append((c, 0))
                        advanced = True
                        break
                if not advanced:
                    counter += 1
        low[:] = entry_counter  # first postorder assigned inside u's subtree

        # Reverse-topological merge over *all* DAG edges, vectorized:
        # each node's list is a sorted (k, 2) int64 array; child lists
        # are concatenated, sorted by lower bound, and coalesced with a
        # cumulative-max sweep (adjacent integer intervals merge).
        arrays = self._arrays
        for u in reversed(topological_order(self._dag)):
            u = int(u)
            own = np.array([[low[u], post[u]]], dtype=np.int64)
            children = dag.out_neighbors(u)
            if children.size == 0:
                arrays[u] = own
                continue
            parts = [own]
            parts.extend(arrays[int(c)] for c in children)
            cat = np.concatenate(parts)
            order = np.argsort(cat[:, 0], kind="stable")
            cat = cat[order]
            hi_cummax = np.maximum.accumulate(cat[:, 1])
            # a new group starts where lo exceeds the running max hi + 1
            new_group = np.empty(cat.shape[0], dtype=bool)
            new_group[0] = True
            new_group[1:] = cat[1:, 0] > hi_cummax[:-1] + 1
            starts = np.flatnonzero(new_group)
            ends = np.append(starts[1:], cat.shape[0]) - 1
            merged = np.column_stack((cat[starts, 0], hi_cummax[ends]))
            arrays[u] = merged

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def postorder(self, u: int) -> int:
        """Postorder number of ``u`` (the key probed by queries)."""
        return int(self._post[u])

    def intervals(self, u: int) -> list[tuple[int, int]]:
        """``u``'s interval list (covers postorders of u ∪ descendants)."""
        return [(int(lo), int(hi)) for lo, hi in self._arrays[u]]

    def interval_array(self, u: int) -> np.ndarray:
        """``u``'s interval list as a sorted ``(k, 2)`` int64 array view."""
        return self._arrays[u]

    def list_lengths(self) -> np.ndarray:
        """Interval count per node, shape ``(V,)``."""
        return np.fromiter(
            (a.shape[0] for a in self._arrays),
            dtype=np.int64,
            count=len(self._arrays),
        )

    def is_ancestor(self, a: int, d: int, scan: bool = True) -> bool:
        """Whether ``a`` is a *proper* ancestor of ``d``.

        ``scan=True`` (default) walks the list linearly, charging one op
        per interval examined — the cost model behind the paper's "an
        interval-list query is constant time in the best case and O(n)
        time in the worst case". ``scan=False`` binary-searches,
        charging O(log k) ops.
        """
        if a == d:
            return False
        key = int(self._post[d])
        arr = self._arrays[a]
        if scan:
            for lo, hi in arr:
                self.ops += 1
                if lo <= key <= hi:
                    return True
                if key < lo:
                    # lists are sorted; nothing further can contain key
                    return False
            return False
        # binary search on interval starts
        i = int(np.searchsorted(arr[:, 0], key, side="right"))
        self.ops += max(1, int(arr.shape[0]).bit_length())
        if i == 0:
            return False
        lo, hi = arr[i - 1]
        return bool(lo <= key <= hi)

    def reset_ops(self) -> None:
        """Zero the query-operation counter."""
        self.ops = 0

    # ------------------------------------------------------------------
    # size accounting
    # ------------------------------------------------------------------
    @property
    def total_intervals(self) -> int:
        """Total interval count across all lists (the index's mass)."""
        return sum(a.shape[0] for a in self._arrays)

    @property
    def memory_cells(self) -> int:
        """Resident integer cells: 2 per interval + 1 postorder per node."""
        return 2 * self.total_intervals + self._dag.n_nodes

    def max_list_length(self) -> int:
        """Longest single interval list (fragmentation indicator)."""
        return max((a.shape[0] for a in self._arrays), default=0)
