"""Seeded random DAG constructions used by tests and workloads.

All generators take a :class:`numpy.random.Generator` (or a seed) and are
fully deterministic given it, so experiments are reproducible and
hypothesis-style tests can shrink failures.
"""

from __future__ import annotations

import numpy as np

from .graph import Dag

__all__ = [
    "layered_dag",
    "random_dag",
    "chain",
    "diamond_mesh",
    "as_rng",
]


def as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce an int/None/Generator to a Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def layered_dag(
    layer_sizes: list[int],
    edge_prob: float = 0.3,
    rng: int | np.random.Generator | None = 0,
    skip_prob: float = 0.0,
    max_skip: int = 3,
) -> Dag:
    """Random layered DAG: nodes in layers, edges between layers.

    Every non-first-layer node gets at least one parent in the previous
    layer (so levels match layer indices and there are no spurious
    sources). ``edge_prob`` adds extra previous-layer parents;
    ``skip_prob`` adds skip edges reaching up to ``max_skip`` layers back
    (these never increase a node's level, they only densify ancestry —
    which is what fragments interval lists).
    """
    rng = as_rng(rng)
    if any(s <= 0 for s in layer_sizes):
        raise ValueError("layer sizes must be positive")
    offsets = np.concatenate(([0], np.cumsum(layer_sizes))).astype(np.int64)
    edges: list[tuple[int, int]] = []
    for li in range(1, len(layer_sizes)):
        prev_lo, prev_hi = int(offsets[li - 1]), int(offsets[li])
        cur_lo, cur_hi = int(offsets[li]), int(offsets[li + 1])
        prev_ids = np.arange(prev_lo, prev_hi)
        for v in range(cur_lo, cur_hi):
            # mandatory parent keeps levels == layer index
            p = int(rng.integers(prev_lo, prev_hi))
            parents = {p}
            extra = prev_ids[rng.random(prev_ids.size) < edge_prob]
            parents.update(int(x) for x in extra)
            for u in parents:
                edges.append((u, v))
            if skip_prob > 0 and li >= 2:
                back = int(rng.integers(2, min(max_skip, li) + 1))
                s_lo, s_hi = int(offsets[li - back]), int(offsets[li - back + 1])
                if rng.random() < skip_prob:
                    edges.append((int(rng.integers(s_lo, s_hi)), v))
    return Dag(int(offsets[-1]), sorted(set(edges)))


def random_dag(
    n: int,
    edge_prob: float = 0.1,
    rng: int | np.random.Generator | None = 0,
) -> Dag:
    """Erdős–Rényi-style DAG: edge (i, j) with i < j kept w.p. ``edge_prob``.

    Vectorized over the upper triangle; O(n²) candidate pairs, so keep
    ``n`` modest (tests use n ≤ a few hundred).
    """
    rng = as_rng(rng)
    if n == 0:
        return Dag(0, [])
    iu = np.triu_indices(n, k=1)
    keep = rng.random(iu[0].size) < edge_prob
    edges = np.column_stack((iu[0][keep], iu[1][keep]))
    return Dag(n, edges)


def chain(n: int) -> Dag:
    """A simple path 0 → 1 → … → n-1 (L = n levels)."""
    if n == 0:
        return Dag(0, [])
    ids = np.arange(n - 1, dtype=np.int64)
    return Dag(n, np.column_stack((ids, ids + 1)))


def diamond_mesh(width: int, depth: int) -> Dag:
    """Dense layered mesh: ``depth`` layers of ``width`` nodes, complete
    bipartite edges between consecutive layers.

    The classic interval-list fragmenter: with w=width, every node's
    descendant set interleaves across the DFS forest, so lists grow to
    Θ(w) intervals and the index mass is Θ(w²·depth).
    """
    edges: list[tuple[int, int]] = []
    for d in range(depth - 1):
        base, nxt = d * width, (d + 1) * width
        for i in range(width):
            for j in range(width):
                edges.append((base + i, nxt + j))
    return Dag(width * depth, edges)
