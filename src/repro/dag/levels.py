"""Level computation — the LevelBased scheduler's precomputation step.

Section III of the paper: *the level of a node u is the maximum number of
edges along any path from any source node to u*; source nodes have
level 0. The paper's implementation peels in-degree-zero nodes
iteratively ("delete in-degree-zero nodes, increment ℓ and recurse");
that peeling computes exactly the longest-path level because a node's
level equals 1 + max over parents. We implement the equivalent dynamic
program over a Kahn topological sweep: O(V + E) time, O(V) space, the
bounds claimed in Theorem 2.
"""

from __future__ import annotations

import numpy as np

from .graph import Dag

__all__ = [
    "compute_levels",
    "num_levels",
    "level_histogram",
    "nodes_by_level",
    "level_spans",
]


def compute_levels(dag: Dag) -> np.ndarray:
    """Longest-path level of every node, shape ``(V,)`` int32.

    ``levels[u] == 0`` iff ``u`` is a source. Runs Kahn's peeling in
    O(V + E): each edge relaxes its target's level to
    ``max(level[target], level[source] + 1)``.
    """
    n = dag.n_nodes
    levels = np.zeros(n, dtype=np.int32)
    indeg = dag.in_degrees().copy()
    frontier = list(np.flatnonzero(indeg == 0))
    processed = 0
    while frontier:
        u = frontier.pop()
        processed += 1
        lu = levels[u] + 1
        for v in dag.out_neighbors(u):
            if lu > levels[v]:
                levels[v] = lu
            indeg[v] -= 1
            if indeg[v] == 0:
                frontier.append(int(v))
    if processed != n:
        raise ValueError("graph contains a cycle")  # defensive; Dag validates
    return levels


def num_levels(levels: np.ndarray) -> int:
    """Number of distinct level values, i.e. ``L`` (max level + 1).

    This is the ``No. levels`` column of Table I. An empty graph has 0.
    """
    return int(levels.max()) + 1 if levels.size else 0


def level_histogram(levels: np.ndarray) -> np.ndarray:
    """``hist[ℓ]`` = number of nodes at level ℓ, shape ``(L,)``."""
    if levels.size == 0:
        return np.zeros(0, dtype=np.int64)
    return np.bincount(levels, minlength=int(levels.max()) + 1)


def nodes_by_level(levels: np.ndarray) -> list[np.ndarray]:
    """Bucket node ids by level; ``result[ℓ]`` is a sorted id array.

    Built with one argsort over levels — O(V log V) — and views into the
    sorted index array, so no per-level copies.
    """
    if levels.size == 0:
        return []
    order = np.argsort(levels, kind="stable")
    sorted_levels = levels[order]
    boundaries = np.searchsorted(
        sorted_levels, np.arange(int(levels.max()) + 2)
    )
    return [
        order[boundaries[i] : boundaries[i + 1]]
        for i in range(len(boundaries) - 1)
    ]


def level_spans(levels: np.ndarray, spans: np.ndarray) -> np.ndarray:
    """Per-level maximum task span ``S_i`` (Definition 6).

    ``spans[u]`` is the task span of node ``u``; the result has shape
    ``(L,)`` with ``result[i] = max{spans[u] : level[u] == i}``. Levels
    with no nodes get span 0. The sum of this array is the
    ``Σ_i S_i`` term in Lemma 7's makespan bound.
    """
    if levels.size == 0:
        return np.zeros(0, dtype=spans.dtype if spans.size else np.float64)
    out = np.zeros(int(levels.max()) + 1, dtype=np.float64)
    np.maximum.at(out, levels, spans.astype(np.float64))
    return out
