"""Transitive reduction and redundancy analysis for computation DAGs.

A dataflow edge ``(u, v)`` is *redundant for scheduling* when another
``u → … → v`` path exists: precedence is already implied, so removing
the edge changes neither levels nor the ancestor relation. Production
DAGs carry many such shortcut edges (a rule reads both a derived
predicate and its inputs); the reduction quantifies how much of ``E``
is pure precedence redundancy, and gives workload generators a way to
produce minimal DAGs.

Note that redundant-for-*scheduling* is not redundant-for-*dataflow*:
the edge still carries values and change signals in the activation
model, which is why :class:`~repro.tasks.JobTrace` always keeps the
full edge set. The reduction is an analysis/debugging tool.
"""

from __future__ import annotations

import numpy as np

from .graph import Dag
from .traversal import topological_order

__all__ = ["redundant_edges", "transitive_reduction", "reduction_stats"]


def redundant_edges(dag: Dag) -> np.ndarray:
    """Boolean mask over dense edge indices: edge implied by a longer path.

    An edge ``(u, v)`` is redundant iff ``v`` is reachable from ``u``
    through a path of length ≥ 2. Computed with one reverse-topological
    sweep maintaining descendant bitsets — O(V·E/64) time, O(V²/8)
    space; fine for analysis-scale graphs (≤ ~50k nodes).
    """
    n = dag.n_nodes
    mask = np.zeros(dag.n_edges, dtype=bool)
    if n == 0:
        return mask
    # bitset of nodes reachable via paths of length >= 1
    words = (n + 63) // 64
    reach = np.zeros((n, words), dtype=np.uint64)
    order = topological_order(dag)
    for u in reversed(order):
        u = int(u)
        row = reach[u]
        for v in dag.out_neighbors(u):
            v = int(v)
            row |= reach[v]
            row[v >> 6] |= np.uint64(1) << np.uint64(v & 63)
    one = np.uint64(1)
    for u in range(n):
        lo, hi = dag.out_edge_range(u)
        children = dag.out_neighbors(u)
        for i, ei in enumerate(range(lo, hi)):
            v = int(children[i])
            word, bit = v >> 6, np.uint64(v & 63)
            # redundant iff some *other* child of u reaches v
            for w in children:
                w = int(w)
                if w != v and (reach[w][word] >> bit) & one:
                    mask[ei] = True
                    break
    return mask


def transitive_reduction(dag: Dag) -> Dag:
    """The unique minimal DAG with the same reachability relation."""
    mask = redundant_edges(dag)
    edges = dag.edge_array()[~mask]
    return Dag(dag.n_nodes, edges, node_names=(
        list(dag.node_names) if dag.node_names else None
    ))


def reduction_stats(dag: Dag) -> dict[str, float]:
    """Edge counts before/after reduction and the redundancy fraction."""
    mask = redundant_edges(dag)
    redundant = int(mask.sum())
    return {
        "edges": dag.n_edges,
        "redundant": redundant,
        "fraction_redundant": (
            redundant / dag.n_edges if dag.n_edges else 0.0
        ),
    }
