"""Mutable builder for :class:`repro.dag.Dag`.

Workload generators and the Datalog compiler build DAGs incrementally —
adding named nodes and edges as they discover rules/iterations — and then
freeze them. The builder deduplicates edges, supports name-based lookup,
and performs a single validation pass at :meth:`DagBuilder.build` time.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from .graph import Dag

__all__ = ["DagBuilder"]


class DagBuilder:
    """Accumulates nodes and edges, then freezes into an immutable Dag.

    Nodes may be added anonymously (:meth:`add_node`) or keyed by an
    arbitrary hashable (:meth:`node`), which is convenient when the
    natural identity of a task is e.g. ``("rule", 3, "iter", 7)``.
    """

    def __init__(self) -> None:
        self._names: list[str] = []
        self._by_key: dict[Hashable, int] = {}
        self._edges: set[tuple[int, int]] = set()

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Nodes added so far."""
        return len(self._names)

    @property
    def n_edges(self) -> int:
        """Distinct edges added so far."""
        return len(self._edges)

    def add_node(self, name: str | None = None) -> int:
        """Add a fresh node; returns its id."""
        nid = len(self._names)
        self._names.append(name if name is not None else f"n{nid}")
        return nid

    def node(self, key: Hashable, name: str | None = None) -> int:
        """Get-or-create the node identified by ``key``."""
        nid = self._by_key.get(key)
        if nid is None:
            nid = self.add_node(name if name is not None else str(key))
            self._by_key[key] = nid
        return nid

    def has_key(self, key: Hashable) -> bool:
        """Whether ``key`` already names a node."""
        return key in self._by_key

    def id_of(self, key: Hashable) -> int:
        """Node id for ``key``; raises ``KeyError`` if absent."""
        return self._by_key[key]

    def keys(self) -> list[Hashable | None]:
        """Key per node id (``None`` for anonymous nodes)."""
        out: list[Hashable | None] = [None] * len(self._names)
        for key, nid in self._by_key.items():
            out[nid] = key
        return out

    def add_edge(self, u: int, v: int) -> bool:
        """Add edge ``(u, v)``. Returns False if it already existed.

        Endpoint validity is checked eagerly; acyclicity is deferred to
        :meth:`build` (checking per-edge would be quadratic).
        """
        n = len(self._names)
        if not (0 <= u < n and 0 <= v < n):
            raise ValueError(f"edge ({u}, {v}) out of range for {n} nodes")
        if u == v:
            raise ValueError(f"self-loop at node {u}")
        if (u, v) in self._edges:
            return False
        self._edges.add((u, v))
        return True

    def add_edge_by_key(self, ukey: Hashable, vkey: Hashable) -> bool:
        """Add an edge between keyed nodes, creating them as needed."""
        return self.add_edge(self.node(ukey), self.node(vkey))

    def build(self, validate: bool = True) -> Dag:
        """Freeze into an immutable, validated :class:`Dag`."""
        edges = np.array(sorted(self._edges), dtype=np.int64).reshape(-1, 2)
        return Dag(
            len(self._names), edges, node_names=self._names, validate=validate
        )
