"""DAG substrate: graphs, levels, traversal, interval-list ancestor index.

The computation DAG ``G = (V, E)`` of Section II-A and the indexes the
schedulers precompute over it.
"""

from .builder import DagBuilder
from .graph import Dag
from .intervals import IntervalIndex, merge_intervals
from .levels import (
    compute_levels,
    level_histogram,
    level_spans,
    nodes_by_level,
    num_levels,
)
from .random_dags import chain, diamond_mesh, layered_dag, random_dag
from .reduction import reduction_stats, redundant_edges, transitive_reduction
from .traversal import (
    ancestors,
    critical_path,
    critical_path_length,
    descendants,
    is_ancestor,
    reachable_mask,
    topological_order,
    transitive_closure_sets,
)

__all__ = [
    "Dag",
    "DagBuilder",
    "IntervalIndex",
    "merge_intervals",
    "compute_levels",
    "num_levels",
    "level_histogram",
    "nodes_by_level",
    "level_spans",
    "topological_order",
    "reachable_mask",
    "descendants",
    "ancestors",
    "is_ancestor",
    "critical_path",
    "critical_path_length",
    "transitive_closure_sets",
    "redundant_edges",
    "transitive_reduction",
    "reduction_stats",
    "chain",
    "layered_dag",
    "random_dag",
    "diamond_mesh",
]
