"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``stats``     Print Table-I statistics for a job-trace analogue or a
              trace JSON file.
``simulate``  Run one scheduler over a trace and print the result.
``compare``   Run the Table-III scheduler trio over a trace.
``generate``  Write a job-trace analogue to a JSON file (e.g. the
              public synthetic trace #11 the paper mentions).
``datalog``   Evaluate a Datalog program file and print the
              materialized relations.
``serve``     Run *real* concurrent maintenance (repro.runtime) over a
              generated update stream, verifying every round.
``trace``     Like ``serve`` but with the repro.obs recorder attached:
              emits a Chrome trace_event timeline of every round and
              prints the slowest rounds by phase.
``verify``    Run the scheduler contract linter over source paths,
              the whole-program static analyzer over Datalog files,
              and/or the trace invariant checker over result files.
              Exit codes: 0 clean, 1 findings, 2 usage error/crash.

Examples
--------
::

    python -m repro stats --trace 5
    python -m repro simulate --trace 5 --scheduler hybrid -P 8
    python -m repro simulate --trace 5 --strict -o result.json
    python -m repro simulate --trace 5 --faults faults.json --seed 7 --deadline 60
    python -m repro compare --trace 7 --scale 0.5
    python -m repro generate --trace 11 --scale 0.05 -o trace11.json
    python -m repro datalog program.dl
    python -m repro serve --program retail --stream bursty --scheduler hybrid --rounds 20
    python -m repro trace --stream retail --scheduler levelbased -o trace.json
    python -m repro verify --lint src/repro/schedulers --trace result.json
    python -m repro verify --program examples/reachability.dlog --format json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .analysis import format_seconds, render_table
from .schedulers import LookaheadScheduler, scheduler_registry
from .sim import simulate
from .tasks import JobTrace, trace_stats
from .workloads import make_trace

SCHEDULERS = scheduler_registry()


def _load_trace(args) -> JobTrace:
    if args.trace_file:
        with open(args.trace_file) as fh:
            return JobTrace.load(fh)
    if args.trace is None:
        raise SystemExit("provide --trace N or --trace-file PATH")
    return make_trace(args.trace, scale=args.scale)


def _add_trace_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--trace", type=int, default=None,
        help="job-trace analogue index (1..11)",
    )
    p.add_argument(
        "--trace-file", type=str, default=None,
        help="path to a trace JSON file",
    )
    p.add_argument(
        "--scale", type=float, default=1.0,
        help="shrink factor for generated traces (default 1.0)",
    )


def cmd_stats(args) -> int:
    """``repro stats``: print the Table-I statistics of a trace."""
    trace = _load_trace(args)
    st = trace_stats(trace)
    rows = [
        ["nodes", st.n_nodes],
        ["edges", st.n_edges],
        ["initial tasks", st.n_initial],
        ["active jobs", st.n_active_jobs],
        ["levels", st.n_levels],
        ["task nodes", st.n_task_nodes],
        ["descendants of update", st.n_descendants],
        ["total active work", f"{st.total_active_work:.3f}"],
    ]
    print(render_table(["quantity", "value"], rows, title=trace.name))
    return 0


def _load_faults(args):
    """Build the :class:`FaultPlan` for ``repro simulate``, if any."""
    from .sim import FaultPlan

    plan = None
    if args.faults:
        try:
            with open(args.faults) as fh:
                plan = FaultPlan.from_json_dict(json.load(fh))
        except (OSError, ValueError, TypeError) as exc:
            raise SystemExit(
                f"simulate: cannot load fault plan {args.faults}: {exc}"
            ) from exc
    if args.seed is not None:
        import dataclasses

        plan = dataclasses.replace(plan or FaultPlan(), seed=args.seed)
    return plan


def _resolve_scheduler(name: str):
    """A scheduler instance from a registry name or ``lbl:<k>``."""
    if name.startswith("lbl:"):
        try:
            k = int(name.split(":", 1)[1])
        except ValueError:
            raise SystemExit(
                f"bad look-ahead depth in {name!r}; use lbl:<k>"
            ) from None
        return LookaheadScheduler(k)
    factory = SCHEDULERS.get(name)
    if factory is None:
        raise SystemExit(
            f"unknown scheduler {name!r}; "
            f"choose from {sorted(SCHEDULERS)} or lbl:<k>"
        )
    return factory()


def cmd_simulate(args) -> int:
    """``repro simulate``: run one scheduler and print the result."""
    from .sim import (
        DeadlineExceededError,
        InvalidDispatchError,
        NoProgressError,
        SchedulerStallError,
        TaskFailedPermanentlyError,
    )
    from .verify import InvariantViolationError

    trace = _load_trace(args)
    scheduler = _resolve_scheduler(args.scheduler)
    try:
        res = simulate(
            trace,
            scheduler,
            processors=args.processors,
            record_schedule=bool(args.output),
            strict=args.strict,
            faults=_load_faults(args),
            deadline=args.deadline,
        )
    except (
        SchedulerStallError,
        InvalidDispatchError,
        InvariantViolationError,
        TaskFailedPermanentlyError,
        NoProgressError,
        DeadlineExceededError,
    ) as exc:
        # one clean line per failure class, mirroring `repro verify`
        first_line = str(exc).splitlines()[0]
        raise SystemExit(
            f"simulate: {type(exc).__name__}: {first_line}"
        ) from exc
    print(res.summary())
    if args.output:
        payload = {
            "schema": 1,
            "trace": trace.to_json_dict(),
            "result": res.to_json_dict(),
        }
        out = Path(args.output)
        with out.open("w") as fh:
            json.dump(payload, fh)
        print(f"wrote {out} ({len(res.schedule)} dispatch records)")
    return 0


def cmd_compare(args) -> int:
    """``repro compare``: run the Table-III scheduler trio."""
    trace = _load_trace(args)
    rows = []
    for name in ("logicblox", "levelbased", "hybrid"):
        res = simulate(
            trace, SCHEDULERS[name](), processors=args.processors
        )
        rows.append(
            [res.scheduler_name, format_seconds(res.makespan),
             format_seconds(res.scheduling_overhead),
             res.scheduling_ops,
             res.precompute_memory_cells]
        )
    print(
        render_table(
            ["scheduler", "makespan", "overhead", "ops", "precomp cells"],
            rows,
            title=f"{trace.name} (P={args.processors})",
        )
    )
    return 0


def cmd_generate(args) -> int:
    """``repro generate``: write a trace analogue to a JSON file."""
    trace = make_trace(args.trace, scale=args.scale)
    out = Path(args.output)
    with out.open("w") as fh:
        trace.dump(fh)
    st = trace_stats(trace)
    print(
        f"wrote {out} — {st.n_nodes} nodes, {st.n_edges} edges, "
        f"{st.n_active_jobs} active jobs, {st.n_levels} levels"
    )
    return 0


def cmd_datalog(args) -> int:
    """``repro datalog``: evaluate a program file, print relations."""
    from .datalog import parse_program, seminaive_evaluate

    text = Path(args.program).read_text()
    program = parse_program(text)
    db, _ = seminaive_evaluate(program)
    for name in sorted(db.relations):
        rel = db.relations[name]
        print(f"{name}/{rel.arity} ({len(rel)} facts)")
        for t in sorted(rel):
            print(f"  {name}{t}")
    return 0


def cmd_serve(args) -> int:
    """``repro serve``: run real maintenance over an update stream.

    Builds the named live workload, generates ``--rounds`` ticks of the
    chosen stream, and drives every tick through one verified
    maintenance round: compile → concurrent execute → record → strict
    invariant check → materialization comparison against from-scratch
    evaluation.
    """
    from .datalog import seminaive_evaluate
    from .runtime import (
        ChaosError,
        ChaosPlan,
        MaterializationDivergenceError,
        RoundVerificationError,
        ServiceUnavailableError,
        UnitExecutionError,
        UpdateStreamService,
        live_workload,
        make_stream,
        process_backend_available,
    )
    from .sim.faults import DeadlineExceededError

    if args.executor == "process" and not process_backend_available():
        raise SystemExit(
            "serve: --executor process needs fork-capable multiprocessing "
            "(unavailable on this platform); use --executor thread"
        )

    try:
        wl = live_workload(args.program, seed=args.seed)
    except KeyError as exc:
        raise SystemExit(f"serve: {exc.args[0]}") from None
    scheduler = _resolve_scheduler(args.scheduler)
    chaos: ChaosPlan | None = None
    if args.chaos_spec is not None:
        with open(args.chaos_spec) as fh:
            chaos = ChaosPlan.from_json_dict(json.load(fh))
    elif args.chaos_seed is not None:
        chaos = ChaosPlan.from_seed(args.chaos_seed)
    unit_retries = args.unit_retries
    if unit_retries is None:
        unit_retries = 3 if chaos is not None else 0
    service = UpdateStreamService(
        wl.program,
        wl.edb,
        scheduler,
        workers=args.workers,
        capacity=args.capacity,
        verify=not args.no_verify,
        name=f"live:{wl.name}",
        plan_cache=not args.no_plan_cache,
        unit_retries=unit_retries,
        unit_timeout_s=args.unit_timeout,
        chaos=chaos,
        shed_policy=args.shed_policy,
        maintenance=args.maintenance,
        executor=args.executor,
        storage=args.storage,
    )
    try:
        stream = make_stream(
            wl, args.stream, rounds=args.rounds, batch_size=args.batch_size
        )
    except ValueError as exc:
        raise SystemExit(f"serve: {exc}") from None
    print(
        f"serving {wl.name} ({args.stream} stream) under "
        f"{scheduler.name}, {args.workers} workers "
        f"({args.executor} executor, {args.storage} storage)"
        + (
            f", {args.maintenance} maintenance oracle"
            if args.maintenance is not None
            else ""
        )
        + (f", chaos seed {chaos.seed}" if chaos is not None else "")
    )
    # under chaos, failed rounds are expected events: report them and
    # keep serving (the failed-round policy re-queues the delta); a
    # tripped breaker ends the stream cleanly with the queue intact
    tolerated = (
        ChaosError,
        UnitExecutionError,
        RoundVerificationError,
        MaterializationDivergenceError,
        DeadlineExceededError,
    )
    failed_rounds = 0
    for batches in stream:
        for delta in batches:
            service.submit(delta)
        try:
            rep = service.run_round()
        except ServiceUnavailableError as exc:
            if chaos is None:
                raise
            print(f"service unavailable: {exc}")
            break
        except tolerated as exc:
            if chaos is None:
                raise
            failed_rounds += 1
            print(
                f"round failed: {type(exc).__name__} "
                f"(requeued={getattr(exc, 'delta_requeued', False)})"
            )
            continue
        if rep is None:
            continue
        m = rep.metrics
        flag = "" if rep.materialization_ok else "  DIVERGED"
        if m.degraded:
            flag += "  DEGRADED"
        if m.noop:
            flag += "  NOOP"
        if m.cancelled_ops:
            flag += f"  ({m.cancelled_ops} op(s) cancelled)"
        print(
            f"round {m.index:3d}: {m.batches_coalesced} batch(es), "
            f"{m.tasks_executed}/{m.n_nodes} nodes executed, "
            f"{m.latency_s * 1e3:7.2f} ms "
            f"(compile {m.compile_s * 1e3:.2f}, exec "
            f"{m.execute_s * 1e3:.2f}){flag}"
        )
    print(service.metrics.summary())
    reg = service.metrics.registry
    cancelled_total = int(reg.counter("cancelled_ops").value)
    noop_total = int(reg.counter("noop_rounds").value)
    if cancelled_total or noop_total:
        print(
            f"coalescing: {cancelled_total} op(s) cancelled, "
            f"{noop_total} no-op round(s) skipped compilation"
        )
    if service.chaos is not None:
        print(
            f"chaos: {service.chaos.summary() or 'no injections'}; "
            f"{failed_rounds} round(s) failed, "
            f"{service.quarantined_units_total} unit(s) quarantined, "
            f"{service.shed_batches} batch(es) shed, "
            f"health={service.health.state.value}"
        )
    if service.plan_cache is not None:
        s = service.plan_cache.stats()
        print(
            f"plan cache: {s['hits']} hits / {s['misses']} misses, "
            f"{s['plan_patches']} plans patched, "
            f"{s['invalidations']} invalidations"
        )
    mat = service.materialization()
    if mat is None:
        print("no rounds served — nothing to compare")
        consistent = True
    else:
        db_final, _ = seminaive_evaluate(wl.program, service.database())
        consistent = db_final.as_dict() == mat.as_dict()
        print(
            "final materialization matches from-scratch evaluation"
            if consistent
            else "final materialization DIVERGES from from-scratch evaluation"
        )
    if args.metrics:
        out = Path(args.metrics)
        with out.open("w") as fh:
            service.metrics.dump(fh)
        print(f"wrote {out}")
    return 0 if consistent else 1


def cmd_trace(args) -> int:
    """``repro trace``: serve an update stream with tracing on.

    Runs the same real maintenance loop as ``repro serve`` but with a
    recording trace sink: every round emits nested spans (queue wait,
    drain, merge, compile, plan-build, per-worker unit execution,
    verify) plus scheduler decision counters. Writes the timeline as
    Chrome ``trace_event`` JSON — load it at ``chrome://tracing`` or
    https://ui.perfetto.dev — and prints the top-``--top`` slowest
    rounds with their per-phase breakdown.
    """
    from .obs import TraceRecorder, validate_chrome_trace, write_chrome_trace
    from .runtime import (
        ChaosPlan,
        ServiceUnavailableError,
        UpdateStreamService,
        live_workload,
        make_stream,
    )

    try:
        wl = live_workload(args.stream, seed=args.seed)
    except KeyError as exc:
        raise SystemExit(f"trace: {exc.args[0]}") from None
    scheduler = _resolve_scheduler(args.scheduler)
    recorder = TraceRecorder()
    recorder.set_thread_name("service")
    chaos = (
        ChaosPlan.from_seed(args.chaos_seed)
        if args.chaos_seed is not None
        else None
    )
    service = UpdateStreamService(
        wl.program,
        wl.edb,
        scheduler,
        workers=args.workers,
        name=f"trace:{wl.name}",
        sink=recorder,
        plan_cache=not args.no_plan_cache,
        chaos=chaos,
        unit_retries=3 if chaos is not None else 0,
    )
    try:
        stream = make_stream(
            wl, args.kind, rounds=args.rounds, batch_size=args.batch_size
        )
    except ValueError as exc:
        raise SystemExit(f"trace: {exc}") from None
    print(
        f"tracing {wl.name} ({args.kind} stream) under {scheduler.name}, "
        f"{args.workers} workers"
        + (f", chaos seed {chaos.seed}" if chaos is not None else "")
    )
    for batches in stream:
        for delta in batches:
            service.submit(delta)
        try:
            service.run_round()
        except ServiceUnavailableError:
            if chaos is None:
                raise
            break
        except Exception as exc:
            # chaos makes failed rounds part of the show: the trace
            # records the injections and the round-failed instant
            if chaos is None:
                raise
            print(f"round failed: {type(exc).__name__}")
    if service.chaos is not None:
        print(f"chaos: {service.chaos.summary() or 'no injections'}")

    rounds = service.metrics.rounds
    if rounds:
        top = sorted(rounds, key=lambda m: m.latency_s, reverse=True)
        rows = []
        for m in top[: args.top]:
            other = m.latency_s - (m.compile_s + m.execute_s + m.verify_s)
            rows.append(
                [
                    m.index,
                    f"{m.latency_s * 1e3:.2f}",
                    f"{m.queue_wait_s * 1e3:.2f}",
                    f"{m.compile_s * 1e3:.2f}",
                    f"{m.execute_s * 1e3:.2f}",
                    f"{m.verify_s * 1e3:.2f}",
                    f"{max(0.0, other) * 1e3:.2f}",
                    m.tasks_executed,
                ]
            )
        print(
            render_table(
                ["round", "latency ms", "queue-wait", "compile",
                 "execute", "verify", "other", "tasks"],
                rows,
                title=f"slowest {min(args.top, len(rounds))} rounds "
                      f"of {len(rounds)}",
            )
        )
    print(service.metrics.summary())

    out = Path(args.output)
    with out.open("w") as fh:
        n_events = write_chrome_trace(recorder, fh)
    from .obs import chrome_trace

    errors = validate_chrome_trace(chrome_trace(recorder))
    if errors:  # pragma: no cover - exporter/validator must agree
        for e in errors:
            print(f"trace: schema error: {e}", file=sys.stderr)
        return 1
    print(f"wrote {out} ({n_events} events) — open at chrome://tracing")
    if args.jsonl:
        from .obs import write_jsonl

        jl = Path(args.jsonl)
        with jl.open("w") as fh:
            n_lines = write_jsonl(recorder, fh)
        print(f"wrote {jl} ({n_lines} records)")
    return 0


def cmd_verify(args) -> int:
    """``repro verify``: one diagnostics surface over three checkers.

    ``--lint`` runs the scheduler contract linter, ``--program`` the
    whole-program Datalog static analyzer, ``--trace`` the recorded-run
    invariant checker. Exit codes are uniform across all of them:
    0 = everything ran and came back clean, 1 = at least one finding or
    violation, 2 = usage error or crash (nothing to do, unreadable
    input, unparseable python).
    """
    from .sim import SimulationResult
    from .verify import (
        analyze_path,
        check_invariants,
        findings_to_json,
        format_findings,
        lint_paths,
    )

    as_json = args.format == "json"
    report_json: dict = {"schema": 1}
    ran = False
    failures = 0
    if args.lint:
        ran = True
        try:
            findings = lint_paths(args.lint)
        except (OSError, ValueError, SyntaxError) as exc:
            print(f"verify: {exc}", file=sys.stderr)
            return 2
        if as_json:
            report_json["lint"] = findings_to_json(findings)
        elif findings:
            print(format_findings(findings))
            print(f"lint: {len(findings)} finding(s)")
        else:
            print("lint: clean")
        if findings:
            failures += 1
    if args.programs:
        report_json["programs"] = []
        for path in args.programs:
            ran = True
            try:
                analysis = analyze_path(path)
            except OSError as exc:
                print(
                    f"verify: cannot analyze {path}: {exc}",
                    file=sys.stderr,
                )
                return 2
            findings = analysis.findings
            if as_json:
                report_json["programs"].append(
                    {"path": str(path),
                     "findings": findings_to_json(findings)}
                )
            elif findings:
                print(format_findings(findings))
                print(f"{path}: {len(findings)} finding(s)")
            else:
                print(f"{path}: clean")
            if findings:
                failures += 1
    if args.results:
        report_json["results"] = []
        for result_path in args.results:
            ran = True
            try:
                with open(result_path) as fh:
                    data = json.load(fh)
                trace = JobTrace.from_json_dict(data["trace"])
                result = SimulationResult.from_json_dict(data["result"])
                report = check_invariants(trace, result)
            except (OSError, ValueError, KeyError, TypeError) as exc:
                print(
                    f"verify: cannot check {result_path}: {exc}",
                    file=sys.stderr,
                )
                return 2
            if as_json:
                report_json["results"].append(
                    {
                        "path": str(result_path),
                        "ok": report.ok,
                        "violations": [
                            {"kind": v.kind, "detail": v.detail,
                             "node": v.node}
                            for v in report.violations
                        ],
                    }
                )
            else:
                print(report.summary())
            if not report.ok:
                failures += 1
    if not ran:
        print(
            "verify: nothing to do — pass --lint PATH [PATH ...], "
            "--program FILE [FILE ...], and/or --trace RESULT_JSON",
            file=sys.stderr,
        )
        return 2
    if as_json:
        print(json.dumps(report_json, indent=2))
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'A Scheduling Approach to Incremental "
            "Maintenance of Datalog Programs' (IPDPS 2020)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("stats", help="print Table-I statistics")
    _add_trace_args(p)
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser("simulate", help="run one scheduler")
    _add_trace_args(p)
    p.add_argument("--scheduler", default="hybrid",
                   help=f"one of {sorted(SCHEDULERS)}")
    p.add_argument("-P", "--processors", type=int, default=8)
    p.add_argument(
        "--strict", action="store_true",
        help="verify every invariant of the finished run (repro.verify)",
    )
    p.add_argument(
        "--faults", default=None, metavar="SPEC_JSON",
        help="fault-plan JSON file (see repro.sim.FaultPlan) enabling "
             "failure injection, processor churn, and stragglers",
    )
    p.add_argument(
        "--seed", type=int, default=None,
        help="override the fault plan's RNG seed (implies an empty "
             "plan when --faults is not given)",
    )
    p.add_argument(
        "--deadline", type=float, default=None, metavar="S",
        help="abort the simulation after S wall-clock seconds",
    )
    p.add_argument(
        "-o", "--output", default=None,
        help="write trace + result (with schedule) JSON for `repro verify`",
    )
    p.set_defaults(fn=cmd_simulate)

    p = sub.add_parser("compare", help="run the Table-III trio")
    _add_trace_args(p)
    p.add_argument("-P", "--processors", type=int, default=8)
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser("generate", help="write a trace JSON file")
    p.add_argument("--trace", type=int, required=True)
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(fn=cmd_generate)

    p = sub.add_parser("datalog", help="evaluate a Datalog program file")
    p.add_argument("program")
    p.set_defaults(fn=cmd_datalog)

    p = sub.add_parser(
        "serve",
        help="run real concurrent maintenance over an update stream",
    )
    p.add_argument(
        "--program", default="retail",
        help="live workload name or alias (e.g. retail, tc, sg, pt)",
    )
    p.add_argument(
        "--stream", default="steady",
        choices=("steady", "bursty", "hotkey", "deletions", "mixed"),
        help="update stream shape",
    )
    p.add_argument(
        "--maintenance", default=None,
        choices=("dred", "bf", "counting"),
        help="shadow maintenance-strategy oracle: replay every round "
             "through this engine and insist it matches from-scratch "
             "evaluation (counting rejects recursive programs)",
    )
    p.add_argument("--scheduler", default="hybrid",
                   help=f"one of {sorted(SCHEDULERS)} or lbl:<k>")
    p.add_argument("--rounds", type=int, default=20,
                   help="number of stream ticks to serve")
    p.add_argument("-w", "--workers", type=int, default=4,
                   help="executor worker-pool width")
    p.add_argument(
        "--executor", default="thread", choices=("thread", "process"),
        help="unit executor backend: GIL-sharing threads (default) or "
             "forked worker processes with diff-shipping hand-off",
    )
    p.add_argument(
        "--storage", default="columnar", choices=("row", "columnar"),
        help="Z-set payload layout: interned columnar indexes with "
             "vectorized joins (default) or plain row tuples",
    )
    p.add_argument("--batch-size", type=int, default=2,
                   help="update operations per generated batch")
    p.add_argument("--capacity", type=int, default=64,
                   help="update queue bound (backpressure threshold)")
    p.add_argument("--seed", type=int, default=0,
                   help="stream generator seed")
    p.add_argument(
        "--no-verify", action="store_true",
        help="skip per-round invariant + materialization checks",
    )
    p.add_argument(
        "--no-plan-cache", action="store_true",
        help="compile every round cold instead of reusing the "
             "round-over-round plan cache",
    )
    p.add_argument(
        "--metrics", default=None, metavar="JSON",
        help="write the per-round metrics log to this file",
    )
    p.add_argument(
        "--chaos-seed", type=int, default=None, metavar="SEED",
        help="inject deterministic runtime chaos (unit failures, "
             "latency, worker kills, phase failures) from this seed",
    )
    p.add_argument(
        "--chaos-spec", default=None, metavar="JSON",
        help="load a full ChaosPlan JSON spec (overrides --chaos-seed)",
    )
    p.add_argument(
        "--unit-retries", type=int, default=None,
        help="per-unit retry budget (default 0; 3 when chaos is on)",
    )
    p.add_argument(
        "--unit-timeout", type=float, default=None, metavar="S",
        help="soft per-unit straggler watchdog, seconds",
    )
    p.add_argument(
        "--shed-policy", default="reject",
        choices=("reject", "drop-oldest", "coalesce-harder"),
        help="load shedding when backpressure and degradation coincide",
    )
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "trace",
        help="serve an update stream with tracing, emit a Chrome trace",
    )
    p.add_argument(
        "--stream", default="retail",
        help="live workload name or alias (e.g. retail, tc, sg, pt)",
    )
    p.add_argument(
        "--kind", default="steady",
        choices=("steady", "bursty", "hotkey", "deletions", "mixed"),
        help="update stream shape",
    )
    p.add_argument("--scheduler", default="levelbased",
                   help=f"one of {sorted(SCHEDULERS)} or lbl:<k>")
    p.add_argument("--rounds", type=int, default=12,
                   help="number of stream ticks to trace")
    p.add_argument("-w", "--workers", type=int, default=4,
                   help="executor thread-pool width")
    p.add_argument("--batch-size", type=int, default=2,
                   help="update operations per generated batch")
    p.add_argument("--seed", type=int, default=0,
                   help="stream generator seed")
    p.add_argument("--top", type=int, default=5,
                   help="how many slowest rounds to tabulate")
    p.add_argument(
        "--no-plan-cache", action="store_true",
        help="compile every round cold instead of reusing the "
             "round-over-round plan cache",
    )
    p.add_argument(
        "-o", "--output", default="trace.json",
        help="Chrome trace_event JSON output path (default trace.json)",
    )
    p.add_argument(
        "--jsonl", default=None, metavar="PATH",
        help="also write the flat JSONL span log to this file",
    )
    p.add_argument(
        "--chaos-seed", type=int, default=None, metavar="SEED",
        help="inject deterministic runtime chaos and trace every "
             "injection as a chaos:* instant",
    )
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser(
        "verify",
        help="lint scheduler source, analyze Datalog programs, and/or "
             "check a recorded result",
    )
    p.add_argument(
        "--lint", nargs="+", metavar="PATH", default=None,
        help="python files/directories to run the contract linter over",
    )
    p.add_argument(
        "--program", nargs="+", dest="programs", default=None,
        metavar="FILE",
        help="Datalog source files to run the whole-program static "
             "analyzer over",
    )
    p.add_argument(
        "--trace", action="append", dest="results", default=[],
        metavar="RESULT_JSON",
        help="result file from `repro simulate -o`; repeatable",
    )
    p.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="diagnostics output format (default text)",
    )
    p.set_defaults(fn=cmd_verify)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
