"""Datalog-derived scheduling workloads.

These exercise the *entire* pipeline the paper motivates: a Datalog
program is materialized, the base data changes, and the maintenance
computation — compiled into a computation DAG by
:mod:`repro.datalog.compiler` — is handed to the schedulers.

Five program families, mirroring the domains LogicBlox served:

* :func:`transitive_closure` — the canonical recursive program on a
  random sparse graph (deep fixpoints → deep DAGs);
* :func:`same_generation` — the classic non-linear recursive benchmark;
* :func:`retail_rollup` — a retail-style hierarchy: product categories,
  store regions, promotion eligibility (stratified negation included);
* :func:`retail_analytics` — aggregation-heavy roll-ups (count/sum/max
  with threshold alerts), the shape of LogicBlox's retail analytics;
* :func:`points_to` — a field-insensitive Andersen-style points-to
  analysis, the static-analysis workload of Soufflé/Semmle;
* :func:`retail_flat` — a non-recursive, aggregate-free visibility
  pipeline with stratified negation: the shape every maintenance
  strategy (including derivation counting, which rejects recursion)
  can run, so strategy benchmarks compare like for like.

Each returns ``(program, edb, delta)``; :func:`compile_workload` turns
one into a schedulable :class:`~repro.tasks.JobTrace`.
"""

from __future__ import annotations

import numpy as np

from ..datalog.ast import Program
from ..datalog.compiler import CompiledUpdate, compile_update
from ..datalog.database import Database
from ..datalog.incremental import Delta
from ..datalog.parser import parse_program
from ..dag.random_dags import as_rng

__all__ = [
    "transitive_closure",
    "same_generation",
    "retail_rollup",
    "retail_analytics",
    "retail_flat",
    "points_to",
    "compile_workload",
    "DATALOG_WORKLOADS",
]


def transitive_closure(
    n: int = 60,
    extra_edges: int = 30,
    seed: int = 0,
) -> tuple[Program, Database, Delta]:
    """Reachability over a chain plus random shortcuts.

    The update inserts an edge near the chain's head (cascading deep)
    and deletes one shortcut.
    """
    rng = as_rng(seed)
    prog = parse_program(
        """
        path(X, Y) :- edge(X, Y).
        path(X, Z) :- path(X, Y), edge(Y, Z).
        """
    )
    edb = Database()
    for i in range(n - 1):
        edb.add_fact("edge", (i, i + 1))
    shortcuts = set()
    while len(shortcuts) < extra_edges:
        a = int(rng.integers(0, n - 1))
        b = int(rng.integers(a + 1, n))
        if (a, b) not in shortcuts and b != a + 1:
            shortcuts.add((a, b))
    for a, b in shortcuts:
        edb.add_fact("edge", (a, b))
    victim = next(iter(sorted(shortcuts)))
    delta = Delta().insert("edge", (1, n // 2)).delete("edge", victim)
    return prog, edb, delta


def same_generation(
    depth: int = 7, fanout: int = 2, seed: int = 0
) -> tuple[Program, Database, Delta]:
    """Same-generation cousins over a synthetic family tree."""
    prog = parse_program(
        """
        sg(X, Y) :- sibling(X, Y).
        sg(X, Y) :- parent(XP, X), sg(XP, YP), parent(YP, Y).
        sibling(X, Y) :- parent(P, X), parent(P, Y), X != Y.
        """
    )
    edb = Database()
    next_id = [1]
    frontier = [0]
    for _d in range(depth):
        new_frontier = []
        for p in frontier:
            for _c in range(fanout):
                c = next_id[0]
                next_id[0] += 1
                edb.add_fact("parent", (p, c))
                new_frontier.append(c)
        frontier = new_frontier
    # update: graft a new child onto the root and remove one leaf's parent
    graft = next_id[0]
    leaf_edge = (frontier[0] // fanout if fanout else 0, frontier[0])
    # find the actual parent fact of frontier[0]
    parent_of_leaf = next(
        f for f in edb.relations["parent"] if f[1] == frontier[0]
    )
    delta = (
        Delta()
        .insert("parent", (0, graft))
        .delete("parent", parent_of_leaf)
    )
    return prog, edb, delta


def retail_rollup(
    n_products: int = 40,
    n_stores: int = 12,
    seed: int = 0,
) -> tuple[Program, Database, Delta]:
    """A retail hierarchy with promotion eligibility (uses negation).

    ``in_category`` rolls products up a category tree; ``served_by``
    rolls stores up a region tree; ``available`` joins assortments down
    both hierarchies; ``promo_eligible`` excludes clearance products via
    stratified negation. The update moves a product between categories
    and adds a clearance flag — the cascade the LogicBlox retail
    customers issue all day.
    """
    rng = as_rng(seed)
    prog = parse_program(
        """
        in_category(P, C) :- product_cat(P, C).
        in_category(P, C) :- in_category(P, D), subcat(D, C).
        served_by(S, R) :- store_region(S, R).
        served_by(S, R) :- served_by(S, Q), subregion(Q, R).
        available(P, S) :- assort(C, R), in_category(P, C), served_by(S, R).
        promo_eligible(P, S) :- available(P, S), !clearance(P).
        """
    )
    edb = Database()
    n_cats = max(4, n_products // 5)
    for c in range(1, n_cats):
        edb.add_fact("subcat", (c, int(rng.integers(0, c))))
    for p in range(n_products):
        edb.add_fact("product_cat", (f"p{p}", int(rng.integers(0, n_cats))))
    n_regions = max(3, n_stores // 3)
    for r in range(1, n_regions):
        edb.add_fact("subregion", (r, int(rng.integers(0, r))))
    for s in range(n_stores):
        edb.add_fact("store_region", (f"s{s}", int(rng.integers(0, n_regions))))
    for c in range(n_cats):
        if rng.random() < 0.5:
            edb.add_fact("assort", (c, int(rng.integers(0, n_regions))))
    for p in range(0, n_products, 7):
        edb.add_fact("clearance", (f"p{p}",))

    moved = f"p{int(rng.integers(0, n_products))}"
    old_cat = next(
        f for f in edb.relations["product_cat"] if f[0] == moved
    )
    delta = (
        Delta()
        .delete("product_cat", old_cat)
        .insert("product_cat", (moved, 0))
        .insert("clearance", (f"p{1 + int(rng.integers(1, n_products))}"[:3],))
    )
    return prog, edb, delta


def retail_analytics(
    n_products: int = 30,
    n_stores: int = 8,
    n_sales: int = 120,
    seed: int = 0,
) -> tuple[Program, Database, Delta]:
    """Aggregation-heavy retail analytics (count/sum/max roll-ups).

    Per-category quantity totals, per-store line counts, per-category
    best sellers, and threshold alerts derived from the aggregates —
    the LogicBlox retail workloads were exactly this shape. The update
    posts a day's new sales and voids one old line, cascading through
    every aggregate.
    """
    rng = as_rng(seed)
    prog = parse_program(
        """
        total_qty(C, sum(Q)) :- sale(S, P, Q), product_cat(P, C).
        store_lines(S, count(Q)) :- sale(S, P, Q).
        best_sale(C, max(Q)) :- sale(S, P, Q), product_cat(P, C).
        hot(C) :- total_qty(C, T), T > 50.
        quiet_store(S) :- store_open(S), !busy(S).
        busy(S) :- store_lines(S, N), N >= 3.
        """
    )
    edb = Database()
    n_cats = max(3, n_products // 6)
    for p in range(n_products):
        edb.add_fact("product_cat", (f"p{p}", int(rng.integers(0, n_cats))))
    for s in range(n_stores):
        edb.add_fact("store_open", (f"s{s}",))
    sales = set()
    while len(sales) < n_sales:
        sales.add(
            (
                f"s{int(rng.integers(0, n_stores))}",
                f"p{int(rng.integers(0, n_products))}",
                int(rng.integers(1, 9)),
            )
        )
    for t in sales:
        edb.add_fact("sale", t)
    delta = Delta()
    for _ in range(4):
        delta.insert(
            "sale",
            (
                f"s{int(rng.integers(0, n_stores))}",
                f"p{int(rng.integers(0, n_products))}",
                int(rng.integers(1, 9)),
            ),
        )
    delta.delete("sale", next(iter(sorted(sales))))
    return prog, edb, delta


def retail_flat(
    n_products: int = 40,
    n_stores: int = 10,
    seed: int = 0,
) -> tuple[Program, Database, Delta]:
    """A non-recursive product-visibility pipeline (negation, no
    aggregates, no recursion).

    Listings roll through a hide flag and store state into what is
    sellable and what gets featured — four strata of plain joins and
    one stratified negation. Deliberately the fragment *every*
    maintenance strategy supports: derivation counting rejects
    recursive programs, so this is the workload that puts ``dred``,
    ``bf``, and ``counting`` side by side. The update delists one
    product, hides another, and adds a listing.
    """
    rng = as_rng(seed)
    prog = parse_program(
        """
        stocked(P, S) :- listing(P, S).
        visible(P, S) :- stocked(P, S), !hidden(P).
        sellable(P, S) :- visible(P, S), open_store(S).
        featured(P) :- sellable(P, S), promo(S).
        """
    )
    edb = Database()
    listings = set()
    while len(listings) < n_products * 2:
        listings.add(
            (
                f"p{int(rng.integers(0, n_products))}",
                f"s{int(rng.integers(0, n_stores))}",
            )
        )
    for t in listings:
        edb.add_fact("listing", t)
    for p in range(0, n_products, 6):
        edb.add_fact("hidden", (f"p{p}",))
    for s in range(n_stores):
        if rng.random() < 0.8:
            edb.add_fact("open_store", (f"s{s}",))
        if rng.random() < 0.3:
            edb.add_fact("promo", (f"s{s}",))
    victim = next(iter(sorted(listings)))
    delta = (
        Delta()
        .delete("listing", victim)
        .insert("hidden", (f"p{1 + int(rng.integers(0, n_products - 1))}",))
        .insert(
            "listing",
            (
                f"p{int(rng.integers(0, n_products))}",
                f"s{int(rng.integers(0, n_stores))}",
            ),
        )
    )
    return prog, edb, delta


def points_to(
    n_vars: int = 30, n_stmts: int = 60, seed: int = 0
) -> tuple[Program, Database, Delta]:
    """Field-insensitive Andersen points-to analysis.

    Statements: ``addr(x, o)`` (x = &o), ``copy(x, y)`` (x = y),
    ``load(x, y)`` (x = *y), ``store(x, y)`` (*x = y). The update adds
    one copy edge (a new assignment in the program under analysis).
    """
    rng = as_rng(seed)
    prog = parse_program(
        """
        pt(X, O) :- addr(X, O).
        pt(X, O) :- copy(X, Y), pt(Y, O).
        pt(X, O) :- load(X, Y), pt(Y, Z), pt(Z, O).
        pt(Z, O) :- store(X, Y), pt(X, Z), pt(Y, O).
        """
    )
    edb = Database()
    for v in range(min(n_vars, n_stmts // 3)):
        edb.add_fact("addr", (f"v{v}", f"o{v % max(1, n_vars // 3)}"))
    kinds = ["copy", "load", "store"]
    for _ in range(n_stmts):
        k = kinds[int(rng.integers(0, 3))]
        a = f"v{int(rng.integers(0, n_vars))}"
        bvar = f"v{int(rng.integers(0, n_vars))}"
        edb.add_fact(k, (a, bvar))
    delta = Delta().insert(
        "copy", (f"v{int(rng.integers(0, n_vars))}", "v0")
    )
    return prog, edb, delta


#: name → zero-argument constructor, for benches and tests
DATALOG_WORKLOADS = {
    "transitive_closure": transitive_closure,
    "same_generation": same_generation,
    "retail_rollup": retail_rollup,
    "retail_analytics": retail_analytics,
    "retail_flat": retail_flat,
    "points_to": points_to,
}


def compile_workload(
    name: str,
    work_per_derivation: float = 1e-3,
    **kwargs,
) -> CompiledUpdate:
    """Build and compile a named Datalog workload into a job trace."""
    try:
        factory = DATALOG_WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown Datalog workload {name!r}; "
            f"choose from {sorted(DATALOG_WORKLOADS)}"
        ) from None
    prog, edb, delta = factory(**kwargs)
    cu = compile_update(
        prog,
        edb,
        delta,
        work_per_derivation=work_per_derivation,
        name=f"datalog:{name}",
    )
    return cu
