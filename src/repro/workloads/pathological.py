"""Pathological instances from the paper's analysis and evaluation.

* :func:`theorem9_example` — Figure 2's tight example, where LevelBased
  achieves Θ(ML) against the optimal Θ(M + L).
* :func:`logicblox_killer` — the spirit of Section VI's synthetic
  instance (the "100×" anecdote and job trace #11): a shallow DAG with
  a huge activated queue that the production scheduler rescans over and
  over while LevelBased identifies the same ready tasks in O(1).
* :func:`interval_fragmenter` — a dense layered mesh whose DFS interval
  lists fragment to Θ(width) intervals per node, exhibiting the O(V²)
  preprocessing-space worst case of the interval-list scheme.
"""

from __future__ import annotations

import numpy as np

from ..dag.builder import DagBuilder
from ..dag.random_dags import diamond_mesh
from ..tasks.trace import JobTrace

__all__ = ["theorem9_example", "logicblox_killer", "interval_fragmenter"]


def theorem9_example(L: int, unit: float = 1.0) -> JobTrace:
    """Figure 2's construction with M = L.

    Tasks ``j_1 … j_L`` form a unit-length chain; for each ``i ≥ 2`` a
    side task ``k_i`` hangs off ``j_{i-1}`` with work *and span*
    ``L − i + 1`` (a sequential inner chain — not parallelizable).

    * Optimal/greedy: start each ``k_i`` the moment ``j_{i-1}`` ends —
      makespan Θ(M + L) = Θ(L).
    * LevelBased: will not advance past level ``i`` until ``k_{i+1}``
      finishes — makespan Σ (L − i + 1) = Θ(L²).

    ``unit`` scales all durations. Everything is activated
    (``j_1`` initial, every edge carries a change), matching the
    theorem's setting where the whole instance must re-run.
    """
    if L < 2:
        raise ValueError(f"need L >= 2, got {L}")
    b = DagBuilder()
    j = [b.add_node(f"j{i}") for i in range(1, L + 1)]
    for i in range(L - 1):
        b.add_edge(j[i], j[i + 1])
    for i in range(2, L + 1):  # k_i depends on j_{i-1}
        k = b.add_node(f"k{i}")
        b.add_edge(j[i - 2], k)
    dag = b.build()

    work = np.empty(dag.n_nodes, dtype=np.float64)
    work[:L] = unit  # the j chain
    for i in range(2, L + 1):
        work[L + i - 2] = (L - i + 1) * unit  # k_i, sequential (span == work)
    changed = np.ones(dag.n_edges, dtype=bool)
    return JobTrace(
        dag=dag,
        work=work,
        initial_tasks=np.array([j[0]]),
        changed_edges=changed,
        name=f"theorem9(L={L})",
        metadata={"L": L, "M": L, "unit": unit},
    )


def logicblox_killer(
    m: int,
    width_per_step: int = 1,
    task_work: float = 1e-3,
    compact_index: bool = False,
) -> JobTrace:
    """A chain that drip-unblocks a huge pre-activated queue.

    Structure: source ``s`` feeds a chain ``c_1 → … → c_m`` *and* every
    wide task ``t_{i,r}``; additionally ``c_i → t_{i,r}``. The update
    dirties ``s``, whose execution changes **all** of its out-edges, so
    after one step the active queue holds the full chain head plus all
    ``m·width`` wide tasks — but ``t_{i,·}`` stays blocked until ``c_i``
    completes.

    The production scheduler's ready queue drains after every chain
    step, forcing a fresh scan of the still-huge active queue: Θ(m²)
    interval probes overall. LevelBased keeps one bucket per level and
    spends Θ(m) total. Makespans are nearly identical (the chain is the
    critical path), so the entire gap is scheduling overhead — the
    "100×" synthetic instance of Section VI.

    The family exhibits a *second*, independent pathology: the riders'
    DFS postorders interleave with the chain's, fragmenting the
    ancestor interval lists to Θ(i) entries each — Θ(m²) index cells,
    the Section II-C space worst case. ``compact_index=True`` disables
    it by appending a probe sink under ``c_m`` whose node id precedes
    every rider's: the reversed-DAG DFS then claims the whole chain in
    one contiguous descent and every ancestor list collapses to O(1)
    intervals. Use it to study the rescan pathology in isolation.
    """
    if m < 1:
        raise ValueError(f"need m >= 1, got {m}")
    b = DagBuilder()
    s = b.add_node("s")
    c = [b.add_node(f"c{i}") for i in range(1, m + 1)]
    b.add_edge(s, c[0])
    for i in range(m - 1):
        b.add_edge(c[i], c[i + 1])
    if compact_index:
        probe = b.add_node("probe")
        b.add_edge(c[m - 1], probe)
    wide: list[int] = []
    for i in range(m):
        for r in range(width_per_step):
            tnode = b.add_node(f"t{i + 1}_{r}")
            wide.append(tnode)
            b.add_edge(s, tnode)
            b.add_edge(c[i], tnode)
    dag = b.build()
    work = np.full(dag.n_nodes, task_work, dtype=np.float64)
    changed = np.ones(dag.n_edges, dtype=bool)
    return JobTrace(
        dag=dag,
        work=work,
        initial_tasks=np.array([s]),
        changed_edges=changed,
        name=f"logicblox_killer(m={m})",
        metadata={"m": m, "width_per_step": width_per_step},
    )


def interval_fragmenter(
    width: int, depth: int, task_work: float = 1.0
) -> JobTrace:
    """Complete-bipartite layered mesh; interval lists fragment to Θ(width).

    Used by the memory ablation: the interval index over this DAG costs
    Θ(width² · depth) cells, against the level table's Θ(width · depth).
    The whole mesh is activated.
    """
    dag = diamond_mesh(width, depth)
    work = np.full(dag.n_nodes, task_work, dtype=np.float64)
    changed = np.ones(dag.n_edges, dtype=bool)
    return JobTrace(
        dag=dag,
        work=work,
        initial_tasks=np.arange(width),
        changed_edges=changed,
        name=f"interval_fragmenter({width}x{depth})",
        metadata={"width": width, "depth": depth},
    )
