"""Experiment workloads: synthetic generators, pathological instances,
job-trace analogues (#1–#11), and Datalog-derived workloads."""

from . import pathological, synthetic, tables
from .pathological import interval_fragmenter, logicblox_killer, theorem9_example
from .synthetic import (
    assign_durations,
    grow_active_set,
    layered_structure,
    make_synthetic_trace,
)
from .tables import PAPER_TABLE1, TRACE_CONFIGS, TraceConfig, make_trace

__all__ = [
    "synthetic",
    "pathological",
    "tables",
    "make_synthetic_trace",
    "layered_structure",
    "grow_active_set",
    "assign_durations",
    "theorem9_example",
    "logicblox_killer",
    "interval_fragmenter",
    "make_trace",
    "TraceConfig",
    "TRACE_CONFIGS",
    "PAPER_TABLE1",
]
