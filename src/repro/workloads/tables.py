"""Calibrated generators for the paper's job traces #1–#11 (Table I).

The production traces are proprietary; these generators reproduce the
published structure statistics exactly (nodes, edges, initial tasks,
levels) and the active-job counts approximately (activation is grown
randomly until the target count of task nodes is hit), with duration
models calibrated so the *schedulers' relative behavior* matches
Tables II and III:

* #1–#5 — deep DAGs (39–171 levels), small updates whose activation
  spreads down many levels with a few tasks per level. Heavy-tailed
  durations make LevelBased pay its level barrier (Table II).
* #6 — very shallow (11 levels) and very wide: the update dirties
  125k+ sources at once, so scheduling overhead, not execution,
  dominates the production scheduler (Table III's headline 50% row).
* #7 vs #8 — the same DAG under a *bushy* vs a *chain-like* update:
  LevelBased trails on #7 and matches on #8.
* #9 vs #10 — the same DAG under a tiny fast update vs a large slow
  one.
* #11 — the synthetic release trace: near-tree, 5 levels, 131k initial
  tasks.

``paper`` fields record the published numbers for side-by-side
reporting in EXPERIMENTS.md; ``scale`` shrinks a trace uniformly
(tests run at scale≈1/16; benchmarks at full scale).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..tasks.trace import JobTrace
from .synthetic import assign_durations, grow_active_set, layered_structure

__all__ = ["TraceConfig", "TRACE_CONFIGS", "make_trace", "PAPER_TABLE1"]


@dataclass(frozen=True)
class TraceConfig:
    """Generator parameters for one job-trace analogue."""

    index: int
    n_nodes: int
    n_edges: int
    n_levels: int
    n_initial: int
    active_jobs: int
    mean_work: float
    sigma: float
    frac_task: float = 0.31
    level_profile: str = "uniform"
    growth: str = "bushy"
    depth_bias: float = 0.8
    unit_steps: bool = False
    structure_seed: int = 0
    update_seed: int = 0
    #: published reference numbers (Tables I–III), for reporting only
    paper: dict = field(default_factory=dict)


def _paper(
    makespan_lbx: float | None = None,
    makespan_lb: float | None = None,
    makespan_hybrid: float | None = None,
    overhead_lbx: float | None = None,
    overhead_lb: float | None = None,
    overhead_hybrid: float | None = None,
    lbl: dict | None = None,
) -> dict:
    d: dict = {}
    if makespan_lbx is not None:
        d["makespan"] = {
            "LogicBlox": makespan_lbx,
            "LevelBased": makespan_lb,
            "Hybrid": makespan_hybrid,
        }
    if overhead_lbx is not None:
        d["overhead"] = {
            "LogicBlox": overhead_lbx,
            "LevelBased": overhead_lb,
            "Hybrid": overhead_hybrid,
        }
    if lbl:
        d["lbl"] = lbl
    return d


#: Table I as published — (nodes, edges, initial, active jobs, levels)
PAPER_TABLE1: dict[int, tuple[int, int, int, int, int]] = {
    1: (64910, 101327, 5, 532, 171),
    2: (64903, 101319, 16, 1936, 171),
    3: (29185, 41506, 76, 560, 149),
    4: (64507, 100779, 26, 1342, 171),
    5: (1719, 2430, 6, 296, 39),
    6: (379500, 557702, 125544, 126979, 11),
    7: (35283, 50511, 76, 645, 198),
    8: (35283, 50511, 9, 177, 198),
    9: (65541, 102219, 10, 111, 171),
    10: (65541, 102219, 16, 1936, 171),
    11: (465127, 465158, 131104, 132162, 5),
}


TRACE_CONFIGS: dict[int, TraceConfig] = {
    1: TraceConfig(
        1, 64910, 101327, 171, 5, 532,
        mean_work=0.41, sigma=1.15, depth_bias=0.5,
        structure_seed=101, update_seed=11,
        paper=_paper(
            makespan_lbx=26.5, makespan_lb=57.74,
            lbl={5: 36.72, 10: 33.09, 15: 31.25, 20: 30.99},
        ),
    ),
    2: TraceConfig(
        2, 64903, 101319, 171, 16, 1936,
        mean_work=37.8, sigma=1.15, structure_seed=102, update_seed=12,
        paper=_paper(
            makespan_lbx=9736.0, makespan_lb=20979.3,
            lbl={5: 11906.9, 10: 9846.16, 15: 9866.64, 20: 9860.42},
        ),
    ),
    3: TraceConfig(
        3, 29185, 41506, 149, 76, 560,
        mean_work=2.52, sigma=1.15, structure_seed=103, update_seed=13,
        paper=_paper(
            makespan_lbx=187.0, makespan_lb=448.40,
            lbl={5: 299.34, 10: 285.91, 15: 230.22, 20: 229.34},
        ),
    ),
    4: TraceConfig(
        4, 64507, 100779, 171, 26, 1342,
        mean_work=1.73, sigma=1.15, structure_seed=104, update_seed=14,
        paper=_paper(
            makespan_lbx=303.0, makespan_lb=866.66,
            lbl={5: 576.49, 10: 490.15, 15: 444.67, 20: 426.22},
        ),
    ),
    5: TraceConfig(
        5, 1719, 2430, 39, 6, 296,
        mean_work=0.63, sigma=0.6, depth_bias=0.4,
        structure_seed=105, update_seed=15,
        paper=_paper(
            makespan_lbx=23.0, makespan_lb=29.32,
            lbl={5: 24.52, 10: 24.52, 15: 24.52, 20: 24.52},
        ),
    ),
    6: TraceConfig(
        6, 379500, 557702, 11, 125544, 126979,
        mean_work=3.1e-5, sigma=0.5, frac_task=0.6,
        level_profile="wide-top", depth_bias=0.0,
        structure_seed=106, update_seed=16,
        paper=_paper(
            makespan_lbx=33.24, makespan_lb=0.49, makespan_hybrid=21.93,
            overhead_lbx=21.69, overhead_lb=0.027, overhead_hybrid=10.89,
        ),
    ),
    7: TraceConfig(
        7, 35283, 50511, 198, 76, 645,
        mean_work=1.72, sigma=1.15, structure_seed=107, update_seed=17,
        paper=_paper(
            makespan_lbx=155.77, makespan_lb=348.35, makespan_hybrid=187.08,
            overhead_lbx=0.109, overhead_lb=3.8e-5, overhead_hybrid=0.077,
        ),
    ),
    8: TraceConfig(
        8, 35283, 50511, 198, 9, 177,
        mean_work=0.417, sigma=0.1, growth="chain", depth_bias=1.0,
        unit_steps=True,
        structure_seed=107, update_seed=18,
        paper=_paper(
            makespan_lbx=28.69, makespan_lb=28.29, makespan_hybrid=25.52,
            overhead_lbx=0.022, overhead_lb=9e-6, overhead_hybrid=0.020,
        ),
    ),
    9: TraceConfig(
        9, 65541, 102219, 171, 10, 111,
        mean_work=8.2e-4, sigma=0.1, growth="chain", depth_bias=1.0,
        unit_steps=True,
        structure_seed=109, update_seed=19,
        paper=_paper(
            makespan_lbx=0.048, makespan_lb=0.037, makespan_hybrid=0.041,
            overhead_lbx=0.0107, overhead_lb=1.3e-5, overhead_hybrid=0.009,
        ),
    ),
    10: TraceConfig(
        10, 65541, 102219, 171, 16, 1936,
        mean_work=36.7, sigma=1.0, structure_seed=109, update_seed=20,
        paper=_paper(
            makespan_lbx=9893.29, makespan_lb=20897.9, makespan_hybrid=10123.74,
            overhead_lbx=0.327, overhead_lb=1.59e-4, overhead_hybrid=0.289,
        ),
    ),
    11: TraceConfig(
        11, 465127, 465158, 5, 131104, 132162,
        mean_work=4.2e-2, sigma=0.5, frac_task=0.6,
        level_profile="wide-top", depth_bias=0.0,
        structure_seed=111, update_seed=21,
        paper=_paper(
            makespan_lbx=688.38, makespan_lb=694.24, makespan_hybrid=630.01,
            overhead_lbx=21.03, overhead_lb=0.042, overhead_hybrid=7.47,
        ),
    ),
}


def make_trace(index: int, scale: float = 1.0) -> JobTrace:
    """Generate the job-trace-#``index`` analogue.

    ``scale`` < 1 shrinks node/edge/activation counts proportionally
    (levels are kept, floored to fit) for fast tests; benchmark runs use
    ``scale=1.0`` to match Table I exactly.
    """
    cfg = TRACE_CONFIGS.get(index)
    if cfg is None:
        raise KeyError(f"no such job trace #{index} (valid: 1..11)")
    if not 0 < scale <= 1:
        raise ValueError(f"scale must be in (0, 1], got {scale}")

    n_nodes = max(int(cfg.n_nodes * scale), cfg.n_levels * 2)
    n_levels = min(cfg.n_levels, max(2, n_nodes // 4))
    n_edges = max(int(cfg.n_edges * scale), n_nodes)
    n_initial = max(1, int(cfg.n_initial * scale))
    active = max(n_initial + 1, int(cfg.active_jobs * scale))

    # Structure and update use independent RNG streams so traces that
    # share a DAG in the paper (#7/#8, #9/#10) share one here too.
    s_rng = np.random.default_rng(cfg.structure_seed)
    dag, layer_of = layered_structure(
        n_nodes, n_edges, n_levels, rng=s_rng, level_profile=cfg.level_profile
    )
    if cfg.frac_task >= 1.0:
        is_task = np.ones(n_nodes, dtype=bool)
    else:
        is_task = s_rng.random(n_nodes) < cfg.frac_task
        is_task[layer_of == 0] = True

    u_rng = np.random.default_rng(cfg.update_seed * 7919 + cfg.index)
    sources = dag.sources()
    # prefer sources that actually have descendants, so small-scale
    # traces don't pick a dead-end and activate nothing
    fertile = sources[dag.out_degrees()[sources] > 0]
    pool = fertile if fertile.size >= n_initial else sources
    n_initial = min(n_initial, int(pool.size))
    initial = u_rng.choice(pool, size=n_initial, replace=False)
    changed = grow_active_set(
        dag, initial, active, is_task,
        rng=u_rng, style=cfg.growth, depth_bias=cfg.depth_bias,
        unit_steps=cfg.unit_steps,
    )
    work = assign_durations(
        n_nodes, is_task, cfg.mean_work, cfg.sigma, rng=u_rng
    )

    trace = JobTrace(
        dag=dag,
        work=work,
        initial_tasks=initial,
        changed_edges=changed,
        is_task=is_task,
        name=f"jobtrace#{index}" + (f"@{scale:g}" if scale != 1.0 else ""),
        metadata={
            "generator": "tables.make_trace",
            "index": index,
            "paper": cfg.paper,
            "table1_paper_row": PAPER_TABLE1[index],
            "scale": scale,
        },
    )
    return trace
