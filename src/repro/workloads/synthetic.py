"""Generic synthetic workload machinery.

The paper's job traces are proprietary, but Table I publishes their
structural statistics and Tables II/III pin down duration scales. This
module provides the three building blocks the calibrated generators in
:mod:`repro.workloads.tables` compose:

* :func:`layered_structure` — a DAG with an exact node count, edge
  count, and level count (levels coincide with layers by construction);
* :func:`grow_active_set` — select which nodes the update activates by
  growing the activation frontier downstream of the initial tasks until
  a target count of *task* nodes is hit ("bushy" growth spreads across
  branches, "chain" growth follows single paths — job traces #7 vs #8
  differ exactly this way);
* :func:`assign_durations` — log-normal work with a chosen mean and
  shape; the heavy tail is what separates LevelBased's per-level
  barrier (makespan ≈ Σ_ℓ max duration at ℓ) from the production
  scheduler's dependency-exact overlap (makespan ≈ heaviest active
  chain), reproducing Table II's ratios.

All functions are deterministic given their RNG.
"""

from __future__ import annotations

import numpy as np

from ..dag.graph import Dag
from ..dag.levels import compute_levels
from ..dag.random_dags import as_rng
from ..tasks.trace import JobTrace

__all__ = [
    "layered_structure",
    "grow_active_set",
    "assign_durations",
    "make_synthetic_trace",
]


def layered_structure(
    n_nodes: int,
    n_edges: int,
    n_levels: int,
    rng: int | np.random.Generator | None = 0,
    level_profile: str = "uniform",
    locality: float = 0.9,
) -> tuple[Dag, np.ndarray]:
    """Build a DAG with exactly the requested nodes, edges, and levels.

    Nodes are distributed over ``n_levels`` layers. Every non-source
    node gets one mandatory parent in the previous layer (which fixes
    its level to its layer index); the remaining edge budget is spent on
    random cross-layer edges from strictly lower layers (which can never
    raise a level). Returns ``(dag, layer_of_node)``.

    ``level_profile``:
      * ``"uniform"`` — layers of (nearly) equal size;
      * ``"wide-top"`` — geometric decay: most nodes near the sources,
        the shape of the shallow production DAGs (#6, #11).

    ``locality`` in [0, 1] controls how *tree-like* the wiring is: with
    probability ``locality`` a node's parents are drawn from a small
    window around its own relative position in the lower layer (so
    sibling subtrees stay disjoint, the regime where the interval-list
    encoding is compact — "usually, but not always", Section II-C);
    otherwise parents are uniform over the lower layer. Production
    dataflow DAGs are strongly local (a rule reads a handful of nearby
    predicates), which is why the LogicBlox preprocessing is viable on
    them at all.
    """
    rng = as_rng(rng)
    if n_levels <= 0 or n_nodes < n_levels:
        raise ValueError(
            f"need n_nodes ({n_nodes}) >= n_levels ({n_levels}) >= 1"
        )
    if level_profile == "uniform":
        weights = np.ones(n_levels)
    elif level_profile == "wide-top":
        weights = 0.55 ** np.arange(n_levels)
    else:
        raise ValueError(f"unknown level_profile {level_profile!r}")
    sizes = np.maximum(
        1, np.round(weights / weights.sum() * n_nodes).astype(np.int64)
    )
    # fix rounding drift while keeping every layer non-empty
    drift = int(n_nodes - sizes.sum())
    i = 0
    while drift != 0:
        j = i % n_levels
        if drift > 0:
            sizes[j] += 1
            drift -= 1
        elif sizes[j] > 1:
            sizes[j] -= 1
            drift += 1
        i += 1

    offsets = np.concatenate(([0], np.cumsum(sizes)))
    layer_of = np.empty(n_nodes, dtype=np.int32)
    for li in range(n_levels):
        layer_of[offsets[li] : offsets[li + 1]] = li

    mandatory = n_nodes - int(sizes[0])
    if n_edges < mandatory:
        raise ValueError(
            f"n_edges={n_edges} below the {mandatory} edges needed to give "
            "every non-source node a parent"
        )

    edges = set()

    def pick_parent(v: int, child_lo: int, child_hi: int,
                    par_lo: int, par_hi: int) -> int:
        """A parent for v: aligned-with-jitter (local) or uniform."""
        width = par_hi - par_lo
        if locality > 0.0 and rng.random() < locality:
            frac = (v - child_lo) / max(1, child_hi - child_lo)
            center = par_lo + frac * width
            jitter = rng.normal(0.0, max(1.0, 0.02 * width))
            u = int(np.clip(center + jitter, par_lo, par_hi - 1))
        else:
            u = int(rng.integers(par_lo, par_hi))
        return u

    # mandatory parents keep level == layer index; remember the tree
    tree_parent = np.full(n_nodes, -1, dtype=np.int64)
    for li in range(1, n_levels):
        lo, hi = int(offsets[li]), int(offsets[li + 1])
        plo, phi = int(offsets[li - 1]), int(offsets[li])
        for v in range(lo, hi):
            u = pick_parent(v, lo, hi, plo, phi)
            tree_parent[v] = u
            edges.add((u, v))

    # Extra edges. Real dataflow DAGs are dominated by *transitive
    # shortcuts* — a rule reads both a derived predicate and predicates
    # further up the same derivation — so most extra edges here jump a
    # geometric number of steps up the node's own mandatory-parent
    # chain. Shortcuts keep the ancestor interval lists compact (the
    # new parent's ancestor set is already contained in the chain's),
    # matching the paper's "usually, but not always, compact". A
    # ``1 - locality`` fraction are genuinely cross-cutting random
    # edges, which is what fragmentation there is comes from.
    budget = n_edges - len(edges)
    tries = 0
    while budget > 0 and tries < 50 * n_edges:
        tries += 1
        v = int(rng.integers(offsets[1], n_nodes))
        lv = int(layer_of[v])
        if locality > 0.0 and rng.random() < locality:
            hops = 1 + int(rng.geometric(0.5))
            u = v
            for _ in range(hops):
                if tree_parent[u] < 0:
                    break
                u = int(tree_parent[u])
            if u == v or u == tree_parent[v]:
                continue
        else:
            src_layer = max(0, lv - int(rng.geometric(0.5)))
            lo, hi = int(offsets[lv]), int(offsets[lv + 1])
            u = pick_parent(
                v, lo, hi, int(offsets[src_layer]), int(offsets[src_layer + 1])
            )
        if (u, v) not in edges:
            edges.add((u, v))
            budget -= 1
    if budget > 0:
        raise RuntimeError(
            f"could not place {budget} extra edges; graph too dense"
        )
    dag = Dag(
        n_nodes, np.array(sorted(edges), dtype=np.int64), validate=False
    )
    return dag, layer_of


def grow_active_set(
    dag: Dag,
    initial: np.ndarray,
    target_active_tasks: int,
    is_task: np.ndarray,
    rng: int | np.random.Generator | None = 0,
    style: str = "bushy",
    depth_bias: float = 0.0,
    unit_steps: bool = False,
) -> np.ndarray:
    """Choose the realized change flags so exactly the grown set executes.

    Grows the executing set ``W`` downstream from ``initial`` until it
    contains ``target_active_tasks`` task nodes (or the frontier dries
    up), then returns boolean change flags per dense edge index: for
    each non-initial member one (or more) incoming edge from a member
    parent is flagged changed; all other edges are unchanged. By
    construction :func:`repro.tasks.activation.propagate_changes`
    recovers exactly ``W``.

    ``style="bushy"`` expands the frontier breadth-first with random
    tie-breaking (many parallel branches — LevelBased pays the level
    barrier). ``style="chain"`` depth-first follows single paths (one
    active task per level — LevelBased is optimal). ``depth_bias`` in
    [0, 1] interpolates: with that probability the *most recent*
    frontier node is extended (driving the activation tree deep, so the
    active set spreads over many levels with only a few tasks per
    level — the regime of job traces #1–#4), otherwise a uniformly
    random frontier node branches. ``unit_steps=True`` restricts growth
    to edges that advance exactly one level whenever possible, keeping
    the active set level-homogeneous — the updates on which LevelBased
    matches the production scheduler (job traces #8, #9).
    """
    rng = as_rng(rng)
    levels = compute_levels(dag) if unit_steps else None
    heights: np.ndarray | None = None
    if style == "chain":
        # longest downward path per node, so chains can steer around
        # dead subtrees and run the full depth of the DAG
        from ..schedulers.priority import downstream_weight

        heights = downstream_weight(dag, np.ones(dag.n_nodes))
    initial = np.asarray(initial, dtype=np.int64)
    in_w = np.zeros(dag.n_nodes, dtype=bool)
    in_w[initial] = True
    count = int(np.sum(is_task[initial]))
    chosen_edge: dict[int, int] = {}  # member -> the in-edge that activated it

    if style == "chain":
        # true dependency paths: one tip per initial, extended until it
        # dead-ends, never branching mid-path — so the active set's
        # level order coincides with its dependency order and the
        # LevelBased barrier costs nothing (traces #8/#9's regime)
        pending = [int(x) for x in initial[::-1]]
        tip = pending.pop() if pending else None
        while count < target_active_tasks and tip is not None:
            children = [
                int(c) for c in dag.out_neighbors(tip) if not in_w[c]
            ]
            if not children:
                tip = pending.pop() if pending else None
                continue
            # steer down the tallest subtree so the chain survives,
            # preferring task nodes (dense chains keep the active set's
            # level footprint close to the chain length) and unit level
            # steps among equally tall options
            tallest = max(heights[c] for c in children)
            children = [c for c in children if heights[c] == tallest]
            tasky = [c for c in children if is_task[c]]
            if tasky:
                children = tasky
            if levels is not None:
                stepped = [
                    c for c in children if levels[c] == levels[tip] + 1
                ]
                if stepped:
                    children = stepped
            v = children[int(rng.integers(0, len(children)))]
            in_w[v] = True
            chosen_edge[v] = dag.edge_index(tip, v)
            if is_task[v]:
                count += 1
            tip = v
        if count < target_active_tasks:
            # every chain dried up: top up with short branches off the
            # existing chains so the target activation count is met
            frontier = [int(x) for x in np.flatnonzero(in_w)]
            while count < target_active_tasks and frontier:
                i = int(rng.integers(0, len(frontier)))
                u = frontier[i]
                children = [
                    int(c) for c in dag.out_neighbors(u) if not in_w[c]
                ]
                if not children:
                    frontier.pop(i)
                    continue
                v = children[int(rng.integers(0, len(children)))]
                in_w[v] = True
                chosen_edge[v] = dag.edge_index(u, v)
                if is_task[v]:
                    count += 1
                frontier.append(v)
    elif style == "bushy":
        frontier: list[int] = list(initial)
        while count < target_active_tasks and frontier:
            if depth_bias > 0.0 and rng.random() < depth_bias:
                i = len(frontier) - 1
            else:
                i = int(rng.integers(0, len(frontier)))
            u = frontier[i]
            children = [int(c) for c in dag.out_neighbors(u) if not in_w[c]]
            if not children:
                frontier.pop(i)
                continue
            if levels is not None:
                stepped = [
                    c for c in children if levels[c] == levels[u] + 1
                ]
                if stepped:
                    children = stepped
            v = children[int(rng.integers(0, len(children)))]
            in_w[v] = True
            chosen_edge[v] = dag.edge_index(u, v)
            if is_task[v]:
                count += 1
            frontier.append(v)
    else:
        raise ValueError(f"unknown growth style {style!r}")

    changed = np.zeros(dag.n_edges, dtype=bool)
    for ei in chosen_edge.values():
        changed[ei] = True
    return changed


def assign_durations(
    n_nodes: int,
    is_task: np.ndarray,
    mean_work: float,
    sigma: float = 1.0,
    rng: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Log-normal work per task node; plumbing nodes get zero.

    ``mean_work`` is the arithmetic mean of the distribution (we solve
    for the underlying μ), ``sigma`` its log-space shape: σ ≈ 1.0–1.3
    yields the straggler-per-level tail behind Table II's LevelBased
    ratios; σ → 0 degenerates to constant durations.
    """
    rng = as_rng(rng)
    if mean_work < 0:
        raise ValueError("mean_work must be non-negative")
    work = np.zeros(n_nodes, dtype=np.float64)
    if mean_work > 0:
        mu = np.log(mean_work) - sigma**2 / 2.0
        draws = rng.lognormal(mean=mu, sigma=sigma, size=int(is_task.sum()))
        work[is_task] = draws
    return work


def make_synthetic_trace(
    n_nodes: int,
    n_edges: int,
    n_levels: int,
    n_initial: int,
    target_active_tasks: int,
    mean_work: float,
    sigma: float = 1.0,
    frac_task: float = 1.0,
    level_profile: str = "uniform",
    growth: str = "bushy",
    depth_bias: float = 0.0,
    seed: int = 0,
    name: str = "synthetic",
) -> JobTrace:
    """One-call composition of the three building blocks."""
    rng = as_rng(seed)
    dag, layer_of = layered_structure(
        n_nodes, n_edges, n_levels, rng=rng, level_profile=level_profile
    )
    if frac_task >= 1.0:
        is_task = np.ones(n_nodes, dtype=bool)
    else:
        is_task = rng.random(n_nodes) < frac_task
        is_task[layer_of == 0] = True  # initial tasks must be tasks
    sources = dag.sources()
    if n_initial > sources.size:
        raise ValueError(
            f"n_initial={n_initial} exceeds {sources.size} sources"
        )
    initial = rng.choice(sources, size=n_initial, replace=False)
    changed = grow_active_set(
        dag,
        initial,
        target_active_tasks,
        is_task,
        rng=rng,
        style=growth,
        depth_bias=depth_bias,
    )
    work = assign_durations(n_nodes, is_task, mean_work, sigma, rng=rng)
    return JobTrace(
        dag=dag,
        work=work,
        initial_tasks=initial,
        changed_edges=changed,
        is_task=is_task,
        name=name,
        metadata={
            "generator": "make_synthetic_trace",
            "seed": seed,
            "mean_work": mean_work,
            "sigma": sigma,
            "growth": growth,
        },
    )
