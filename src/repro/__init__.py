"""repro — reproduction of "A Scheduling Approach to Incremental
Maintenance of Datalog Programs" (IPDPS 2020).

Public API tour
---------------
* :mod:`repro.dag` — the computation DAG ``G``, level computation, and
  the interval-list ancestor index.
* :mod:`repro.tasks` — task execution models, activation semantics (the
  active graph ``H``), and the :class:`~repro.tasks.JobTrace` workload
  format.
* :mod:`repro.schedulers` — LevelBased, LBL(k), the LogicBlox-style
  production baseline, brute-force signal propagation, the Hybrid
  scheduler, and the Theorem-10 meta-scheduler.
* :mod:`repro.sim` — the discrete-event simulator with scheduling
  overhead and memory accounting.
* :mod:`repro.datalog` — a from-scratch Datalog engine whose incremental
  maintenance produces the computation DAGs the paper schedules.
* :mod:`repro.workloads` — synthetic generators calibrated to the
  paper's job traces #1–#11, pathological instances, and Datalog-derived
  workloads.
* :mod:`repro.verify` — the scheduler contract linter and the trace
  invariant checker behind ``simulate(..., strict=True)`` and
  ``python -m repro verify``.

Quickstart
----------
>>> from repro.workloads import tables
>>> from repro.schedulers import HybridScheduler
>>> from repro.sim import simulate
>>> trace = tables.make_trace(5)          # job trace #5 analogue
>>> res = simulate(trace, HybridScheduler(), processors=8)
>>> res.makespan > 0
True
"""

from . import analysis, dag, datalog, schedulers, sim, tasks, verify, workloads

__version__ = "1.0.0"

__all__ = [
    "dag",
    "tasks",
    "sim",
    "schedulers",
    "datalog",
    "workloads",
    "analysis",
    "verify",
    "__version__",
]
