"""Tracing and observability shared by the simulator and the runtime.

The paper's claim is about *scheduling overhead*; proving it on the
live system needs per-phase, per-task attribution, not coarse
aggregates. This package provides:

* :mod:`~repro.obs.trace` — nested :class:`Span` recording over a
  pluggable :class:`TraceSink`: lock-free-per-thread buffers when
  enabled, a shared no-op sink (:data:`NULL_SINK`) when not, and two
  clock domains (wall clock for the runtime, simulation time for the
  engine) so both render in one timeline.
* :mod:`~repro.obs.export` — Chrome ``trace_event`` JSON (loadable in
  ``chrome://tracing`` / Perfetto) and a flat JSONL log, plus the
  minimal schema validator CI runs over emitted artifacts.
* :mod:`~repro.obs.metrics` — a log-linear :class:`Histogram` registry
  with bounded relative quantile error; the runtime's round metrics
  aggregate through it instead of keeping ad-hoc lists.

Instrumented call sites guard per-event work behind ``sink.enabled``,
so a disabled sink costs one attribute read — tracing off is free.
"""

from .export import (
    chrome_trace,
    jsonl_records,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from .metrics import Counter, Histogram, MetricsRegistry
from .trace import (
    NULL_SINK,
    PID_REAL,
    PID_SIM,
    NullSink,
    Span,
    SpanRecord,
    TraceRecorder,
    TraceSink,
)

__all__ = [
    "NULL_SINK",
    "PID_REAL",
    "PID_SIM",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "NullSink",
    "Span",
    "SpanRecord",
    "TraceRecorder",
    "TraceSink",
    "chrome_trace",
    "jsonl_records",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
