"""Histogram-backed metrics registry.

The runtime's per-round aggregates (``repro.runtime.metrics``) and the
``repro trace`` diagnosis both need percentile estimates over streams
of latencies without retaining every sample. :class:`Histogram` is the
standard log-linear bucketing scheme (HdrHistogram's idea): bucket
boundaries grow geometrically, so relative quantile error is bounded by
the configured ``precision`` regardless of the value range, memory is
``O(log(max/min))``, and merging/observing is O(1).

:class:`MetricsRegistry` is the shared namespace: get-or-create
histograms and monotonic counters by name, dump everything as one JSON
dict.
"""

from __future__ import annotations

import math
from typing import Any, Iterable

__all__ = ["Counter", "Histogram", "MetricsRegistry"]


class Counter:
    """A named monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def inc(self, n: float = 1) -> None:
        """Add ``n`` (must be non-negative)."""
        if n < 0:
            raise ValueError(f"counter {self.name}: negative increment {n}")
        self.value += n

    def to_json_dict(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Histogram:
    """Log-linear histogram with bounded relative quantile error.

    Values at or below ``min_value`` land in a dedicated zero bucket
    (reported as 0.0); everything else maps to bucket
    ``floor(log(v / min_value) / log(growth))`` where ``growth`` is
    chosen so the geometric midpoint of a bucket is within
    ``precision`` of any member. Exact ``count``/``sum``/``min``/
    ``max`` are tracked alongside, and percentile estimates are clamped
    into ``[min, max]`` so the extremes are exact.
    """

    __slots__ = (
        "name", "precision", "_min_value", "_log_growth",
        "counts", "zero_count", "count", "sum", "min", "max",
    )

    def __init__(
        self,
        name: str = "",
        precision: float = 0.01,
        min_value: float = 1e-9,
    ) -> None:
        if not 0 < precision < 1:
            raise ValueError(f"precision must be in (0, 1), got {precision}")
        if min_value <= 0:
            raise ValueError(f"min_value must be positive, got {min_value}")
        self.name = name
        self.precision = precision
        self._min_value = min_value
        # bucket [b, b*g): representative sqrt(g)*b has relative error
        # ≤ (sqrt(g) - 1) against any member; g = (1+p)^2 bounds it by p
        self._log_growth = 2.0 * math.log1p(precision)
        self.counts: dict[int, int] = {}
        self.zero_count = 0
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    # ------------------------------------------------------------------
    def _index(self, v: float) -> int:
        return int(math.log(v / self._min_value) // self._log_growth)

    def _representative(self, idx: int) -> float:
        return self._min_value * math.exp((idx + 0.5) * self._log_growth)

    def observe(self, v: float) -> None:
        """Record one sample (negative values are clamped to zero)."""
        self.count += 1
        self.sum += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v
        if v <= self._min_value:
            self.zero_count += 1
        else:
            idx = self._index(v)
            self.counts[idx] = self.counts.get(idx, 0) + 1

    def observe_many(self, values: Iterable[float]) -> None:
        """Record a batch of samples."""
        for v in values:
            self.observe(v)

    # ------------------------------------------------------------------
    def percentile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (``q`` in [0, 100])."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        rank = q / 100.0 * (self.count - 1)
        seen = self.zero_count
        if rank < seen:
            return 0.0 if self.min >= 0 else self.min
        for idx in sorted(self.counts):
            seen += self.counts[idx]
            if rank < seen:
                est = self._representative(idx)
                return min(max(est, self.min), self.max)
        return self.max

    def percentiles(
        self, qs: Iterable[float] = (50.0, 99.0)
    ) -> dict[str, float]:
        """``{"p50": ..., ...}`` over the recorded samples."""
        return {f"p{q:g}": self.percentile(q) for q in qs}

    @property
    def mean(self) -> float:
        """Arithmetic mean of the recorded samples (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def to_json_dict(self) -> dict[str, Any]:
        """Summary plus the sparse bucket table."""
        out: dict[str, Any] = {
            "type": "histogram",
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
        }
        if self.count:
            out["min"] = self.min
            out["max"] = self.max
            out.update(self.percentiles((50.0, 90.0, 99.0)))
            out["buckets"] = [
                [round(self._representative(i), 12), self.counts[i]]
                for i in sorted(self.counts)
            ]
            if self.zero_count:
                out["zero_count"] = self.zero_count
        return out


class MetricsRegistry:
    """Named histograms and counters, created on first use."""

    def __init__(self) -> None:
        self._histograms: dict[str, Histogram] = {}
        self._counters: dict[str, Counter] = {}

    def histogram(
        self,
        name: str,
        precision: float = 0.01,
        min_value: float = 1e-9,
    ) -> Histogram:
        """Get or create the named histogram."""
        h = self._histograms.get(name)
        if h is None:
            h = Histogram(name, precision=precision, min_value=min_value)
            self._histograms[name] = h
        return h

    def counter(self, name: str) -> Counter:
        """Get or create the named counter."""
        c = self._counters.get(name)
        if c is None:
            c = Counter(name)
            self._counters[name] = c
        return c

    def to_json_dict(self) -> dict[str, Any]:
        """Every metric keyed by name."""
        out: dict[str, Any] = {}
        for name, h in sorted(self._histograms.items()):
            out[name] = h.to_json_dict()
        for name, c in sorted(self._counters.items()):
            out[name] = c.to_json_dict()
        return out
