"""Trace exporters: Chrome ``trace_event`` JSON and flat JSONL.

The Chrome form is the ``{"traceEvents": [...]}`` object format that
``chrome://tracing`` and Perfetto load directly: complete (``"X"``)
events for spans, instant (``"i"``) events for markers, and metadata
(``"M"``) events naming the two clock-domain "processes" (runtime wall
clock vs simulated clock) and each worker thread. Timestamps are
microseconds, per the format.

The JSONL form is one self-describing JSON object per record — the
greppable flat log for ad-hoc analysis (``jq``-friendly), carrying the
same spans with seconds-resolution floats and the parent-span link the
Chrome format only encodes positionally.

:func:`validate_chrome_trace` is the minimal schema check CI runs over
the emitted artifact — it validates exactly the invariants the
exporters promise, nothing more, so it needs no external JSON-schema
dependency.
"""

from __future__ import annotations

import json
from typing import IO, Any

from .trace import PID_REAL, PID_SIM, SpanRecord, TraceRecorder

__all__ = [
    "chrome_trace",
    "jsonl_records",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]

_PROCESS_NAMES = {
    PID_REAL: "runtime (wall clock)",
    PID_SIM: "simulator (sim clock)",
}


def chrome_trace(recorder: TraceRecorder) -> dict[str, Any]:
    """The recorder's records as a Chrome ``trace_event`` object."""
    records = recorder.records()
    events: list[dict[str, Any]] = []
    pids = sorted({r.pid for r in records}) or [PID_REAL]
    for pid in pids:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "ts": 0,
                "args": {"name": _PROCESS_NAMES.get(pid, f"pid {pid}")},
            }
        )
    for tid, label in sorted(recorder.thread_names().items()):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": PID_REAL,
                "tid": tid,
                "ts": 0,
                "args": {"name": label},
            }
        )
    for r in records:
        if r.t1 is None:
            events.append(
                {
                    "name": r.name,
                    "cat": r.cat,
                    "ph": "i",
                    "s": "t",
                    "ts": r.t0 * 1e6,
                    "pid": r.pid,
                    "tid": r.tid,
                    "args": r.args,
                }
            )
        else:
            events.append(
                {
                    "name": r.name,
                    "cat": r.cat,
                    "ph": "X",
                    "ts": r.t0 * 1e6,
                    "dur": max(0.0, (r.t1 - r.t0) * 1e6),
                    "pid": r.pid,
                    "tid": r.tid,
                    "args": r.args,
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(recorder: TraceRecorder, fh: IO[str]) -> int:
    """Write the Chrome-trace JSON; returns the number of events."""
    payload = chrome_trace(recorder)
    json.dump(payload, fh, default=str)
    fh.write("\n")
    return len(payload["traceEvents"])


def _jsonl_record(r: SpanRecord) -> dict[str, Any]:
    out: dict[str, Any] = {
        "type": "instant" if r.t1 is None else "span",
        "name": r.name,
        "cat": r.cat,
        "t0_s": r.t0,
        "pid": r.pid,
        "tid": r.tid,
    }
    if r.t1 is not None:
        out["dur_s"] = r.t1 - r.t0
    if r.parent is not None:
        out["parent"] = r.parent
    if r.args:
        out["args"] = r.args
    return out


def jsonl_records(recorder: TraceRecorder) -> list[dict[str, Any]]:
    """The flat-log form, one plain dict per record."""
    return [_jsonl_record(r) for r in recorder.records()]


def write_jsonl(recorder: TraceRecorder, fh: IO[str]) -> int:
    """Write one JSON object per line; returns the number of lines."""
    n = 0
    for rec in jsonl_records(recorder):
        fh.write(json.dumps(rec, default=str))
        fh.write("\n")
        n += 1
    return n


# ----------------------------------------------------------------------
# minimal schema validation (what CI runs over the artifact)
# ----------------------------------------------------------------------
_VALID_PH = {"X", "i", "M"}
_REQUIRED_KEYS = ("name", "ph", "ts", "pid", "tid")


def validate_chrome_trace(payload: Any) -> list[str]:
    """Check a Chrome-trace payload against the minimal schema.

    Returns a list of human-readable problems (empty = valid): the
    top-level shape, the per-event required keys, phase-specific fields
    (``dur`` for complete events, ``s`` for instants, ``args.name`` for
    metadata), and type sanity for every field the exporters emit.
    """
    errors: list[str] = []
    if not isinstance(payload, dict):
        return [f"top level must be an object, got {type(payload).__name__}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["top level must carry a 'traceEvents' list"]
    if not events:
        errors.append("'traceEvents' is empty")
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        missing = [k for k in _REQUIRED_KEYS if k not in ev]
        if missing:
            errors.append(f"{where}: missing keys {missing}")
            continue
        ph = ev["ph"]
        if ph not in _VALID_PH:
            errors.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(ev["name"], str):
            errors.append(f"{where}: 'name' must be a string")
        if not isinstance(ev["ts"], (int, float)):
            errors.append(f"{where}: 'ts' must be a number")
        for k in ("pid", "tid"):
            if not isinstance(ev[k], int):
                errors.append(f"{where}: {k!r} must be an integer")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(
                    f"{where}: complete event needs a non-negative 'dur'"
                )
        elif ph == "i":
            if ev.get("s") not in ("t", "p", "g"):
                errors.append(
                    f"{where}: instant event needs scope 's' in t/p/g"
                )
        elif ph == "M":
            args = ev.get("args")
            if not isinstance(args, dict) or not isinstance(
                args.get("name"), str
            ):
                errors.append(
                    f"{where}: metadata event needs args.name string"
                )
    return errors
