"""Structured spans over a pluggable trace sink.

One :class:`TraceSink` instance is threaded through a run (service →
executor → schedulers, or the simulation engine). Instrumentation
points open nested :class:`Span` contexts; each finished span is a
:class:`SpanRecord` carrying wall-clock (or simulated-clock) bounds,
the recording thread, its parent span, and any counters attributed to
it while it was the innermost open span.

Two sinks exist:

* :data:`NULL_SINK` — the no-op sink. ``enabled`` is ``False``, every
  ``span()`` call returns one shared, allocation-free context manager,
  and every recording method returns immediately. Instrumented code
  guards its per-event work behind ``sink.enabled``, so tracing off
  costs a single attribute read per potential event.
* :class:`TraceRecorder` — the real sink. Each thread appends finished
  spans to its own buffer (created once, registered under a lock, then
  never shared), so workers record without contending: the common path
  is lock-free per thread.

Clock domains
-------------
Real spans are stamped with ``perf_counter()`` relative to the
recorder's epoch and live under :data:`PID_REAL`. Simulated rounds
record via :meth:`TraceSink.record_span` with simulation-time seconds
under :data:`PID_SIM` — the exporters place both domains in one
timeline file, so a simulated and a real round render side by side in
``chrome://tracing`` / Perfetto.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any

__all__ = [
    "PID_REAL",
    "PID_SIM",
    "NULL_SINK",
    "NullSink",
    "Span",
    "SpanRecord",
    "TraceRecorder",
    "TraceSink",
]

#: process lane for wall-clock (runtime) spans in exported traces
PID_REAL = 1
#: process lane for simulated-clock spans
PID_SIM = 2


@dataclass(frozen=True)
class SpanRecord:
    """One finished span or instant event.

    ``t1`` is ``None`` for instant events. Times are seconds in the
    record's clock domain (``pid``): recorder-epoch-relative wall clock
    for :data:`PID_REAL`, simulation time for :data:`PID_SIM`.
    """

    name: str
    cat: str
    t0: float
    t1: float | None
    pid: int
    tid: int
    parent: str | None = None
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length in seconds (0.0 for instants)."""
        return 0.0 if self.t1 is None else self.t1 - self.t0


class _NoopSpan:
    """The shared span of the disabled sink; every method is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def add(self, key: str, n: float = 1) -> None:
        """Discard a counter increment."""

    def set(self, key: str, value: Any) -> None:
        """Discard an attribute."""


_NOOP_SPAN = _NoopSpan()


class TraceSink:
    """Recording surface shared by the no-op and the real sink.

    The base class *is* the no-op implementation; instrumented code
    holds a ``TraceSink`` reference and checks :attr:`enabled` before
    doing any per-event work that allocates.
    """

    #: fast guard for instrumentation sites
    enabled: bool = False

    def span(
        self,
        name: str,
        cat: str = "phase",
        args: dict[str, Any] | None = None,
    ) -> Any:
        """A context manager timing one nested span (no-op here)."""
        return _NOOP_SPAN

    def record_span(
        self,
        name: str,
        cat: str,
        t0: float,
        t1: float,
        tid: int = 0,
        pid: int = PID_SIM,
        args: dict[str, Any] | None = None,
    ) -> None:
        """Record an already-measured span (clock-domain seconds)."""

    def record_span_abs(
        self,
        name: str,
        cat: str,
        t0_abs: float,
        t1_abs: float,
        tid: int | None = None,
        args: dict[str, Any] | None = None,
    ) -> None:
        """Record a wall span from absolute ``perf_counter()`` stamps."""

    def record_instant(
        self,
        name: str,
        t: float | None = None,
        tid: int | None = None,
        pid: int = PID_REAL,
        args: dict[str, Any] | None = None,
    ) -> None:
        """Record a zero-duration marker (``None`` time = now)."""

    def add_to_current(self, key: str, n: float = 1) -> None:
        """Attribute a counter to the innermost open span, if any."""

    def set_thread_name(self, name: str) -> None:
        """Label the calling thread's lane in exported timelines."""


class NullSink(TraceSink):
    """Explicitly-named alias of the disabled sink."""


#: the shared disabled sink — instrumentation default
NULL_SINK = NullSink()


class Span:
    """One open span of a :class:`TraceRecorder` (context manager)."""

    __slots__ = ("name", "cat", "args", "t0", "t1", "parent", "_rec")

    def __init__(
        self,
        rec: "TraceRecorder",
        name: str,
        cat: str,
        args: dict[str, Any] | None,
    ) -> None:
        self._rec = rec
        self.name = name
        self.cat = cat
        self.args: dict[str, Any] = dict(args) if args else {}
        self.t0 = 0.0
        self.t1: float | None = None
        self.parent: str | None = None

    def add(self, key: str, n: float = 1) -> None:
        """Accumulate a counter onto this span."""
        self.args[key] = self.args.get(key, 0) + n

    def set(self, key: str, value: Any) -> None:
        """Attach an attribute to this span."""
        self.args[key] = value

    def __enter__(self) -> "Span":
        tls = self._rec._tls_state()
        self.parent = tls.stack[-1].name if tls.stack else None
        tls.stack.append(self)
        self.t0 = self._rec.now()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.t1 = self._rec.now()
        tls = self._rec._tls_state()
        if tls.stack and tls.stack[-1] is self:
            tls.stack.pop()
        if exc_type is not None:
            self.args.setdefault("error", exc_type.__name__)
        tls.buffer.append(
            SpanRecord(
                name=self.name,
                cat=self.cat,
                t0=self.t0,
                t1=self.t1,
                pid=PID_REAL,
                tid=tls.tid,
                parent=self.parent,
                args=self.args,
            )
        )
        return False


class _ThreadState:
    """Per-thread buffer + open-span stack of one recorder."""

    __slots__ = ("tid", "buffer", "stack")

    def __init__(self, tid: int) -> None:
        self.tid = tid
        self.buffer: list[SpanRecord] = []
        self.stack: list[Span] = []


class TraceRecorder(TraceSink):
    """Collects spans into per-thread buffers; the enabled sink."""

    enabled = True

    def __init__(self) -> None:
        self.epoch = perf_counter()
        self._tls = threading.local()
        self._lock = threading.Lock()
        self._states: list[_ThreadState] = []
        self._thread_names: dict[int, str] = {}
        self._extra: list[SpanRecord] = []  # record_span/instant target

    # ------------------------------------------------------------------
    def now(self) -> float:
        """Seconds since the recorder's epoch (the real clock)."""
        return perf_counter() - self.epoch

    def _tls_state(self) -> _ThreadState:
        state = getattr(self._tls, "state", None)
        if state is None:
            state = _ThreadState(threading.get_ident())
            self._tls.state = state
            with self._lock:
                self._states.append(state)
        return state

    # ------------------------------------------------------------------
    def span(
        self,
        name: str,
        cat: str = "phase",
        args: dict[str, Any] | None = None,
    ) -> Span:
        return Span(self, name, cat, args)

    def record_span(
        self,
        name: str,
        cat: str,
        t0: float,
        t1: float,
        tid: int = 0,
        pid: int = PID_SIM,
        args: dict[str, Any] | None = None,
    ) -> None:
        rec = SpanRecord(
            name=name, cat=cat, t0=t0, t1=t1, pid=pid, tid=tid,
            args=dict(args) if args else {},
        )
        with self._lock:
            self._extra.append(rec)

    def record_span_abs(
        self,
        name: str,
        cat: str,
        t0_abs: float,
        t1_abs: float,
        tid: int | None = None,
        args: dict[str, Any] | None = None,
    ) -> None:
        self.record_span(
            name,
            cat,
            t0_abs - self.epoch,
            t1_abs - self.epoch,
            tid=self._tls_state().tid if tid is None else tid,
            pid=PID_REAL,
            args=args,
        )

    def record_instant(
        self,
        name: str,
        t: float | None = None,
        tid: int | None = None,
        pid: int = PID_REAL,
        args: dict[str, Any] | None = None,
    ) -> None:
        rec = SpanRecord(
            name=name,
            cat="instant",
            t0=self.now() if t is None else t,
            t1=None,
            pid=pid,
            tid=self._tls_state().tid if tid is None else tid,
            args=dict(args) if args else {},
        )
        with self._lock:
            self._extra.append(rec)

    def add_to_current(self, key: str, n: float = 1) -> None:
        stack = self._tls_state().stack
        if stack:
            stack[-1].add(key, n)

    def current_span(self) -> Span | None:
        """The calling thread's innermost open span (``None`` if none)."""
        stack = self._tls_state().stack
        return stack[-1] if stack else None

    def set_thread_name(self, name: str) -> None:
        tid = self._tls_state().tid
        if self._thread_names.get(tid) != name:
            with self._lock:
                self._thread_names[tid] = name

    # ------------------------------------------------------------------
    def thread_names(self) -> dict[int, str]:
        """Snapshot of ``tid → label`` registered by workers."""
        with self._lock:
            return dict(self._thread_names)

    def records(self) -> list[SpanRecord]:
        """All finished records, merged across threads, by start time.

        Call after the instrumented run finished (open spans are not
        included; buffers of live worker threads are read as-is).
        """
        with self._lock:
            merged: list[SpanRecord] = list(self._extra)
            for state in self._states:
                merged.extend(state.buffer)
        merged.sort(key=lambda r: (r.pid, r.t0, r.t1 is None))
        return merged
