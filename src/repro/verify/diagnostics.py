"""Shared diagnostics machinery for the verify subsystem.

One finding shape, one suppression syntax, one text format — used by
both the scheduler contract linter (:mod:`repro.verify.lint`) and the
Datalog program analyzer (:mod:`repro.verify.program`) so
``repro verify --lint`` and ``repro verify --program`` present a single
diagnostics surface.

Severity levels
---------------
``error``
    A finding that makes the program/scheduler wrong or unusable;
    counted toward a failing exit code.
``warning``
    A finding that is legal but wasteful or suspicious (dead rules,
    cartesian joins, duplicates); reported, and still counted toward
    the failing exit code by the CLI so CI gates stay strict — waive
    intentional cases with a suppression comment.

Suppression
-----------
Append ``# verify: ignore[rule]`` (comma-separated rule ids) or a bare
``# verify: ignore`` to the offending line. In Datalog sources, where
``%`` starts a comment, write ``% verify: ignore[rule]`` — both markers
are recognized in any source kind.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Sequence

__all__ = [
    "SEVERITIES",
    "Finding",
    "apply_suppressions",
    "findings_to_json",
    "format_findings",
]

SEVERITIES = ("error", "warning")

_SUPPRESS_RE = re.compile(r"[#%]\s*verify:\s*ignore(?:\[([^\]]*)\])?")


@dataclass(frozen=True)
class Finding:
    """One diagnostic at ``path:line:col``."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    hint: str
    severity: str = "error"

    def format(self) -> str:
        """``path:line:col: [rule] message`` plus an indented fix hint.

        Warnings carry a ``warning:`` marker; errors keep the bare
        format the scheduler linter has always printed.
        """
        marker = "" if self.severity == "error" else f"{self.severity}: "
        return (
            f"{self.path}:{self.line}:{self.col}: [{self.rule}] "
            f"{marker}{self.message}\n    hint: {self.hint}"
        )

    def to_json(self) -> dict:
        """A JSON-serializable dict (the ``--format json`` shape)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "hint": self.hint,
        }


def format_findings(findings: Sequence[Finding]) -> str:
    """Render findings one per block, sorted by location."""
    return "\n".join(f.format() for f in findings)


def findings_to_json(findings: Sequence[Finding]) -> list[dict]:
    """The machine-readable form of a finding list."""
    return [f.to_json() for f in findings]


def apply_suppressions(
    findings: Sequence[Finding], sources: dict[str, list[str]]
) -> list[Finding]:
    """Drop duplicates and findings waived on their source line.

    ``sources`` maps path → source lines; a ``verify: ignore`` marker on
    a finding's line (bare, or naming the finding's rule id) suppresses
    it. The survivors come back sorted by location.
    """
    kept: list[Finding] = []
    seen: set[tuple[str, int, str, str]] = set()
    for f in findings:
        key = (f.path, f.line, f.rule, f.message)
        if key in seen:
            continue
        seen.add(key)
        lines = sources.get(f.path, [])
        text = lines[f.line - 1] if 0 < f.line <= len(lines) else ""
        m = _SUPPRESS_RE.search(text)
        if m:
            rules = m.group(1)
            if rules is None:
                continue
            if f.rule in {r.strip() for r in rules.split(",")}:
                continue
        kept.append(f)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return kept
