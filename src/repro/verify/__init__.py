"""Correctness tooling for the scheduler/oracle contract.

Two halves, both wired into CI and the ``repro verify`` CLI:

* :mod:`repro.verify.lint` — an AST pass over scheduler source that
  enforces the :mod:`repro.schedulers.base` contract statically
  (no clairvoyance, honest ops accounting, structural API rules);
* :mod:`repro.verify.invariants` — an offline checker that re-derives
  ground truth from a :class:`~repro.tasks.JobTrace` and verifies a
  recorded :class:`~repro.sim.SimulationResult` end to end, including
  the paper's makespan bounds (Lemma 3/5, Theorem 9).

``simulate(..., strict=True)`` runs the invariant checker after every
simulation and raises :class:`InvariantViolationError` on failure.
"""

from .invariants import (
    VIOLATION_KINDS,
    InvariantViolationError,
    VerificationReport,
    Violation,
    check_invariants,
)
from .lint import (
    ALL_RULES,
    LintFinding,
    format_findings,
    lint_modules,
    lint_paths,
    lint_source,
)

__all__ = [
    "ALL_RULES",
    "LintFinding",
    "lint_source",
    "lint_modules",
    "lint_paths",
    "format_findings",
    "VIOLATION_KINDS",
    "Violation",
    "VerificationReport",
    "InvariantViolationError",
    "check_invariants",
]
