"""Correctness tooling for schedulers and the Datalog programs they run.

Three legs, all wired into CI and the ``repro verify`` CLI:

* :mod:`repro.verify.lint` — an AST pass over scheduler source that
  enforces the :mod:`repro.schedulers.base` contract statically
  (no clairvoyance, honest ops accounting, structural API rules);
* :mod:`repro.verify.program` — a whole-program static analyzer for
  Datalog sources: safety, stratification cycles, arity/schema
  consistency, dead rules, duplicate/subsumed rules, cartesian joins —
  plus the dead-rule prunings and join-order hints the compiler and
  plan cache consume at runtime;
* :mod:`repro.verify.invariants` — an offline checker that re-derives
  ground truth from a :class:`~repro.tasks.JobTrace` and verifies a
  recorded :class:`~repro.sim.SimulationResult` end to end, including
  the paper's makespan bounds (Lemma 3/5, Theorem 9).

The two static passes share one finding shape, severity levels, and
suppression syntax (:mod:`repro.verify.diagnostics`), so their output
is interchangeable for tooling. ``simulate(..., strict=True)`` runs the
invariant checker after every simulation and raises
:class:`InvariantViolationError` on failure.
"""

from .diagnostics import (
    SEVERITIES,
    Finding,
    apply_suppressions,
    findings_to_json,
    format_findings,
)
from .invariants import (
    VIOLATION_KINDS,
    InvariantViolationError,
    VerificationReport,
    Violation,
    check_invariants,
)
from .lint import (
    ALL_RULES,
    LintFinding,
    lint_modules,
    lint_paths,
    lint_source,
)
from .program import (
    ALL_PROGRAM_RULES,
    ProgramAnalysis,
    analyze_path,
    analyze_program,
    analyze_source,
)

__all__ = [
    "SEVERITIES",
    "Finding",
    "apply_suppressions",
    "findings_to_json",
    "format_findings",
    "ALL_RULES",
    "LintFinding",
    "lint_source",
    "lint_modules",
    "lint_paths",
    "ALL_PROGRAM_RULES",
    "ProgramAnalysis",
    "analyze_path",
    "analyze_program",
    "analyze_source",
    "VIOLATION_KINDS",
    "Violation",
    "VerificationReport",
    "InvariantViolationError",
    "check_invariants",
]
