"""AST-based contract linter for scheduler implementations.

The scheduler/oracle contract of :mod:`repro.schedulers.base` is what
makes cross-scheduler comparisons fair: a scheduler must rediscover
readiness with its own modeled machinery, charge ``self.ops`` for every
abstract operation that machinery performs, and leave the engine-owned
ground truth alone. The simulation engine validates *dispatches* at
runtime, but a scheduler that peeks at ground truth or undercounts its
operations produces perfectly valid schedules with wrong Table II/III
numbers — exactly the failure mode runtime validation cannot see. This
linter closes that gap statically.

Rules
-----
``clairvoyance``
    Accessing ground truth the modeled algorithm could not know:
    private :class:`~repro.schedulers.base.ReadinessOracle` state,
    ``ActivationState`` internals (``will_execute``,
    ``unresolved_parents``, ``mark_dispatched``), a
    :class:`~repro.tasks.trace.JobTrace`'s realized change outcome
    (``propagation``, ``changed_edges``, ``active_nodes``, ...), the
    engine-side ``push_ready_events``, or — for the LevelBased family,
    whose behavior depends on *discovering* readiness through the level
    structure — any use of the oracle at all.

``ops-accounting``
    A ``select`` / ``on_activate`` / ``on_complete`` body that loops
    over nodes, intervals, or queue entries without charging
    ``self.ops`` anywhere inside the loop. Delegating to another hook
    or a helper method of ``self`` counts as charging (the helper is
    linted wherever it is itself a hook); plain container operations
    (``append``, ``pop``, ...) and free oracle queries do not.

``api-contract``
    Structural misuse: an ``__init__`` that never calls
    ``super().__init__()`` (the base class owns the cost counters),
    overriding engine-reserved methods (``reset_counters``,
    ``note_runtime_memory``), mutating the shared
    :class:`~repro.schedulers.base.SchedulerContext`, overriding
    ``on_failure`` without ever charging ``self.ops`` (a requeue
    re-enters the scheduler's modeled machinery and is never free), or
    charging ops *outside an active span*: a method that mutates
    ``self.ops`` (or calls ``charge_ops``) but is neither a scheduling
    hook nor reachable from one through ``self`` calls. The engine and
    executor attribute per-hook ops deltas to the currently open trace
    span; ops charged from anywhere else (``__init__``, an external
    entry point, a dangling helper) are invisible to that attribution
    and skew both the trace and the overhead accounting.

Suppression
-----------
Append ``# verify: ignore[rule]`` (comma-separated rule ids) or a bare
``# verify: ignore`` to the offending line.

Scope
-----
Classes are linted when any transitive base (by name, across all files
in one :func:`lint_paths` run) is ``Scheduler`` or ends with
``Scheduler``; the LevelBased family is ``LevelBasedScheduler`` /
``LookaheadScheduler`` and anything whose bases chain to them.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable

from .diagnostics import Finding, apply_suppressions, format_findings

__all__ = [
    "ALL_RULES",
    "LintFinding",
    "lint_source",
    "lint_modules",
    "lint_paths",
    "format_findings",
]

#: the linter's findings are plain diagnostics — one shared shape with
#: the program analyzer (severity defaults to "error", which every
#: contract violation is)
LintFinding = Finding

CLAIRVOYANCE = "clairvoyance"
OPS_ACCOUNTING = "ops-accounting"
API_CONTRACT = "api-contract"
ALL_RULES = (CLAIRVOYANCE, OPS_ACCOUNTING, API_CONTRACT)

#: JobTrace members that reveal the realized outcome of the update —
#: the active graph ``H`` is "dynamically revealed over time" and must
#: only reach schedulers through on_activate/on_complete.
_REALIZED_TRACE_ATTRS = frozenset(
    {
        "propagation",
        "active_nodes",
        "n_active",
        "n_active_jobs",
        "total_active_work",
        "changed_edges",
        "fresh_activation_state",
    }
)
#: unambiguous ActivationState internals / engine-side API
_ACTIVATION_STATE_ATTRS = frozenset(
    {"will_execute", "unresolved_parents", "mark_dispatched"}
)
#: engine-side oracle methods no scheduler may call
_ENGINE_ORACLE_METHODS = frozenset({"push_ready_events"})
#: the result-equivalent shortcut surface (allowed outside the
#: LevelBased family, per the base.py contract)
_ORACLE_FEED_METHODS = frozenset({"is_ready", "drain_ready_events"})
#: engine-owned methods a subclass must not override
_RESERVED_METHODS = frozenset({"reset_counters", "note_runtime_memory"})
#: the cost-charged runtime entry points
_HOOK_METHODS = frozenset(
    {"select", "on_activate", "on_complete", "on_failure"}
)
#: container/bookkeeping methods that are not modeled scheduler work
_DATA_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "pop",
        "popleft",
        "add",
        "remove",
        "discard",
        "get",
        "extend",
        "clear",
        "insert",
        "update",
        "keys",
        "values",
        "items",
        "popitem",
        "setdefault",
        "sort",
        "reverse",
        "count",
        "index",
        "copy",
        "note_runtime_memory",
    }
)
#: roots of the family that must not consume the oracle at all
_LEVEL_FAMILY_ROOTS = frozenset({"LevelBasedScheduler", "LookaheadScheduler"})

# ----------------------------------------------------------------------
# class-graph helpers (name-based; resolved across one lint run)
# ----------------------------------------------------------------------
def _base_names(node: ast.ClassDef) -> list[str]:
    out = []
    for b in node.bases:
        if isinstance(b, ast.Name):
            out.append(b.id)
        elif isinstance(b, ast.Attribute):
            out.append(b.attr)
    return out


def _transitive_bases(name: str, bases: dict[str, list[str]]) -> set[str]:
    seen: set[str] = set()
    stack = list(bases.get(name, ()))
    while stack:
        b = stack.pop()
        if b in seen:
            continue
        seen.add(b)
        stack.extend(bases.get(b, ()))
    return seen


def _is_scheduler_class(name: str, bases: dict[str, list[str]]) -> bool:
    return any(
        b == "Scheduler" or b.endswith("Scheduler")
        for b in _transitive_bases(name, bases)
    )


def _is_level_family(name: str, bases: dict[str, list[str]]) -> bool:
    if name in _LEVEL_FAMILY_ROOTS:
        return True
    return bool(_LEVEL_FAMILY_ROOTS & _transitive_bases(name, bases))


# ----------------------------------------------------------------------
# expression classification
# ----------------------------------------------------------------------
def _chain_root(node: ast.expr) -> str | None:
    """Name at the root of an attribute chain (``a.b.c`` → ``a``)."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_super_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "super"
    )


class _Aliases:
    """Oracle/trace aliases visible inside one scheduler class."""

    def __init__(self) -> None:
        self.self_oracle: set[str] = set()
        self.self_trace: set[str] = set()
        self.local_oracle: set[str] = set()
        self.local_trace: set[str] = set()

    def kind_of(self, node: ast.expr) -> str | None:
        """Classify an expression as an oracle/trace handle (or neither)."""
        if isinstance(node, ast.Attribute):
            if node.attr == "oracle":
                return "oracle"
            if node.attr == "trace":
                return "trace"
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                if node.attr in self.self_oracle:
                    return "oracle"
                if node.attr in self.self_trace:
                    return "trace"
        elif isinstance(node, ast.Name):
            if node.id in self.local_oracle:
                return "oracle"
            if node.id in self.local_trace:
                return "trace"
        return None

    def collect_from(self, fn: ast.FunctionDef, *, locals_only: bool) -> None:
        """Record aliases created by assignments inside ``fn``."""
        for stmt in ast.walk(fn):
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            kind = self.kind_of(stmt.value)
            if kind is None:
                continue
            tgt = stmt.targets[0]
            if isinstance(tgt, ast.Name):
                (self.local_oracle if kind == "oracle" else self.local_trace).add(
                    tgt.id
                )
            elif (
                not locals_only
                and isinstance(tgt, ast.Attribute)
                and isinstance(tgt.value, ast.Name)
                and tgt.value.id == "self"
            ):
                (self.self_oracle if kind == "oracle" else self.self_trace).add(
                    tgt.attr
                )


# ----------------------------------------------------------------------
# per-rule checks
# ----------------------------------------------------------------------
def _has_super_init_call(fn: ast.FunctionDef) -> bool:
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "__init__"
            and _is_super_call(node.func.value)
        ):
            return True
    return False


def _loop_charges_ops(loop: ast.stmt, aliases: _Aliases) -> bool:
    """Whether a loop body contains (or may delegate to) an ops charge."""
    for sub in ast.walk(loop):
        if (
            isinstance(sub, ast.AugAssign)
            and isinstance(sub.target, ast.Attribute)
            and sub.target.attr == "ops"
        ):
            return True
        if isinstance(sub, ast.Assign) and any(
            isinstance(t, ast.Attribute) and t.attr == "ops"
            for t in sub.targets
        ):
            return True
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
            attr = sub.func.attr
            if attr in _HOOK_METHODS or attr == "prepare":
                return True  # delegation to another charged hook
            if attr in _DATA_METHODS or attr in _ORACLE_FEED_METHODS:
                continue
            if aliases.kind_of(sub.func.value) == "oracle":
                continue  # oracle queries are free for the scheduler
            root = _chain_root(sub.func.value)
            if root == "self" or _is_super_call(sub.func.value):
                return True  # helper method of self: may charge inside
    return False


def _charges_ops(fn: ast.FunctionDef) -> ast.AST | None:
    """First node in ``fn`` that charges the scheduler's op counter."""
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.AugAssign)
            and isinstance(node.target, ast.Attribute)
            and node.target.attr == "ops"
            and _chain_root(node.target) == "self"
        ):
            return node
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "charge_ops"
            and _chain_root(node.func) == "self"
        ):
            return node
    return None


def _self_call_graph(
    methods: list[ast.FunctionDef],
) -> dict[str, set[str]]:
    """``method name → names of self methods it calls`` (one class)."""
    graph: dict[str, set[str]] = {}
    for fn in methods:
        calls: set[str] = set()
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
            ):
                calls.add(node.func.attr)
        graph[fn.name] = calls
    return graph


def _hook_reachable(methods: list[ast.FunctionDef]) -> set[str]:
    """Methods reachable from the engine-invoked entry points.

    The engine opens a trace span around every hook invocation (and
    ``prepare``), so these are exactly the methods whose op charges
    land inside an active span.
    """
    graph = _self_call_graph(methods)
    roots = (_HOOK_METHODS | {"prepare"}) & set(graph)
    seen = set(roots)
    stack = list(roots)
    while stack:
        for callee in graph.get(stack.pop(), ()):
            if callee in graph and callee not in seen:
                seen.add(callee)
                stack.append(callee)
    return seen


def _ctx_param_names(fn: ast.FunctionDef) -> set[str]:
    names: set[str] = set()
    for arg in list(fn.args.posonlyargs) + list(fn.args.args) + list(
        fn.args.kwonlyargs
    ):
        ann = arg.annotation
        ann_name = ""
        if isinstance(ann, ast.Name):
            ann_name = ann.id
        elif isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            ann_name = ann.value
        if arg.arg == "ctx" or "SchedulerContext" in ann_name:
            names.add(arg.arg)
    return names


# ----------------------------------------------------------------------
# the class linter
# ----------------------------------------------------------------------
def _lint_class(
    cls: ast.ClassDef,
    *,
    path: str,
    family: bool,
    out: list[LintFinding],
) -> None:
    methods = [n for n in cls.body if isinstance(n, ast.FunctionDef)]
    in_span = _hook_reachable(methods)

    aliases = _Aliases()
    # two passes so `o = ctx.oracle; self._o = o` chains resolve
    for _ in range(2):
        for fn in methods:
            aliases.collect_from(fn, locals_only=False)

    def add(node: ast.AST, rule: str, message: str, hint: str) -> None:
        out.append(
            LintFinding(
                path=path,
                line=getattr(node, "lineno", cls.lineno),
                col=getattr(node, "col_offset", 0) + 1,
                rule=rule,
                message=f"{cls.name}: {message}",
                hint=hint,
            )
        )

    for fn in methods:
        # ---- api-contract: structural rules -------------------------
        if fn.name == "__init__" and not _has_super_init_call(fn):
            add(
                fn,
                API_CONTRACT,
                "__init__ never calls super().__init__()",
                "the Scheduler base class owns the cost counters; call "
                "super().__init__() first",
            )
        if fn.name in _RESERVED_METHODS:
            add(
                fn,
                API_CONTRACT,
                f"overrides engine-reserved method {fn.name}()",
                "reset_counters/note_runtime_memory belong to the engine "
                "contract; override the four scheduling hooks instead",
            )

        # ---- api-contract: ops charged outside an active span -------
        if fn.name not in in_span:
            charge_site = _charges_ops(fn)
            if charge_site is not None:
                add(
                    charge_site,
                    API_CONTRACT,
                    f"{fn.name}() charges self.ops outside an active "
                    "span (not reachable from any scheduling hook)",
                    "the engine attributes per-hook ops deltas to the "
                    "open trace span; charge ops only from "
                    "select/on_activate/on_complete/on_failure/prepare "
                    "or helpers they call (or suppress with "
                    "# verify: ignore[api-contract] if the entry point "
                    "is engine-invoked another way)",
                )

        ctx_names = _ctx_param_names(fn)
        local = _Aliases()
        local.self_oracle = aliases.self_oracle
        local.self_trace = aliases.self_trace
        local.collect_from(fn, locals_only=True)

        # ---- api-contract: uncharged on_failure override ------------
        if fn.name == "on_failure" and not _loop_charges_ops(fn, local):
            add(
                fn,
                API_CONTRACT,
                "on_failure() requeues a task without charging self.ops",
                "a retry re-enters the scheduler's modeled machinery; "
                "charge at least one op per requeued task (or delegate "
                "to a charged hook)",
            )

        for node in ast.walk(fn):
            # ---- api-contract: SchedulerContext mutation ------------
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for tgt in targets:
                    if (
                        isinstance(tgt, (ast.Attribute, ast.Subscript))
                        and _chain_root(tgt) in ctx_names
                    ):
                        add(
                            node,
                            API_CONTRACT,
                            "mutates the shared SchedulerContext",
                            "the context is read-only prepare-time input; "
                            "copy what you need onto self",
                        )

            # ---- clairvoyance ---------------------------------------
            if isinstance(node, ast.Attribute):
                attr = node.attr
                kind = local.kind_of(node.value)
                if family and attr == "oracle":
                    add(
                        node,
                        CLAIRVOYANCE,
                        "LevelBased-family scheduler accesses the "
                        "readiness oracle",
                        "LevelBased/LBL must discover readiness through "
                        "the level structure; the oracle feed is "
                        "off-limits (base.py contract)",
                    )
                if kind == "oracle":
                    if attr.startswith("_") and not attr.startswith("__"):
                        add(
                            node,
                            CLAIRVOYANCE,
                            f"reads private oracle state .{attr}",
                            "only is_ready()/drain_ready_events() are part "
                            "of the scheduler-facing oracle surface",
                        )
                    elif attr in _ENGINE_ORACLE_METHODS:
                        add(
                            node,
                            CLAIRVOYANCE,
                            f"calls engine-side oracle API .{attr}()",
                            "push_ready_events is how the engine feeds the "
                            "oracle; schedulers may only consume it",
                        )
                    elif family and attr in _ORACLE_FEED_METHODS:
                        add(
                            node,
                            CLAIRVOYANCE,
                            f"LevelBased-family scheduler consumes the "
                            f"oracle feed via .{attr}()",
                            "LevelBased/LBL discover readiness via level "
                            "barriers and bounded BFS, never the oracle",
                        )
                elif kind == "trace":
                    if attr.startswith("_") and not attr.startswith("__"):
                        add(
                            node,
                            CLAIRVOYANCE,
                            f"reads private trace state .{attr}",
                            "JobTrace private fields cache the realized "
                            "propagation; schedulers see H only via "
                            "on_activate/on_complete",
                        )
                    elif attr in _REALIZED_TRACE_ATTRS:
                        add(
                            node,
                            CLAIRVOYANCE,
                            f"reads the realized update outcome via "
                            f"trace.{attr}",
                            "the active graph H is revealed dynamically; "
                            "structure-only inputs (dag, levels, work, "
                            "span) are the legal prepare-time surface",
                        )
                elif attr in _ACTIVATION_STATE_ATTRS and not (
                    isinstance(node.value, ast.Name)
                    and node.value.id in ("self", "cls")
                ):
                    add(
                        node,
                        CLAIRVOYANCE,
                        f"touches ActivationState ground truth .{attr}",
                        "ActivationState is the engine's validator, not a "
                        "scheduler input",
                    )

            # ---- ops-accounting -------------------------------------
            if (
                fn.name in _HOOK_METHODS
                and isinstance(node, (ast.For, ast.While))
                and not _loop_charges_ops(node, local)
            ):
                add(
                    node,
                    OPS_ACCOUNTING,
                    f"loop in {fn.name}() does work without charging "
                    "self.ops",
                    "charge one op per queue entry scanned / interval "
                    "probed / message sent (base.py cost contract)",
                )


# ----------------------------------------------------------------------
# drivers
# ----------------------------------------------------------------------
def lint_modules(modules: Iterable[tuple[str, str]]) -> list[LintFinding]:
    """Lint ``(path, source)`` pairs as one unit.

    All modules share one class graph, so subclasses defined in one
    file resolve against bases defined in another. Raises
    :class:`SyntaxError` if any module fails to parse.
    """
    parsed: list[tuple[str, ast.Module]] = []
    sources: dict[str, list[str]] = {}
    bases: dict[str, list[str]] = {}
    for path, src in modules:
        tree = ast.parse(src, filename=path)
        parsed.append((path, tree))
        sources[path] = src.splitlines()
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                bases[node.name] = _base_names(node)

    findings: list[LintFinding] = []
    for path, tree in parsed:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and _is_scheduler_class(
                node.name, bases
            ):
                _lint_class(
                    node,
                    path=path,
                    family=_is_level_family(node.name, bases),
                    out=findings,
                )
    return apply_suppressions(findings, sources)


def lint_source(source: str, path: str = "<string>") -> list[LintFinding]:
    """Lint one in-memory module (convenience wrapper for tests)."""
    return lint_modules([(path, source)])


def lint_paths(paths: Iterable[str | Path]) -> list[LintFinding]:
    """Lint every ``*.py`` file under the given files/directories."""
    files: list[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            files.append(p)
        else:
            raise ValueError(f"not a python file or directory: {p}")
    return lint_modules((str(f), f.read_text()) for f in files)
