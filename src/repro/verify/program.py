"""Whole-program static analysis for Datalog programs.

A multi-pass analyzer over the AST (:mod:`repro.datalog.ast`) and the
predicate dependency graph (:mod:`repro.datalog.depgraph`), reporting
positioned findings in the same shape — and with the same suppression
syntax — as the scheduler contract linter:

``syntax``
    Clauses the lenient parser could not build (reported, the rest of
    the file still analyzes).
``safety``
    Range-restriction violations: head/negated/comparison variables
    never bound by a positive body atom, non-ground facts, aggregates
    outside rule heads.
``stratification``
    Negation (or aggregation) of a predicate inside its own recursive
    component, with the witness dependency cycle spelled out.
``arity``
    A predicate used with inconsistent arities across rules, or
    contradicting its ``% edb:`` declaration.
``undefined-predicate``
    A body predicate with no facts, no rules, and no EDB declaration
    (only when the file declares its EDB — without a declaration every
    head-less predicate is assumed to be input).
``dead-rule``
    Rules that can never fire (some positive body predicate is provably
    empty) and rules unreachable from the declared outputs.
``duplicate-rule`` / ``subsumed-rule``
    A rule that is an α-renaming of an earlier one / a rule made
    redundant by a more general one (θ-subsumption).
``cartesian-join``
    A body atom joined with no shared variables and no constants — a
    cross product under the left-to-right join — with a reordering
    hint when one exists. The computed orders feed the runtime: the
    plan cache hands them to :class:`~repro.datalog.units.PlanSkeleton`.

Source files may declare their schema with pragmas (ordinary ``%``
comments the lexer already skips)::

    % edb: edge/2, label/2
    % output: report, alerts

``% edb:`` names the input predicates and arities (enabling the
undefined-predicate and declaration-mismatch checks and grounding the
dead-rule analysis); ``% output:`` names the predicates the program is
*for* (enabling unreachable-rule detection).

:class:`ProgramAnalysis` also exposes the two runtime hooks:
:meth:`~ProgramAnalysis.prunable_rules` (rules provably unable to fire
against a concrete EDB — the compiler drops them before DAG
construction) and :meth:`~ProgramAnalysis.join_orders_for` (the
cartesian-repair body orders, keyed for a possibly-pruned program).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field as dc_field
from pathlib import Path
from typing import Iterable

from ..datalog.ast import (
    Assignment,
    Atom,
    Comparison,
    Constant,
    Literal,
    Program,
    Rule,
    Variable,
)
from ..datalog.depgraph import DependencyGraph
from ..datalog.parser import ParseError, parse_program_lenient
from .diagnostics import Finding, apply_suppressions

__all__ = [
    "ALL_PROGRAM_RULES",
    "ProgramAnalysis",
    "analyze_program",
    "analyze_source",
    "analyze_path",
]

SYNTAX = "syntax"
SAFETY = "safety"
STRATIFICATION = "stratification"
ARITY = "arity"
UNDEFINED_PREDICATE = "undefined-predicate"
DEAD_RULE = "dead-rule"
DUPLICATE_RULE = "duplicate-rule"
SUBSUMED_RULE = "subsumed-rule"
CARTESIAN_JOIN = "cartesian-join"
PRAGMA = "pragma"
ALL_PROGRAM_RULES = (
    SYNTAX,
    SAFETY,
    STRATIFICATION,
    ARITY,
    UNDEFINED_PREDICATE,
    DEAD_RULE,
    DUPLICATE_RULE,
    SUBSUMED_RULE,
    CARTESIAN_JOIN,
    PRAGMA,
)

#: bodies longer than this skip the subsumption search (worst case is
#: exponential in body length; real rules are far shorter)
_MAX_SUBSUMPTION_BODY = 8

_PRAGMA_RE = re.compile(r"^\s*%\s*(edb|output)\s*:\s*(.*?)\s*$")
_EDB_ITEM_RE = re.compile(r"^([a-z_][A-Za-z0-9_]*)\s*/\s*(\d+)$")
_OUTPUT_ITEM_RE = re.compile(r"^[a-z_][A-Za-z0-9_]*$")


# ----------------------------------------------------------------------
# the analysis result
# ----------------------------------------------------------------------
@dataclass
class ProgramAnalysis:
    """Findings plus the runtime-consumable facts about one program."""

    program: Program
    path: str
    findings: list[Finding]
    #: ``% edb:``-declared input predicates → arity (empty without pragma)
    declared_edb: dict[str, int] = dc_field(default_factory=dict)
    #: ``% output:``-declared result predicates (None without pragma)
    outputs: frozenset[str] | None = None
    #: indices into ``program.rules`` unreachable from the outputs
    unreachable_rules: frozenset[int] = frozenset()
    #: proper-rule index → recommended body evaluation order (a
    #: permutation of body literal indices; only rules whose original
    #: order forms a cross product that reordering repairs)
    join_orders: dict[int, tuple[int, ...]] = dc_field(default_factory=dict)
    #: stable per-rule ids, ``head#n`` (nth rule for that head)
    rule_ids: list[str] = dc_field(default_factory=list)

    def errors(self) -> list[Finding]:
        """The error-severity findings."""
        return [f for f in self.findings if f.severity == "error"]

    # -- runtime hooks --------------------------------------------------
    def _never_firing(
        self, base_predicates: Iterable[str]
    ) -> tuple[set[int], set[str]]:
        """Least-fixpoint possibly-nonempty analysis.

        ``base_predicates`` (plus the program's own facts and any
        declared EDB) are assumed possibly non-empty; a proper rule
        *fires* once every positive body predicate is possibly
        non-empty, which makes its head possibly non-empty. Returns
        ``(indices of rules that never fire, possibly-nonempty preds)``.
        Negated atoms are ignored (an empty predicate only makes a
        negation more permissive), so removing a never-firing rule
        cannot change any materialization.
        """
        nonempty = set(base_predicates) | set(self.declared_edb)
        nonempty.update(r.head.predicate for r in self.program.facts)
        rules = list(enumerate(self.program.rules))
        fires: set[int] = set()
        changed = True
        while changed:
            changed = False
            for i, r in rules:
                if r.is_fact or i in fires:
                    continue
                if all(
                    lit.atom.predicate in nonempty
                    for lit in r.body
                    if lit.atom is not None and not lit.negated
                ):
                    fires.add(i)
                    nonempty.add(r.head.predicate)
                    changed = True
        dead = {i for i, r in rules if not r.is_fact and i not in fires}
        return dead, nonempty

    def prunable_rules(self, edb_predicates: Iterable[str]) -> frozenset[int]:
        """Indices into ``program.rules`` of rules that can never fire
        given facts only for ``edb_predicates``. Pruning them is
        materialization-preserving (see :meth:`_never_firing`)."""
        dead, _ = self._never_firing(edb_predicates)
        return frozenset(dead)

    def pruned_program(self, edb_predicates: Iterable[str]) -> Program:
        """The program minus its never-firing rules (identity when
        nothing is prunable)."""
        dead = self.prunable_rules(edb_predicates)
        if not dead:
            return self.program
        return Program(
            [r for i, r in enumerate(self.program.rules) if i not in dead]
        )

    def join_orders_for(self, program: Program) -> dict[int, tuple[int, ...]]:
        """Re-key :attr:`join_orders` for ``program`` — typically a
        pruned copy of the analyzed program, where proper-rule indices
        have shifted. Matches rules by structural value."""
        if not self.join_orders:
            return {}
        proper = self.program.proper_rules
        by_rule = {proper[i]: order for i, order in self.join_orders.items()}
        return {
            i: by_rule[r]
            for i, r in enumerate(program.proper_rules)
            if r in by_rule
        }


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _rule_pos(rule: Rule) -> tuple[int, int]:
    return rule.head.line or 1, rule.head.col or 1


def _lit_pos(lit: Literal, rule: Rule) -> tuple[int, int]:
    src = lit.atom or lit.comparison or lit.assignment
    line = getattr(src, "line", None)
    col = getattr(src, "col", None)
    if line is None:
        return _rule_pos(rule)
    return line, col or 1


def _atom_pos(atom: Atom, rule: Rule) -> tuple[int, int]:
    if atom.line is None:
        return _rule_pos(rule)
    return atom.line, atom.col or 1


def _rule_ids(program: Program) -> list[str]:
    counts: dict[str, int] = {}
    ids: list[str] = []
    for r in program.rules:
        n = counts.get(r.head.predicate, 0) + 1
        counts[r.head.predicate] = n
        ids.append(f"{r.head.predicate}#{n}")
    return ids


def _canonical(rule: Rule) -> str:
    """The rule's repr with variables renamed in first-occurrence order
    (α-equivalent rules canonicalize identically)."""
    mapping: dict[str, str] = {}

    def ren(name: str) -> str:
        if name not in mapping:
            mapping[name] = f"V{len(mapping)}"
        return mapping[name]

    def term(t) -> str:
        if isinstance(t, Variable):
            return ren(t.name)
        return repr(t)

    def atom(a: Atom) -> str:
        parts = []
        for t in a.terms:
            if hasattr(t, "op") and hasattr(t, "var"):  # Aggregate
                parts.append(f"{t.op}({ren(t.var.name)})")
            else:
                parts.append(term(t))
        return f"{a.predicate}({', '.join(parts)})"

    out = [atom(rule.head)]
    for lit in rule.body:
        if lit.atom is not None:
            out.append(("!" if lit.negated else "") + atom(lit.atom))
        elif lit.comparison is not None:
            c = lit.comparison
            out.append(f"{term(c.left)} {c.op} {term(c.right)}")
        else:
            a = lit.assignment
            assert a is not None
            rhs = term(a.left)
            if a.op is not None:
                rhs += f" {a.op} {term(a.right)}"
            out.append(f"{ren(a.target.name)} = {rhs}")
    return out[0] + " :- " + ", ".join(out[1:])


# -- θ-subsumption ------------------------------------------------------
def _match_term(ta, tb, theta: dict[str, object]) -> dict | None:
    if isinstance(ta, Variable):
        cur = theta.get(ta.name)
        if cur is None:
            ext = dict(theta)
            ext[ta.name] = tb
            return ext
        return theta if cur == tb else None
    if isinstance(ta, Constant):
        return theta if ta == tb else None
    return None  # aggregates never subsume


def _match_terms(ts_a, ts_b, theta: dict | None) -> dict | None:
    if theta is None or len(ts_a) != len(ts_b):
        return None
    for ta, tb in zip(ts_a, ts_b):
        theta = _match_term(ta, tb, theta)
        if theta is None:
            return None
    return theta


def _match_literal(la: Literal, lb: Literal, theta: dict) -> dict | None:
    if la.atom is not None:
        if lb.atom is None or la.negated != lb.negated:
            return None
        if la.atom.predicate != lb.atom.predicate:
            return None
        return _match_terms(la.atom.terms, lb.atom.terms, theta)
    if la.comparison is not None:
        if lb.comparison is None or la.comparison.op != lb.comparison.op:
            return None
        return _match_terms(
            (la.comparison.left, la.comparison.right),
            (lb.comparison.left, lb.comparison.right),
            theta,
        )
    a, b = la.assignment, lb.assignment
    if a is None or b is None or a.op != b.op:
        return None
    return _match_terms(
        (a.target, a.left, a.right), (b.target, b.left, b.right), theta
    )


def _subsumes(a: Rule, b: Rule) -> bool:
    """Whether a substitution θ maps ``a``'s head onto ``b``'s head and
    every ``a`` body literal onto *some* ``b`` body literal — then every
    derivation ``b`` makes, ``a`` already makes, so ``b`` is redundant.
    Aggregate rules are skipped (their group semantics are not
    set-monotone under body weakening)."""
    if a.has_aggregate or b.has_aggregate:
        return False
    if max(len(a.body), len(b.body)) > _MAX_SUBSUMPTION_BODY:
        return False
    if a.head.predicate != b.head.predicate:
        return False
    theta0 = _match_terms(a.head.terms, b.head.terms, {})
    if theta0 is None:
        return False

    def search(i: int, theta: dict) -> bool:
        if i == len(a.body):
            return True
        for lb in b.body:
            ext = _match_literal(a.body[i], lb, theta)
            if ext is not None and search(i + 1, ext):
                return True
        return False

    return search(0, theta0)


# -- cartesian joins and greedy body orders -----------------------------
def _disconnected_atoms(rule: Rule, order: Iterable[int]) -> list[int]:
    """Body indices (among ``order``) where a positive atom joins with
    no shared bound variable and no constant — a cross product under
    the left-to-right nested-loop join."""
    bound: set[str] = set()
    out: list[int] = []
    first = True
    for i in order:
        lit = rule.body[i]
        if lit.atom is not None and not lit.negated:
            names = {v.name for v in lit.atom.variables()}
            has_const = any(
                isinstance(t, Constant) for t in lit.atom.terms
            )
            if not first and names and not has_const and not (names & bound):
                out.append(i)
            bound |= names
            first = False
        elif lit.assignment is not None:
            a = lit.assignment
            if all(v.name in bound for v in a.inputs()):
                bound.add(a.target.name)
    return out


def _greedy_order(rule: Rule) -> tuple[int, ...]:
    """A connectivity-first body order: positive atoms chosen greedily
    by (connected, shared variables, constants bound), with filters and
    assignments placed as soon as they become evaluable — the same
    eligibility the deferred-filter join uses, so the order is
    semantics-preserving."""
    remaining: dict[int, Atom] = {}
    pending: dict[int, Literal] = {}
    for i, lit in enumerate(rule.body):
        if lit.atom is not None and not lit.negated:
            remaining[i] = lit.atom
        else:
            pending[i] = lit
    order: list[int] = []
    bound: set[str] = set()

    def flush() -> None:
        progressed = True
        while progressed:
            progressed = False
            for i in sorted(pending):
                lit = pending[i]
                if lit.assignment is not None:
                    a = lit.assignment
                    if all(v.name in bound for v in a.inputs()):
                        order.append(i)
                        bound.add(a.target.name)
                        del pending[i]
                        progressed = True
                elif all(v.name in bound for v in lit.variables()):
                    order.append(i)
                    del pending[i]
                    progressed = True

    while remaining:
        best_key: tuple | None = None
        best_i = -1
        for i in sorted(remaining):
            atom = remaining[i]
            names = {v.name for v in atom.variables()}
            shared = len(names & bound)
            consts = sum(isinstance(t, Constant) for t in atom.terms)
            key = (
                1 if (shared or not order) else 0,
                shared,
                consts,
                -i,
            )
            if best_key is None or key > best_key:
                best_key, best_i = key, i
        atom = remaining.pop(best_i)
        order.append(best_i)
        bound |= {v.name for v in atom.variables()}
        flush()
    order.extend(sorted(pending))  # unsatisfiable leftovers: unsafe rule
    return tuple(order)


# ----------------------------------------------------------------------
# pragmas
# ----------------------------------------------------------------------
def _parse_pragmas(
    text: str, path: str
) -> tuple[dict[str, int], frozenset[str] | None, list[Finding]]:
    declared: dict[str, int] = {}
    outputs: set[str] | None = None
    findings: list[Finding] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        m = _PRAGMA_RE.match(line)
        if not m:
            continue
        kind, payload = m.group(1), m.group(2)
        for item in filter(None, (s.strip() for s in payload.split(","))):
            if kind == "edb":
                em = _EDB_ITEM_RE.match(item)
                if em is None:
                    findings.append(
                        Finding(
                            path, lineno, line.index(item) + 1, PRAGMA,
                            f"malformed edb declaration {item!r}",
                            "write predicate/arity pairs: "
                            "% edb: edge/2, label/2",
                        )
                    )
                    continue
                declared[em.group(1)] = int(em.group(2))
            else:
                if outputs is None:
                    outputs = set()
                if _OUTPUT_ITEM_RE.match(item) is None:
                    findings.append(
                        Finding(
                            path, lineno, line.index(item) + 1, PRAGMA,
                            f"malformed output declaration {item!r}",
                            "name predicates: % output: report, alerts",
                        )
                    )
                    continue
                outputs.add(item)
    return declared, frozenset(outputs) if outputs is not None else None, (
        findings
    )


# ----------------------------------------------------------------------
# the analyzer
# ----------------------------------------------------------------------
def _analyze(
    program: Program,
    path: str,
    *,
    source: str | None = None,
    declared_edb: dict[str, int] | None = None,
    outputs: frozenset[str] | None = None,
    parse_errors: Iterable[ParseError] = (),
    pragma_findings: Iterable[Finding] = (),
) -> ProgramAnalysis:
    declared_edb = dict(declared_edb or {})
    rule_ids = _rule_ids(program)
    findings: list[Finding] = list(pragma_findings)

    def add(
        rule: str,
        pos: tuple[int, int],
        message: str,
        hint: str,
        severity: str = "error",
    ) -> None:
        findings.append(
            Finding(path, pos[0], pos[1], rule, message, hint, severity)
        )

    for exc in parse_errors:
        findings.append(
            Finding(
                path, exc.line or 1, exc.col or 1, SYNTAX, str(exc),
                "fix the syntax; this clause was skipped and the rest "
                "of the file analyzed without it",
            )
        )

    analysis = ProgramAnalysis(
        program=program,
        path=path,
        findings=findings,
        declared_edb=declared_edb,
        outputs=outputs,
        rule_ids=rule_ids,
    )

    # -- pass 1: per-rule well-formedness (safety et al.) ---------------
    safety_bad: set[int] = set()
    for i, rule in enumerate(program.rules):
        rid = rule_ids[i]
        if rule.is_fact and not rule.head.is_ground():
            safety_bad.add(i)
            add(
                SAFETY, _rule_pos(rule),
                f"{rid}: fact {rule.head!r} is not ground",
                "facts must use constants only; give the rule a body to "
                "bind its variables",
            )
        for lit in rule.body:
            if lit.atom is not None and lit.atom.has_aggregate():
                safety_bad.add(i)
                add(
                    SAFETY, _lit_pos(lit, rule),
                    f"{rid}: aggregate in body literal {lit!r}",
                    "aggregates are only allowed in rule heads",
                )
        if sum(1 for _ in rule.head.aggregates()) > 1:
            safety_bad.add(i)
            add(
                SAFETY, _rule_pos(rule),
                f"{rid}: more than one aggregate in head {rule.head!r}",
                "at most one aggregate per head; split the rule",
            )
        for name, lit in rule.range_restriction():
            safety_bad.add(i)
            if lit is None:
                if rule.is_fact:
                    continue  # already reported as a non-ground fact
                add(
                    SAFETY, _rule_pos(rule),
                    f"{rid}: head variable {name} not bound in a "
                    "positive body atom",
                    f"add a positive body atom that binds {name}, or "
                    "replace it with a constant",
                )
            elif lit.is_assignment:
                add(
                    SAFETY, _lit_pos(lit, rule),
                    f"{rid}: assignment input {name} in {lit!r} is "
                    "never bound",
                    f"bind {name} with a positive body atom before the "
                    "assignment",
                )
            else:
                add(
                    SAFETY, _lit_pos(lit, rule),
                    f"{rid}: variable {name} in {lit!r} not bound in a "
                    "positive body atom",
                    "negated and comparison literals only filter; bind "
                    f"{name} positively first",
                )

    # -- pass 2: arity/schema consistency -------------------------------
    seen_arity: dict[str, tuple[int, int, str]] = {
        p: (a, 0, "the edb declaration") for p, a in declared_edb.items()
    }
    for i, rule in enumerate(program.rules):
        atoms = [rule.head] + [
            lit.atom for lit in rule.body if lit.atom is not None
        ]
        for atom in atoms:
            prev = seen_arity.get(atom.predicate)
            if prev is None:
                line, _col = _atom_pos(atom, rule)
                seen_arity[atom.predicate] = (
                    atom.arity, line, f"line {line}"
                )
            elif prev[0] != atom.arity:
                add(
                    ARITY, _atom_pos(atom, rule),
                    f"{rule_ids[i]}: predicate {atom.predicate!r} used "
                    f"with arity {atom.arity}, but it has arity "
                    f"{prev[0]} ({prev[2]})",
                    "every use of a predicate must agree on its arity",
                )

    # -- pass 3: stratification -----------------------------------------
    dg = DependencyGraph(program)
    for cycle, kind in dg.negation_cycles():
        src, dst = cycle[-2], cycle[0]
        pos, rid = None, None
        for i, rule in enumerate(program.rules):
            if rule.head.predicate != dst:
                continue
            for lit in rule.body:
                if lit.atom is None or lit.atom.predicate != src:
                    continue
                if (kind == "negation" and lit.negated) or (
                    kind == "aggregation" and rule.has_aggregate
                ):
                    pos, rid = _lit_pos(lit, rule), rule_ids[i]
                    break
            if pos is not None:
                break
        add(
            STRATIFICATION,
            pos or (1, 1),
            f"{rid or dst}: {kind} of {src!r} inside its own recursive "
            "component (cycle: " + " -> ".join(cycle) + ")",
            "break the cycle: move the negated/aggregated predicate "
            "into an earlier stratum or split the recursion",
        )

    # -- pass 4: reachability and dead rules ----------------------------
    if declared_edb:
        defined = set(declared_edb) | {
            r.head.predicate for r in program.rules
        }
        flagged: set[str] = set()
        for i, rule in enumerate(program.rules):
            for lit in rule.body:
                atom = lit.atom
                if atom is None or atom.predicate in defined:
                    continue
                if atom.predicate in flagged:
                    continue
                flagged.add(atom.predicate)
                add(
                    UNDEFINED_PREDICATE, _atom_pos(atom, rule),
                    f"{rule_ids[i]}: predicate {atom.predicate!r} has no "
                    "facts, no rules, and no edb declaration",
                    f"declare it (% edb: {atom.predicate}/{atom.arity}) "
                    "or define it with rules",
                    severity="warning",
                )
        never, nonempty = analysis._never_firing(())
        for i in sorted(never):
            rule = program.rules[i]
            empty = next(
                (
                    lit
                    for lit in rule.body
                    if lit.atom is not None
                    and not lit.negated
                    and lit.atom.predicate not in nonempty
                ),
                None,
            )
            why = (
                f"predicate {empty.atom.predicate!r} can never hold facts"
                if empty is not None and empty.atom is not None
                else "its positive body can never be satisfied"
            )
            add(
                DEAD_RULE,
                _lit_pos(empty, rule) if empty is not None
                else _rule_pos(rule),
                f"{rule_ids[i]}: rule can never fire — {why}",
                "the compiler prunes never-firing rules; delete the "
                "rule or feed the predicate",
                severity="warning",
            )
    if outputs is not None:
        known = {r.head.predicate for r in program.rules} | set(declared_edb)
        for p in sorted(outputs - known):
            add(
                PRAGMA, (1, 1),
                f"declared output {p!r} is never defined",
                "outputs must be rule heads, facts, or declared edb "
                "predicates",
                severity="warning",
            )
        reachable = set(outputs)
        changed = True
        while changed:
            changed = False
            for rule in program.proper_rules:
                if rule.head.predicate not in reachable:
                    continue
                for p, _neg in rule.body_predicates():
                    if p not in reachable:
                        reachable.add(p)
                        changed = True
        unreachable = [
            i
            for i, r in enumerate(program.rules)
            if not r.is_fact and r.head.predicate not in reachable
        ]
        analysis.unreachable_rules = frozenset(unreachable)
        for i in unreachable:
            rule = program.rules[i]
            add(
                DEAD_RULE, _rule_pos(rule),
                f"{rule_ids[i]}: head {rule.head.predicate!r} is "
                "unreachable from the declared outputs "
                f"({', '.join(sorted(outputs))})",
                "delete the rule or add its head to % output:",
                severity="warning",
            )

    # -- pass 5: duplicate and subsumed rules ---------------------------
    canon = [_canonical(r) for r in program.rules]
    canon_first: dict[str, int] = {}
    duplicates: set[int] = set()
    for i, rule in enumerate(program.rules):
        j = canon_first.setdefault(canon[i], i)
        if j != i:
            duplicates.add(i)
            add(
                DUPLICATE_RULE, _rule_pos(rule),
                f"{rule_ids[i]}: duplicate of {rule_ids[j]} "
                f"(line {_rule_pos(program.rules[j])[0]})",
                "identical up to variable renaming; delete one copy",
                severity="warning",
            )
    proper = [
        (i, r)
        for i, r in enumerate(program.rules)
        if not r.is_fact and i not in duplicates and i not in safety_bad
    ]
    for bi, b in proper:
        for ai, a in proper:
            if ai == bi or canon[ai] == canon[bi]:
                continue
            if _subsumes(a, b):
                add(
                    SUBSUMED_RULE, _rule_pos(b),
                    f"{rule_ids[bi]}: subsumed by the more general "
                    f"{rule_ids[ai]} (line {_rule_pos(a)[0]})",
                    "every fact this rule derives is already derived "
                    "by the subsuming rule; delete it",
                    severity="warning",
                )
                break

    # -- pass 6: cartesian joins + join-order hints ---------------------
    pi = -1
    for i, rule in enumerate(program.rules):
        if rule.is_fact:
            continue
        pi += 1
        if i in safety_bad:
            continue
        original = _disconnected_atoms(rule, range(len(rule.body)))
        if not original:
            continue
        order = _greedy_order(rule)
        repaired = _disconnected_atoms(rule, order)
        hint = (
            "reorder the body so every atom shares a variable with an "
            "earlier one: " + ", ".join(repr(rule.body[j]) for j in order)
            if len(repaired) < len(original)
            else "no reordering helps; add a join variable or split "
            "the rule"
        )
        if len(repaired) < len(original):
            analysis.join_orders[pi] = order
        for j in original:
            lit = rule.body[j]
            assert lit.atom is not None
            add(
                CARTESIAN_JOIN, _lit_pos(lit, rule),
                f"{rule_ids[i]}: joining {lit.atom.predicate!r} with no "
                "shared variables forms a cross product",
                hint,
                severity="warning",
            )

    if source is not None:
        analysis.findings = apply_suppressions(
            findings, {path: source.splitlines()}
        )
    else:
        analysis.findings = apply_suppressions(findings, {})
    return analysis


def analyze_program(program: Program, path: str = "<program>") -> (
    ProgramAnalysis
):
    """Analyze an in-memory (already validated) program.

    No source text means no pragmas and no suppressions: every
    head-less predicate counts as EDB input and reachability is not
    checked. This is the runtime entry point — the update-stream
    service uses the result for dead-rule pruning and join-order hints.
    """
    return _analyze(program, path)


def analyze_source(text: str, path: str = "<program>") -> ProgramAnalysis:
    """Lenient-parse and analyze Datalog source text."""
    program, parse_errors = parse_program_lenient(text)
    declared, outputs, pragma_findings = _parse_pragmas(text, path)
    return _analyze(
        program,
        path,
        source=text,
        declared_edb=declared,
        outputs=outputs,
        parse_errors=parse_errors,
        pragma_findings=pragma_findings,
    )


def analyze_path(path: str | Path) -> ProgramAnalysis:
    """Analyze one ``.dlog`` source file."""
    p = Path(path)
    return analyze_source(p.read_text(), str(p))
