"""Offline invariant checker for recorded simulation results.

Given a :class:`~repro.tasks.trace.JobTrace` and a
:class:`~repro.sim.result.SimulationResult` with a recorded schedule,
re-derive the ground truth from the trace alone and verify that the
schedule could have been produced by a *correct* scheduler under the
engine model of :mod:`repro.sim.engine`:

* **active set / exactly-once** — the executed node set equals the
  realized active set ``W`` (no spurious re-runs, no missing tasks, no
  double executions);
* **precedence** — no task started before every ancestor resolved,
  where a deactivated ancestor resolves the instant its own parents do
  (the cascade of ``tasks/activation.py``) and an executed ancestor
  resolves at its recorded finish;
* **capacity / allotment** — never more than ``P`` processors busy,
  one processor for unit/sequential tasks, at most
  ``max_useful_processors`` for malleable tasks;
* **duration feasibility** — every record lasts at least the engine's
  modeled minimum (1 for unit, ``work`` for sequential,
  ``max(span, work/alloc)`` for malleable);
* **paper bounds** — the execution makespan respects
  ``w/P + Σ_i S_i`` (Theorem 9's level-sum bound; for unit tasks
  ``S_i = 1`` so the sum collapses to Lemma 3/Theorem 5's ``w/P + L``,
  and for malleable tasks under re-allotment ``S_i`` is the level's
  maximum span, Lemma 5's divisible-load regime), and the makespan is
  no smaller than the ``w/P`` / critical-path lower bounds — a result
  reporting an impossibly *good* number is as wrong as an invalid one.

The checker is deliberately independent of the engine's online
validation: it recomputes resolution times from the propagation ground
truth, so a bug in the engine itself (or a hand-edited result file)
also surfaces.

Fault-aware checking
--------------------
When the result carries a non-empty ``fault_log`` (see
:mod:`repro.sim.faults`) the invariants adapt rather than switch off:

* *exactly-once* becomes *at-least-once-with-exactly-one-success*: a
  node may appear in failed attempts any number of times but in the
  schedule at most once, and a missing task is waived only when it is a
  quarantined node or a ground-truth descendant of one;
* *capacity* accounts for failed-attempt occupancy (a dead attempt held
  processors from its start to its failure) against the *time-varying*
  processor count reconstructed from applied churn events;
* the ``w/P + Σ S_i`` upper bound is fault-adjusted: straggler-inflated
  work and level spans, lost work from dead attempts, backoff and
  downtime delays, and the minimum surviving capacity replace their
  fault-free counterparts. The lower bound needs no adjustment — faults
  only ever slow a run down;
* a new ``fault-consistency`` kind cross-checks the log against the
  schedule (quarantined nodes must not execute, failed nodes must end
  in a success or a quarantine, recoveries cannot outnumber failures).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..dag.traversal import topological_order
from ..sim.result import SimulationResult
from ..tasks.model import ExecutionModel, max_useful_processors
from ..tasks.trace import JobTrace

__all__ = [
    "Violation",
    "VerificationReport",
    "InvariantViolationError",
    "check_invariants",
    "VIOLATION_KINDS",
]

#: every kind a violation may carry, for exhaustive test matching
VIOLATION_KINDS = (
    "spurious-execution",
    "missing-task",
    "duplicate-execution",
    "precedence",
    "capacity",
    "allotment",
    "duration",
    "makespan-bound",
    "makespan-lower",
    "result-consistency",
    "fault-consistency",
)

_CHECKS = (
    "active-set",
    "exactly-once",
    "precedence",
    "capacity",
    "allotment",
    "duration",
    "bounds",
    "consistency",
)


@dataclass(frozen=True)
class Violation:
    """One broken invariant, attributable to a node where applicable."""

    kind: str
    detail: str
    node: int | None = None

    def format(self) -> str:
        where = f"node {self.node}: " if self.node is not None else ""
        return f"[{self.kind}] {where}{self.detail}"


@dataclass
class VerificationReport:
    """Structured outcome of one :func:`check_invariants` run."""

    trace_name: str
    scheduler_name: str
    processors: int
    checks: tuple[str, ...] = _CHECKS
    violations: list[Violation] = field(default_factory=list)
    #: derived bound values (work_lower, critical_path, level_term, ...)
    bounds: dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when every invariant held."""
        return not self.violations

    def kinds(self) -> set[str]:
        """The set of violation kinds present (for tests/reporting)."""
        return {v.kind for v in self.violations}

    def summary(self) -> str:
        """Human-readable multi-line report."""
        head = (
            f"verify {self.scheduler_name} on {self.trace_name} "
            f"(P={self.processors}): "
        )
        if self.ok:
            return head + f"OK ({len(self.checks)} invariant groups)"
        lines = [head + f"{len(self.violations)} violation(s)"]
        lines.extend("  " + v.format() for v in self.violations)
        return "\n".join(lines)


class InvariantViolationError(RuntimeError):
    """Raised by ``simulate(..., strict=True)`` on a failed report."""

    def __init__(self, report: VerificationReport) -> None:
        super().__init__(report.summary())
        self.report = report


def _min_duration(model: int, work: float, span: float, alloc: int) -> float:
    """Engine-model lower bound on a record's duration."""
    if model == ExecutionModel.UNIT:
        return 1.0
    if model == ExecutionModel.SEQUENTIAL:
        return work
    return max(span, work / max(alloc, 1))


def check_invariants(
    trace: JobTrace,
    result: SimulationResult,
    *,
    reallot: bool | None = None,
    atol: float = 1e-6,
) -> VerificationReport:
    """Verify ``result`` against the ground truth derivable from ``trace``.

    ``reallot`` states whether the run used dynamic re-allotment:
    ``True``/``False`` when known (``simulate(strict=True)`` passes it),
    ``None`` for standalone result files — the checker then treats
    malleable allotments conservatively (a record stores only the final
    allotment, so exact capacity accounting is impossible after growth).

    Raises :class:`ValueError` when the result carries no recorded
    schedule but tasks executed — there is nothing to verify then.
    """
    report = VerificationReport(
        trace_name=result.trace_name,
        scheduler_name=result.scheduler_name,
        processors=result.processors,
    )
    bad = report.violations.append

    dag = trace.dag
    n = dag.n_nodes
    executed = trace.propagation.executed
    work = trace.work
    span = trace.span
    models = trace.models
    levels = trace.levels
    P = result.processors

    # ------------------------------------------------------------------
    # fault context (empty log → every adjustment below is a no-op)
    # ------------------------------------------------------------------
    flog = list(result.fault_log or [])
    has_faults = bool(flog)
    has_churn = any(
        e.kind == "proc-fail" and e.data.get("applied") for e in flog
    )
    direct_quarantined = {
        int(e.node) for e in flog if e.kind == "quarantine"
    }
    # a missing task is excusable only when its absence traces back to a
    # quarantined ancestor (or it was quarantined itself)
    waived_missing = np.zeros(n, dtype=bool)
    if direct_quarantined:
        stack = [v for v in direct_quarantined if 0 <= v < n]
        for v in stack:
            waived_missing[v] = True
        while stack:
            u = stack.pop()
            for c in dag.out_neighbors(u):
                c = int(c)
                if not waived_missing[c]:
                    waived_missing[c] = True
                    stack.append(c)

    if not result.schedule:
        if int(executed.sum()) == 0 or bool(
            np.all(~executed | waived_missing)
        ):
            pass  # nothing ran (or everything active was quarantined)
        else:
            raise ValueError(
                "result has no recorded schedule; run simulate() with "
                "record_schedule=True or strict=True"
            )

    # ------------------------------------------------------------------
    # exactly-once / active set
    # ------------------------------------------------------------------
    start = np.full(n, np.nan)
    finish = np.full(n, np.nan)
    alloc = np.zeros(n, dtype=np.int64)
    for rec in result.schedule:
        v = rec.node
        if v < 0 or v >= n:
            bad(Violation("spurious-execution", f"unknown node id {v}", v))
            continue
        if not np.isnan(start[v]):
            bad(
                Violation(
                    "duplicate-execution",
                    f"dispatched at t={start[v]:.6g} and again at "
                    f"t={rec.start:.6g}",
                    v,
                )
            )
            continue
        start[v] = rec.start
        finish[v] = rec.finish
        alloc[v] = rec.processors

    scheduled = ~np.isnan(start)
    for v in np.flatnonzero(scheduled & ~executed):
        bad(
            Violation(
                "spurious-execution",
                "executed but is not in the realized active set W "
                "(all its input signals resolve to 'no change')",
                int(v),
            )
        )
    for v in np.flatnonzero(executed & ~scheduled):
        if waived_missing[v]:
            continue  # quarantined (or suppressed by a quarantine)
        bad(
            Violation(
                "missing-task",
                "is in the realized active set W but never executed",
                int(v),
            )
        )

    # ------------------------------------------------------------------
    # precedence: re-derive resolution times from the propagation
    # ------------------------------------------------------------------
    resolve = np.zeros(n)
    for u in topological_order(dag):
        u = int(u)
        ready = 0.0
        for p in dag.in_neighbors(u):
            rp = resolve[int(p)]
            if rp > ready:
                ready = rp
        if executed[u]:
            if scheduled[u]:
                if start[u] < ready - atol:
                    bad(
                        Violation(
                            "precedence",
                            f"started at t={start[u]:.6g} but its last "
                            f"ancestor resolved at t={ready:.6g}",
                            u,
                        )
                    )
                resolve[u] = finish[u]
            elif waived_missing[u]:
                # quarantine resolves the node without execution; the
                # true instant is its last failure time, which is never
                # earlier than its ancestors' resolution — ``ready`` is
                # a sound (earlier) stand-in for descendants' checks
                resolve[u] = ready
            else:
                resolve[u] = math.inf  # missing-task already reported
        else:
            # deactivation cascades are instantaneous in the engine
            resolve[u] = ready

    # ------------------------------------------------------------------
    # allotment + duration feasibility
    # ------------------------------------------------------------------
    for v in np.flatnonzero(scheduled):
        v = int(v)
        a = int(alloc[v])
        m = int(models[v])
        if a < 1 or a > P:
            bad(
                Violation(
                    "allotment",
                    f"allotment {a} outside [1, P={P}]",
                    v,
                )
            )
            continue
        if m != ExecutionModel.MALLEABLE and a != 1:
            bad(
                Violation(
                    "allotment",
                    f"non-malleable task allotted {a} processors",
                    v,
                )
            )
        elif m == ExecutionModel.MALLEABLE and reallot is False:
            # with re-allotment the engine grows stragglers against
            # their *remaining* work/span, which can legally exceed the
            # static cap — only constant-width records are checkable
            cap = max_useful_processors(float(work[v]), float(span[v]), m)
            if a > cap:
                bad(
                    Violation(
                        "allotment",
                        f"allotment {a} exceeds max useful {cap}",
                        v,
                    )
                )
        dur = float(finish[v] - start[v])
        if dur < -atol:
            bad(
                Violation(
                    "duration",
                    f"finishes (t={finish[v]:.6g}) before it starts "
                    f"(t={start[v]:.6g})",
                    v,
                )
            )
            continue
        dmin = _min_duration(m, float(work[v]), float(span[v]), a)
        if has_churn and m == ExecutionModel.MALLEABLE:
            # a churn shrink can leave the *final* allotment below the
            # attempt's historical maximum, so work/alloc over-floors;
            # the width-P rate is the only sound per-record bound left
            dmin = max(float(span[v]), float(work[v]) / P)
        if dur + atol < dmin:
            bad(
                Violation(
                    "duration",
                    f"ran for {dur:.6g} < modeled minimum {dmin:.6g}",
                    v,
                )
            )

    # ------------------------------------------------------------------
    # processor capacity (sweep line; zero-duration records occupy no
    # processor time and engine rounds may reuse a core within one
    # instant, so they are excluded). With faults, failed attempts
    # occupied processors from dispatch to death, and churn makes the
    # capacity itself piecewise constant — both reconstructed from the
    # fault log. Entries at one instant apply releases, then capacity
    # changes, then acquires; occupancy is checked between instants.
    # ------------------------------------------------------------------
    def _occupancy(v: int, a: int) -> int:
        if int(models[v]) == ExecutionModel.MALLEABLE and reallot is not False:
            # the record stores the *final* allotment; the task held at
            # least one processor throughout
            return 1
        return a

    sweep: list[tuple[float, int, int, int]] = []  # (t, phase, occ, cap)
    for v in np.flatnonzero(scheduled):
        v = int(v)
        if finish[v] <= start[v]:
            continue
        a = _occupancy(v, int(alloc[v]))
        sweep.append((float(start[v]), 2, a, 0))
        sweep.append((float(finish[v]), 0, -a, 0))
    for e in flog:
        if e.kind in ("task-fail", "proc-kill"):
            s0 = float(e.data.get("start", e.time))
            if e.time <= s0 or not (0 <= e.node < n):
                continue
            a = _occupancy(int(e.node), int(e.data.get("alloc", 1)))
            sweep.append((s0, 2, a, 0))
            sweep.append((float(e.time), 0, -a, 0))
        elif e.kind == "proc-fail" and e.data.get("applied"):
            sweep.append((float(e.time), 1, 0, -1))
        elif e.kind == "proc-recover" and e.data.get("applied", 1.0):
            sweep.append((float(e.time), 1, 0, 1))
    sweep.sort(key=lambda e: (e[0], e[1]))
    busy = 0
    cap = P
    excess = 0
    excess_t = 0.0
    i = 0
    while i < len(sweep):
        t_ = sweep[i][0]
        while i < len(sweep) and sweep[i][0] == t_:
            busy += sweep[i][2]
            cap += sweep[i][3]
            i += 1
        if busy - cap > excess:
            excess, excess_t = busy - cap, t_
    if excess > 0:
        bad(
            Violation(
                "capacity",
                f"occupancy exceeds capacity by {excess} processor(s) "
                f"at t={excess_t:.6g} (P={P})",
            )
        )

    # ------------------------------------------------------------------
    # paper bounds (Lemma 3 / Lemma 5 / Theorem 9) + lower bounds.
    # Fault runs adjust the upper bound: inflated work/spans, lost
    # attempt work, serial backoff + downtime delays, and the minimum
    # surviving capacity. The lower bound is untouched — injected
    # faults can only ever delay a correct engine.
    # ------------------------------------------------------------------
    if has_faults:
        # quarantined nodes never ran; bound only what executed
        active = np.flatnonzero(executed & scheduled)
    else:
        active = np.flatnonzero(executed)
    eff_work = np.where(
        models == ExecutionModel.UNIT, 1.0, work.astype(np.float64)
    )

    inflation: dict[int, float] = {}
    for e in flog:
        if e.kind == "straggler":
            f = float(e.data.get("factor", 1.0))
            if f > inflation.get(int(e.node), 1.0):
                inflation[int(e.node)] = f

    level_smax: dict[int, float] = {}
    cp_weight = np.zeros(n)
    w = 0.0
    for v in active:
        v = int(v)
        m = int(models[v])
        infl = inflation.get(v, 1.0)
        w += float(eff_work[v]) * infl
        if m == ExecutionModel.UNIT:
            s_upper, s_lower = infl, 1.0
        elif m == ExecutionModel.SEQUENTIAL:
            s_upper, s_lower = float(work[v]) * infl, float(work[v])
        else:
            # re-allotment grows stragglers to their span cap; without
            # it (or when unknown) a width-1 allotment may run for work
            s_upper = (
                float(span[v]) if reallot is True else float(work[v])
            ) * infl
            s_lower = float(span[v])
        lvl = int(levels[v])
        if s_upper > level_smax.get(lvl, 0.0):
            level_smax[lvl] = s_upper
        cp_weight[v] = s_lower

    lost_work = 0.0
    serial_delay = 0.0
    min_capacity = P
    if has_faults:
        cap_now = P
        for e in flog:  # log is time-ordered
            if e.kind in ("task-fail", "proc-kill"):
                lost_work += float(e.data.get("lost", 0.0))
                serial_delay += float(e.time) - float(
                    e.data.get("start", e.time)
                )
                serial_delay += float(e.data.get("backoff", 0.0))
            elif e.kind == "proc-fail" and e.data.get("applied"):
                cap_now -= 1
                serial_delay += float(e.data.get("downtime", 0.0))
                if cap_now < min_capacity:
                    min_capacity = cap_now
            elif e.kind == "proc-recover" and e.data.get("applied", 1.0):
                cap_now += 1
        min_capacity = max(min_capacity, 1)

    level_term = float(sum(level_smax.values()))
    work_lower = float(eff_work[active].sum()) / P
    upper = (w + lost_work) / min_capacity + level_term + serial_delay

    # critical path of minimum durations through executing nodes
    # (deactivated nodes relay precedence at zero cost)
    dist = cp_weight.copy()
    for u in topological_order(dag):
        u = int(u)
        for c in dag.out_neighbors(u):
            c = int(c)
            cand = dist[u] + cp_weight[c]
            if cand > dist[c]:
                dist[c] = cand
    critical_path = float(dist.max()) if n else 0.0

    report.bounds = {
        "work_lower": work_lower,
        "critical_path": critical_path,
        "level_term": level_term,
        "makespan_upper": upper,
    }
    if has_faults:
        report.bounds.update(
            lost_work=lost_work,
            serial_delay=serial_delay,
            min_capacity=float(min_capacity),
        )

    tol = atol + 1e-9 * max(upper, 1.0)
    if result.execution_makespan > upper + tol:
        bad(
            Violation(
                "makespan-bound",
                f"execution makespan {result.execution_makespan:.6g} "
                f"exceeds w/P + Σ S_i = {upper:.6g} "
                f"(w/P={work_lower:.6g}, level term={level_term:.6g})",
            )
        )
    lower = max(work_lower, critical_path)
    if result.makespan + tol < lower:
        bad(
            Violation(
                "makespan-lower",
                f"makespan {result.makespan:.6g} beats the "
                f"max(w/P, critical path) lower bound {lower:.6g}",
            )
        )

    # ------------------------------------------------------------------
    # result self-consistency
    # ------------------------------------------------------------------
    n_records = len(result.schedule)
    if result.tasks_executed != n_records:
        bad(
            Violation(
                "result-consistency",
                f"tasks_executed={result.tasks_executed} but "
                f"{n_records} schedule records",
            )
        )
    last_finish = float(np.nanmax(finish)) if scheduled.any() else 0.0
    if last_finish > result.makespan + atol:
        bad(
            Violation(
                "result-consistency",
                f"a task finishes at t={last_finish:.6g} after the "
                f"reported makespan {result.makespan:.6g}",
            )
        )
    expected_work = float(
        work[executed & scheduled if has_faults else executed].sum()
    )
    if abs(result.total_work - expected_work) > atol * max(
        1.0, expected_work
    ) and not report.kinds() & {"missing-task", "spurious-execution"}:
        bad(
            Violation(
                "result-consistency",
                f"total_work={result.total_work:.6g} but the active set "
                f"carries {expected_work:.6g}",
            )
        )
    if result.utilization > 1.0 + 1e-9:
        bad(
            Violation(
                "result-consistency",
                f"utilization {result.utilization:.6g} > 1",
            )
        )

    # ------------------------------------------------------------------
    # fault-log / schedule cross-consistency
    # ------------------------------------------------------------------
    if has_faults:
        for v in sorted(direct_quarantined):
            if 0 <= v < n and scheduled[v]:
                bad(
                    Violation(
                        "fault-consistency",
                        "quarantined by the fault log but also appears "
                        "in the schedule",
                        v,
                    )
                )
        failed_nodes = {
            int(e.node)
            for e in flog
            if e.kind in ("task-fail", "proc-kill") and 0 <= e.node < n
        }
        for v in sorted(failed_nodes):
            if not scheduled[v] and not waived_missing[v]:
                bad(
                    Violation(
                        "fault-consistency",
                        "has failed attempts in the fault log but "
                        "neither a successful execution nor a "
                        "quarantine",
                        v,
                    )
                )
        for e in flog:
            if e.kind in ("task-fail", "proc-kill"):
                s0 = float(e.data.get("start", e.time))
                if float(e.time) < s0 - atol:
                    bad(
                        Violation(
                            "fault-consistency",
                            f"{e.kind} at t={e.time:.6g} precedes the "
                            f"attempt's start t={s0:.6g}",
                            int(e.node),
                        )
                    )
        n_fail_applied = sum(
            1
            for e in flog
            if e.kind == "proc-fail" and e.data.get("applied")
        )
        n_recover = sum(
            1
            for e in flog
            if e.kind == "proc-recover" and e.data.get("applied", 1.0)
        )
        if n_recover > n_fail_applied:
            bad(
                Violation(
                    "fault-consistency",
                    f"{n_recover} processor recoveries but only "
                    f"{n_fail_applied} applied failures",
                )
            )
    return report
