"""Offline invariant checker for recorded simulation results.

Given a :class:`~repro.tasks.trace.JobTrace` and a
:class:`~repro.sim.result.SimulationResult` with a recorded schedule,
re-derive the ground truth from the trace alone and verify that the
schedule could have been produced by a *correct* scheduler under the
engine model of :mod:`repro.sim.engine`:

* **active set / exactly-once** — the executed node set equals the
  realized active set ``W`` (no spurious re-runs, no missing tasks, no
  double executions);
* **precedence** — no task started before every ancestor resolved,
  where a deactivated ancestor resolves the instant its own parents do
  (the cascade of ``tasks/activation.py``) and an executed ancestor
  resolves at its recorded finish;
* **capacity / allotment** — never more than ``P`` processors busy,
  one processor for unit/sequential tasks, at most
  ``max_useful_processors`` for malleable tasks;
* **duration feasibility** — every record lasts at least the engine's
  modeled minimum (1 for unit, ``work`` for sequential,
  ``max(span, work/alloc)`` for malleable);
* **paper bounds** — the execution makespan respects
  ``w/P + Σ_i S_i`` (Theorem 9's level-sum bound; for unit tasks
  ``S_i = 1`` so the sum collapses to Lemma 3/Theorem 5's ``w/P + L``,
  and for malleable tasks under re-allotment ``S_i`` is the level's
  maximum span, Lemma 5's divisible-load regime), and the makespan is
  no smaller than the ``w/P`` / critical-path lower bounds — a result
  reporting an impossibly *good* number is as wrong as an invalid one.

The checker is deliberately independent of the engine's online
validation: it recomputes resolution times from the propagation ground
truth, so a bug in the engine itself (or a hand-edited result file)
also surfaces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..dag.traversal import topological_order
from ..sim.result import SimulationResult
from ..tasks.model import ExecutionModel, max_useful_processors
from ..tasks.trace import JobTrace

__all__ = [
    "Violation",
    "VerificationReport",
    "InvariantViolationError",
    "check_invariants",
    "VIOLATION_KINDS",
]

#: every kind a violation may carry, for exhaustive test matching
VIOLATION_KINDS = (
    "spurious-execution",
    "missing-task",
    "duplicate-execution",
    "precedence",
    "capacity",
    "allotment",
    "duration",
    "makespan-bound",
    "makespan-lower",
    "result-consistency",
)

_CHECKS = (
    "active-set",
    "exactly-once",
    "precedence",
    "capacity",
    "allotment",
    "duration",
    "bounds",
    "consistency",
)


@dataclass(frozen=True)
class Violation:
    """One broken invariant, attributable to a node where applicable."""

    kind: str
    detail: str
    node: int | None = None

    def format(self) -> str:
        where = f"node {self.node}: " if self.node is not None else ""
        return f"[{self.kind}] {where}{self.detail}"


@dataclass
class VerificationReport:
    """Structured outcome of one :func:`check_invariants` run."""

    trace_name: str
    scheduler_name: str
    processors: int
    checks: tuple[str, ...] = _CHECKS
    violations: list[Violation] = field(default_factory=list)
    #: derived bound values (work_lower, critical_path, level_term, ...)
    bounds: dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when every invariant held."""
        return not self.violations

    def kinds(self) -> set[str]:
        """The set of violation kinds present (for tests/reporting)."""
        return {v.kind for v in self.violations}

    def summary(self) -> str:
        """Human-readable multi-line report."""
        head = (
            f"verify {self.scheduler_name} on {self.trace_name} "
            f"(P={self.processors}): "
        )
        if self.ok:
            return head + f"OK ({len(self.checks)} invariant groups)"
        lines = [head + f"{len(self.violations)} violation(s)"]
        lines.extend("  " + v.format() for v in self.violations)
        return "\n".join(lines)


class InvariantViolationError(RuntimeError):
    """Raised by ``simulate(..., strict=True)`` on a failed report."""

    def __init__(self, report: VerificationReport) -> None:
        super().__init__(report.summary())
        self.report = report


def _min_duration(model: int, work: float, span: float, alloc: int) -> float:
    """Engine-model lower bound on a record's duration."""
    if model == ExecutionModel.UNIT:
        return 1.0
    if model == ExecutionModel.SEQUENTIAL:
        return work
    return max(span, work / max(alloc, 1))


def check_invariants(
    trace: JobTrace,
    result: SimulationResult,
    *,
    reallot: bool | None = None,
    atol: float = 1e-6,
) -> VerificationReport:
    """Verify ``result`` against the ground truth derivable from ``trace``.

    ``reallot`` states whether the run used dynamic re-allotment:
    ``True``/``False`` when known (``simulate(strict=True)`` passes it),
    ``None`` for standalone result files — the checker then treats
    malleable allotments conservatively (a record stores only the final
    allotment, so exact capacity accounting is impossible after growth).

    Raises :class:`ValueError` when the result carries no recorded
    schedule but tasks executed — there is nothing to verify then.
    """
    report = VerificationReport(
        trace_name=result.trace_name,
        scheduler_name=result.scheduler_name,
        processors=result.processors,
    )
    bad = report.violations.append

    dag = trace.dag
    n = dag.n_nodes
    executed = trace.propagation.executed
    work = trace.work
    span = trace.span
    models = trace.models
    levels = trace.levels
    P = result.processors

    if not result.schedule:
        if int(executed.sum()) == 0:
            return report
        raise ValueError(
            "result has no recorded schedule; run simulate() with "
            "record_schedule=True or strict=True"
        )

    # ------------------------------------------------------------------
    # exactly-once / active set
    # ------------------------------------------------------------------
    start = np.full(n, np.nan)
    finish = np.full(n, np.nan)
    alloc = np.zeros(n, dtype=np.int64)
    for rec in result.schedule:
        v = rec.node
        if v < 0 or v >= n:
            bad(Violation("spurious-execution", f"unknown node id {v}", v))
            continue
        if not np.isnan(start[v]):
            bad(
                Violation(
                    "duplicate-execution",
                    f"dispatched at t={start[v]:.6g} and again at "
                    f"t={rec.start:.6g}",
                    v,
                )
            )
            continue
        start[v] = rec.start
        finish[v] = rec.finish
        alloc[v] = rec.processors

    scheduled = ~np.isnan(start)
    for v in np.flatnonzero(scheduled & ~executed):
        bad(
            Violation(
                "spurious-execution",
                "executed but is not in the realized active set W "
                "(all its input signals resolve to 'no change')",
                int(v),
            )
        )
    for v in np.flatnonzero(executed & ~scheduled):
        bad(
            Violation(
                "missing-task",
                "is in the realized active set W but never executed",
                int(v),
            )
        )

    # ------------------------------------------------------------------
    # precedence: re-derive resolution times from the propagation
    # ------------------------------------------------------------------
    resolve = np.zeros(n)
    for u in topological_order(dag):
        u = int(u)
        ready = 0.0
        for p in dag.in_neighbors(u):
            rp = resolve[int(p)]
            if rp > ready:
                ready = rp
        if executed[u]:
            if scheduled[u]:
                if start[u] < ready - atol:
                    bad(
                        Violation(
                            "precedence",
                            f"started at t={start[u]:.6g} but its last "
                            f"ancestor resolved at t={ready:.6g}",
                            u,
                        )
                    )
                resolve[u] = finish[u]
            else:
                resolve[u] = math.inf  # missing-task already reported
        else:
            # deactivation cascades are instantaneous in the engine
            resolve[u] = ready

    # ------------------------------------------------------------------
    # allotment + duration feasibility
    # ------------------------------------------------------------------
    for v in np.flatnonzero(scheduled):
        v = int(v)
        a = int(alloc[v])
        m = int(models[v])
        if a < 1 or a > P:
            bad(
                Violation(
                    "allotment",
                    f"allotment {a} outside [1, P={P}]",
                    v,
                )
            )
            continue
        if m != ExecutionModel.MALLEABLE and a != 1:
            bad(
                Violation(
                    "allotment",
                    f"non-malleable task allotted {a} processors",
                    v,
                )
            )
        elif m == ExecutionModel.MALLEABLE and reallot is False:
            # with re-allotment the engine grows stragglers against
            # their *remaining* work/span, which can legally exceed the
            # static cap — only constant-width records are checkable
            cap = max_useful_processors(float(work[v]), float(span[v]), m)
            if a > cap:
                bad(
                    Violation(
                        "allotment",
                        f"allotment {a} exceeds max useful {cap}",
                        v,
                    )
                )
        dur = float(finish[v] - start[v])
        if dur < -atol:
            bad(
                Violation(
                    "duration",
                    f"finishes (t={finish[v]:.6g}) before it starts "
                    f"(t={start[v]:.6g})",
                    v,
                )
            )
            continue
        dmin = _min_duration(m, float(work[v]), float(span[v]), a)
        if dur + atol < dmin:
            bad(
                Violation(
                    "duration",
                    f"ran for {dur:.6g} < modeled minimum {dmin:.6g}",
                    v,
                )
            )

    # ------------------------------------------------------------------
    # processor capacity (sweep line; zero-duration records occupy no
    # processor time and engine rounds may reuse a core within one
    # instant, so they are excluded)
    # ------------------------------------------------------------------
    events: list[tuple[float, int]] = []
    for v in np.flatnonzero(scheduled):
        v = int(v)
        if finish[v] <= start[v]:
            continue
        a = int(alloc[v])
        if int(models[v]) == ExecutionModel.MALLEABLE and reallot is not False:
            # the record stores the *final* allotment; the task held at
            # least one processor throughout
            a = 1
        events.append((float(start[v]), a))
        events.append((float(finish[v]), -a))
    events.sort(key=lambda e: (e[0], e[1]))
    busy = peak = 0
    peak_t = 0.0
    for t_, d in events:
        busy += d
        if busy > peak:
            peak, peak_t = busy, t_
    if peak > P:
        bad(
            Violation(
                "capacity",
                f"{peak} processors busy at t={peak_t:.6g} (P={P})",
            )
        )

    # ------------------------------------------------------------------
    # paper bounds (Lemma 3 / Lemma 5 / Theorem 9) + lower bounds
    # ------------------------------------------------------------------
    active = np.flatnonzero(executed)
    eff_work = np.where(
        models == ExecutionModel.UNIT, 1.0, work.astype(np.float64)
    )
    w = float(eff_work[active].sum())

    level_smax: dict[int, float] = {}
    cp_weight = np.zeros(n)
    for v in active:
        v = int(v)
        m = int(models[v])
        if m == ExecutionModel.UNIT:
            s_upper = s_lower = 1.0
        elif m == ExecutionModel.SEQUENTIAL:
            s_upper = s_lower = float(work[v])
        else:
            # re-allotment grows stragglers to their span cap; without
            # it (or when unknown) a width-1 allotment may run for work
            s_upper = float(span[v]) if reallot is True else float(work[v])
            s_lower = float(span[v])
        lvl = int(levels[v])
        if s_upper > level_smax.get(lvl, 0.0):
            level_smax[lvl] = s_upper
        cp_weight[v] = s_lower

    level_term = float(sum(level_smax.values()))
    work_lower = w / P
    upper = work_lower + level_term

    # critical path of minimum durations through executing nodes
    # (deactivated nodes relay precedence at zero cost)
    dist = cp_weight.copy()
    for u in topological_order(dag):
        u = int(u)
        for c in dag.out_neighbors(u):
            c = int(c)
            cand = dist[u] + cp_weight[c]
            if cand > dist[c]:
                dist[c] = cand
    critical_path = float(dist.max()) if n else 0.0

    report.bounds = {
        "work_lower": work_lower,
        "critical_path": critical_path,
        "level_term": level_term,
        "makespan_upper": upper,
    }

    tol = atol + 1e-9 * max(upper, 1.0)
    if result.execution_makespan > upper + tol:
        bad(
            Violation(
                "makespan-bound",
                f"execution makespan {result.execution_makespan:.6g} "
                f"exceeds w/P + Σ S_i = {upper:.6g} "
                f"(w/P={work_lower:.6g}, level term={level_term:.6g})",
            )
        )
    lower = max(work_lower, critical_path)
    if result.makespan + tol < lower:
        bad(
            Violation(
                "makespan-lower",
                f"makespan {result.makespan:.6g} beats the "
                f"max(w/P, critical path) lower bound {lower:.6g}",
            )
        )

    # ------------------------------------------------------------------
    # result self-consistency
    # ------------------------------------------------------------------
    n_records = len(result.schedule)
    if result.tasks_executed != n_records:
        bad(
            Violation(
                "result-consistency",
                f"tasks_executed={result.tasks_executed} but "
                f"{n_records} schedule records",
            )
        )
    last_finish = float(np.nanmax(finish)) if scheduled.any() else 0.0
    if last_finish > result.makespan + atol:
        bad(
            Violation(
                "result-consistency",
                f"a task finishes at t={last_finish:.6g} after the "
                f"reported makespan {result.makespan:.6g}",
            )
        )
    expected_work = float(work[executed].sum())
    if abs(result.total_work - expected_work) > atol * max(
        1.0, expected_work
    ) and not report.kinds() & {"missing-task", "spurious-execution"}:
        bad(
            Violation(
                "result-consistency",
                f"total_work={result.total_work:.6g} but the active set "
                f"carries {expected_work:.6g}",
            )
        )
    if result.utilization > 1.0 + 1e-9:
        bad(
            Violation(
                "result-consistency",
                f"utilization {result.utilization:.6g} > 1",
            )
        )
    return report
