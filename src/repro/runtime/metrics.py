"""Per-round structured metrics for the update-stream service.

Every maintenance round emits one :class:`RoundMetrics` record; the
:class:`MetricsLog` aggregates them into throughput (rounds/sec) and
latency percentiles and serializes the whole log as JSON — the shape
the benchmarks write to ``BENCH_runtime.json``.

Aggregation is backed by the :class:`~repro.obs.MetricsRegistry`'s
log-linear histograms (1% relative precision) instead of ad-hoc lists:
each appended round feeds the per-phase latency histograms
(``latency_s`` / ``compile_s`` / ``execute_s`` / ``verify_s`` /
``queue_wait_s``) and the task/batch counters, and the summary
percentiles read straight from them. The raw per-round records are
still kept for the JSON log.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import IO, Any

import numpy as np

from ..obs.metrics import MetricsRegistry

__all__ = ["RoundMetrics", "MetricsLog"]

#: RoundMetrics field → histogram name fed on append
_PHASE_HISTOGRAMS = (
    "latency_s",
    "compile_s",
    "execute_s",
    "verify_s",
    "queue_wait_s",
)


@dataclass
class RoundMetrics:
    """What one maintenance round cost and touched."""

    index: int
    trace_name: str
    scheduler: str
    workers: int
    #: update batches merged into this round's delta
    batches_coalesced: int
    #: queue depth observed at round start, before draining
    queue_depth: int
    n_nodes: int
    n_active: int
    tasks_executed: int
    #: net facts inserted + deleted across the materialization
    changed_facts: int
    #: wall-clock end-to-end round latency (compile + execute + verify);
    #: starts when the drain returns, so queue wait is *not* included —
    #: it is reported separately below
    latency_s: float
    compile_s: float
    execute_s: float
    verify_s: float
    #: busy-span of the recorded schedule (idle-compressed)
    makespan_s: float
    scheduler_ops: int
    precompute_ops: int
    utilization: float
    #: how long the round's *oldest* coalesced batch sat in the queue
    #: before the drain picked it up
    queue_wait_s: float = 0.0
    #: failed unit attempts re-dispatched under the executor's
    #: retry policy
    unit_retries: int = 0
    #: units that exhausted their retry budget (nonzero only on the
    #: metrics of an *aborted* round, which normally never reaches the
    #: log — kept for completeness and external consumers)
    quarantined_units: int = 0
    #: the round ran on the degraded serial fallback, not the
    #: concurrent fast path
    degraded: bool = False
    #: chaos injections observed during the round (0 without chaos)
    injected_faults: int = 0
    #: submitted insert/delete operations that cancelled against each
    #: other or the live EDB before compilation (weighted-delta
    #: coalescing) — work the round never had to do
    cancelled_ops: int = 0
    #: the round's effective delta was empty and the service skipped
    #: compile/execute/verify entirely
    noop: bool = False
    #: executor backend that ran the round: ``"thread"``,
    #: ``"process"``, or ``"serial"`` for degraded fallback rounds
    backend: str = "thread"
    #: total distinct constants interned by the service's pool at round
    #: end (0 under row storage)
    intern_table_size: int = 0
    #: columnar hash indexes built during this round (cold relations /
    #: new probe patterns; warm steady-state rounds build none). Under
    #: the process backend this counts coordinator-side work only —
    #: forked workers mutate their own copy of the pool's counters.
    columnar_builds: int = 0
    #: rows pushed through columnar index probes during this round
    #: (coordinator-side only under the process backend, see above)
    columnar_probes: int = 0

    def to_json_dict(self) -> dict[str, Any]:
        """Plain-dict form for JSON emission."""
        return asdict(self)


@dataclass
class MetricsLog:
    """Append-only log of round metrics plus summary statistics."""

    rounds: list[RoundMetrics] = field(default_factory=list)
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)

    def append(self, m: RoundMetrics) -> None:
        """Record one finished round (and feed the histograms)."""
        self.rounds.append(m)
        for name in _PHASE_HISTOGRAMS:
            self.registry.histogram(name).observe(getattr(m, name))
        self.registry.counter("tasks_executed").inc(m.tasks_executed)
        self.registry.counter("batches_coalesced").inc(m.batches_coalesced)
        if m.unit_retries:
            self.registry.counter("unit_retries").inc(m.unit_retries)
        if m.injected_faults:
            self.registry.counter("injected_faults").inc(m.injected_faults)
        if m.degraded:
            self.registry.counter("degraded_rounds").inc(1)
        if m.cancelled_ops:
            self.registry.counter("cancelled_ops").inc(m.cancelled_ops)
        if m.noop:
            self.registry.counter("noop_rounds").inc(1)

    # ------------------------------------------------------------------
    def latencies(self) -> np.ndarray:
        """Round latencies in seconds, in arrival order."""
        return np.array([m.latency_s for m in self.rounds], dtype=np.float64)

    def latency_percentiles(
        self, qs: tuple[float, ...] = (50.0, 99.0)
    ) -> dict[str, float]:
        """``{"p50": ..., "p99": ...}`` over round latencies.

        Read from the log-linear histogram: each value carries the
        registry's bounded relative error (1% by default) instead of
        being exact, in exchange for O(buckets) memory however long
        the service runs.
        """
        h = self.registry.histogram("latency_s")
        if h.count == 0:
            return {f"p{q:g}": 0.0 for q in qs}
        return {f"p{q:g}": h.percentile(q) for q in qs}

    def rounds_per_second(self) -> float:
        """Throughput over the summed round latencies."""
        h = self.registry.histogram("latency_s")
        return h.count / h.sum if h.sum > 0 else 0.0

    # ------------------------------------------------------------------
    def to_json_dict(self) -> dict[str, Any]:
        """Full log plus summary, ready for ``json.dump``."""
        return {
            "schema": 1,
            "n_rounds": len(self.rounds),
            "rounds_per_sec": self.rounds_per_second(),
            "latency": self.latency_percentiles((50.0, 90.0, 99.0)),
            "total_tasks_executed": int(
                self.registry.counter("tasks_executed").value
            ),
            "total_batches": int(
                self.registry.counter("batches_coalesced").value
            ),
            "histograms": {
                name: self.registry.histogram(name).to_json_dict()
                for name in _PHASE_HISTOGRAMS
            },
            "rounds": [m.to_json_dict() for m in self.rounds],
        }

    def dump(self, fh: IO[str]) -> None:
        """Write the JSON form to a file handle."""
        json.dump(self.to_json_dict(), fh, indent=2)
        fh.write("\n")

    def summary(self) -> str:
        """One-line human-readable summary."""
        pct = self.latency_percentiles((50.0, 99.0))
        return (
            f"{len(self.rounds)} rounds, "
            f"{self.rounds_per_second():.1f} rounds/s, "
            f"p50={pct['p50'] * 1e3:.2f}ms p99={pct['p99'] * 1e3:.2f}ms"
        )
