"""Per-round structured metrics for the update-stream service.

Every maintenance round emits one :class:`RoundMetrics` record; the
:class:`MetricsLog` aggregates them into throughput (rounds/sec) and
latency percentiles and serializes the whole log as JSON — the shape
the benchmarks write to ``BENCH_runtime.json``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import IO, Any

import numpy as np

__all__ = ["RoundMetrics", "MetricsLog"]


@dataclass
class RoundMetrics:
    """What one maintenance round cost and touched."""

    index: int
    trace_name: str
    scheduler: str
    workers: int
    #: update batches merged into this round's delta
    batches_coalesced: int
    #: queue depth observed at round start, before draining
    queue_depth: int
    n_nodes: int
    n_active: int
    tasks_executed: int
    #: net facts inserted + deleted across the materialization
    changed_facts: int
    #: wall-clock end-to-end round latency (compile + execute + verify)
    latency_s: float
    compile_s: float
    execute_s: float
    verify_s: float
    #: busy-span of the recorded schedule (idle-compressed)
    makespan_s: float
    scheduler_ops: int
    precompute_ops: int
    utilization: float

    def to_json_dict(self) -> dict[str, Any]:
        """Plain-dict form for JSON emission."""
        return asdict(self)


@dataclass
class MetricsLog:
    """Append-only log of round metrics plus summary statistics."""

    rounds: list[RoundMetrics] = field(default_factory=list)

    def append(self, m: RoundMetrics) -> None:
        """Record one finished round."""
        self.rounds.append(m)

    # ------------------------------------------------------------------
    def latencies(self) -> np.ndarray:
        """Round latencies in seconds, in arrival order."""
        return np.array([m.latency_s for m in self.rounds], dtype=np.float64)

    def latency_percentiles(
        self, qs: tuple[float, ...] = (50.0, 99.0)
    ) -> dict[str, float]:
        """``{"p50": ..., "p99": ...}`` over round latencies."""
        lat = self.latencies()
        if lat.size == 0:
            return {f"p{q:g}": 0.0 for q in qs}
        return {
            f"p{q:g}": float(np.percentile(lat, q)) for q in qs
        }

    def rounds_per_second(self) -> float:
        """Throughput over the summed round latencies."""
        lat = self.latencies()
        total = float(lat.sum())
        return len(self.rounds) / total if total > 0 else 0.0

    # ------------------------------------------------------------------
    def to_json_dict(self) -> dict[str, Any]:
        """Full log plus summary, ready for ``json.dump``."""
        return {
            "schema": 1,
            "n_rounds": len(self.rounds),
            "rounds_per_sec": self.rounds_per_second(),
            "latency": self.latency_percentiles((50.0, 90.0, 99.0)),
            "total_tasks_executed": int(
                sum(m.tasks_executed for m in self.rounds)
            ),
            "total_batches": int(
                sum(m.batches_coalesced for m in self.rounds)
            ),
            "rounds": [m.to_json_dict() for m in self.rounds],
        }

    def dump(self, fh: IO[str]) -> None:
        """Write the JSON form to a file handle."""
        json.dump(self.to_json_dict(), fh, indent=2)
        fh.write("\n")

    def summary(self) -> str:
        """One-line human-readable summary."""
        pct = self.latency_percentiles((50.0, 99.0))
        return (
            f"{len(self.rounds)} rounds, "
            f"{self.rounds_per_second():.1f} rounds/s, "
            f"p50={pct['p50'] * 1e3:.2f}ms p99={pct['p99'] * 1e3:.2f}ms"
        )
