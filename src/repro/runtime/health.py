"""Service health state machine and circuit breaker.

The update-stream service degrades gracefully instead of failing every
round once something is wrong with the fast path:

* **healthy** — normal operation: cached compile, concurrent executor.
* **degraded** — the circuit breaker opened after ``degrade_after``
  consecutive round failures. Rounds run on the serial reference
  oracle (:meth:`~repro.datalog.units.ExecutionPlan.execute_serial`)
  with the plan cache bypassed — slower, but immune to executor-level
  faults (worker kills, unit chaos, stale cached state). After
  ``probe_after`` consecutive degraded successes the next round is a
  *probe* on the fast path: success closes the breaker back to
  healthy, failure reopens it.
* **failed** — ``fail_after`` consecutive failures total: even the
  fallback cannot make progress. :meth:`HealthMonitor.plan_round`
  callers are expected to raise a typed error *before* draining the
  queue, so the queue stays intact and an operator (or test) can
  :meth:`~HealthMonitor.reset` and resume.

The monitor is plain bookkeeping — it never raises and never touches
the queue; the service interprets its verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..obs.trace import NULL_SINK, TraceSink

__all__ = [
    "HealthMonitor",
    "HealthPolicy",
    "HealthState",
    "ServiceUnavailableError",
]


class HealthState(Enum):
    """The service's circuit-breaker state."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    FAILED = "failed"


class ServiceUnavailableError(RuntimeError):
    """The service's circuit breaker is open in the ``failed`` state.

    Raised before a round drains anything, so the queue — including
    any re-queued failed delta — is intact; recover with
    ``service.health.reset()`` (after fixing the cause) and resume.
    """

    def __init__(self, consecutive_failures: int) -> None:
        super().__init__(
            "service is in the failed state after "
            f"{consecutive_failures} consecutive round failure(s); "
            "queue left intact — reset the health monitor to resume"
        )
        self.consecutive_failures = consecutive_failures


@dataclass(frozen=True)
class HealthPolicy:
    """Thresholds for the health state machine.

    Parameters
    ----------
    degrade_after:
        Consecutive round failures that open the breaker (healthy →
        degraded).
    fail_after:
        Consecutive round failures that give up entirely (→ failed).
        Must exceed ``degrade_after`` so degradation gets a chance.
    probe_after:
        Consecutive *degraded* successes before the service probes the
        fast path again.
    """

    degrade_after: int = 3
    fail_after: int = 6
    probe_after: int = 2

    def __post_init__(self) -> None:
        if self.degrade_after < 1:
            raise ValueError("degrade_after must be >= 1")
        if self.fail_after <= self.degrade_after:
            raise ValueError(
                "fail_after must exceed degrade_after "
                f"(got {self.fail_after} <= {self.degrade_after})"
            )
        if self.probe_after < 1:
            raise ValueError("probe_after must be >= 1")


@dataclass
class HealthMonitor:
    """Tracks round successes/failures and drives state transitions.

    ``transitions`` records every state change as ``(round_index,
    from_state, to_state, reason)`` for reports and tests; each is also
    emitted as a ``health:*`` trace instant when a sink is attached.
    """

    policy: HealthPolicy = field(default_factory=HealthPolicy)
    sink: TraceSink = NULL_SINK
    state: HealthState = HealthState.HEALTHY
    consecutive_failures: int = 0
    #: consecutive successful rounds served on the degraded fallback
    degraded_successes: int = 0
    #: the next fast-path round is a breaker probe
    probing: bool = False
    transitions: list[tuple[int, str, str, str]] = field(
        default_factory=list
    )

    # ------------------------------------------------------------------
    def _transition(
        self, round_index: int, to: HealthState, reason: str
    ) -> None:
        if to is self.state:
            return
        self.transitions.append(
            (round_index, self.state.value, to.value, reason)
        )
        if self.sink.enabled:
            self.sink.record_instant(
                f"health:{to.value}",
                args={
                    "round": round_index,
                    "from": self.state.value,
                    "reason": reason,
                },
            )
        self.state = to

    # ------------------------------------------------------------------
    def plan_round(self) -> bool:
        """Decide how the next round runs; True = degraded fallback.

        In the degraded state, once ``probe_after`` fallback rounds
        have succeeded in a row the next round runs on the fast path
        as a probe (returns False with :attr:`probing` set).
        """
        if self.state is not HealthState.DEGRADED:
            return False
        if self.degraded_successes >= self.policy.probe_after:
            self.probing = True
            return False
        return True

    def record_success(self, round_index: int, degraded: bool) -> None:
        """Note a verified round; probes that succeed close the breaker."""
        self.consecutive_failures = 0
        if self.state is HealthState.HEALTHY:
            return
        if degraded:
            self.degraded_successes += 1
            return
        # a successful fast-path round while degraded is the probe
        self.probing = False
        self.degraded_successes = 0
        self._transition(round_index, HealthState.HEALTHY, "probe-succeeded")

    def record_failure(self, round_index: int, error: str) -> None:
        """Note a failed round; open/trip the breaker at thresholds."""
        self.consecutive_failures += 1
        was_probe, self.probing = self.probing, False
        if was_probe:
            # the fast path is still broken: stay degraded, restart
            # the probe countdown
            self.degraded_successes = 0
        if self.consecutive_failures >= self.policy.fail_after:
            self._transition(
                round_index, HealthState.FAILED,
                f"{self.consecutive_failures} consecutive failures "
                f"({error})",
            )
            return
        if (
            self.state is HealthState.HEALTHY
            and self.consecutive_failures >= self.policy.degrade_after
        ):
            self.degraded_successes = 0
            self._transition(
                round_index, HealthState.DEGRADED,
                f"{self.consecutive_failures} consecutive failures "
                f"({error})",
            )

    def reset(self, round_index: int = -1) -> None:
        """Operator override: close the breaker and clear counters."""
        self.consecutive_failures = 0
        self.degraded_successes = 0
        self.probing = False
        self._transition(round_index, HealthState.HEALTHY, "manual-reset")
