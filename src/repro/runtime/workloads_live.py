"""Update-stream generators over the existing Datalog workloads.

A :class:`LiveWorkload` is a program plus an initial EDB plus a mutator
that fabricates *valid* update batches: insertions sample new facts
from the per-column value pools observed in the initial EDB (so joins
keep firing), deletions pick facts that are actually present (the
workload maintains a mirror of the EDB as batches are generated).
Everything is driven by a seeded generator — the same seed yields the
same stream, batch for batch.

Five stream shapes, per the paper's serving scenarios:

* ``steady`` — one modest batch per round (the drip-feed baseline);
* ``bursty`` — quiet rounds punctuated by multi-batch bursts (what the
  coalescing path exists for);
* ``hotkey`` — steady rate but heavily skewed toward one hot key, so
  the same downstream cone is re-maintained round after round;
* ``deletions`` — retraction-skewed batches (~80% deletions of
  present facts), the deletion-path stress the maintenance
  strategies differ on;
* ``mixed`` — real work interleaved with insert/retract churn pairs
  that exactly cancel under weighted coalescing, including whole
  rounds of pure churn (effective no-ops).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..datalog.ast import Program
from ..datalog.database import Database
from ..datalog.incremental import Delta
from ..workloads.datalog_workloads import DATALOG_WORKLOADS

__all__ = [
    "PROGRAM_ALIASES",
    "STREAM_KINDS",
    "LiveWorkload",
    "live_workload",
    "make_stream",
]

#: CLI-friendly aliases → canonical workload names
PROGRAM_ALIASES = {
    "tc": "transitive_closure",
    "sg": "same_generation",
    "retail": "retail_rollup",
    "analytics": "retail_analytics",
    "flat": "retail_flat",
    "pt": "points_to",
    **{name: name for name in DATALOG_WORKLOADS},
}

STREAM_KINDS = ("steady", "bursty", "hotkey", "deletions", "mixed")


@dataclass
class LiveWorkload:
    """A program, its EDB, and a fabricator of valid update batches."""

    name: str
    program: Program
    edb: Database
    rng: np.random.Generator
    #: live mirror of EDB facts, updated as batches are generated
    _mirror: dict[str, set[tuple]] = field(default_factory=dict)
    #: per-predicate, per-column value pools sampled for insertions
    _pools: dict[str, list[list]] = field(default_factory=dict)
    #: the skew target for ``hotkey`` streams: (predicate, column-0 key)
    hot_key: tuple[str, object] | None = None

    def __post_init__(self) -> None:
        idb = self.program.idb_predicates()
        for pred, rel in self.edb.relations.items():
            if pred in idb or len(rel) == 0:
                continue
            facts = set(rel)
            self._mirror[pred] = facts
            arity = len(next(iter(facts)))
            self._pools[pred] = [
                sorted({f[i] for f in facts}, key=repr)
                for i in range(arity)
            ]
        if self._mirror:
            pred = max(self._mirror, key=lambda p: len(self._mirror[p]))
            vals = [f[0] for f in self._mirror[pred]]
            self.hot_key = (pred, max(set(vals), key=vals.count))

    # ------------------------------------------------------------------
    def _sample_fact(self, pred: str, hot: bool) -> tuple:
        pools = self._pools[pred]
        fact = [
            pool[int(self.rng.integers(0, len(pool)))] for pool in pools
        ]
        if hot and self.hot_key is not None and pred == self.hot_key[0]:
            fact[0] = self.hot_key[1]
        return tuple(fact)

    def random_batch(
        self, size: int = 2, hot: bool = False, delete_frac: float = 0.3
    ) -> Delta:
        """One valid update batch of ``size`` operations.

        ``delete_frac`` of the ops (30% by default) are deletions of
        currently-present facts, the rest insertions; with ``hot`` the
        ops target the hot key's predicate and pin its first column.
        A deletion falls back to an insertion when its relation has
        emptied, so delete-heavy streams never starve.
        """
        delta = Delta()
        preds = sorted(self._mirror)
        if not preds:
            return delta
        weights = np.array(
            [len(self._mirror[p]) for p in preds], dtype=np.float64
        )
        weights /= weights.sum()
        for _ in range(size):
            if hot and self.hot_key is not None:
                pred = self.hot_key[0]
            else:
                pred = preds[int(self.rng.choice(len(preds), p=weights))]
            facts = self._mirror[pred]
            if self.rng.random() < delete_frac and facts:
                victim = sorted(facts, key=repr)[
                    int(self.rng.integers(0, len(facts)))
                ]
                delta.delete(pred, victim)
                facts.discard(victim)
            else:
                fact = self._sample_fact(pred, hot)
                for _retry in range(4):
                    if fact not in facts:
                        break
                    fact = self._sample_fact(pred, hot)
                delta.insert(pred, fact)
                facts.add(fact)
        return delta

    def churn_batches(self, size: int = 2) -> list[Delta]:
        """A pair of batches that exactly cancel under coalescing.

        The first inserts ``size`` fresh (absent) facts, the second
        deletes the same facts again. Merged into one round, every
        operation cancels — the effective weighted delta is empty —
        so the service can skip the corresponding compile and index
        work. The mirror is untouched (the pair is a net no-op).
        """
        ins, dels = Delta(), Delta()
        preds = sorted(self._pools)
        if not preds:
            return [ins, dels]
        for _ in range(size):
            pred = preds[int(self.rng.integers(0, len(preds)))]
            present = self._mirror.get(pred, set())
            fact = self._sample_fact(pred, False)
            for _retry in range(4):
                if fact not in present:
                    break
                fact = self._sample_fact(pred, False)
            if fact in present:
                # pool exhausted for this predicate — a present fact
                # would net to a real deletion, not a cancellation
                continue
            ins.insert(pred, fact)
            dels.delete(pred, fact)
        return [ins, dels]


def live_workload(
    name: str, seed: int = 0, **kwargs
) -> LiveWorkload:
    """Build a named workload (alias or canonical) for live streaming.

    The workload factory's built-in one-shot delta is discarded — live
    streams fabricate their own batches.
    """
    try:
        canonical = PROGRAM_ALIASES[name]
    except KeyError:
        raise KeyError(
            f"unknown live program {name!r}; "
            f"choose from {sorted(PROGRAM_ALIASES)}"
        ) from None
    program, edb, _delta = DATALOG_WORKLOADS[canonical](**kwargs)
    return LiveWorkload(
        name=canonical,
        program=program,
        edb=edb,
        rng=np.random.default_rng(seed),
    )


def make_stream(
    workload: LiveWorkload,
    kind: str,
    rounds: int,
    batch_size: int = 2,
    burst_every: int = 4,
    burst_batches: int = 5,
) -> Iterator[list[Delta]]:
    """Yield ``rounds`` lists of update batches (one list per round).

    ``steady`` yields one batch per round; ``bursty`` yields one small
    batch on quiet rounds and ``burst_batches`` batches every
    ``burst_every``-th round; ``hotkey`` is steady-rate but skewed to
    the workload's hot key; ``deletions`` is steady-rate but ~80%
    retractions; ``mixed`` pairs a real batch with cancelling
    insert/retract churn, and every third round is pure churn (an
    effective no-op round). Batches within a round are what the
    service coalesces.
    """
    if kind not in STREAM_KINDS:
        raise ValueError(
            f"unknown stream kind {kind!r}; choose from {STREAM_KINDS}"
        )
    for i in range(rounds):
        if kind == "steady":
            yield [workload.random_batch(batch_size)]
        elif kind == "hotkey":
            yield [workload.random_batch(batch_size, hot=True)]
        elif kind == "deletions":
            yield [workload.random_batch(batch_size, delete_frac=0.8)]
        elif kind == "mixed":
            if (i + 1) % 3 == 0:
                yield workload.churn_batches(batch_size)
            else:
                yield [
                    workload.random_batch(batch_size),
                    *workload.churn_batches(max(1, batch_size // 2)),
                ]
        else:  # bursty
            if (i + 1) % burst_every == 0:
                yield [
                    workload.random_batch(batch_size)
                    for _ in range(burst_batches)
                ]
            else:
                yield [workload.random_batch(1)]
