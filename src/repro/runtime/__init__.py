"""Real concurrent execution of Datalog maintenance rounds.

Everything below :mod:`repro.sim` is a discrete-event *model* of the
paper's system; this package is the system. A maintenance round is
compiled (:mod:`repro.datalog.compiler`), rebuilt as runnable units
(:mod:`repro.datalog.units`), and then driven by any registered
:class:`~repro.schedulers.base.Scheduler` over a thread pool — with
per-node output diffs, not precompiled flags, deciding activation.

* :mod:`~repro.runtime.executor` — the concurrent round executor.
* :mod:`~repro.runtime.procpool` — forked process lanes: the
  GIL-escaping ``"process"`` executor backend.
* :mod:`~repro.runtime.recorder` — wall-clock rounds as
  :class:`~repro.sim.result.SimulationResult` schedules, so
  :mod:`repro.verify` and :mod:`repro.sim.timeline` apply unchanged.
* :mod:`~repro.runtime.service` — the update-stream service: bounded
  queue, batch coalescing, one compile + execute + verify per round.
* :mod:`~repro.runtime.metrics` — per-round structured metrics (JSON).
* :mod:`~repro.runtime.workloads_live` — update-stream generators.
* :mod:`~repro.runtime.chaos` — deterministic fault injection for the
  live path (the runtime twin of :mod:`repro.sim.faults`).
* :mod:`~repro.runtime.health` — the service's degradation state
  machine and circuit breaker.
"""

from .chaos import (
    ChaosError,
    ChaosInjector,
    ChaosPlan,
    InjectedPhaseFault,
    InjectedUnitFault,
)
from .executor import (
    EXECUTOR_BACKENDS,
    LiveActivationState,
    RetryPolicy,
    RoundExecutor,
    RoundOutcome,
    UnitExecutionError,
    UnitFailure,
)
from .health import (
    HealthMonitor,
    HealthPolicy,
    HealthState,
    ServiceUnavailableError,
)
from .metrics import MetricsLog, RoundMetrics
from .procpool import ProcessLanes, process_backend_available
from .recorder import RoundArtifacts, record_round
from .service import (
    SHED_POLICIES,
    STORAGE_CHOICES,
    STRATEGY_CHOICES,
    BackpressureError,
    MaterializationDivergenceError,
    RoundReport,
    RoundVerificationError,
    UpdateStreamService,
)
from .workloads_live import (
    PROGRAM_ALIASES,
    STREAM_KINDS,
    LiveWorkload,
    live_workload,
    make_stream,
)

__all__ = [
    "EXECUTOR_BACKENDS",
    "LiveActivationState",
    "ProcessLanes",
    "process_backend_available",
    "RetryPolicy",
    "RoundExecutor",
    "RoundOutcome",
    "UnitExecutionError",
    "UnitFailure",
    "ChaosError",
    "ChaosInjector",
    "ChaosPlan",
    "InjectedPhaseFault",
    "InjectedUnitFault",
    "HealthMonitor",
    "HealthPolicy",
    "HealthState",
    "ServiceUnavailableError",
    "SHED_POLICIES",
    "STORAGE_CHOICES",
    "STRATEGY_CHOICES",
    "RoundArtifacts",
    "record_round",
    "BackpressureError",
    "MaterializationDivergenceError",
    "RoundReport",
    "RoundVerificationError",
    "UpdateStreamService",
    "MetricsLog",
    "RoundMetrics",
    "LiveWorkload",
    "live_workload",
    "make_stream",
    "PROGRAM_ALIASES",
    "STREAM_KINDS",
]
