"""Real concurrent execution of Datalog maintenance rounds.

Everything below :mod:`repro.sim` is a discrete-event *model* of the
paper's system; this package is the system. A maintenance round is
compiled (:mod:`repro.datalog.compiler`), rebuilt as runnable units
(:mod:`repro.datalog.units`), and then driven by any registered
:class:`~repro.schedulers.base.Scheduler` over a thread pool — with
per-node output diffs, not precompiled flags, deciding activation.

* :mod:`~repro.runtime.executor` — the concurrent round executor.
* :mod:`~repro.runtime.recorder` — wall-clock rounds as
  :class:`~repro.sim.result.SimulationResult` schedules, so
  :mod:`repro.verify` and :mod:`repro.sim.timeline` apply unchanged.
* :mod:`~repro.runtime.service` — the update-stream service: bounded
  queue, batch coalescing, one compile + execute + verify per round.
* :mod:`~repro.runtime.metrics` — per-round structured metrics (JSON).
* :mod:`~repro.runtime.workloads_live` — update-stream generators.
"""

from .executor import (
    LiveActivationState,
    RoundExecutor,
    RoundOutcome,
    UnitExecutionError,
)
from .metrics import MetricsLog, RoundMetrics
from .recorder import RoundArtifacts, record_round
from .service import (
    BackpressureError,
    MaterializationDivergenceError,
    RoundReport,
    RoundVerificationError,
    UpdateStreamService,
)
from .workloads_live import (
    PROGRAM_ALIASES,
    STREAM_KINDS,
    LiveWorkload,
    live_workload,
    make_stream,
)

__all__ = [
    "LiveActivationState",
    "RoundExecutor",
    "RoundOutcome",
    "UnitExecutionError",
    "RoundArtifacts",
    "record_round",
    "BackpressureError",
    "MaterializationDivergenceError",
    "RoundReport",
    "RoundVerificationError",
    "UpdateStreamService",
    "MetricsLog",
    "RoundMetrics",
    "LiveWorkload",
    "live_workload",
    "make_stream",
    "PROGRAM_ALIASES",
    "STREAM_KINDS",
]
