"""Deterministic chaos injection for the *live* runtime.

:mod:`repro.sim.faults` describes adversity for the discrete-event
simulator; this module adapts the same counter-based scheme to the real
concurrent path — :class:`~repro.runtime.executor.RoundExecutor` and
:class:`~repro.runtime.service.UpdateStreamService` — so the fault
semantics the sim chaos suite pinned can be exercised against actual
threads.

A :class:`ChaosPlan` is a seeded, JSON-serializable description of

* **unit failures** — a dispatched work-unit attempt raises
  :class:`InjectedUnitFault` instead of executing (plus a one-shot
  targeted list, ``fail_units``, for surgical tests);
* **unit latency** — an attempt sleeps a seeded uniform delay before
  executing, manufacturing stragglers for the executor's watchdog;
* **worker kills** — the lane thread running the attempt dies, and the
  executor's supervision must replace it and re-dispatch the unit;
* **phase failures** — the service's compile or verify phase raises
  :class:`InjectedPhaseFault` before doing any work.

Determinism is counter-based exactly as in the sim: every decision is
drawn from ``default_rng([seed, kind, round, node, attempt])`` and so
depends only on its coordinates, never on thread interleaving. The
:class:`ChaosInjector` records every injection as a
:class:`~repro.sim.faults.FaultEvent` (and as a ``chaos:*`` trace
instant when a sink is attached); :meth:`ChaosInjector.canonical`
strips the wall-clock timestamps and orders events by coordinates, so
two runs of the same plan compare bit-identically even though real
threads finish in nondeterministic order.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

from numpy.random import default_rng

from ..obs.trace import NULL_SINK, TraceSink
from ..sim.faults import FaultLog

__all__ = [
    "ChaosError",
    "ChaosInjector",
    "ChaosPlan",
    "InjectedPhaseFault",
    "InjectedUnitFault",
    "UnitChaos",
]

# rng sub-stream tags; disjoint from sim.faults' 1..4 so a ChaosPlan
# and a FaultPlan sharing a seed never share draws
_K_UNIT_FAIL = 11
_K_UNIT_LATENCY = 12
_K_WORKER_KILL = 13
_K_PHASE = 14

#: phase name → coordinate for the phase-failure sub-stream
_PHASE_CODES = {"compile": 1, "verify": 2}


class ChaosError(RuntimeError):
    """Base class for injected runtime faults."""


class InjectedUnitFault(ChaosError):
    """Chaos made this work-unit attempt fail."""

    def __init__(self, node: int, attempt: int) -> None:
        super().__init__(
            f"injected fault: unit {node} attempt {attempt} killed by chaos"
        )
        self.node = node
        self.attempt = attempt


class InjectedPhaseFault(ChaosError):
    """Chaos made a service phase (compile/verify) fail."""

    def __init__(self, phase: str, round_index: int) -> None:
        super().__init__(
            f"injected fault: {phase} phase of round {round_index} "
            "killed by chaos"
        )
        self.phase = phase
        self.round_index = round_index


@dataclass(frozen=True)
class UnitChaos:
    """The injector's decision for one work-unit attempt."""

    fail: bool = False
    latency_s: float = 0.0
    kill_worker: bool = False


@dataclass(frozen=True)
class ChaosPlan:
    """Seeded description of every live-runtime fault source.

    The default-constructed plan injects nothing: executing under
    ``ChaosPlan()`` must be byte-identical to executing with no chaos
    at all.

    Parameters
    ----------
    seed:
        Root of every rng sub-stream; equal plans produce equal
        decisions and (canonically) equal fault logs.
    unit_fail_prob:
        Per-attempt probability that a dispatched unit raises
        :class:`InjectedUnitFault` instead of executing.
    unit_latency_prob / unit_latency_s:
        Per-attempt probability of an injected pre-execution sleep, and
        the uniform ``(lo, hi)`` bounds of its duration in seconds —
        the live analog of the sim's stragglers.
    worker_kill_prob / max_kills_per_unit:
        Per-attempt probability that the lane thread running the unit
        dies before executing it. Kills are capped per node (stateful
        in the injector) so supervision always wins eventually even at
        ``worker_kill_prob=1``.
    compile_fail_prob / verify_fail_prob:
        Per-round probability that the service's compile / verify
        phase raises :class:`InjectedPhaseFault` before doing any work.
    fail_units:
        Targeted one-shot injection: each listed node's *first*
        matching dispatch raises, once, on the round selected by
        ``fail_round``. Surgical tool for the plan-cache rollback
        matrix.
    fail_round:
        The injector round epoch (see :meth:`ChaosInjector.begin_round`)
        on which ``fail_units`` fire; other rounds ignore the list.
    """

    seed: int = 0
    unit_fail_prob: float = 0.0
    unit_latency_prob: float = 0.0
    unit_latency_s: tuple[float, float] = (0.001, 0.005)
    worker_kill_prob: float = 0.0
    max_kills_per_unit: int = 2
    compile_fail_prob: float = 0.0
    verify_fail_prob: float = 0.0
    fail_units: tuple[int, ...] = ()
    fail_round: int = 0

    def __post_init__(self) -> None:
        for name in (
            "unit_fail_prob",
            "unit_latency_prob",
            "worker_kill_prob",
            "compile_fail_prob",
            "verify_fail_prob",
        ):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        lo, hi = self.unit_latency_s
        if lo < 0.0 or lo > hi:
            raise ValueError(
                "unit_latency_s must be an ordered non-negative (lo, hi) pair"
            )
        object.__setattr__(self, "unit_latency_s", (float(lo), float(hi)))
        if self.max_kills_per_unit < 0:
            raise ValueError("max_kills_per_unit must be >= 0")
        if self.fail_round < 0:
            raise ValueError("fail_round must be >= 0")
        object.__setattr__(
            self, "fail_units", tuple(int(n) for n in self.fail_units)
        )

    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        """True when the plan injects no fault of any kind."""
        return (
            self.unit_fail_prob == 0.0
            and self.unit_latency_prob == 0.0
            and self.worker_kill_prob == 0.0
            and self.compile_fail_prob == 0.0
            and self.verify_fail_prob == 0.0
            and not self.fail_units
        )

    @classmethod
    def from_seed(cls, seed: int) -> "ChaosPlan":
        """The default adversarial mix ``repro serve --chaos-seed`` uses:
        a moderate blend of every fault source."""
        return cls(
            seed=seed,
            unit_fail_prob=0.15,
            unit_latency_prob=0.10,
            unit_latency_s=(0.0005, 0.003),
            worker_kill_prob=0.05,
            compile_fail_prob=0.03,
            verify_fail_prob=0.03,
        )

    @classmethod
    def from_fault_plan(
        cls, plan: Any, latency_scale_s: float = 0.002
    ) -> "ChaosPlan":
        """Adapt a sim :class:`~repro.sim.faults.FaultPlan`.

        ``task_fail_prob`` → unit failures, ``straggler_prob`` →
        injected latency (sim-time inflation factors become wall-clock
        sleeps scaled by ``latency_scale_s``), ``proc_fail_rate > 0`` →
        worker kills. Retry budgets/backoff stay on the executor's
        ``RetryPolicy``, mirroring how the sim keeps them on the plan.
        """
        lo, hi = plan.straggler_factor
        return cls(
            seed=plan.seed,
            unit_fail_prob=plan.task_fail_prob,
            unit_latency_prob=plan.straggler_prob,
            unit_latency_s=(latency_scale_s * lo, latency_scale_s * hi),
            worker_kill_prob=min(1.0, plan.proc_fail_rate),
        )

    # ------------------------------------------------------------------
    def to_json_dict(self) -> dict[str, Any]:
        """Plain-dict form for ``repro serve --chaos-spec spec.json``."""
        return {
            "seed": self.seed,
            "unit_fail_prob": self.unit_fail_prob,
            "unit_latency_prob": self.unit_latency_prob,
            "unit_latency_s": list(self.unit_latency_s),
            "worker_kill_prob": self.worker_kill_prob,
            "max_kills_per_unit": self.max_kills_per_unit,
            "compile_fail_prob": self.compile_fail_prob,
            "verify_fail_prob": self.verify_fail_prob,
            "fail_units": list(self.fail_units),
            "fail_round": self.fail_round,
        }

    @classmethod
    def from_json_dict(cls, d: dict[str, Any]) -> "ChaosPlan":
        """Build a plan from :meth:`to_json_dict` output (extras
        rejected)."""
        known = set(cls.__dataclass_fields__)
        extra = set(d) - known
        if extra:
            raise ValueError(f"unknown ChaosPlan field(s): {sorted(extra)}")
        kwargs = dict(d)
        if "unit_latency_s" in kwargs:
            kwargs["unit_latency_s"] = tuple(kwargs["unit_latency_s"])
        if "fail_units" in kwargs:
            kwargs["fail_units"] = tuple(kwargs["fail_units"])
        return cls(**kwargs)


class ChaosInjector:
    """Draws per-attempt decisions and records what was injected.

    Decisions are pure functions of ``(seed, kind, round, node,
    attempt)``; the only stateful pieces are the per-node kill cap and
    the one-shot ``fail_units`` latch, both of which evolve
    deterministically given a deterministic dispatch history. The
    injector is shared across rounds (the service advances the round
    epoch via :meth:`begin_round`) and is thread-safe: worker lanes
    call :meth:`unit_outcome` concurrently.
    """

    def __init__(
        self, plan: ChaosPlan, sink: TraceSink = NULL_SINK
    ) -> None:
        self.plan = plan
        self.sink = sink
        self.log = FaultLog()
        #: injections performed (excludes bookkeeping notes)
        self.injected_total = 0
        self._round = 0
        self._origin: float | None = None
        self._kills: dict[int, int] = {}
        self._fired_targets: set[int] = set()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def begin_round(self, epoch: int) -> None:
        """Advance the round coordinate (one epoch per maintain call)."""
        self._round = epoch

    @property
    def round_epoch(self) -> int:
        return self._round

    # ------------------------------------------------------------------
    def _record(
        self, kind: str, node: int, attempt: int, *, injected: bool,
        **data: float,
    ) -> None:
        with self._lock:
            self.log.record(
                kind, 0.0, node, attempt, round=float(self._round), **data
            )
            if injected:
                self.injected_total += 1
        if self.sink.enabled:
            prefix = "chaos" if injected else "chaos-note"
            self.sink.record_instant(
                f"{prefix}:{kind}",
                args={
                    "node": node,
                    "attempt": attempt,
                    "round": self._round,
                    **data,
                },
            )

    # ------------------------------------------------------------------
    def unit_outcome(self, node: int, attempt: int) -> UnitChaos:
        """Decide what happens to one dispatched unit attempt.

        Called from worker lanes (thread-safe). Kill decisions take
        precedence — a killed lane never reaches the unit — then
        injected failure, then injected latency.
        """
        plan = self.plan
        if plan.worker_kill_prob > 0.0:
            rng = default_rng(
                [plan.seed, _K_WORKER_KILL, self._round, node, attempt]
            )
            if rng.random() < plan.worker_kill_prob:
                with self._lock:
                    kills = self._kills.get(node, 0)
                    capped = kills >= plan.max_kills_per_unit
                    if not capped:
                        self._kills[node] = kills + 1
                if not capped:
                    self._record(
                        "worker-kill", node, attempt, injected=True
                    )
                    return UnitChaos(kill_worker=True)
        fail = False
        if (
            plan.fail_units
            and self._round == plan.fail_round
            and node in plan.fail_units
        ):
            with self._lock:
                fail = node not in self._fired_targets
                if fail:
                    self._fired_targets.add(node)
        if not fail and plan.unit_fail_prob > 0.0:
            rng = default_rng(
                [plan.seed, _K_UNIT_FAIL, self._round, node, attempt]
            )
            fail = bool(rng.random() < plan.unit_fail_prob)
        if fail:
            self._record("unit-fail", node, attempt, injected=True)
            return UnitChaos(fail=True)
        if plan.unit_latency_prob > 0.0:
            rng = default_rng(
                [plan.seed, _K_UNIT_LATENCY, self._round, node, attempt]
            )
            if rng.random() < plan.unit_latency_prob:
                lo, hi = plan.unit_latency_s
                latency = float(lo + (hi - lo) * rng.random())
                self._record(
                    "unit-latency", node, attempt,
                    injected=True, latency=latency,
                )
                return UnitChaos(latency_s=latency)
        return UnitChaos()

    def phase_fails(self, phase: str) -> bool:
        """Decide whether a service phase fails this round."""
        prob = {
            "compile": self.plan.compile_fail_prob,
            "verify": self.plan.verify_fail_prob,
        }[phase]
        if prob <= 0.0:
            return False
        rng = default_rng(
            [self.plan.seed, _K_PHASE, _PHASE_CODES[phase], self._round]
        )
        if rng.random() < prob:
            self._record(
                "phase-fail", -1, 0, injected=True,
                phase=float(_PHASE_CODES[phase]),
            )
            return True
        return False

    # ------------------------------------------------------------------
    # executor-side bookkeeping notes (recorded, not counted as
    # injections)
    def note_retry(self, node: int, attempt: int, backoff_s: float) -> None:
        """Record that the executor scheduled a unit retry."""
        self._record(
            "unit-retry", node, attempt, injected=False, backoff=backoff_s
        )

    def note_quarantine(self, node: int, attempts: int) -> None:
        """Record that a unit exhausted its retry budget."""
        self._record(
            "quarantine", node, attempts, injected=False
        )

    # ------------------------------------------------------------------
    def canonical(self) -> list[dict[str, Any]]:
        """Interleaving-independent form of the fault log.

        Wall-clock timestamps are dropped and events are ordered by
        their coordinates ``(round, kind, node, attempt)``; every
        retained field is a pure function of the plan and the dispatch
        history, so replaying the same seed compares bit-identically.
        """
        with self._lock:
            events = list(self.log.events)
        rows = [
            {
                "kind": e.kind,
                "node": e.node,
                "attempt": e.attempt,
                "data": {
                    k: v for k, v in sorted(e.data.items())
                },
            }
            for e in events
        ]
        rows.sort(
            key=lambda r: (
                r["data"].get("round", 0.0),
                r["kind"],
                r["node"],
                r["attempt"],
            )
        )
        return rows

    def summary(self) -> str:
        """One-line ``kind=count`` rollup (delegates to the log)."""
        return self.log.summary()
