"""The update-stream service: queued fact updates → maintenance rounds.

Producers :meth:`~UpdateStreamService.submit` :class:`Delta` batches
onto a bounded queue; the service thread (whoever calls
:meth:`~UpdateStreamService.run_round`) drains *everything* queued at
that moment, merges it into one net delta (later operations win, so the
merged round is equivalent to applying the batches in order), compiles
the activation set for the current accumulated EDB, executes it
concurrently under the configured scheduler, records the round as a
simulator-compatible schedule, and verifies it:

* every recorded round passes the strict invariant checker
  (:func:`repro.verify.check_invariants`) over its measured timeline;
* the materialization assembled from the executed units is compared —
  byte for byte — against a from-scratch semi-naive evaluation of the
  accumulated database (the compiler's ``db_new``).

Backpressure is the bounded queue: when it is full, non-blocking
submits raise :class:`BackpressureError` and blocking submits wait,
slowing producers to the service's round rate.

One scheduler *instance* serves every round — ``reset_counters`` (which
also clears the bound readiness oracle's pending events) is the
between-rounds reset, exercised here exactly as the scheduler ABC
promises.
"""

from __future__ import annotations

import queue
from dataclasses import dataclass
from time import perf_counter
from typing import Callable

from ..datalog.ast import Program
from ..datalog.compiler import CompiledUpdate, compile_update
from ..datalog.database import Database
from ..datalog.incremental import Delta, merge_deltas
from ..datalog.units import build_execution_plan
from ..schedulers.base import Scheduler
from ..verify.invariants import VerificationReport
from .executor import RoundExecutor
from .metrics import MetricsLog, RoundMetrics
from .recorder import RoundArtifacts, record_round

__all__ = [
    "BackpressureError",
    "MaterializationDivergenceError",
    "RoundReport",
    "UpdateStreamService",
]


class BackpressureError(RuntimeError):
    """The update queue is full and the submit was non-blocking."""


class MaterializationDivergenceError(RuntimeError):
    """A round's output differs from from-scratch evaluation."""

    def __init__(self, round_index: int, detail: str) -> None:
        super().__init__(
            f"round {round_index}: runtime materialization diverges from "
            f"from-scratch semi-naive evaluation ({detail})"
        )
        self.round_index = round_index


@dataclass
class RoundReport:
    """Everything one service round produced."""

    index: int
    #: the net delta the round maintained (batches merged)
    delta: Delta
    compiled: CompiledUpdate
    artifacts: RoundArtifacts
    verification: VerificationReport | None
    metrics: RoundMetrics
    #: did the runtime materialization match from-scratch evaluation?
    materialization_ok: bool = True


def _facts_delta(old: Database, new: Database) -> int:
    """Net facts inserted plus deleted between two materializations."""
    od, nd = old.as_dict(), new.as_dict()
    total = 0
    for pred in od.keys() | nd.keys():
        a = od.get(pred, frozenset())
        b = nd.get(pred, frozenset())
        total += len(a ^ b)
    return total


class UpdateStreamService:
    """Drives real incremental maintenance over a stream of updates.

    Parameters
    ----------
    program, edb:
        The Datalog program and its initial EDB. The service owns a
        private copy of the EDB and accumulates every maintained delta
        into it.
    scheduler:
        The one scheduler instance reused across all rounds.
    workers:
        Thread-pool width per round.
    capacity:
        Bound of the update queue (backpressure threshold).
    verify:
        Run the strict invariant checker on every recorded round and
        compare the materialization against from-scratch evaluation.
    strict:
        Raise (:class:`AssertionError` from the checker /
        :class:`MaterializationDivergenceError`) on verification
        failure instead of recording it in the report.
    deadline_s:
        Optional per-round wall-clock deadline handed to the executor.
    """

    def __init__(
        self,
        program: Program,
        edb: Database,
        scheduler: Scheduler,
        workers: int = 4,
        capacity: int = 64,
        verify: bool = True,
        strict: bool = True,
        deadline_s: float | None = None,
        work_per_derivation: float = 1e-3,
        name: str = "live",
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.program = program
        self.scheduler = scheduler
        self.workers = workers
        self.verify = verify
        self.strict = strict
        self.deadline_s = deadline_s
        self.work_per_derivation = work_per_derivation
        self.name = name
        self.metrics = MetricsLog()
        self._edb = edb.copy()
        self._queue: queue.Queue[Delta] = queue.Queue(maxsize=capacity)
        self._rounds_run = 0
        self._materialization: Database | None = None

    # ------------------------------------------------------------------
    # producer side
    def submit(
        self,
        delta: Delta,
        block: bool = True,
        timeout: float | None = None,
    ) -> None:
        """Enqueue one update batch; the bounded queue is backpressure."""
        try:
            self._queue.put(delta, block=block, timeout=timeout)
        except queue.Full:
            raise BackpressureError(
                f"update queue full ({self._queue.maxsize} batches) — "
                "the service is not keeping up"
            ) from None

    def pending_batches(self) -> int:
        """Approximate number of queued, not-yet-maintained batches."""
        return self._queue.qsize()

    # ------------------------------------------------------------------
    # service side
    def database(self) -> Database:
        """Copy of the accumulated EDB (all maintained batches applied)."""
        return self._edb.copy()

    def materialization(self) -> Database | None:
        """The last round's full materialization (``None`` before any)."""
        return self._materialization

    def _drain(self, block: bool, timeout: float | None) -> list[Delta]:
        """Pop everything queued right now (first pop may block)."""
        batches: list[Delta] = []
        try:
            batches.append(self._queue.get(block=block, timeout=timeout))
        except queue.Empty:
            return batches
        while True:
            try:
                batches.append(self._queue.get_nowait())
            except queue.Empty:
                return batches

    def run_round(
        self, block: bool = False, timeout: float | None = None
    ) -> RoundReport | None:
        """Maintain everything queued right now as one round.

        Returns ``None`` when the queue is empty (after blocking up to
        ``timeout`` if requested). Batches that arrive while a round is
        in flight wait for — and are coalesced into — the next round.
        """
        depth = self._queue.qsize()
        batches = self._drain(block, timeout)
        if not batches:
            return None
        t_round = perf_counter()
        delta = merge_deltas(batches)

        t0 = perf_counter()
        cu = compile_update(
            self.program,
            self._edb,
            delta,
            work_per_derivation=self.work_per_derivation,
            name=f"{self.name}:r{self._rounds_run}",
        )
        plan = build_execution_plan(cu)
        compile_s = perf_counter() - t0

        t0 = perf_counter()
        outcome = RoundExecutor(
            plan,
            self.scheduler,
            workers=self.workers,
            deadline=self.deadline_s,
        ).run()
        execute_s = perf_counter() - t0

        t0 = perf_counter()
        artifacts = record_round(outcome, cu.trace)
        report: VerificationReport | None = None
        mat_ok = True
        if self.verify:
            report = artifacts.check()
            if self.strict and not report.ok:
                raise AssertionError(
                    f"round {self._rounds_run} failed invariants:\n"
                    + "\n".join(v.format() for v in report.violations)
                )
            mat = plan.materialization(outcome.values)
            mat_ok = mat.as_dict() == cu.db_new.as_dict()
            if not mat_ok and self.strict:
                raise MaterializationDivergenceError(
                    self._rounds_run,
                    f"{_facts_delta(mat, cu.db_new)} facts differ",
                )
        verify_s = perf_counter() - t0

        self._edb = cu.edb_new
        self._materialization = cu.db_new
        for _ in batches:
            self._queue.task_done()

        metrics = RoundMetrics(
            index=self._rounds_run,
            trace_name=cu.trace.name,
            scheduler=self.scheduler.name,
            workers=self.workers,
            batches_coalesced=len(batches),
            queue_depth=depth,
            n_nodes=cu.trace.dag.n_nodes,
            n_active=cu.trace.n_active,
            tasks_executed=len(outcome.records),
            changed_facts=_facts_delta(cu.db_old, cu.db_new),
            latency_s=perf_counter() - t_round,
            compile_s=compile_s,
            execute_s=execute_s,
            verify_s=verify_s,
            makespan_s=artifacts.result.makespan,
            scheduler_ops=outcome.scheduler_ops,
            precompute_ops=outcome.precompute_ops,
            utilization=artifacts.result.utilization,
        )
        self.metrics.append(metrics)
        self._rounds_run += 1
        return RoundReport(
            index=metrics.index,
            delta=delta,
            compiled=cu,
            artifacts=artifacts,
            verification=report,
            metrics=metrics,
            materialization_ok=mat_ok,
        )

    def run(
        self,
        rounds: int,
        timeout: float | None = None,
        on_round: Callable[[RoundReport], None] | None = None,
    ) -> list[RoundReport]:
        """Run up to ``rounds`` rounds, blocking for updates.

        Stops early if ``timeout`` (per blocking wait) expires with an
        empty queue.
        """
        reports: list[RoundReport] = []
        for _ in range(rounds):
            rep = self.run_round(block=True, timeout=timeout)
            if rep is None:
                break
            reports.append(rep)
            if on_round is not None:
                on_round(rep)
        return reports
