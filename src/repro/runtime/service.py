"""The update-stream service: queued fact updates → maintenance rounds.

Producers :meth:`~UpdateStreamService.submit` :class:`Delta` batches
onto a bounded queue; the service thread (whoever calls
:meth:`~UpdateStreamService.run_round`) drains *everything* queued at
that moment, merges it into one net delta (later operations win, so the
merged round is equivalent to applying the batches in order), compiles
the activation set for the current accumulated EDB, executes it
concurrently under the configured scheduler, records the round as a
simulator-compatible schedule, and verifies it:

* every recorded round passes the strict invariant checker
  (:func:`repro.verify.check_invariants`) over its measured timeline;
* the materialization assembled from the executed units is compared —
  byte for byte — against a from-scratch semi-naive evaluation of the
  accumulated database (the compiler's ``db_new``).

Backpressure is the bounded queue: when it is full, non-blocking
submits raise :class:`BackpressureError` and blocking submits wait,
slowing producers to the service's round rate.

Failed-round policy
-------------------
A round can fail mid-flight — an executor deadline, a work unit
raising, a strict verification failure
(:class:`RoundVerificationError` / :class:`MaterializationDivergenceError`).
Failure must never corrupt the queue or lose updates, so
:meth:`~UpdateStreamService.run_round` guarantees:

* ``task_done()`` is called for every drained batch whether the round
  succeeds or not (``try/finally``), so producers blocked in
  ``Queue.join()`` always wake;
* the round's merged delta is **re-queued at the front** — it merges
  ahead of newer batches into the next round — for up to
  ``max_round_retries`` consecutive failures;
* when the retry budget is exhausted the delta is dropped from the
  service but surfaced to the caller on the raised exception
  (``exc.failed_delta``; ``exc.delta_requeued`` says which path was
  taken), so callers can recover or re-submit;
* the EDB is only advanced *after* verification, so a failed round
  leaves ``database()`` exactly where the last successful round left
  it — producers' live-EDB mirrors stay consistent.

Tracing
-------
Pass a recording :class:`~repro.obs.TraceSink` as ``sink`` and every
round emits nested spans — ``queue_wait`` / ``drain`` / ``merge``,
then a ``round`` span containing ``compile`` / ``plan-build`` /
``execute`` (itself containing the executor's per-unit worker spans
and scheduler decision counters) / ``verify`` — which the Chrome
exporter renders as one timeline. With the default
:data:`~repro.obs.NULL_SINK` all instrumentation is no-op.

One scheduler *instance* serves every round — ``reset_counters`` (which
also clears the bound readiness oracle's pending events) is the
between-rounds reset, exercised here exactly as the scheduler ABC
promises.
"""

from __future__ import annotations

import queue
from collections import deque
from dataclasses import dataclass
from time import perf_counter
from typing import Callable

from ..datalog.ast import Program
from ..datalog.bf import MAINTENANCE_STRATEGIES, make_engine
from ..datalog.columnar import InternPool
from ..datalog.compiler import CompiledUpdate, compile_update
from ..datalog.database import Database
from ..datalog.incremental import Delta, IncrementalEngine, merge_deltas
from ..datalog.plancache import CompiledProgramCache
from ..datalog.zset import effective_zdelta
from ..datalog.units import build_execution_plan
from ..obs import NULL_SINK, TraceSink
from ..obs.metrics import MetricsRegistry
from ..schedulers.base import Scheduler
from ..verify.invariants import VerificationReport
from ..verify.program import ProgramAnalysis, analyze_program
from .chaos import ChaosInjector, ChaosPlan, InjectedPhaseFault
from .executor import (
    EXECUTOR_BACKENDS,
    RetryPolicy,
    RoundExecutor,
    UnitExecutionError,
)
from .health import (
    HealthMonitor,
    HealthPolicy,
    HealthState,
    ServiceUnavailableError,
)
from .metrics import MetricsLog, RoundMetrics
from .recorder import RoundArtifacts, record_round

__all__ = [
    "BackpressureError",
    "MaterializationDivergenceError",
    "RoundReport",
    "RoundVerificationError",
    "ServiceUnavailableError",
    "UpdateStreamService",
    "SHED_POLICIES",
    "STORAGE_CHOICES",
    "STRATEGY_CHOICES",
]

#: load-shedding behavior when backpressure and degradation coincide
SHED_POLICIES = ("reject", "drop-oldest", "coalesce-harder")

#: relation-storage layouts for the evaluation hot path
STORAGE_CHOICES = ("row", "columnar")

#: maintenance strategies the service's shadow oracle accepts
STRATEGY_CHOICES = tuple(sorted(MAINTENANCE_STRATEGIES)) + ("counting",)


class BackpressureError(RuntimeError):
    """The update queue is full (and stayed full past any timeout).

    Carries the queue state at raise time so producers can decide what
    to do: ``pending_batches`` (queued batches plus any re-queued
    failed delta) and ``capacity`` (the configured queue bound).
    """

    def __init__(
        self, message: str, pending_batches: int = 0, capacity: int = 0
    ) -> None:
        super().__init__(message)
        self.pending_batches = pending_batches
        self.capacity = capacity


class MaterializationDivergenceError(RuntimeError):
    """A round's output differs from from-scratch evaluation."""

    def __init__(self, round_index: int, detail: str) -> None:
        super().__init__(
            f"round {round_index}: runtime materialization diverges from "
            f"from-scratch semi-naive evaluation ({detail})"
        )
        self.round_index = round_index


class RoundVerificationError(AssertionError):
    """Strict mode: a recorded round failed the invariant checker.

    Carries the failing :class:`~repro.verify.VerificationReport` so
    callers can catch by type and inspect the violations — the typed
    replacement for the bare ``AssertionError`` this path used to
    raise (subclassing it keeps old ``except AssertionError`` callers
    working).
    """

    def __init__(self, round_index: int, report: VerificationReport) -> None:
        super().__init__(
            f"round {round_index} failed invariants:\n"
            + "\n".join(v.format() for v in report.violations)
        )
        self.round_index = round_index
        self.report = report


@dataclass
class RoundReport:
    """Everything one service round produced."""

    index: int
    #: the net delta the round maintained (batches merged)
    delta: Delta
    #: ``None`` for no-op rounds — an effectively empty delta skips
    #: compilation entirely
    compiled: CompiledUpdate | None
    #: ``None`` for degraded rounds — the serial fallback produces no
    #: concurrent schedule to record
    artifacts: RoundArtifacts | None
    verification: VerificationReport | None
    metrics: RoundMetrics
    #: did the runtime materialization match from-scratch evaluation?
    materialization_ok: bool = True


def _facts_delta(old: Database, new: Database) -> int:
    """Net facts inserted plus deleted between two materializations."""
    od, nd = old.as_dict(), new.as_dict()
    total = 0
    for pred in od.keys() | nd.keys():
        a = od.get(pred, frozenset())
        b = nd.get(pred, frozenset())
        total += len(a ^ b)
    return total


class UpdateStreamService:
    """Drives real incremental maintenance over a stream of updates.

    Parameters
    ----------
    program, edb:
        The Datalog program and its initial EDB. The service owns a
        private copy of the EDB and accumulates every maintained delta
        into it.
    scheduler:
        The one scheduler instance reused across all rounds.
    workers:
        Worker-pool width per round (lanes of the chosen executor
        backend).
    executor:
        Executor backend for the concurrent fast path: ``"thread"``
        (default) runs units on shared-memory worker threads,
        ``"process"`` forks worker processes per round so CPU-bound
        joins escape the GIL (diff-serialized hand-off, identical
        supervision/retry/chaos semantics — see
        :mod:`repro.runtime.procpool`). Degraded fallback rounds are
        always serial regardless of backend.
    storage:
        Relation-storage layout of the evaluation hot path:
        ``"columnar"`` (default) interns constants into integer ids and
        runs the vectorized batch joins of
        :mod:`repro.datalog.columnar`; ``"row"`` keeps the historical
        per-tuple dict-substitution joins. Materializations are
        byte-identical either way (the differential suite pins this).
    capacity:
        Bound of the update queue (backpressure threshold).
    verify:
        Run the strict invariant checker on every recorded round and
        compare the materialization against from-scratch evaluation.
    strict:
        Raise (:class:`RoundVerificationError` /
        :class:`MaterializationDivergenceError`) on verification
        failure instead of recording it in the report.
    deadline_s:
        Optional per-round wall-clock deadline handed to the executor.
    max_round_retries:
        How many consecutive failed rounds re-queue their merged delta
        at the front before it is dropped (and surfaced on the raised
        exception). See the module docstring's failed-round policy.
    sink:
        Trace sink for per-round spans; the default no-op sink makes
        every instrumentation point free.
    plan_cache:
        Reuse compilation work across rounds through a
        :class:`~repro.datalog.plancache.CompiledProgramCache`: the
        previous round's verified materialization is this round's old
        side, the bound execution plan is patched instead of rebuilt,
        and join-input relations keep their hash indexes. Identical
        outputs either way (the differential suite pins this); ``False``
        restores cold compilation per round. The cache is committed
        only after verification succeeds and rolled back on a failed
        round, so retries never see state staged by the failure.
    obs_metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` receiving
        the cache's ``plancache.*`` hit/miss/invalidation counters.
    unit_retries / unit_backoff_s / unit_timeout_s:
        Executor fault tolerance: retry budget per work unit (0 keeps
        the historical fail-fast round), base of the capped exponential
        backoff between attempts, and the soft per-unit straggler
        watchdog.
    chaos:
        Optional :class:`~repro.runtime.chaos.ChaosPlan`; when set (and
        non-empty) a shared :class:`~repro.runtime.chaos.ChaosInjector`
        is threaded through every round's compile/execute/verify. The
        injector is exposed as :attr:`chaos` for inspection.
    health:
        Thresholds of the degradation state machine
        (:class:`~repro.runtime.health.HealthPolicy`); the live monitor
        is exposed as :attr:`health`. Repeated round failures open the
        circuit breaker: rounds fall back to the serial reference
        oracle with the plan cache bypassed, then probe back.
    shed_policy:
        What :meth:`submit` does when the queue is full *while the
        service is degraded*: ``"reject"`` raises
        :class:`BackpressureError` immediately (even for blocking
        submits), ``"drop-oldest"`` evicts the oldest queued batch,
        ``"coalesce-harder"`` merges the entire queue plus the new
        batch into one slot. While healthy, submits behave normally.
    maintenance:
        Optional maintenance-strategy shadow oracle, one of
        :data:`STRATEGY_CHOICES` (``"dred"``, ``"bf"``,
        ``"counting"``). When set, the service keeps a
        :func:`~repro.datalog.bf.make_engine` engine alongside the
        scheduled runtime: each verified round's effective delta is
        replayed through the engine and its snapshot compared against
        the round's from-scratch materialization. A divergence is a
        bug in the named strategy; under ``strict`` it raises
        :class:`MaterializationDivergenceError` (and the engine is
        rebuilt from the unchanged EDB on the retry).

    Weighted no-op rounds
    ---------------------
    Every round first clamps its merged delta against the live EDB
    into a weighted Z-set (:func:`~repro.datalog.zset.effective_zdelta`)
    — inserts of present facts, deletes of absent facts, and
    insert/delete pairs that cancel within the round all coalesce
    away. The number of operations removed is reported as
    ``cancelled_ops`` on the round's metrics. When *everything*
    cancels and a materialization already exists, the round skips
    compile/plan/execute/verify entirely and emits a
    ``noop=True`` metrics record — cancelled pairs are work the
    service never does.
    """

    def __init__(
        self,
        program: Program,
        edb: Database,
        scheduler: Scheduler,
        workers: int = 4,
        executor: str = "thread",
        storage: str = "columnar",
        capacity: int = 64,
        verify: bool = True,
        strict: bool = True,
        deadline_s: float | None = None,
        work_per_derivation: float = 1e-3,
        name: str = "live",
        max_round_retries: int = 2,
        sink: TraceSink = NULL_SINK,
        plan_cache: bool = True,
        obs_metrics: MetricsRegistry | None = None,
        analyze: bool = True,
        unit_retries: int = 0,
        unit_backoff_s: float = 0.02,
        unit_timeout_s: float | None = None,
        chaos: ChaosPlan | None = None,
        health: HealthPolicy | None = None,
        shed_policy: str = "reject",
        maintenance: str | None = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if max_round_retries < 0:
            raise ValueError(
                f"max_round_retries must be >= 0, got {max_round_retries}"
            )
        if unit_retries < 0:
            raise ValueError(
                f"unit_retries must be >= 0, got {unit_retries}"
            )
        if shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"shed_policy must be one of {SHED_POLICIES}, "
                f"got {shed_policy!r}"
            )
        if maintenance is not None and maintenance not in STRATEGY_CHOICES:
            raise ValueError(
                f"maintenance must be one of {STRATEGY_CHOICES}, "
                f"got {maintenance!r}"
            )
        if executor not in EXECUTOR_BACKENDS:
            raise ValueError(
                f"executor must be one of {EXECUTOR_BACKENDS}, "
                f"got {executor!r}"
            )
        if storage not in STORAGE_CHOICES:
            raise ValueError(
                f"storage must be one of {STORAGE_CHOICES}, "
                f"got {storage!r}"
            )
        self.program = program
        self.scheduler = scheduler
        self.workers = workers
        self.executor = executor
        self.storage = storage
        self.verify = verify
        self.strict = strict
        self.deadline_s = deadline_s
        self.work_per_derivation = work_per_derivation
        self.name = name
        self.max_round_retries = max_round_retries
        self.sink = sink
        self.metrics = MetricsLog()
        #: whole-program static analysis — feeds dead-rule pruning and
        #: join-order hints to the compiler and plan cache
        self.analysis: ProgramAnalysis | None = (
            analyze_program(program) if analyze else None
        )
        self.plan_cache: CompiledProgramCache | None = (
            CompiledProgramCache(
                program,
                metrics=obs_metrics,
                sink=sink,
                analysis=self.analysis,
                storage=storage,
            )
            if plan_cache
            else None
        )
        #: intern pool for cold (cache-bypassed) columnar plan builds;
        #: the cached path uses the plan cache's own pool instead
        self._pool: InternPool | None = (
            InternPool()
            if storage == "columnar" and not plan_cache
            else None
        )
        #: (builds, probes) pool counters at the end of the last round,
        #: so per-round metrics report deltas
        self._pool_counts = (0, 0)
        self.unit_timeout_s = unit_timeout_s
        self.shed_policy = shed_policy
        #: executor retry policy; ``None`` keeps fail-fast rounds
        self.unit_retry: RetryPolicy | None = (
            RetryPolicy(max_retries=unit_retries, backoff_base=unit_backoff_s)
            if unit_retries > 0
            else None
        )
        #: the live chaos injector (``None`` without a non-empty plan)
        self.chaos: ChaosInjector | None = (
            ChaosInjector(chaos, sink=sink)
            if chaos is not None and not chaos.is_empty()
            else None
        )
        #: the degradation state machine / circuit breaker
        self.health = HealthMonitor(
            policy=health or HealthPolicy(), sink=sink
        )
        #: batches evicted by load shedding since construction
        self.shed_batches = 0
        #: units quarantined by aborted rounds since construction
        self.quarantined_units_total = 0
        self._edb = edb.copy()
        #: (delta, enqueue stamp) pairs; the stamp feeds queue_wait_s
        self._queue: queue.Queue[tuple[Delta, float]] = queue.Queue(
            maxsize=capacity
        )
        #: failed rounds' merged deltas, consumed before the queue
        self._retry: deque[tuple[Delta, float]] = deque()
        self._round_attempts = 0
        self._rounds_run = 0
        #: chaos round coordinate: one epoch per maintain attempt, so a
        #: retried round draws fresh decisions
        self._maintain_epoch = 0
        self._materialization: Database | None = None
        #: shadow maintenance-strategy oracle (built on first round)
        self.maintenance = maintenance
        self._engine: IncrementalEngine | None = None

    # ------------------------------------------------------------------
    # producer side
    def submit(
        self,
        delta: Delta,
        block: bool = True,
        timeout: float | None = None,
    ) -> None:
        """Enqueue one update batch; the bounded queue is backpressure.

        A blocking submit with ``timeout=`` raises
        :class:`BackpressureError` (carrying ``pending_batches`` and
        ``capacity``) once the queue stays full that long, instead of
        waiting forever. While the service is degraded, a full queue is
        handled by :attr:`shed_policy` — see the class docstring.
        """
        if self.health.state is not HealthState.HEALTHY:
            self._submit_degraded(delta, block, timeout)
            return
        try:
            self._queue.put((delta, perf_counter()), block=block,
                            timeout=timeout)
        except queue.Full:
            raise self._backpressure() from None

    def _backpressure(self) -> BackpressureError:
        return BackpressureError(
            f"update queue full ({self._queue.maxsize} batches) — "
            "the service is not keeping up",
            pending_batches=self.pending_batches(),
            capacity=self._queue.maxsize,
        )

    def _submit_degraded(
        self, delta: Delta, block: bool, timeout: float | None
    ) -> None:
        """Submit under degradation: shed load instead of piling on.

        ``reject`` fails fast (no blocking — a degraded service is the
        one case where waiting on it is wrong), ``drop-oldest`` evicts
        queued batches until the new one fits, ``coalesce-harder``
        folds the whole queue plus the new batch into a single slot.
        """
        now = perf_counter()
        if self.shed_policy == "coalesce-harder":
            batches: list[Delta] = []
            stamps: list[float] = []
            while True:
                try:
                    d, ts = self._queue.get_nowait()
                except queue.Empty:
                    break
                batches.append(d)
                stamps.append(ts)
                self._queue.task_done()
            if batches:
                self.shed_batches += len(batches)
                if self.sink.enabled:
                    self.sink.record_instant(
                        "load-shed",
                        args={
                            "policy": "coalesce-harder",
                            "batches": len(batches) + 1,
                        },
                    )
                # later operations win in merge order, so the fresh
                # batch goes last; the merged slot keeps the oldest
                # stamp so queue_wait_s stays honest
                delta = merge_deltas([*batches, delta])
                now = min([*stamps, now])
            self._queue.put((delta, now))
            return
        while True:
            try:
                self._queue.put_nowait((delta, now))
                return
            except queue.Full:
                if self.shed_policy == "reject":
                    raise self._backpressure() from None
            # drop-oldest: evict and retry
            try:
                old = self._queue.get_nowait()
            except queue.Empty:
                continue
            del old
            self._queue.task_done()
            self.shed_batches += 1
            if self.sink.enabled:
                self.sink.record_instant(
                    "load-shed", args={"policy": "drop-oldest", "batches": 1}
                )

    def pending_batches(self) -> int:
        """Approximate number of queued, not-yet-maintained batches
        (including a failed round's re-queued delta, if any)."""
        return self._queue.qsize() + len(self._retry)

    # ------------------------------------------------------------------
    # service side
    def database(self) -> Database:
        """Copy of the accumulated EDB (all maintained batches applied)."""
        return self._edb.copy()

    def materialization(self) -> Database | None:
        """The last round's full materialization (``None`` before any)."""
        return self._materialization

    def _drain(
        self, block: bool, timeout: float | None
    ) -> tuple[list[Delta], list[float], int]:
        """Pop everything pending right now (first pop may block).

        A failed round's re-queued delta comes first — ahead of newer
        queue batches — and suppresses blocking (the retry must not
        wait for fresh input). Returns the batches, their enqueue
        stamps, and how many came off the queue (= how many
        ``task_done()`` calls the round owes).
        """
        batches: list[Delta] = []
        stamps: list[float] = []
        for delta, ts in self._retry:
            batches.append(delta)
            stamps.append(ts)
        self._retry.clear()
        n_queue = 0
        if not batches:
            try:
                delta, ts = self._queue.get(block=block, timeout=timeout)
            except queue.Empty:
                return batches, stamps, 0
            batches.append(delta)
            stamps.append(ts)
            n_queue = 1
        while True:
            try:
                delta, ts = self._queue.get_nowait()
            except queue.Empty:
                return batches, stamps, n_queue
            batches.append(delta)
            stamps.append(ts)
            n_queue += 1

    def run_round(
        self, block: bool = False, timeout: float | None = None
    ) -> RoundReport | None:
        """Maintain everything queued right now as one round.

        Returns ``None`` when the queue is empty (after blocking up to
        ``timeout`` if requested). Batches that arrive while a round is
        in flight wait for — and are coalesced into — the next round.

        On failure the queue's unfinished-task accounting is settled
        regardless (producers in ``Queue.join()`` never hang) and the
        merged delta follows the failed-round policy (module
        docstring): front-re-queue within ``max_round_retries``,
        otherwise surfaced as ``exc.failed_delta`` on the re-raised
        exception.

        In the ``failed`` health state this raises
        :class:`~repro.runtime.health.ServiceUnavailableError` *before*
        draining anything, so the queue (and any re-queued delta) is
        intact for recovery.
        """
        if self.health.state is HealthState.FAILED:
            raise ServiceUnavailableError(self.health.consecutive_failures)
        depth = self.pending_batches()
        t_drain = perf_counter()
        batches, stamps, n_queue = self._drain(block, timeout)
        if not batches:
            return None
        t_round = perf_counter()
        sink = self.sink
        oldest = min(stamps)
        queue_wait_s = max(0.0, t_round - oldest)
        delta = merge_deltas(batches)
        if sink.enabled:
            sink.record_span_abs(
                "queue_wait", "queue", oldest, t_round,
                args={"batches": len(batches)},
            )
            sink.record_span_abs(
                "drain", "phase", t_drain, t_round,
                args={"batches": len(batches), "from_queue": n_queue},
            )
            sink.record_span_abs("merge", "phase", t_round, perf_counter())
        degraded = self.health.plan_round()
        try:
            report = self._maintain(
                delta, len(batches), depth, t_round, queue_wait_s,
                degraded=degraded,
            )
        except BaseException as exc:
            self.health.record_failure(self._rounds_run, type(exc).__name__)
            self._note_failed_round(delta, oldest, exc)
            raise
        finally:
            for _ in range(n_queue):
                self._queue.task_done()
        self.health.record_success(report.index, degraded)
        self._round_attempts = 0
        return report

    def _note_failed_round(
        self, delta: Delta, enqueued_at: float, exc: BaseException
    ) -> None:
        """Apply the failed-round policy before the exception re-raises."""
        if self.plan_cache is not None:
            # drop anything the failed round staged or patched; the
            # retry recompiles from the last *committed* baseline
            self.plan_cache.rollback()
        if isinstance(exc, UnitExecutionError):
            self.quarantined_units_total += len(exc.failures)
        self._round_attempts += 1
        requeued = self._round_attempts <= self.max_round_retries
        if requeued:
            self._retry.appendleft((delta, enqueued_at))
        else:
            # budget exhausted: drop the poison delta from the service
            # (the caller holds it via exc.failed_delta) and reset the
            # budget for whatever round comes next
            self._round_attempts = 0
        exc.failed_delta = delta  # type: ignore[attr-defined]
        exc.delta_requeued = requeued  # type: ignore[attr-defined]
        if self.sink.enabled:
            self.sink.record_instant(
                "round-failed",
                args={
                    "round": self._rounds_run,
                    "error": type(exc).__name__,
                    "requeued": requeued,
                    "attempt": self._round_attempts if requeued else (
                        self.max_round_retries + 1
                    ),
                },
            )

    def _pool_round_stats(self) -> tuple[int, int, int]:
        """``(intern table size, builds Δ, probes Δ)`` for the round
        that just finished; zeros under row storage."""
        pool = (
            self.plan_cache.pool
            if self.plan_cache is not None
            else self._pool
        )
        if pool is None:
            return 0, 0, 0
        s = pool.stats()
        b0, p0 = self._pool_counts
        self._pool_counts = (s["columnar_builds"], s["columnar_probes"])
        return (
            s["intern_table_size"],
            s["columnar_builds"] - b0,
            s["columnar_probes"] - p0,
        )

    def _noop_round(
        self,
        delta: Delta,
        n_batches: int,
        depth: int,
        t_round: float,
        queue_wait_s: float,
        cancelled: int,
    ) -> RoundReport:
        """Settle a round whose effective delta is empty.

        Compile, plan, execute, verify, chaos — all skipped: the EDB
        and the committed materialization are already correct. Only
        the metrics record (``noop=True``, ``cancelled_ops``) and the
        round counter advance.
        """
        if self.sink.enabled:
            self.sink.record_instant(
                "round-noop",
                args={
                    "round": self._rounds_run,
                    "batches": n_batches,
                    "cancelled_ops": cancelled,
                },
            )
        metrics = RoundMetrics(
            index=self._rounds_run,
            trace_name=f"{self.name}:r{self._rounds_run}:noop",
            scheduler=self.scheduler.name,
            workers=self.workers,
            batches_coalesced=n_batches,
            queue_depth=depth,
            n_nodes=0,
            n_active=0,
            tasks_executed=0,
            changed_facts=0,
            latency_s=perf_counter() - t_round,
            compile_s=0.0,
            execute_s=0.0,
            verify_s=0.0,
            makespan_s=0.0,
            scheduler_ops=0,
            precompute_ops=0,
            utilization=1.0,
            queue_wait_s=queue_wait_s,
            cancelled_ops=cancelled,
            noop=True,
            backend=self.executor,
        )
        self.metrics.append(metrics)
        self._rounds_run += 1
        return RoundReport(
            index=metrics.index,
            delta=delta,
            compiled=None,
            artifacts=None,
            verification=None,
            metrics=metrics,
            materialization_ok=True,
        )

    def _maintain(
        self,
        delta: Delta,
        n_batches: int,
        depth: int,
        t_round: float,
        queue_wait_s: float,
        degraded: bool = False,
    ) -> RoundReport:
        """Compile, execute, verify, and commit one merged round.

        ``degraded=True`` is the circuit breaker's fallback: cold
        compile (plan cache bypassed), serial reference execution
        instead of the concurrent executor, materialization check only
        (there is no concurrent schedule to run invariants on).
        """
        sink = self.sink
        zdelta = effective_zdelta(self._edb, delta)
        submitted = sum(
            len(s) for s in delta.insertions.values()
        ) + sum(len(s) for s in delta.deletions.values())
        cancelled = submitted - zdelta.op_count()
        if zdelta.is_empty and self._materialization is not None:
            # everything cancelled (against itself or the live EDB):
            # nothing to compile, execute, or verify — the committed
            # materialization is already the answer
            return self._noop_round(
                delta, n_batches, depth, t_round, queue_wait_s, cancelled
            )
        chaos = self.chaos
        if chaos is not None:
            chaos.begin_round(self._maintain_epoch)
        self._maintain_epoch += 1
        faults0 = chaos.injected_total if chaos is not None else 0
        backend = "serial" if degraded else self.executor
        with sink.span(
            "round", "round",
            args={
                "index": self._rounds_run,
                "batches": n_batches,
                "degraded": degraded,
                "backend": backend,
                "storage": self.storage,
            },
        ):
            t0 = perf_counter()
            cache = self.plan_cache if not degraded else None
            if chaos is not None and chaos.phase_fails("compile"):
                raise InjectedPhaseFault("compile", self._rounds_run)
            with sink.span("compile", "phase"):
                if cache is not None:
                    cu = cache.compile(
                        self.program,
                        self._edb,
                        delta,
                        work_per_derivation=self.work_per_derivation,
                        name=f"{self.name}:r{self._rounds_run}",
                    )
                else:
                    cu = compile_update(
                        self.program,
                        self._edb,
                        delta,
                        work_per_derivation=self.work_per_derivation,
                        name=f"{self.name}:r{self._rounds_run}",
                        analysis=self.analysis,
                    )
            with sink.span("plan-build", "phase"):
                if cache is not None:
                    plan = cache.plan(cu)
                else:
                    join_orders = (
                        self.analysis.join_orders_for(cu.program)
                        if self.analysis is not None
                        else None
                    )
                    plan = build_execution_plan(
                        cu,
                        join_orders=join_orders,
                        # degraded rounds stay on the row reference
                        # path; healthy cold builds honor the storage
                        pool=self._pool if not degraded else None,
                    )
            compile_s = perf_counter() - t0

            t0 = perf_counter()
            if degraded:
                # serial reference oracle: single-threaded level-order
                # execution, immune to executor-level faults
                with sink.span(
                    "execute-serial", "phase", args={"degraded": True}
                ):
                    values, diffs = plan.execute_serial()
                outcome = None
                tasks_executed = len(diffs)
            else:
                with sink.span("execute", "phase") as sp_exec:
                    outcome = RoundExecutor(
                        plan,
                        self.scheduler,
                        workers=self.workers,
                        deadline=self.deadline_s,
                        sink=sink,
                        retry=self.unit_retry,
                        unit_timeout_s=self.unit_timeout_s,
                        chaos=chaos,
                        backend=self.executor,
                    ).run()
                values = outcome.values
                tasks_executed = len(outcome.records)
                if sink.enabled:
                    sp_exec.set("scheduler_ops", outcome.scheduler_ops)
                    sp_exec.set("tasks_executed", tasks_executed)
                    sp_exec.set("unit_retries", outcome.unit_retries)
                    sp_exec.set("injected_faults", outcome.injected_faults)
                    sp_exec.set("backend", outcome.backend)
            execute_s = perf_counter() - t0

            t0 = perf_counter()
            if chaos is not None and chaos.phase_fails("verify"):
                raise InjectedPhaseFault("verify", self._rounds_run)
            with sink.span("verify", "phase"):
                artifacts: RoundArtifacts | None = None
                report: VerificationReport | None = None
                mat_ok = True
                if outcome is not None:
                    artifacts = record_round(outcome, cu.trace)
                if self.verify:
                    if artifacts is not None:
                        report = artifacts.check()
                        if self.strict and not report.ok:
                            raise RoundVerificationError(
                                self._rounds_run, report
                            )
                    mat = plan.materialization(values)
                    mat_ok = mat.as_dict() == cu.db_new.as_dict()
                    if not mat_ok and self.strict:
                        raise MaterializationDivergenceError(
                            self._rounds_run,
                            f"{_facts_delta(mat, cu.db_new)} facts differ",
                        )
            if self.maintenance is not None:
                # shadow oracle: replay the effective delta through the
                # configured maintenance strategy and insist it lands on
                # the same materialization as from-scratch evaluation
                with sink.span(
                    "maintain-oracle", "phase",
                    args={"strategy": self.maintenance},
                ):
                    if self._engine is None:
                        self._engine = make_engine(
                            self.maintenance, self.program, self._edb
                        )
                    self._engine.apply(zdelta)
                    if (
                        self.verify
                        and self._engine.snapshot() != cu.db_new.as_dict()
                    ):
                        # rebuild from the (unchanged) EDB on retry
                        self._engine = None
                        if self.strict:
                            raise MaterializationDivergenceError(
                                self._rounds_run,
                                f"maintenance strategy "
                                f"{self.maintenance!r} disagrees with "
                                "from-scratch evaluation",
                            )
                        mat_ok = False
            verify_s = perf_counter() - t0

            # the round is verified: only now may the staged compile
            # become the baseline the next round's compile reuses
            if cache is not None:
                cache.commit(cu)
            self._edb = cu.edb_new
            self._materialization = cu.db_new

            table_size, builds, probes = self._pool_round_stats()
            metrics = RoundMetrics(
                index=self._rounds_run,
                trace_name=cu.trace.name,
                scheduler=self.scheduler.name,
                workers=self.workers if not degraded else 1,
                batches_coalesced=n_batches,
                queue_depth=depth,
                n_nodes=cu.trace.dag.n_nodes,
                n_active=cu.trace.n_active,
                tasks_executed=tasks_executed,
                changed_facts=_facts_delta(cu.db_old, cu.db_new),
                latency_s=perf_counter() - t_round,
                compile_s=compile_s,
                execute_s=execute_s,
                verify_s=verify_s,
                makespan_s=(
                    artifacts.result.makespan
                    if artifacts is not None
                    else execute_s
                ),
                scheduler_ops=(
                    outcome.scheduler_ops if outcome is not None else 0
                ),
                precompute_ops=(
                    outcome.precompute_ops if outcome is not None else 0
                ),
                utilization=(
                    artifacts.result.utilization
                    if artifacts is not None
                    else 1.0
                ),
                queue_wait_s=queue_wait_s,
                unit_retries=(
                    outcome.unit_retries if outcome is not None else 0
                ),
                degraded=degraded,
                injected_faults=(
                    chaos.injected_total - faults0
                    if chaos is not None
                    else 0
                ),
                cancelled_ops=cancelled,
                backend=backend,
                intern_table_size=table_size,
                columnar_builds=builds,
                columnar_probes=probes,
            )
        self.metrics.append(metrics)
        self._rounds_run += 1
        return RoundReport(
            index=metrics.index,
            delta=delta,
            compiled=cu,
            artifacts=artifacts,
            verification=report,
            metrics=metrics,
            materialization_ok=mat_ok,
        )

    def run(
        self,
        rounds: int,
        timeout: float | None = None,
        on_round: Callable[[RoundReport], None] | None = None,
    ) -> list[RoundReport]:
        """Run up to ``rounds`` rounds, blocking for updates.

        Stops early if ``timeout`` (per blocking wait) expires with an
        empty queue.
        """
        reports: list[RoundReport] = []
        for _ in range(rounds):
            rep = self.run_round(block=True, timeout=timeout)
            if rep is None:
                break
            reports.append(rep)
            if on_round is not None:
                on_round(rep)
        return reports
