"""GIL-escaping process lanes for :class:`~repro.runtime.executor.RoundExecutor`.

The thread backend's worker lanes share one address space: a lane pops
``(unit, attempt)`` and runs the unit against the round's live
:class:`~repro.datalog.units.ValueStore`. Python threads cannot overlap
the CPU-bound join work, though — the GIL serializes them — so the
thread pool buys fault isolation and latency hiding, not parallelism.

:class:`ProcessLanes` keeps the executor's coordinator loop, message
shapes, and supervision semantics byte-compatible while moving unit
execution into forked worker processes:

* **Fork is the hand-off.** Lanes are forked at round start, after the
  plan has been patched for the round, so every child inherits the
  plan, its old values, the round baselines, and — crucially — the
  intern pool and every columnar index built so far, all by
  copy-on-write. Nothing static is ever serialized.
* **Dispatches ship diffs.** A unit may read values *computed earlier
  in the same round* by other units; those exist only in the parent.
  Each dispatch therefore carries, for every computed input of the
  node (``PlanSkeleton.input_nodes``), the symmetric difference of its
  current value against its old value — small in steady state — and
  the child overlays them onto a fresh value store before executing.
* **Results ship diffs too.** The child returns ``(removed, added)``
  relative to the unit's old value; the pump thread reconstructs the
  full frozenset parent-side and forwards the exact completion tuple
  the thread backend produces, so the coordinator cannot tell the
  backends apart.
* **Chaos moves to the submit site.** Thread lanes draw chaos decisions
  worker-side; a child process drawing them could not advance the
  parent injector's counters. Decisions are pure functions of
  ``(seed, kind, round, node, attempt)``, so the coordinator draws the
  same decision at dispatch time and ships it: injected failures raise
  the same typed :class:`~repro.runtime.chaos.InjectedUnitFault` inside
  the child, and a worker-kill makes the child post ``lane-died`` and
  ``os._exit(1)`` — a real process death the supervisor must absorb.

``perf_counter`` is CLOCK_MONOTONIC on Linux, comparable across
processes, so child-side start/finish stamps slot into the parent's
round timeline unchanged.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import queue
import threading
from time import perf_counter, sleep

from ..datalog.units import ExecutionPlan
from ..obs.trace import TraceSink
from .chaos import ChaosInjector, InjectedUnitFault

__all__ = ["ProcessLanes", "process_backend_available"]


def process_backend_available() -> bool:
    """Whether this platform can run the fork-based process backend."""
    return "fork" in mp.get_all_start_methods()


def _portable_error(exc: BaseException) -> BaseException:
    """The exception itself if it survives a pickle round-trip, else a
    :class:`RuntimeError` carrying its type and message.

    Losing an unpicklable exception inside a worker process would hang
    the coordinator forever; degrading it to a typed message keeps the
    round's failure path (retry, quarantine) intact.
    """
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def _lane_main(tasks, results, cancel, plan: ExecutionPlan) -> None:
    """Worker-process loop: pop dispatches, run units, post diffs.

    Runs in a forked child; ``plan`` (units, old values, round ctx,
    intern pool, columnar indexes) is inherited memory, never pickled.

    Node values are write-once within a round (the coordinator sets a
    value exactly once, on first success), so the lane keeps one value
    store for its whole life and reconstructs each shipped source at
    most once — later dispatches naming an already-seen source skip
    both the unpickle and the O(|relation|) set rebuild.
    """
    values = plan.new_store()
    seen: set[int] = set()
    while True:
        msg = tasks.get()
        if msg[0] == "stop":
            return
        _tag, node, attempt, shipped, inject = msg
        if cancel.is_set():
            # aborted round: drop queued work instead of draining it
            continue
        if inject is not None and inject[0]:
            # chaos worker-kill: report the orphaned attempt, then die
            # for real — supervision must replace a whole process
            results.put(("lane-died", node, attempt, perf_counter()))
            os._exit(1)
        for src, blob in shipped:
            if src in seen:
                continue
            seen.add(src)
            removed, added = pickle.loads(blob)
            values.set(src, (plan.old_values[src] - removed) | added)
        if inject is not None and inject[1] > 0.0:
            sleep(inject[1])
        t0 = perf_counter()
        try:
            if inject is not None and inject[2]:
                raise InjectedUnitFault(node, attempt)
            value, err = plan.units[node].execute(values), None
        except BaseException as exc:
            value, err = None, _portable_error(exc)
        t1 = perf_counter()
        if value is not None:
            old = plan.units[node].old_value
            payload = (old - value, value - old)
        else:
            payload = None
        results.put(("done", node, attempt, payload, t0, t1, err))


class ProcessLanes:
    """A supervised set of forked worker processes over one task queue.

    Drop-in peer of the executor's ``_WorkerLanes``: same ``spawn`` /
    ``shutdown`` / ``cancel`` surface, same completion-message shapes
    (delivered through the parent ``completions`` queue by a pump
    thread), individually replaceable lanes. Construction forks the
    initial lanes immediately — call it only after the plan is fully
    patched for the round.
    """

    def __init__(
        self,
        workers: int,
        plan: ExecutionPlan,
        values,
        completions: queue.SimpleQueue,
        chaos: ChaosInjector | None = None,
        sink: TraceSink | None = None,
        name_prefix: str = "repro-runtime",
    ) -> None:
        if not process_backend_available():  # pragma: no cover - linux CI
            raise RuntimeError(
                "process executor backend requires fork-capable "
                "multiprocessing (unavailable on this platform)"
            )
        if plan.skeleton is None:
            raise RuntimeError(
                "process executor backend requires a skeleton-built plan "
                "(PlanSkeleton.bind / build_execution_plan)"
            )
        self._plan = plan
        self._values = values
        self._skeleton = plan.skeleton
        self._chaos = chaos
        self._sink = sink
        self._prefix = name_prefix
        #: node → pickled (removed, added) diff vs its old value;
        #: values are write-once per round, so blobs never go stale
        self._diff_blobs: dict[int, bytes] = {}
        ctx = mp.get_context("fork")
        self._tasks = ctx.SimpleQueue()
        self._results = ctx.SimpleQueue()
        self.cancel = ctx.Event()
        self._procs: list = []
        self._spawned = 0
        for _ in range(workers):
            self.spawn()
        self._completions = completions
        self._pump = threading.Thread(
            target=self._pump_loop,
            name=f"{name_prefix}-pump",
            daemon=True,
        )
        self._pump.start()

    # ------------------------------------------------------------------
    def spawn(self) -> None:
        """Fork one (more) worker lane.

        A mid-round respawn forks the parent's *current* state; the
        diff-shipping protocol overwrites any value the new child
        already inherited, so a late fork is indistinguishable from an
        early one.
        """
        ctx = mp.get_context("fork")
        p = ctx.Process(
            target=_lane_main,
            args=(self._tasks, self._results, self.cancel, self._plan),
            name=f"{self._prefix}-proc-{self._spawned}",
            daemon=True,
        )
        self._spawned += 1
        self._procs.append(p)
        p.start()

    @property
    def spawned(self) -> int:
        return self._spawned

    # ------------------------------------------------------------------
    def dispatch(self, node: int, attempt: int) -> None:
        """Ship one unit attempt to the lanes.

        Draws the chaos decision here (coordinator-side — identical to
        the thread backend's worker-side draw, see module docstring)
        and serializes only the node's computed-input diffs. Each
        source's diff is computed and pickled once per round (values
        are write-once), then reused as an opaque blob by every later
        dispatch that ships the same source.
        """
        inject = None
        chaos = self._chaos
        if chaos is not None:
            d = chaos.unit_outcome(node, attempt)
            inject = (d.kill_worker, d.latency_s, d.fail)
        values = self._values
        old_values = self._plan.old_values
        blobs = self._diff_blobs
        shipped = []
        for src in self._skeleton.input_nodes(node):
            if values.computed(src):
                blob = blobs.get(src)
                if blob is None:
                    cur = values[src]
                    old = old_values[src]
                    blob = pickle.dumps(
                        (old - cur, cur - old),
                        protocol=pickle.HIGHEST_PROTOCOL,
                    )
                    blobs[src] = blob
                shipped.append((src, blob))
        self._tasks.put(("run", node, attempt, shipped, inject))

    # ------------------------------------------------------------------
    def _pump_loop(self) -> None:
        """Bridge the mp results queue onto the parent completions queue.

        Reconstructs each done value from its diff so the coordinator
        receives exactly the thread backend's message shapes; records
        the per-unit span parent-side (children cannot reach the sink).
        """
        results = self._results
        completions = self._completions
        plan = self._plan
        sink = self._sink
        if sink is not None:
            sink.set_thread_name(threading.current_thread().name)
        while True:
            try:
                msg = results.get()
            except (EOFError, OSError):  # pragma: no cover - torn queue
                return
            if msg[0] == "pump-stop":
                return
            if msg[0] != "done":
                completions.put(msg)
                continue
            _tag, node, attempt, payload, t0, t1, err = msg
            if payload is not None:
                removed, added = payload
                value = (plan.old_values[node] - removed) | added
            else:
                value = None
            if sink is not None:
                sink.record_span_abs(
                    f"unit:{node}",
                    "unit",
                    t0,
                    t1,
                    args={
                        "node": node,
                        "label": plan.units[node].label,
                        "attempt": attempt,
                    },
                )
            completions.put(("done", node, attempt, value, t0, t1, err))

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Cancel, stop every lane, join them all, and stop the pump.

        One stop sentinel is enqueued per process ever spawned — dead
        lanes leave theirs unconsumed, so every survivor sees one.
        Lanes that ignore the sentinel (wedged mid-unit) are terminated.
        After this returns no worker process and no pump thread is
        alive — the process-backend no-leak guarantee.
        """
        self.cancel.set()
        for _ in self._procs:
            self._tasks.put(("stop",))
        deadline = perf_counter() + 10.0
        for p in self._procs:
            p.join(timeout=max(0.1, deadline - perf_counter()))
        for p in self._procs:
            if p.is_alive():  # pragma: no cover - wedged lane
                p.terminate()
                p.join(timeout=1.0)
        self._results.put(("pump-stop",))
        self._pump.join()
        self._tasks.close()
        self._results.close()
