"""Real rounds as simulator-compatible schedules.

A :class:`~repro.runtime.executor.RoundOutcome` carries wall-clock
``(start, finish)`` intervals per executed node. This module rebuilds
them as a :class:`~repro.sim.result.SimulationResult` plus a
*verification trace* — the compiled round's DAG with measured durations
as per-node work — so the strict invariant checker
(:func:`repro.verify.check_invariants`) and the timeline tooling
(:mod:`repro.sim.timeline`) apply to real runs unchanged.

Two deliberate translations:

* **work := measured duration.** The compiled trace's work values model
  derivation counts; the invariant checker's duration and bound checks
  compare against the *recorded* schedule, so the verification trace
  carries what each node actually took. Precedence, exactly-once,
  active-set, and capacity checks are measurement-independent.
* **whole-system idle gaps are compressed out.** The coordinator does
  real work between completions (diffing, scheduler hooks, compiling
  the next dispatch); while every worker is idle the timeline would
  show pure coordination time that the simulator models as scheduling
  overhead, not makespan. Compression removes exactly the intervals
  where *no* node was running — it preserves every duration, every
  overlap, and every precedence relation (events on either side of a
  gap can only move closer, never reorder) — and reports the removed
  time as ``extras["compressed_idle_s"]``.
* **partial-idle coordination is charged as inline overhead.** The
  executor exports the intervals during which the coordinator was
  deciding or handing work to the pool; the timeline measure of those
  intervals where *some but not all* workers ran is dead time the
  simulator's instantaneous-dispatch model excludes from its bounds
  (the engine's precedent: inline-charged overhead is subtracted from
  ``execution_makespan``). It is reported as
  ``extras["coordination_stall_s"]`` and subtracted the same way;
  ``makespan`` itself — and so the lower bounds — stays wall-clock.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

import numpy as np

from ..sim.result import DispatchRecord, SimulationResult
from ..tasks.model import ExecutionModel
from ..tasks.trace import JobTrace
from .executor import RoundOutcome

__all__ = [
    "RoundArtifacts",
    "compress_idle_gaps",
    "coordination_stall",
    "record_round",
]


@dataclass
class RoundArtifacts:
    """One real round in the simulator's vocabulary."""

    #: compiled DAG with measured durations as work/span
    trace: JobTrace
    result: SimulationResult

    def check(self, atol: float = 1e-6):
        """Run the strict invariant checker over this round."""
        from ..verify import check_invariants

        return check_invariants(
            self.trace, self.result, reallot=False, atol=atol
        )


def compress_idle_gaps(
    records: dict[int, tuple[float, float]],
) -> tuple[dict[int, tuple[float, float]], float]:
    """Shift intervals left over whole-idle gaps; returns removed time.

    A gap is any stretch of the timeline (including before the first
    start) where no interval is active. Each interval lies entirely
    inside one maximal covered segment, so both endpoints shift by the
    same amount: durations and overlaps are exact, and order between
    segments is preserved (boundary events collapse onto the same
    instant at most).
    """
    if not records:
        return {}, 0.0
    intervals = sorted(records.values())
    segments: list[tuple[float, float]] = []
    for s, f in intervals:
        f = max(f, s)
        if segments and s <= segments[-1][1]:
            if f > segments[-1][1]:
                segments[-1] = (segments[-1][0], f)
        else:
            segments.append((s, f))
    seg_starts = [a for a, _ in segments]
    gap_before = []
    gap = segments[0][0]  # idle before the first start
    for i, (a, _b) in enumerate(segments):
        if i > 0:
            gap += a - segments[i - 1][1]
        gap_before.append(gap)
    out = {}
    for node, (s, f) in records.items():
        g = gap_before[bisect_right(seg_starts, s) - 1]
        out[node] = (s - g, f - g)
    return out, gap_before[-1]


def coordination_stall(
    records: dict[int, tuple[float, float]],
    coord: list[tuple[float, float]],
    workers: int,
) -> float:
    """Timeline measure of partial-idle time under coordination.

    Sweeps the raw (uncompressed) timeline; stretches where ``1 ≤
    busy < workers`` contribute their overlap with the coordinator's
    exported intervals. Whole-idle stretches are excluded — those are
    removed by gap compression and must not be charged twice.
    """
    if not records or not coord or workers <= 1:
        return 0.0
    events = sorted(
        [(s, 1) for s, f in records.values()]
        + [(f, -1) for _, f in records.values()]
    )
    total = 0.0
    busy = 0
    j = 0
    prev_t: float | None = None
    for t, d in events:
        if prev_t is not None and t > prev_t and 1 <= busy < workers:
            while j < len(coord) and coord[j][1] <= prev_t:
                j += 1
            k = j
            while k < len(coord) and coord[k][0] < t:
                total += min(t, coord[k][1]) - max(prev_t, coord[k][0])
                k += 1
        busy += d
        prev_t = t
    return total


def record_round(
    outcome: RoundOutcome,
    trace: JobTrace,
    compress: bool = True,
) -> RoundArtifacts:
    """Rebuild a real round as ``(verification trace, result)``.

    ``trace`` is the compiled round's job trace; its DAG, activation
    flags, and initial tasks carry over unchanged (they are the ground
    truth the real diffs are checked against), while work and span
    become the measured durations.
    """
    records = outcome.records
    stall = coordination_stall(
        records, outcome.coord_intervals, outcome.workers
    )
    if compress:
        records, compressed = compress_idle_gaps(records)
    else:
        compressed = 0.0

    n = trace.dag.n_nodes
    work = np.zeros(n, dtype=np.float64)
    for node, (s, f) in records.items():
        work[node] = f - s
    vtrace = JobTrace(
        dag=trace.dag,
        work=work,
        span=work.copy(),
        models=np.full(n, ExecutionModel.SEQUENTIAL, dtype=np.int8),
        is_task=trace.is_task.copy(),
        initial_tasks=trace.initial_tasks.copy(),
        changed_edges=trace.changed_edges.copy(),
        name=f"{trace.name}:live",
        metadata={
            **trace.metadata,
            "runtime": True,
            "workers": outcome.workers,
        },
    )

    schedule = [
        DispatchRecord(node=node, start=s, finish=f, processors=1)
        for node, (s, f) in sorted(records.items(), key=lambda kv: kv[1])
    ]
    makespan = max((f for _, f in records.values()), default=0.0)
    busy = float(work.sum())
    utilization = (
        min(1.0, busy / (outcome.workers * makespan)) if makespan > 0 else 0.0
    )
    result = SimulationResult(
        scheduler_name=outcome.scheduler_name,
        trace_name=vtrace.name,
        processors=outcome.workers,
        makespan=makespan,
        execution_makespan=max(0.0, makespan - stall),
        scheduling_overhead=outcome.overhead_s,
        scheduling_ops=outcome.scheduler_ops,
        precompute_ops=outcome.precompute_ops,
        precompute_memory_cells=outcome.precompute_memory_cells,
        runtime_peak_memory_cells=outcome.runtime_peak_memory_cells,
        tasks_executed=len(records),
        total_work=busy,
        utilization=utilization,
        schedule=schedule,
        extras={
            "wall_latency_s": outcome.wall_latency_s,
            "compressed_idle_s": compressed,
            "coordination_stall_s": stall,
            "dispatch_lag_s": outcome.dispatch_lag_s,
            "prepare_s": outcome.prepare_s,
            "select_calls": outcome.select_calls,
        },
    )
    return RoundArtifacts(trace=vtrace, result=result)
