"""Concurrent, fault-tolerant execution of one compiled maintenance round.

The executor is the runtime twin of :func:`repro.sim.engine.simulate`:
the same scheduler ABC, the same hook order (bootstrap → ``on_activate``
→ loop of ``select`` / dispatch / completion → ``on_complete``), the
same dispatch validation — but "executing a task" means a worker thread
actually runs the node's :class:`~repro.datalog.units.WorkUnit` against
the shared value store, and the changed/unchanged signal that decides
child activation is the *real* diff between the unit's output and its
value under the old materialization.

Threading model
---------------
One coordinator (the caller's thread) owns all scheduler and activation
state; worker threads only run units and timestamp themselves. Workers
communicate results back over a queue, so every scheduler hook and
every ``ValueStore.set`` happens on the coordinator — schedulers need
no locking, exactly as in the simulator. A unit only reads values of
nodes that were resolved before it was dispatched, and the completion
queue's put/get pair orders those writes before the worker's reads.

Fault tolerance
---------------
Workers are *supervised lanes*, not an opaque pool: when a lane thread
dies mid-attempt (chaos kill, or a harness bug) the coordinator spawns
a replacement and re-dispatches the orphaned unit. A failing unit is
retried under a :class:`RetryPolicy` — capped exponential backoff with
the same ``min(cap, base·factor^(k-1))`` law as the simulator's
:class:`~repro.sim.faults.FaultPlan` — until its budget is exhausted,
at which point the unit is quarantined: the round aborts with a
structured :class:`UnitExecutionError` aggregating every permanent
failure, cancellation stops lanes from draining the rest of the plan,
and all lane threads are joined (no leaks) with late completions
explicitly discarded. A soft per-unit watchdog marks in-flight
stragglers on :attr:`RoundOutcome.stragglers` without killing them;
the hard round ``deadline`` still aborts via
:class:`~repro.sim.faults.DeadlineExceededError`.
"""

from __future__ import annotations

import heapq
import queue
import threading
from dataclasses import dataclass, field
from time import perf_counter, sleep

import numpy as np

from ..datalog.units import ExecutionPlan, ValueStore, WorkUnit
from ..obs.trace import NULL_SINK, TraceSink
from ..schedulers.base import ReadinessOracle, Scheduler, SchedulerContext
from ..sim.engine import InvalidDispatchError, SchedulerStallError
from ..sim.faults import DeadlineExceededError, capped_backoff
from ..tasks.activation import ActivationState
from .chaos import ChaosInjector, InjectedUnitFault
from .procpool import ProcessLanes

#: executor backends: shared-memory worker threads (cheap hand-off,
#: GIL-serialized CPU) vs forked worker processes (diff-serialized
#: hand-off, true CPU parallelism)
EXECUTOR_BACKENDS = ("thread", "process")

__all__ = [
    "EXECUTOR_BACKENDS",
    "LiveActivationState",
    "RetryPolicy",
    "RoundExecutor",
    "RoundOutcome",
    "UnitExecutionError",
    "UnitFailure",
]


@dataclass(frozen=True)
class UnitFailure:
    """One work unit's permanent failure, as quarantined by the round."""

    node: int
    label: str
    #: dispatch attempts consumed (initial + retries + lane
    #: re-dispatches)
    attempts: int
    error: BaseException


class UnitExecutionError(RuntimeError):
    """One or more work units failed permanently; the round is aborted.

    The two-decades-old single-failure shape (``node`` / ``label`` /
    ``cause`` of the *first* permanent failure) is preserved for
    callers that predate retry; the full quarantine set is on
    :attr:`failures`.
    """

    def __init__(
        self,
        node: int,
        label: str,
        cause: BaseException,
        failures: tuple[UnitFailure, ...] | None = None,
    ) -> None:
        self.failures: tuple[UnitFailure, ...] = failures or (
            UnitFailure(node=node, label=label, attempts=1, error=cause),
        )
        extra = (
            f" (+{len(self.failures) - 1} more quarantined unit(s))"
            if len(self.failures) > 1
            else ""
        )
        super().__init__(
            f"unit {node} ({label}) failed: "
            f"{type(cause).__name__}: {cause}{extra}"
        )
        self.node = node
        self.label = label
        self.cause = cause

    @property
    def quarantined(self) -> tuple[int, ...]:
        """Nodes quarantined by the aborted round."""
        return tuple(f.node for f in self.failures)

    @classmethod
    def from_failures(
        cls, failures: list[UnitFailure]
    ) -> "UnitExecutionError":
        first = failures[0]
        return cls(
            first.node, first.label, first.error, tuple(failures)
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Per-unit retry budget with capped exponential backoff.

    Shares :func:`~repro.sim.faults.capped_backoff` with the sim's
    :class:`~repro.sim.faults.FaultPlan`, so a live retry at failure
    ``k`` backs off exactly as the simulated one does.
    """

    max_retries: int = 2
    backoff_base: float = 0.02
    backoff_factor: float = 2.0
    backoff_cap: float = 0.5

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff_base/backoff_cap must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")

    def backoff_delay(self, failure_index: int) -> float:
        """Delay before retry ``failure_index`` (1-based)."""
        return capped_backoff(
            self.backoff_base,
            self.backoff_factor,
            self.backoff_cap,
            failure_index,
        )

    def allows(self, failures: int) -> bool:
        """May a unit with ``failures`` recorded failures retry?"""
        return failures <= self.max_retries


class LiveActivationState(ActivationState):
    """Activation bookkeeping driven by *observed* diffs.

    :class:`~repro.tasks.activation.ActivationState` delivers change
    signals from a precompiled per-edge array; in a real run the signal
    only exists once the node has executed and its output has been
    diffed. Completion therefore stamps the observed flag onto all of
    the node's out-edges first — the compiler derives its per-edge
    flags the same way (``changed[source]`` broadcast over out-edges),
    so when real diffs match the compiled ones the cascades are
    identical — and then reuses the parent class's resolution logic
    unchanged.
    """

    def __init__(self, plan: ExecutionPlan) -> None:
        trace = plan.compiled.trace
        super().__init__(
            dag=trace.dag,
            initial=np.asarray(trace.initial_tasks, dtype=np.int64),
            changed_edges=np.zeros(trace.dag.n_edges, dtype=bool),
        )

    def complete_live(
        self, u: int, changed: bool
    ) -> tuple[list[int], list[int]]:
        """Record ``u``'s completion with its observed change flag."""
        lo, hi = self.dag.out_edge_range(u)
        self.changed_edges[lo:hi] = changed
        return self.complete(u)


@dataclass
class RoundOutcome:
    """Everything one executed round produced and measured."""

    scheduler_name: str
    workers: int
    values: ValueStore
    #: executor backend that ran the round (``thread`` | ``process``)
    backend: str = "thread"
    #: real changed/unchanged signal per executed node
    diffs: dict[int, bool] = field(default_factory=dict)
    #: wall-clock ``(start, finish)`` per executed node, seconds
    #: relative to the round's origin
    records: dict[int, tuple[float, float]] = field(default_factory=dict)
    wall_latency_s: float = 0.0
    #: coordinator time spent inside scheduler hooks
    overhead_s: float = 0.0
    #: coordination dead time: completion-to-dispatch windows during
    #: which at least one worker idled (the real-run analog of the
    #: simulator's inline-charged scheduling overhead)
    stall_s: float = 0.0
    #: thread-pool handoff latency, Σ max(0, unit start − dispatch)
    dispatch_lag_s: float = 0.0
    #: maximal intervals (round-relative) during which the coordinator
    #: was deciding or handing work to the pool — the periods the
    #: simulator models as instantaneous
    coord_intervals: list[tuple[float, float]] = field(default_factory=list)
    prepare_s: float = 0.0
    select_calls: int = 0
    scheduler_ops: int = 0
    precompute_ops: int = 0
    precompute_memory_cells: int = 0
    runtime_peak_memory_cells: int = 0
    #: failed attempts that were re-dispatched under the retry policy
    unit_retries: int = 0
    #: worker lanes that died mid-round and were replaced
    lane_deaths: int = 0
    #: nodes the soft watchdog flagged as overdue (they still finished)
    stragglers: list[int] = field(default_factory=list)
    #: chaos injections observed during the round (0 without chaos)
    injected_faults: int = 0


#: lane shutdown sentinel
_STOP = object()


class _LaneKilled(BaseException):
    """Internal: chaos killed the lane running this attempt."""


class _WorkerLanes:
    """A supervised set of worker threads over one dispatch queue.

    Unlike an opaque pool, lanes are individually replaceable: when a
    lane dies mid-attempt the coordinator calls :meth:`spawn` to
    restore capacity, so a chaos kill (or a harness bug that escapes a
    unit) costs one re-dispatch instead of the round. ``cancel``
    makes lanes drop queued work instead of draining it — cooperative
    cancellation for aborted rounds.
    """

    def __init__(
        self,
        workers: int,
        target,
        tasks: queue.SimpleQueue,
        cancel: threading.Event,
        name_prefix: str = "repro-runtime",
    ) -> None:
        self._target = target
        self._prefix = name_prefix
        self.tasks = tasks
        self.cancel = cancel
        self._threads: list[threading.Thread] = []
        self._spawned = 0
        for _ in range(workers):
            self.spawn()

    def spawn(self) -> None:
        """Start one (more) lane thread."""
        t = threading.Thread(
            target=self._target,
            name=f"{self._prefix}-{self._spawned}",
            daemon=True,
        )
        self._spawned += 1
        self._threads.append(t)
        t.start()

    @property
    def spawned(self) -> int:
        return self._spawned

    def shutdown(self) -> None:
        """Cancel, wake every lane with a sentinel, and join them all.

        One sentinel is enqueued per thread ever spawned; dead lanes
        leave theirs unconsumed, so every surviving lane is guaranteed
        to see one. After this returns no lane thread is alive — the
        no-leak guarantee the deadline regression test pins.
        """
        self.cancel.set()
        for _ in self._threads:
            self.tasks.put(_STOP)
        for t in self._threads:
            t.join()


class RoundExecutor:
    """Runs one :class:`~repro.datalog.units.ExecutionPlan` for real.

    Parameters
    ----------
    plan, scheduler, workers, deadline, sink:
        As before: the compiled plan, the driving scheduler, lane
        count, optional hard wall-clock deadline for the whole round,
        and trace sink.
    retry:
        Optional :class:`RetryPolicy`; ``None`` (the default) keeps
        the historical fail-fast behavior — the first unit failure
        aborts the round.
    unit_timeout_s:
        Optional soft per-unit watchdog: an attempt in flight longer
        than this is marked on :attr:`RoundOutcome.stragglers` (and as
        a ``unit-straggler`` trace instant). Soft only — the unit is
        never killed; the hard ``deadline`` bounds the round.
    chaos:
        Optional :class:`~repro.runtime.chaos.ChaosInjector` consulted
        on every dispatched attempt. ``None`` keeps the hot path
        byte-identical to a chaos-free build.
    backend:
        ``"thread"`` (default) runs units on shared-memory worker
        threads; ``"process"`` forks worker processes per round
        (:class:`~repro.runtime.procpool.ProcessLanes`) so CPU-bound
        joins overlap for real instead of time-slicing under the GIL.
        The coordinator loop, supervision, retry, and chaos semantics
        are identical — process lanes reproduce the thread backend's
        completion messages exactly.
    """

    def __init__(
        self,
        plan: ExecutionPlan,
        scheduler: Scheduler,
        workers: int = 4,
        deadline: float | None = None,
        sink: TraceSink = NULL_SINK,
        retry: RetryPolicy | None = None,
        unit_timeout_s: float | None = None,
        chaos: ChaosInjector | None = None,
        backend: str = "thread",
    ) -> None:
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        if unit_timeout_s is not None and unit_timeout_s <= 0:
            raise ValueError(
                f"unit_timeout_s must be positive, got {unit_timeout_s}"
            )
        if backend not in EXECUTOR_BACKENDS:
            raise ValueError(
                f"backend must be one of {EXECUTOR_BACKENDS}, "
                f"got {backend!r}"
            )
        self.backend = backend
        self.plan = plan
        self.scheduler = scheduler
        self.workers = workers
        self.deadline = deadline
        self.sink = sink
        self.retry = retry
        self.unit_timeout_s = unit_timeout_s
        self.chaos = chaos

    # ------------------------------------------------------------------
    def run(self) -> RoundOutcome:
        """Execute the round; returns measurements and real diffs.

        Raises :class:`~repro.sim.engine.InvalidDispatchError` /
        :class:`~repro.sim.engine.SchedulerStallError` on scheduler
        misbehavior (validated against the live activation state, like
        the simulator validates against ground truth) and
        :class:`UnitExecutionError` when a unit fails permanently —
        immediately without a retry policy, after budget exhaustion
        with one. However it exits, every lane thread is joined and
        late completions are discarded before control returns.
        """
        plan, scheduler, workers = self.plan, self.scheduler, self.workers
        sink, chaos, retry = self.sink, self.chaos, self.retry
        tracing = sink.enabled
        trace = plan.compiled.trace
        state = LiveActivationState(plan)
        scheduler.reset_counters()
        oracle = ReadinessOracle(state.is_ready)
        scheduler.bind_oracle(oracle)
        scheduler.bind_sink(sink)
        ctx = SchedulerContext(
            trace=trace, processors=workers, oracle=oracle
        )
        t_prep = perf_counter()
        with sink.span("prepare", "phase", args={"sched": scheduler.name}):
            scheduler.prepare(ctx)
        prepare_s = perf_counter() - t_prep

        values = plan.new_store()
        outcome = RoundOutcome(
            scheduler_name=scheduler.name,
            workers=workers,
            values=values,
            backend=self.backend,
            prepare_s=prepare_s,
        )
        faults0 = chaos.injected_total if chaos is not None else 0
        completions: queue.SimpleQueue = queue.SimpleQueue()
        tasks: queue.SimpleQueue = queue.SimpleQueue()
        cancel = threading.Event()
        origin = perf_counter()

        def clock() -> float:
            return perf_counter() - origin

        def run_attempt(unit: WorkUnit, attempt: int) -> None:
            if chaos is not None:
                decide = chaos.unit_outcome(unit.node, attempt)
                if decide.kill_worker:
                    raise _LaneKilled()
                if decide.latency_s > 0.0:
                    sleep(decide.latency_s)
                injected = decide.fail
            else:
                injected = False
            t0 = perf_counter()
            try:
                if injected:
                    raise InjectedUnitFault(unit.node, attempt)
                value, err = unit.execute(values), None
            except BaseException as exc:  # handled by the coordinator
                value, err = None, exc
            completions.put(
                ("done", unit.node, attempt, value, t0, perf_counter(), err)
            )

        if tracing:
            # per-WorkUnit span recorded by the worker itself, into its
            # own thread-local buffer — the worker id is the span's tid
            def exec_attempt(unit: WorkUnit, attempt: int) -> None:
                sink.set_thread_name(threading.current_thread().name)
                with sink.span(
                    f"unit:{unit.node}",
                    "unit",
                    args={
                        "node": unit.node,
                        "label": unit.label,
                        "attempt": attempt,
                    },
                ):
                    run_attempt(unit, attempt)
        else:
            exec_attempt = run_attempt

        def lane_loop() -> None:
            while True:
                item = tasks.get()
                if item is _STOP:
                    return
                if cancel.is_set():
                    # aborted round: drop queued work instead of
                    # draining the plan
                    continue
                unit, attempt = item
                try:
                    exec_attempt(unit, attempt)
                except _LaneKilled:
                    completions.put(
                        ("lane-died", unit.node, attempt, perf_counter())
                    )
                    return
                except BaseException as exc:  # pragma: no cover
                    # a bug in the lane machinery itself: surface it as
                    # the unit's failure so the round aborts typed
                    completions.put(
                        (
                            "lane-crashed",
                            unit.node,
                            attempt,
                            perf_counter(),
                            exc,
                        )
                    )
                    return

        inflight = 0
        overhead = 0.0
        stall = 0.0
        dispatch_lag = 0.0
        # open coordination window: (start, busy workers during it)
        window: tuple[float, float] | None = None
        #: nodes submitted since the last window close
        just_submitted: list[int] = []
        #: node → the window-close instant after its submit; a unit
        #: starting later than this kept a worker idle on pool handoff
        handoff_from: dict[int, float] = {}
        coord: list[tuple[float, float]] = []
        #: node → dispatch attempts issued so far (0-based last attempt)
        attempts: dict[int, int] = {}
        #: node → recorded (non-lane-death) failures
        failures: dict[int, int] = {}
        #: (due perf_counter stamp, node) min-heap of pending retries
        retry_heap: list[tuple[float, int]] = []
        watchdog = self.unit_timeout_s
        #: node → dispatch stamp, maintained only when the watchdog is on
        dispatched_at: dict[int, float] = {}
        marked: set[int] = set()
        if self.backend == "process":
            # forked lanes inherit the patched plan by copy-on-write;
            # dispatches ship computed-input diffs and the chaos
            # decision, the pump thread restores thread-shaped
            # completions — the loop below is backend-blind
            lanes: _WorkerLanes | ProcessLanes = ProcessLanes(
                workers,
                plan,
                values,
                completions,
                chaos=chaos,
                sink=sink if tracing else None,
            )
            dispatch = lanes.dispatch
        else:
            lanes = _WorkerLanes(workers, lane_loop, tasks, cancel)

            def dispatch(node: int, a: int) -> None:
                tasks.put((plan.units[node], a))

        def submit_attempt(node: int) -> None:
            a = attempts.get(node, -1) + 1
            attempts[node] = a
            if watchdog is not None:
                dispatched_at[node] = perf_counter()
            dispatch(node, a)

        try:
            dispatchable0, activated0 = state.bootstrap()
            oracle.push_ready_events(dispatchable0)
            h0 = perf_counter()
            ops0 = scheduler.ops
            for v in activated0:
                scheduler.on_activate(v, 0.0)
            overhead += perf_counter() - h0
            if tracing:
                sink.add_to_current("activate_ops", scheduler.ops - ops0)

            while True:
                # due retries take freed lanes first — the scheduler
                # already dispatched these nodes; re-dispatch is the
                # executor's business, not a new select decision
                if retry_heap:
                    now_pc = perf_counter()
                    while (
                        retry_heap
                        and inflight < workers
                        and retry_heap[0][0] <= now_pc
                    ):
                        _, v = heapq.heappop(retry_heap)
                        submit_attempt(v)
                        just_submitted.append(v)
                        inflight += 1

                # dispatch: keep asking while the scheduler produces work
                while inflight < workers:
                    t = clock()
                    h0 = perf_counter()
                    ops0 = scheduler.ops
                    chosen = scheduler.select(workers - inflight, t)
                    overhead += perf_counter() - h0
                    if tracing:
                        sink.add_to_current(
                            "ready_scan_ops", scheduler.ops - ops0
                        )
                        sink.add_to_current("select_calls", 1)
                    outcome.select_calls += 1
                    if not chosen:
                        break
                    if len(chosen) > workers - inflight:
                        raise InvalidDispatchError(
                            f"{scheduler.name} returned {len(chosen)} tasks "
                            f"for {workers - inflight} idle workers"
                        )
                    for v in chosen:
                        try:
                            state.mark_dispatched(v)
                        except RuntimeError as exc:
                            raise InvalidDispatchError(
                                f"{scheduler.name} dispatched task {v} "
                                f"illegally: {exc}"
                            ) from exc
                        submit_attempt(v)
                        just_submitted.append(v)
                        inflight += 1

                # the coordination window that began at the last popped
                # completion ends here: from now on any worker idleness
                # is the scheduler's choice, not coordination latency
                now = perf_counter()
                for v in just_submitted:
                    handoff_from[v] = now
                just_submitted.clear()
                if window is not None:
                    w_start, busy = window
                    if busy > 0:
                        stall += max(0.0, now - w_start)
                    if now > w_start:
                        coord.append((w_start - origin, now - origin))
                    window = None

                if inflight == 0 and not retry_heap:
                    if state.all_done():
                        break
                    raise SchedulerStallError(
                        f"{scheduler.name} stalled on {trace.name}: "
                        f"{state.pending_count()} task(s) pending, none "
                        "running, none selected"
                    )

                msg = self._await_event(
                    completions, state, clock, retry_heap, dispatched_at,
                    marked, inflight,
                )
                if msg is None:
                    # timer tick: a retry came due or a unit went
                    # overdue — mark stragglers and loop back to the
                    # dispatch stage
                    self._mark_stragglers(
                        dispatched_at, marked, outcome
                    )
                    continue

                if msg[0] == "lane-died":
                    _, node, attempt, _t = msg
                    # supervision: replace the lane and re-dispatch the
                    # orphaned unit — a killed lane is capacity loss,
                    # not a unit failure, so no retry budget is charged
                    lanes.spawn()
                    outcome.lane_deaths += 1
                    if watchdog is not None:
                        dispatched_at.pop(node, None)
                    if tracing:
                        sink.record_instant(
                            "lane-replaced",
                            args={"node": node, "attempt": attempt},
                        )
                    submit_attempt(node)
                    just_submitted.append(node)
                    continue

                if msg[0] == "lane-crashed":
                    _, node, attempt, t1, err = msg
                    lanes.spawn()
                    outcome.lane_deaths += 1
                    value, t0 = None, t1
                else:
                    _, node, attempt, value, t0, t1, err = msg

                inflight -= 1
                if watchdog is not None:
                    dispatched_at.pop(node, None)
                # window opens at the worker's finish stamp (covers the
                # queue-wake latency too); `now` closed the previous one
                window = (max(t1, now), inflight)
                h = handoff_from.pop(node, t0)
                if t0 > h:
                    dispatch_lag += t0 - h
                    coord.append((h - origin, t0 - origin))

                if err is not None:
                    nfail = failures.get(node, 0) + 1
                    failures[node] = nfail
                    if retry is not None and retry.allows(nfail):
                        delay = retry.backoff_delay(nfail)
                        heapq.heappush(
                            retry_heap, (perf_counter() + delay, node)
                        )
                        outcome.unit_retries += 1
                        if chaos is not None:
                            chaos.note_retry(node, attempts[node], delay)
                        if tracing:
                            sink.record_instant(
                                "unit-retry",
                                args={
                                    "node": node,
                                    "failures": nfail,
                                    "backoff_s": delay,
                                },
                            )
                        continue
                    # budget exhausted: the unit is poison — quarantine
                    # it, stop dispatching, and surface every failure
                    raise self._quarantine(
                        node, err, attempts, completions, lanes
                    ) from err

                values.set(node, value)
                changed = value != plan.units[node].old_value
                outcome.diffs[node] = changed
                outcome.records[node] = (t0 - origin, t1 - origin)

                t = clock()
                h0 = perf_counter()
                ops0 = scheduler.ops
                dispatchable, newly_activated = state.complete_live(
                    node, changed
                )
                oracle.push_ready_events(dispatchable)
                for v in newly_activated:
                    scheduler.on_activate(v, t)
                scheduler.on_complete(node, t)
                overhead += perf_counter() - h0
                if tracing:
                    sink.add_to_current(
                        "complete_ops", scheduler.ops - ops0
                    )
        finally:
            lanes.shutdown()
            # completions that landed after an abort (deadline, chaos,
            # quarantine) belong to a dead round: drain and discard so
            # nothing dangles — every lane is already joined above
            while True:
                try:
                    completions.get_nowait()
                except queue.Empty:
                    break

        outcome.wall_latency_s = clock()
        outcome.overhead_s = overhead
        outcome.stall_s = stall
        outcome.dispatch_lag_s = dispatch_lag
        coord.sort()
        merged: list[tuple[float, float]] = []
        for a, b in coord:
            if merged and a <= merged[-1][1]:
                if b > merged[-1][1]:
                    merged[-1] = (merged[-1][0], b)
            else:
                merged.append((a, b))
        outcome.coord_intervals = merged
        outcome.scheduler_ops = scheduler.ops
        outcome.precompute_ops = scheduler.precompute_ops
        outcome.precompute_memory_cells = scheduler.precompute_memory_cells
        outcome.runtime_peak_memory_cells = (
            scheduler.runtime_peak_memory_cells
        )
        if chaos is not None:
            outcome.injected_faults = chaos.injected_total - faults0
        return outcome

    # ------------------------------------------------------------------
    def _quarantine(
        self,
        node: int,
        err: BaseException,
        attempts: dict[int, int],
        completions: queue.SimpleQueue,
        lanes: "_WorkerLanes | ProcessLanes",
    ) -> UnitExecutionError:
        """Build the aborting aggregate for a permanently failed unit.

        Cancellation is raised first so lanes stop draining the plan;
        any *other* failures already sitting in the completion queue
        ride along in the aggregate (they would never get their retry —
        the round is over — and hiding them helps nobody).
        """
        plan, chaos = self.plan, self.chaos
        lanes.cancel.set()
        failures = [
            UnitFailure(
                node=node,
                label=plan.units[node].label,
                attempts=attempts.get(node, 0) + 1,
                error=err,
            )
        ]
        while True:
            try:
                msg = completions.get_nowait()
            except queue.Empty:
                break
            if msg[0] != "done" or msg[6] is None:
                continue
            other = msg[1]
            failures.append(
                UnitFailure(
                    node=other,
                    label=plan.units[other].label,
                    attempts=attempts.get(other, 0) + 1,
                    error=msg[6],
                )
            )
        if chaos is not None:
            for f in failures:
                chaos.note_quarantine(f.node, f.attempts)
        if self.sink.enabled:
            self.sink.record_instant(
                "quarantine",
                args={
                    "nodes": [f.node for f in failures],
                    "attempts": failures[0].attempts,
                },
            )
        return UnitExecutionError.from_failures(failures)

    # ------------------------------------------------------------------
    def _mark_stragglers(
        self,
        dispatched_at: dict[int, float],
        marked: set[int],
        outcome: RoundOutcome,
    ) -> None:
        """Flag in-flight units overdue past the soft watchdog."""
        watchdog = self.unit_timeout_s
        if watchdog is None:
            return
        now = perf_counter()
        for node, stamp in dispatched_at.items():
            if node in marked or now - stamp < watchdog:
                continue
            marked.add(node)
            outcome.stragglers.append(node)
            if self.sink.enabled:
                self.sink.record_instant(
                    "unit-straggler",
                    args={"node": node, "running_s": now - stamp},
                )

    # ------------------------------------------------------------------
    def _await_event(
        self,
        completions: queue.SimpleQueue,
        state: LiveActivationState,
        clock,
        retry_heap: list[tuple[float, int]],
        dispatched_at: dict[int, float],
        marked: set[int],
        inflight: int,
    ):
        """Block for the next worker message, honoring every timer.

        Returns ``None`` on a timer tick (a retry came due or the
        watchdog wants a straggler scan); raises
        :class:`~repro.sim.faults.DeadlineExceededError` once the hard
        round deadline has passed. With no deadline, no pending
        retries, and no watchdog this is a plain blocking ``get()`` —
        the chaos-free hot path pays nothing.
        """
        timeout: float | None = None
        if self.deadline is not None:
            remaining = self.deadline - clock()
            if remaining <= 0:
                raise DeadlineExceededError(
                    self.deadline, clock(), state.pending_count()
                )
            timeout = remaining
        now_pc = perf_counter()
        if retry_heap and inflight < self.workers:
            # a due retry is only actionable once a lane is free; with
            # every lane busy the next interesting event is a completion
            due = retry_heap[0][0] - now_pc
            timeout = due if timeout is None else min(timeout, due)
        if self.unit_timeout_s is not None:
            pending = [
                stamp
                for node, stamp in dispatched_at.items()
                if node not in marked
            ]
            if pending:
                overdue = min(pending) + self.unit_timeout_s - now_pc
                timeout = (
                    overdue if timeout is None else min(timeout, overdue)
                )
        if timeout is None:
            return completions.get()
        if timeout <= 0:
            return None
        try:
            return completions.get(timeout=timeout)
        except queue.Empty:
            return None
