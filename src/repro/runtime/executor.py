"""Concurrent execution of one compiled maintenance round.

The executor is the runtime twin of :func:`repro.sim.engine.simulate`:
the same scheduler ABC, the same hook order (bootstrap → ``on_activate``
→ loop of ``select`` / dispatch / completion → ``on_complete``), the
same dispatch validation — but "executing a task" means a worker thread
actually runs the node's :class:`~repro.datalog.units.WorkUnit` against
the shared value store, and the changed/unchanged signal that decides
child activation is the *real* diff between the unit's output and its
value under the old materialization.

Threading model
---------------
One coordinator (the caller's thread) owns all scheduler and activation
state; worker threads only run units and timestamp themselves. Workers
communicate results back over a queue, so every scheduler hook and
every ``ValueStore.set`` happens on the coordinator — schedulers need
no locking, exactly as in the simulator. A unit only reads values of
nodes that were resolved before it was dispatched, and the completion
queue's put/get pair orders those writes before the worker's reads.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from ..datalog.units import ExecutionPlan, ValueStore, WorkUnit
from ..obs.trace import NULL_SINK, TraceSink
from ..schedulers.base import ReadinessOracle, Scheduler, SchedulerContext
from ..sim.engine import InvalidDispatchError, SchedulerStallError
from ..sim.faults import DeadlineExceededError
from ..tasks.activation import ActivationState

__all__ = [
    "LiveActivationState",
    "RoundExecutor",
    "RoundOutcome",
    "UnitExecutionError",
]


class UnitExecutionError(RuntimeError):
    """A work unit raised while executing; the round is aborted."""

    def __init__(self, node: int, label: str, cause: BaseException) -> None:
        super().__init__(
            f"unit {node} ({label}) failed: {type(cause).__name__}: {cause}"
        )
        self.node = node


class LiveActivationState(ActivationState):
    """Activation bookkeeping driven by *observed* diffs.

    :class:`~repro.tasks.activation.ActivationState` delivers change
    signals from a precompiled per-edge array; in a real run the signal
    only exists once the node has executed and its output has been
    diffed. Completion therefore stamps the observed flag onto all of
    the node's out-edges first — the compiler derives its per-edge
    flags the same way (``changed[source]`` broadcast over out-edges),
    so when real diffs match the compiled ones the cascades are
    identical — and then reuses the parent class's resolution logic
    unchanged.
    """

    def __init__(self, plan: ExecutionPlan) -> None:
        trace = plan.compiled.trace
        super().__init__(
            dag=trace.dag,
            initial=np.asarray(trace.initial_tasks, dtype=np.int64),
            changed_edges=np.zeros(trace.dag.n_edges, dtype=bool),
        )

    def complete_live(
        self, u: int, changed: bool
    ) -> tuple[list[int], list[int]]:
        """Record ``u``'s completion with its observed change flag."""
        lo, hi = self.dag.out_edge_range(u)
        self.changed_edges[lo:hi] = changed
        return self.complete(u)


@dataclass
class RoundOutcome:
    """Everything one executed round produced and measured."""

    scheduler_name: str
    workers: int
    values: ValueStore
    #: real changed/unchanged signal per executed node
    diffs: dict[int, bool] = field(default_factory=dict)
    #: wall-clock ``(start, finish)`` per executed node, seconds
    #: relative to the round's origin
    records: dict[int, tuple[float, float]] = field(default_factory=dict)
    wall_latency_s: float = 0.0
    #: coordinator time spent inside scheduler hooks
    overhead_s: float = 0.0
    #: coordination dead time: completion-to-dispatch windows during
    #: which at least one worker idled (the real-run analog of the
    #: simulator's inline-charged scheduling overhead)
    stall_s: float = 0.0
    #: thread-pool handoff latency, Σ max(0, unit start − dispatch)
    dispatch_lag_s: float = 0.0
    #: maximal intervals (round-relative) during which the coordinator
    #: was deciding or handing work to the pool — the periods the
    #: simulator models as instantaneous
    coord_intervals: list[tuple[float, float]] = field(default_factory=list)
    prepare_s: float = 0.0
    select_calls: int = 0
    scheduler_ops: int = 0
    precompute_ops: int = 0
    precompute_memory_cells: int = 0
    runtime_peak_memory_cells: int = 0


class RoundExecutor:
    """Runs one :class:`~repro.datalog.units.ExecutionPlan` for real."""

    def __init__(
        self,
        plan: ExecutionPlan,
        scheduler: Scheduler,
        workers: int = 4,
        deadline: float | None = None,
        sink: TraceSink = NULL_SINK,
    ) -> None:
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        self.plan = plan
        self.scheduler = scheduler
        self.workers = workers
        self.deadline = deadline
        self.sink = sink

    # ------------------------------------------------------------------
    def run(self) -> RoundOutcome:
        """Execute the round; returns measurements and real diffs.

        Raises :class:`~repro.sim.engine.InvalidDispatchError` /
        :class:`~repro.sim.engine.SchedulerStallError` on scheduler
        misbehavior (validated against the live activation state, like
        the simulator validates against ground truth) and
        :class:`UnitExecutionError` if a unit raises.
        """
        plan, scheduler, workers = self.plan, self.scheduler, self.workers
        sink = self.sink
        tracing = sink.enabled
        trace = plan.compiled.trace
        state = LiveActivationState(plan)
        scheduler.reset_counters()
        oracle = ReadinessOracle(state.is_ready)
        scheduler.bind_oracle(oracle)
        scheduler.bind_sink(sink)
        ctx = SchedulerContext(
            trace=trace, processors=workers, oracle=oracle
        )
        t_prep = perf_counter()
        with sink.span("prepare", "phase", args={"sched": scheduler.name}):
            scheduler.prepare(ctx)
        prepare_s = perf_counter() - t_prep

        values = plan.new_store()
        outcome = RoundOutcome(
            scheduler_name=scheduler.name,
            workers=workers,
            values=values,
            prepare_s=prepare_s,
        )
        completions: queue.SimpleQueue = queue.SimpleQueue()
        origin = perf_counter()

        def clock() -> float:
            return perf_counter() - origin

        def exec_unit(unit: WorkUnit) -> None:
            t0 = perf_counter()
            try:
                value, err = unit.execute(values), None
            except BaseException as exc:  # propagated by the coordinator
                value, err = None, exc
            completions.put((unit.node, value, t0, perf_counter(), err))

        if tracing:
            # per-WorkUnit span recorded by the worker itself, into its
            # own thread-local buffer — the worker id is the span's tid
            def run_unit(unit: WorkUnit) -> None:
                sink.set_thread_name(threading.current_thread().name)
                with sink.span(
                    f"unit:{unit.node}",
                    "unit",
                    args={"node": unit.node, "label": unit.label},
                ):
                    exec_unit(unit)
        else:
            run_unit = exec_unit

        inflight = 0
        overhead = 0.0
        stall = 0.0
        dispatch_lag = 0.0
        # open coordination window: (start, busy workers during it)
        window: tuple[float, float] | None = None
        #: nodes submitted since the last window close
        just_submitted: list[int] = []
        #: node → the window-close instant after its submit; a unit
        #: starting later than this kept a worker idle on pool handoff
        handoff_from: dict[int, float] = {}
        coord: list[tuple[float, float]] = []
        pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-runtime"
        )
        try:
            dispatchable0, activated0 = state.bootstrap()
            oracle.push_ready_events(dispatchable0)
            h0 = perf_counter()
            ops0 = scheduler.ops
            for v in activated0:
                scheduler.on_activate(v, 0.0)
            overhead += perf_counter() - h0
            if tracing:
                sink.add_to_current("activate_ops", scheduler.ops - ops0)

            while True:
                # dispatch: keep asking while the scheduler produces work
                while inflight < workers:
                    t = clock()
                    h0 = perf_counter()
                    ops0 = scheduler.ops
                    chosen = scheduler.select(workers - inflight, t)
                    overhead += perf_counter() - h0
                    if tracing:
                        sink.add_to_current(
                            "ready_scan_ops", scheduler.ops - ops0
                        )
                        sink.add_to_current("select_calls", 1)
                    outcome.select_calls += 1
                    if not chosen:
                        break
                    if len(chosen) > workers - inflight:
                        raise InvalidDispatchError(
                            f"{scheduler.name} returned {len(chosen)} tasks "
                            f"for {workers - inflight} idle workers"
                        )
                    for v in chosen:
                        try:
                            state.mark_dispatched(v)
                        except RuntimeError as exc:
                            raise InvalidDispatchError(
                                f"{scheduler.name} dispatched task {v} "
                                f"illegally: {exc}"
                            ) from exc
                        pool.submit(run_unit, plan.units[v])
                        just_submitted.append(v)
                        inflight += 1

                # the coordination window that began at the last popped
                # completion ends here: from now on any worker idleness
                # is the scheduler's choice, not coordination latency
                now = perf_counter()
                for v in just_submitted:
                    handoff_from[v] = now
                just_submitted.clear()
                if window is not None:
                    w_start, busy = window
                    if busy > 0:
                        stall += max(0.0, now - w_start)
                    if now > w_start:
                        coord.append((w_start - origin, now - origin))
                    window = None

                if inflight == 0:
                    if state.all_done():
                        break
                    raise SchedulerStallError(
                        f"{scheduler.name} stalled on {trace.name}: "
                        f"{state.pending_count()} task(s) pending, none "
                        "running, none selected"
                    )

                node, value, t0, t1, err = self._next_completion(
                    completions, state, clock
                )
                inflight -= 1
                # window opens at the worker's finish stamp (covers the
                # queue-wake latency too); `now` closed the previous one
                window = (max(t1, now), inflight)
                h = handoff_from.pop(node, t0)
                if t0 > h:
                    dispatch_lag += t0 - h
                    coord.append((h - origin, t0 - origin))
                if err is not None:
                    raise UnitExecutionError(
                        node, plan.units[node].label, err
                    ) from err
                values.set(node, value)
                changed = value != plan.units[node].old_value
                outcome.diffs[node] = changed
                outcome.records[node] = (t0 - origin, t1 - origin)

                t = clock()
                h0 = perf_counter()
                ops0 = scheduler.ops
                dispatchable, newly_activated = state.complete_live(
                    node, changed
                )
                oracle.push_ready_events(dispatchable)
                for v in newly_activated:
                    scheduler.on_activate(v, t)
                scheduler.on_complete(node, t)
                overhead += perf_counter() - h0
                if tracing:
                    sink.add_to_current(
                        "complete_ops", scheduler.ops - ops0
                    )
        finally:
            pool.shutdown(wait=True, cancel_futures=True)

        outcome.wall_latency_s = clock()
        outcome.overhead_s = overhead
        outcome.stall_s = stall
        outcome.dispatch_lag_s = dispatch_lag
        coord.sort()
        merged: list[tuple[float, float]] = []
        for a, b in coord:
            if merged and a <= merged[-1][1]:
                if b > merged[-1][1]:
                    merged[-1] = (merged[-1][0], b)
            else:
                merged.append((a, b))
        outcome.coord_intervals = merged
        outcome.scheduler_ops = scheduler.ops
        outcome.precompute_ops = scheduler.precompute_ops
        outcome.precompute_memory_cells = scheduler.precompute_memory_cells
        outcome.runtime_peak_memory_cells = (
            scheduler.runtime_peak_memory_cells
        )
        return outcome

    # ------------------------------------------------------------------
    def _next_completion(self, completions, state, clock):
        """Block for the next worker completion, honoring the deadline."""
        if self.deadline is None:
            return completions.get()
        while True:
            remaining = self.deadline - clock()
            if remaining <= 0:
                raise DeadlineExceededError(
                    self.deadline, clock(), state.pending_count()
                )
            try:
                return completions.get(timeout=remaining)
            except queue.Empty:
                continue
