"""Binary trace serialization (NumPy ``.npz``).

The JSON schema in :mod:`repro.tasks.trace` is the interchange format;
it is human-diffable but a full-scale trace #11 (465k nodes) costs tens
of megabytes and seconds to parse. This module stores the same schema
as a compressed ``.npz`` bundle — one array per field — loading in
milliseconds. Both formats round-trip through the same
:class:`~repro.tasks.JobTrace` value.

Format (schema v1):

* ``edges``        — (E, 2) int64
* ``work``/``span``— (V,) float64
* ``models``       — (V,) int8
* ``is_task``      — (V,) bool
* ``initial``      — int64 ids
* ``changed``      — (E,) bool
* ``meta_json``    — one JSON string holding name/metadata/n_nodes
* ``names_json``   — optional JSON list of node names
"""

from __future__ import annotations

import io
import json
from pathlib import Path

import numpy as np

from ..dag.graph import Dag
from .trace import JobTrace

__all__ = ["save_npz", "load_npz"]

_SCHEMA = 1


def save_npz(trace: JobTrace, path: str | Path) -> None:
    """Write ``trace`` to a compressed ``.npz`` file."""
    meta = {
        "schema": _SCHEMA,
        "name": trace.name,
        "metadata": trace.metadata,
        "n_nodes": trace.dag.n_nodes,
    }
    arrays = {
        "edges": trace.dag.edge_array(),
        "work": trace.work,
        "span": trace.span,
        "models": trace.models,
        "is_task": trace.is_task,
        "initial": trace.initial_tasks,
        "changed": trace.changed_edges,
        "meta_json": np.array(json.dumps(meta)),
    }
    if trace.dag.node_names is not None:
        arrays["names_json"] = np.array(json.dumps(trace.dag.node_names))
    with open(path, "wb") as fh:
        np.savez_compressed(fh, **arrays)


def load_npz(path: str | Path | io.BytesIO) -> JobTrace:
    """Load a trace written by :func:`save_npz`."""
    with np.load(path, allow_pickle=False) as data:
        meta = json.loads(str(data["meta_json"]))
        if meta.get("schema") != _SCHEMA:
            raise ValueError(f"unsupported npz schema {meta.get('schema')!r}")
        names = (
            json.loads(str(data["names_json"]))
            if "names_json" in data
            else None
        )
        dag = Dag(
            int(meta["n_nodes"]),
            data["edges"],
            node_names=names,
            validate=False,  # written from a validated trace
        )
        return JobTrace(
            dag=dag,
            work=data["work"],
            span=data["span"],
            models=data["models"],
            is_task=data["is_task"],
            initial_tasks=data["initial"],
            changed_edges=data["changed"],
            name=meta.get("name", "trace"),
            metadata=meta.get("metadata", {}),
        )
