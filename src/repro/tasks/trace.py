"""Job traces: the experiment input format (Table I's rows).

A :class:`JobTrace` bundles everything the paper's C++ simulator read
from a LogicBlox trace file:

* the structure of the computation DAG ``G``;
* per-task metadata — processing time (work), span, execution model,
  and whether the node is a *task* or a plumbing *predicate node*
  ("nodes used to collect inputs and outputs", Figure 1);
* the update: which initial tasks were dirtied, and the realized
  change outcome per edge.

Traces are value objects: loading one precomputes the ground-truth
propagation (the realized active graph ``H``) once; simulations can then
be re-run against the same trace with different schedulers.

Serialization is a single JSON document (schema version 1) so the
synthetic release trace — the paper's job trace #11 analogue — can be
shipped and diffed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import IO, Any

import numpy as np

from ..dag.graph import Dag
from ..dag.levels import compute_levels, num_levels
from .activation import ActivationState, PropagationResult, propagate_changes
from .model import ExecutionModel

__all__ = ["JobTrace"]

_SCHEMA_VERSION = 1


@dataclass
class JobTrace:
    """A scheduling workload: DAG + task metadata + one update.

    Parameters
    ----------
    dag:
        The computation DAG ``G``.
    work:
        Per-node work (processing time on one processor), shape ``(V,)``.
        Plumbing predicate nodes should carry 0.
    initial_tasks:
        Node ids dirtied by the update (execute unconditionally).
    changed_edges:
        Boolean per dense edge index: does this edge deliver a changed
        output *if its source executes*?
    span:
        Per-node span; defaults to ``work`` (sequential tasks).
    models:
        Per-node :class:`ExecutionModel` codes; defaults to SEQUENTIAL.
    is_task:
        Per-node flag distinguishing activatable tasks from plumbing
        predicate nodes; defaults to all-True.
    name / metadata:
        Free-form labeling for reports.
    """

    dag: Dag
    work: np.ndarray
    initial_tasks: np.ndarray
    changed_edges: np.ndarray
    span: np.ndarray | None = None
    models: np.ndarray | None = None
    is_task: np.ndarray | None = None
    name: str = "trace"
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        n, e = self.dag.n_nodes, self.dag.n_edges
        self.work = np.asarray(self.work, dtype=np.float64)
        self.initial_tasks = np.unique(
            np.asarray(self.initial_tasks, dtype=np.int64)
        )
        self.changed_edges = np.asarray(self.changed_edges, dtype=bool)
        if self.span is None:
            self.span = self.work.copy()
        else:
            self.span = np.asarray(self.span, dtype=np.float64)
        if self.models is None:
            self.models = np.full(n, ExecutionModel.SEQUENTIAL, dtype=np.int8)
        else:
            self.models = np.asarray(self.models, dtype=np.int8)
        if self.is_task is None:
            self.is_task = np.ones(n, dtype=bool)
        else:
            self.is_task = np.asarray(self.is_task, dtype=bool)

        if self.work.shape != (n,):
            raise ValueError(f"work must have shape ({n},), got {self.work.shape}")
        if self.span.shape != (n,):
            raise ValueError(f"span must have shape ({n},)")
        if self.models.shape != (n,):
            raise ValueError(f"models must have shape ({n},)")
        if self.is_task.shape != (n,):
            raise ValueError(f"is_task must have shape ({n},)")
        if self.changed_edges.shape != (e,):
            raise ValueError(
                f"changed_edges must have shape ({e},), got "
                f"{self.changed_edges.shape}"
            )
        if np.any(self.work < 0) or np.any(self.span < 0):
            raise ValueError("work/span must be non-negative")
        if self.initial_tasks.size and (
            self.initial_tasks.min() < 0 or self.initial_tasks.max() >= n
        ):
            raise ValueError("initial task id out of range")

        self._levels: np.ndarray | None = None
        self._propagation: PropagationResult | None = None

    # ------------------------------------------------------------------
    # derived, cached views
    # ------------------------------------------------------------------
    @property
    def levels(self) -> np.ndarray:
        """Longest-path levels of ``G`` (cached)."""
        if self._levels is None:
            self._levels = compute_levels(self.dag)
        return self._levels

    @property
    def n_levels(self) -> int:
        """The ``L`` of Table I."""
        return num_levels(self.levels)

    @property
    def propagation(self) -> PropagationResult:
        """Ground-truth realized active graph ``H`` (cached)."""
        if self._propagation is None:
            self._propagation = propagate_changes(
                self.dag, self.initial_tasks, self.changed_edges
            )
        return self._propagation

    @property
    def active_nodes(self) -> np.ndarray:
        """Ids of nodes that will (re-)execute — the set ``W``."""
        return np.flatnonzero(self.propagation.executed)

    @property
    def n_active(self) -> int:
        """``|W|`` over all nodes (tasks and plumbing)."""
        return self.propagation.n_active

    @property
    def n_active_jobs(self) -> int:
        """Activated *task* nodes — Table I's "No. active jobs"."""
        return int(np.sum(self.propagation.executed & self.is_task))

    @property
    def total_active_work(self) -> float:
        """``w``: total work over all nodes that execute."""
        return float(self.work[self.propagation.executed].sum())

    def fresh_activation_state(self) -> ActivationState:
        """A new event-driven ground-truth tracker for one simulation."""
        return ActivationState(
            dag=self.dag,
            initial=self.initial_tasks,
            changed_edges=self.changed_edges,
        )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_json_dict(self) -> dict[str, Any]:
        """Schema-v1 plain-dict form (lists, not arrays)."""
        return {
            "schema": _SCHEMA_VERSION,
            "name": self.name,
            "metadata": self.metadata,
            "n_nodes": self.dag.n_nodes,
            "edges": self.dag.edge_array().tolist(),
            "node_names": (
                list(self.dag.node_names) if self.dag.node_names else None
            ),
            "work": self.work.tolist(),
            "span": self.span.tolist(),
            "models": self.models.tolist(),
            "is_task": self.is_task.astype(int).tolist(),
            "initial_tasks": self.initial_tasks.tolist(),
            "changed_edges": self.changed_edges.astype(int).tolist(),
        }

    def dump(self, fh: IO[str]) -> None:
        """Write the schema-v1 JSON form to an open text file."""
        json.dump(self.to_json_dict(), fh)

    @classmethod
    def from_json_dict(cls, d: dict[str, Any]) -> "JobTrace":
        """Rebuild a trace from :meth:`to_json_dict` output."""
        if d.get("schema") != _SCHEMA_VERSION:
            raise ValueError(f"unsupported trace schema {d.get('schema')!r}")
        dag = Dag(d["n_nodes"], np.asarray(d["edges"], dtype=np.int64),
                  node_names=d.get("node_names"))
        return cls(
            dag=dag,
            work=np.asarray(d["work"], dtype=np.float64),
            span=np.asarray(d["span"], dtype=np.float64),
            models=np.asarray(d["models"], dtype=np.int8),
            is_task=np.asarray(d["is_task"], dtype=bool),
            initial_tasks=np.asarray(d["initial_tasks"], dtype=np.int64),
            changed_edges=np.asarray(d["changed_edges"], dtype=bool),
            name=d.get("name", "trace"),
            metadata=d.get("metadata", {}),
        )

    @classmethod
    def load(cls, fh: IO[str]) -> "JobTrace":
        """Read a schema-v1 JSON trace from an open text file."""
        return cls.from_json_dict(json.load(fh))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"JobTrace({self.name!r}, V={self.dag.n_nodes}, "
            f"E={self.dag.n_edges}, initial={self.initial_tasks.size}, "
            f"L={self.n_levels})"
        )
