"""Task execution models (Section IV's three task classes).

The paper analyzes LevelBased under three task regimes:

* **unit-length** tasks (Lemma 3): every task takes one time step.
* **fully parallelizable** tasks (Lemma 5): arbitrary work, no internal
  span — on ``p`` processors a task with work ``w`` runs in ``w/p``.
* **arbitrary** tasks (Lemma 7 / Theorem 9): each task is internally a
  DAG ``D_u`` with work ``w_u`` and span ``S^T_u``; on ``p`` processors
  greedy scheduling takes between ``max(S^T_u, w_u/p)`` and
  ``w_u/p + S^T_u`` (Brent). We model the execution time with the lower
  Brent bound ``max(span, work/p)``, which is exact for the two shapes
  the paper's analyses exercise (pure chains: ``work == span``; and flat
  fans: ``span ∈ {0, 1}``).

A *sequential* task — the shape of the LogicBlox production traces,
which record one processing time per task — is the special case
``span == work`` (runs on one processor for its duration).

All per-task attributes live in NumPy arrays owned by the
:class:`repro.tasks.trace.JobTrace`; this module defines the scalar
model and the vectorized helpers over those arrays.
"""

from __future__ import annotations

import enum

import numpy as np

__all__ = ["ExecutionModel", "execution_time", "max_useful_processors"]


class ExecutionModel(enum.IntEnum):
    """How a task's duration responds to the processors allotted to it."""

    #: one unit of work on one processor (Lemma 3's regime)
    UNIT = 0
    #: fixed duration on exactly one processor (``span == work``)
    SEQUENTIAL = 1
    #: divisible work with a span floor: ``max(span, work / p)``
    MALLEABLE = 2


def execution_time(
    work: float, span: float, model: int, processors: int
) -> float:
    """Time for one task on ``processors`` processors.

    ``model`` is an :class:`ExecutionModel` value. Raises on a
    non-positive processor count — dispatching a task to zero processors
    is always a scheduler bug.
    """
    if processors <= 0:
        raise ValueError(f"task needs >= 1 processor, got {processors}")
    if model == ExecutionModel.UNIT:
        return 1.0
    if model == ExecutionModel.SEQUENTIAL:
        return float(work)
    if model == ExecutionModel.MALLEABLE:
        return float(max(span, work / processors))
    raise ValueError(f"unknown execution model {model!r}")


def max_useful_processors(work: float, span: float, model: int) -> int:
    """Largest allotment that still reduces a task's execution time.

    Greedy dispatch uses this to avoid starving other ready tasks: a
    malleable task with span ``s > 0`` gains nothing beyond
    ``ceil(work / span)`` processors; sequential and unit tasks use one.
    """
    if model in (ExecutionModel.UNIT, ExecutionModel.SEQUENTIAL):
        return 1
    if model == ExecutionModel.MALLEABLE:
        if span <= 0.0:
            return np.iinfo(np.int32).max  # perfectly divisible work
        return max(1, int(np.ceil(work / span)))
    raise ValueError(f"unknown execution model {model!r}")
