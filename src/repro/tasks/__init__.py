"""Task substrate: execution models, activation semantics, job traces."""

from .activation import ActivationState, PropagationResult, propagate_changes
from .model import ExecutionModel, execution_time, max_useful_processors
from .serialize import load_npz, save_npz
from .stats import TraceStats, trace_stats
from .trace import JobTrace

__all__ = [
    "ActivationState",
    "PropagationResult",
    "propagate_changes",
    "ExecutionModel",
    "execution_time",
    "max_useful_processors",
    "JobTrace",
    "TraceStats",
    "trace_stats",
    "save_npz",
    "load_npz",
]
