"""Activation semantics: the active graph ``H`` (Section II-A).

An update to the base data activates some *initial tasks*. When an
activated node executes, each of its out-edges either delivers a changed
output (activating the target) or delivers "no change". A node that
receives at least one change must re-execute; a node all of whose
incoming signals resolve to "no change" is *deactivated* — it never
runs, and its own out-edges deliver no change either. This is why, in
Figure 1, only 532 of the 1,680 descendants of the five initial tasks
re-execute.

A trace fixes the realized outcome per edge with a boolean
``changed_edges`` array: edge ``e = (u, v)`` delivers a change *iff*
``changed_edges[e]`` and ``u`` actually executes. From those flags this
module derives the ground truth:

* :func:`propagate_changes` — the executed set ``W`` (the paper's
  active-node set) and the realized active-edge set ``F``.
* :class:`ActivationState` — the incremental, event-driven form used by
  the simulator: resolution counters per node, yielding dispatchable
  tasks and deactivation cascades as executions complete.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..dag.graph import Dag

__all__ = ["propagate_changes", "ActivationState", "PropagationResult"]


@dataclass(frozen=True)
class PropagationResult:
    """Ground-truth outcome of an update, computed in one topo sweep."""

    #: boolean (V,): node will (re-)execute — the active set ``W``
    executed: np.ndarray
    #: boolean (E,): edge carries a realized change — the edge set ``F``
    active_edges: np.ndarray
    #: boolean (V,): node receives at least one changed input or is initial
    activated: np.ndarray

    @property
    def n_active(self) -> int:
        """``|W|`` — how many nodes (re-)execute."""
        return int(self.executed.sum())


def propagate_changes(
    dag: Dag, initial: np.ndarray, changed_edges: np.ndarray
) -> PropagationResult:
    """Forward-propagate change flags to obtain the realized ``H``.

    ``initial`` is an array of node ids that execute unconditionally
    (the updated base predicates / redefined rules). ``changed_edges``
    is boolean over dense edge indices (see :meth:`Dag.edge_index`).
    O(V + E).
    """
    n = dag.n_nodes
    executed = np.zeros(n, dtype=bool)
    executed[np.asarray(initial, dtype=np.int64)] = True
    activated = executed.copy()
    active_edges = np.zeros(dag.n_edges, dtype=bool)

    indeg = dag.in_degrees().copy()
    frontier = list(np.flatnonzero(indeg == 0))
    while frontier:
        u = frontier.pop()
        if executed[u]:
            lo, hi = dag.out_edge_range(u)
            for ei in range(lo, hi):
                if changed_edges[ei]:
                    v = dag._out_adj[ei]  # noqa: SLF001 - hot path, package-internal
                    active_edges[ei] = True
                    activated[v] = True
                    executed[v] = True
        for v in dag.out_neighbors(u):
            indeg[v] -= 1
            if indeg[v] == 0:
                frontier.append(int(v))
    return PropagationResult(
        executed=executed, active_edges=active_edges, activated=activated
    )


@dataclass
class ActivationState:
    """Event-driven ground truth used by the simulation engine.

    Tracks, per node, how many parents are still *unresolved*. A node is
    resolved when it has executed, or when all its parents resolved
    without delivering it a change (deactivation). Newly dispatchable
    tasks (resolved-parents + activated) surface via the lists returned
    from :meth:`complete` / :meth:`start`.

    The state is pure bookkeeping — O(1) amortized per edge over the
    whole run — and is *not* charged to any scheduler's overhead. Each
    scheduler must rediscover readiness with its own machinery; this
    class exists so the simulator can validate those discoveries.
    """

    dag: Dag
    initial: np.ndarray
    changed_edges: np.ndarray
    unresolved_parents: np.ndarray = field(init=False)
    activated: np.ndarray = field(init=False)
    will_execute: np.ndarray = field(init=False)
    executed: np.ndarray = field(init=False)
    resolved: np.ndarray = field(init=False)
    dispatched: np.ndarray = field(init=False)
    quarantined: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        n = self.dag.n_nodes
        self.unresolved_parents = self.dag.in_degrees().copy()
        self.activated = np.zeros(n, dtype=bool)
        self.will_execute = np.zeros(n, dtype=bool)
        self.executed = np.zeros(n, dtype=bool)
        self.resolved = np.zeros(n, dtype=bool)
        self.dispatched = np.zeros(n, dtype=bool)
        self.quarantined = np.zeros(n, dtype=bool)
        init = np.asarray(self.initial, dtype=np.int64)
        self.activated[init] = True
        self.will_execute[init] = True

    # ------------------------------------------------------------------
    def bootstrap(self) -> tuple[list[int], list[int]]:
        """Resolve all nodes reachable without any execution.

        Returns ``(dispatchable, newly_activated)``: the initially
        runnable tasks and every node activated so far (for t=0
        scheduler notification). Must be called exactly once, before
        any :meth:`complete`.
        """
        dispatchable: list[int] = []
        newly_activated = [int(u) for u in np.flatnonzero(self.activated)]
        cascade = [
            int(u) for u in np.flatnonzero(self.unresolved_parents == 0)
        ]
        self._drain(cascade, dispatchable, newly_activated)
        return dispatchable, newly_activated

    def complete(self, u: int) -> tuple[list[int], list[int]]:
        """Record that task ``u`` finished executing.

        Delivers ``u``'s realized change signals, resolves ``u``, and
        cascades deactivations. Returns ``(dispatchable,
        newly_activated)`` — tasks that just became ground-truth ready,
        and nodes that just received their first change signal.
        """
        if not self.dispatched[u]:
            raise RuntimeError(f"complete({u}) before dispatch")
        if self.executed[u]:
            raise RuntimeError(f"task {u} completed twice")
        self.executed[u] = True
        self.resolved[u] = True

        dispatchable: list[int] = []
        newly_activated: list[int] = []
        lo, hi = self.dag.out_edge_range(u)
        cascade: list[int] = []
        for ei in range(lo, hi):
            v = int(self.dag._out_adj[ei])  # noqa: SLF001
            if self.changed_edges[ei]:
                if not self.activated[v]:
                    self.activated[v] = True
                    newly_activated.append(v)
                self.will_execute[v] = True
            self.unresolved_parents[v] -= 1
            if self.unresolved_parents[v] == 0:
                cascade.append(v)
        self._drain(cascade, dispatchable, newly_activated)
        return dispatchable, newly_activated

    def _drain(
        self,
        cascade: list[int],
        dispatchable: list[int],
        newly_activated: list[int],
    ) -> None:
        """Process nodes whose parents have all resolved."""
        while cascade:
            v = cascade.pop()
            if self.resolved[v] or self.dispatched[v]:
                continue
            if self.will_execute[v]:
                dispatchable.append(v)  # ready to run; resolves on completion
                continue
            # deactivation: all inputs settled, none changed
            self.resolved[v] = True
            lo, hi = self.dag.out_edge_range(v)
            for ei in range(lo, hi):
                w = int(self.dag._out_adj[ei])  # noqa: SLF001
                self.unresolved_parents[w] -= 1
                if self.unresolved_parents[w] == 0:
                    cascade.append(w)

    # ------------------------------------------------------------------
    # fault-tolerance surface (used only by the engine's fault layer)
    # ------------------------------------------------------------------
    def clear_dispatch(self, u: int) -> None:
        """Undo a dispatch after a failed attempt, for requeue.

        The node becomes ground-truth ready again (its parents stay
        resolved; resolution is monotone). Only the engine's retry path
        may call this.
        """
        if not self.dispatched[u]:
            raise RuntimeError(f"clear_dispatch({u}) without a dispatch")
        if self.executed[u]:
            raise RuntimeError(f"clear_dispatch({u}) after completion")
        self.dispatched[u] = False

    def fail_permanently(self, u: int) -> tuple[list[int], list[int]]:
        """Resolve ``u`` *without* executing it (degrade mode).

        The task's output is permanently stale: every out-edge delivers
        "no change", so descendants whose re-execution would only have
        been triggered through ``u`` are deactivated — those are ``u``'s
        *pure descendants*. Descendants holding change signals from
        other ancestors become dispatchable once their remaining parents
        resolve and still run (with partial inputs).

        Returns ``(dispatchable, suppressed)``: tasks that just became
        ground-truth ready, and nodes newly resolved without execution
        by the cascade (candidates for quarantine reporting; ``u``
        itself is *not* included).
        """
        if not self.dispatched[u]:
            raise RuntimeError(f"fail_permanently({u}) without a dispatch")
        if self.executed[u]:
            raise RuntimeError(f"fail_permanently({u}) after completion")
        self.quarantined[u] = True
        self.resolved[u] = True

        before = self.resolved.copy()
        dispatchable: list[int] = []
        cascade: list[int] = []
        lo, hi = self.dag.out_edge_range(u)
        for ei in range(lo, hi):
            v = int(self.dag._out_adj[ei])  # noqa: SLF001
            self.unresolved_parents[v] -= 1
            if self.unresolved_parents[v] == 0:
                cascade.append(v)
        self._drain(cascade, dispatchable, [])
        suppressed = [
            int(v)
            for v in np.flatnonzero(
                self.resolved & ~before & ~self.executed & ~self.dispatched
            )
            if v != u
        ]
        return dispatchable, suppressed

    # ------------------------------------------------------------------
    def mark_dispatched(self, u: int) -> None:
        """Validate and record a scheduler's dispatch of ``u``.

        Raises :class:`RuntimeError` if ``u`` is not ground-truth ready —
        this is the simulator's schedule-validity check (no task may run
        before its activated ancestors are done, Section II-A).
        """
        if self.dispatched[u]:
            raise RuntimeError(f"task {u} dispatched twice")
        if not self.will_execute[u]:
            raise RuntimeError(
                f"task {u} dispatched but never activated (spurious re-run)"
            )
        if self.unresolved_parents[u] != 0:
            raise RuntimeError(
                f"task {u} dispatched with {self.unresolved_parents[u]} "
                "unresolved parent(s) — an activated ancestor may still "
                "change its input"
            )
        self.dispatched[u] = True

    def is_ready(self, u: int) -> bool:
        """Ground-truth readiness (without dispatching)."""
        return (
            bool(self.will_execute[u])
            and not self.dispatched[u]
            and self.unresolved_parents[u] == 0
        )

    def all_done(self) -> bool:
        """True when every node that must execute has executed.

        Quarantined nodes (degrade-mode permanent failures) count as
        settled: they will never run, by design.
        """
        return bool(
            np.all(~self.will_execute | self.executed | self.quarantined)
        )

    def pending_count(self) -> int:
        """Number of tasks that must still execute."""
        return int(
            np.sum(self.will_execute & ~self.executed & ~self.quarantined)
        )
