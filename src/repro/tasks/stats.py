"""Trace statistics — the columns of Table I and Figure 1's caption."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dag.traversal import reachable_mask
from .trace import JobTrace

__all__ = ["TraceStats", "trace_stats"]


@dataclass(frozen=True)
class TraceStats:
    """One row of Table I, plus Figure 1's descendant counts."""

    name: str
    n_nodes: int
    n_edges: int
    n_initial: int
    n_active_jobs: int
    n_levels: int
    n_task_nodes: int
    n_descendants: int  # descendants of the initial tasks (Figure 1's 1,680)
    total_active_work: float

    def table1_row(self) -> tuple[int, int, int, int, int]:
        """(nodes, edges, initial tasks, active jobs, levels)."""
        return (
            self.n_nodes,
            self.n_edges,
            self.n_initial,
            self.n_active_jobs,
            self.n_levels,
        )


def trace_stats(trace: JobTrace) -> TraceStats:
    """Compute the Table I row for ``trace`` (one BFS + cached props)."""
    desc_mask = reachable_mask(trace.dag, trace.initial_tasks)
    desc_mask[trace.initial_tasks] = False
    n_desc = int(np.sum(desc_mask & trace.is_task))
    return TraceStats(
        name=trace.name,
        n_nodes=trace.dag.n_nodes,
        n_edges=trace.dag.n_edges,
        n_initial=int(trace.initial_tasks.size),
        n_active_jobs=trace.n_active_jobs,
        n_levels=trace.n_levels,
        n_task_nodes=int(trace.is_task.sum()),
        n_descendants=n_desc,
        total_active_work=trace.total_active_work,
    )
