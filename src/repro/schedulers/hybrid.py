"""The hybrid scheduler — the paper's main result (Sections V, VI-B).

Runs the LevelBased machinery and the production (LogicBlox-style)
machinery *cooperatively over a shared ready-to-run queue*: both
identify ready tasks and either may hand any task to a processor.

Policy (Section VI-B): the LevelBased component is consulted first —
identifying a ready task from the current level costs O(1), so when the
current level still has work, no interval-list scan happens at all.
Only when LevelBased cannot fill the idle processors (it is waiting at
a level barrier while stragglers run) does the hybrid fall back to the
LogicBlox component, whose ancestor scan can release tasks from deeper
levels early.

Consequences, matching Table III:

* on *shallow, wide* DAGs (job traces #6, #11) LevelBased supplies
  nearly all dispatches and the expensive scans almost never run —
  scheduling overhead collapses;
* on *deep* DAGs with stragglers (#7, #10) the scan still runs at level
  boundaries, so overhead approaches the production scheduler's, but
  the makespan keeps the better of both behaviors;
* worst-case guarantees are inherited from LevelBased (Theorem 10's
  formal version with a processor split lives in
  :mod:`repro.schedulers.meta`).

Cost accounting: the hybrid's operation count is the sum of both
components' — we model two scheduler threads and report total scheduler
work, as the paper's "scheduling overhead" column does.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from .base import Scheduler, SchedulerContext
from .logicblox import LogicBloxScheduler

__all__ = ["HybridScheduler"]


class HybridScheduler(Scheduler):
    """LevelBased + LogicBlox over a shared ready queue."""

    name = "Hybrid"

    def __init__(self) -> None:
        super().__init__()
        # the shared-queue design makes caching scan results safe, so
        # the embedded production component runs post-fix ("cached")
        self._lbx = LogicBloxScheduler(policy="cached")
        self._dispatched: set[int] = set()

    # ------------------------------------------------------------------
    def prepare(self, ctx: SchedulerContext) -> None:
        # LevelBased side
        self._levels = ctx.levels
        dag = ctx.dag
        self._buckets: defaultdict[int, list[int]] = defaultdict(list)
        self._pending_at: defaultdict[int, int] = defaultdict(int)
        self._cursor = 0
        self._max_level = int(self._levels.max()) if self._levels.size else 0
        self._undispatched = 0
        self._lb_ops = 0
        self._n_queued = 0
        # LogicBlox side
        self._lbx.reset_counters()
        self._lbx.prepare(ctx)
        self._dispatched = set()

        self.precompute_ops = (dag.n_nodes + dag.n_edges) + self._lbx.precompute_ops
        self.precompute_memory_cells = (
            dag.n_nodes + self._lbx.precompute_memory_cells
        )

    # ------------------------------------------------------------------
    def _sync_lbx_ops(self, before: int) -> None:
        self.ops += self._lbx.ops - before

    def on_activate(self, v: int, t: float) -> None:
        lvl = int(self._levels[v])
        self._buckets[lvl].append(v)
        self._pending_at[lvl] += 1
        self._undispatched += 1
        self._n_queued += 1
        self.ops += 1
        self._lb_ops += 1
        before = self._lbx.ops
        self._lbx.on_activate(v, t)
        self._sync_lbx_ops(before)
        self.note_runtime_memory(
            self._n_queued + self._lbx.runtime_peak_memory_cells
        )

    def on_complete(self, v: int, t: float) -> None:
        self._pending_at[int(self._levels[v])] -= 1
        self.ops += 1
        self._lb_ops += 1
        before = self._lbx.ops
        self._lbx.on_complete(v, t)
        self._sync_lbx_ops(before)

    def on_failure(self, v: int, t: float) -> None:
        # Requeue on both components without re-counting: the level
        # barrier still includes v (no _pending_at bump — see
        # LevelBasedScheduler.on_failure) and its postorder key is still
        # active on the LogicBlox side. Drop it from the shared
        # dispatched set first, or neither component could release it.
        self._dispatched.discard(v)
        lvl = int(self._levels[v])
        self._buckets[lvl].append(v)
        self._undispatched += 1
        self._n_queued += 1
        self.charge_ops(1, "requeue_events")
        self._lb_ops += 1
        before = self._lbx.ops
        self._lbx.on_failure(v, t)
        self._sync_lbx_ops(before)
        self.note_runtime_memory(
            self._n_queued + self._lbx.runtime_peak_memory_cells
        )

    # ------------------------------------------------------------------
    def _lb_select(self, max_tasks: int) -> list[int]:
        """The LevelBased component's contribution (O(1) per task)."""
        out: list[int] = []
        while len(out) < max_tasks:
            bucket = self._buckets.get(self._cursor)
            if bucket:
                v = bucket.pop()
                self.ops += 1
                self._lb_ops += 1
                # skip entries released earlier by the LBX side — and,
                # after an on_failure re-bucket, a stale duplicate of a
                # task this very call already picked up
                if v in self._dispatched or v in out:
                    continue
                out.append(v)
                continue
            if self._pending_at.get(self._cursor, 0) > 0:
                break  # level barrier: stragglers still running
            if self._cursor >= self._max_level or self._undispatched == 0:
                break
            self._cursor += 1
            self.ops += 1
            self._lb_ops += 1
        return out

    def _lbx_select(self, max_tasks: int, t: float) -> list[int]:
        """The LogicBlox component's contribution (scans on demand)."""
        lbx = self._lbx
        before = lbx.ops
        out: list[int] = []
        # purge entries the LevelBased side already dispatched, so the
        # scan doesn't recheck them (shared-queue removal is O(1)
        # amortized in the real implementation; not charged)
        if not lbx._ready and (lbx._queue.size or lbx._incoming):
            if self._dispatched:
                if lbx._incoming:
                    lbx._incoming = [
                        v for v in lbx._incoming if v not in self._dispatched
                    ]
                if lbx._queue.size:
                    keep = np.fromiter(
                        (v not in self._dispatched for v in lbx._queue),
                        dtype=bool,
                        count=lbx._queue.size,
                    )
                    lbx._queue = lbx._queue[keep]
        while len(out) < max_tasks:
            got = lbx.select(1, t)
            if not got:
                break
            v = got[0]
            if v in self._dispatched or v in out:
                continue
            out.append(v)
        self._sync_lbx_ops(before)
        return out

    def _mark(self, chosen: list[int]) -> None:
        for v in chosen:
            self._dispatched.add(v)
            self._undispatched -= 1
            self._n_queued -= 1

    def select(self, max_tasks: int, t: float) -> list[int]:
        out = self._lb_select(max_tasks)
        self._mark(out)  # before the LBX pass, so it cannot re-release them
        if not out:
            # Only when the LevelBased side is completely dry — i.e. the
            # shared ready queue would otherwise starve — does the
            # production component go looking for deeper-level work.
            # While LevelBased keeps the queue fed, no scan ever runs,
            # which is where the hybrid's overhead savings come from.
            extra = self._lbx_select(max_tasks, t)
            self._mark(extra)
            out.extend(extra)
        return out

    # ------------------------------------------------------------------
    @property
    def component_ops(self) -> dict[str, int]:
        """Operation split between the two cooperating components."""
        return {"levelbased": self._lb_ops, "logicblox": self._lbx.ops}
