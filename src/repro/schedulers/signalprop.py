"""Brute-force signal propagation baseline (Section II-C).

No precomputation at all. At runtime, every node waits for a signal
("changed" or "no change") from each of its parents; once all signals
arrive, the node is either ready to run (some input changed) or marked
inactive, and in the latter case it immediately propagates "no change"
to all of its children.

The scheduler therefore pushes messages through the *entire* DAG:
O(V + E) operations per update regardless of how few nodes are active.
Tasks are discovered ready at the earliest possible moment (signals
travel instantaneously relative to task execution), so the schedule
itself is as good as greedy list scheduling — the cost is all overhead,
which is why the paper rejects the approach for DAGs where V ≫ n.

The scheduler mirrors the ground-truth resolution counters on its own;
it consumes only the public activation/completion notifications and is
charged one operation per message (edge signal) plus one per node
settled.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from .base import Scheduler, SchedulerContext

__all__ = ["SignalPropagationScheduler"]


class SignalPropagationScheduler(Scheduler):
    """O(V + E) message-passing baseline with zero precomputation."""

    name = "SignalProp"

    def __init__(self) -> None:
        super().__init__()

    def prepare(self, ctx: SchedulerContext) -> None:
        self._dag = ctx.dag
        self._pending_signals = ctx.dag.in_degrees().copy()
        self._activated = np.zeros(ctx.dag.n_nodes, dtype=bool)
        self._settled = np.zeros(ctx.dag.n_nodes, dtype=bool)
        self._ready: deque[int] = deque()
        self._bootstrapped = False
        # no precomputation: that is the whole point of this baseline
        self.precompute_ops = 0
        self.precompute_memory_cells = ctx.dag.n_nodes  # signal counters

    # ------------------------------------------------------------------
    def on_activate(self, v: int, t: float) -> None:
        self._activated[v] = True
        self.ops += 1
        if self._bootstrapped and self._pending_signals[v] == 0:
            # all signals already arrived; the change flag flips it ready
            self._ready.append(v)

    def on_complete(self, v: int, t: float) -> None:
        self._settled[v] = True
        self._propagate_from(v)

    def on_failure(self, v: int, t: float) -> None:
        # Every input signal already arrived (the task was dispatched
        # once), so a requeue is a single ready-queue push; nothing to
        # re-propagate.
        self._ready.append(v)
        self.charge_ops(1, "requeue_events")
        self.note_runtime_memory(len(self._ready))

    # ------------------------------------------------------------------
    def _settle(self, v: int) -> None:
        """All of ``v``'s input signals have arrived."""
        if self._activated[v]:
            self._ready.append(v)
            self.note_runtime_memory(len(self._ready))
            # v settles (and propagates) only when it finishes running
        else:
            self._settled[v] = True
            self._propagate_from(v)

    def _propagate_from(self, u: int) -> None:
        """Send a signal down every out-edge of each settled node."""
        stack = [u]
        while stack:
            x = stack.pop()
            self.ops += 1  # node processed
            for c in self._dag.out_neighbors(x):
                c = int(c)
                self.ops += 1  # one message
                self._pending_signals[c] -= 1
                if self._pending_signals[c] == 0:
                    if self._activated[c]:
                        self._ready.append(c)
                    else:
                        self._settled[c] = True
                        stack.append(c)
        self.note_runtime_memory(len(self._ready))

    def _bootstrap(self) -> None:
        """Kick off the wave from the DAG's source nodes."""
        self._bootstrapped = True
        for s in self._dag.sources():
            self._settle(int(s))

    def select(self, max_tasks: int, t: float) -> list[int]:
        if not self._bootstrapped:
            self._bootstrap()
        out: list[int] = []
        while self._ready and len(out) < max_tasks:
            out.append(self._ready.popleft())
            self.ops += 1
        return out
