"""Scheduler protocol shared by all five algorithms.

The simulation engine drives a scheduler through four entry points:

* :meth:`Scheduler.prepare` — one-time precomputation over ``G``
  (levels for LevelBased, interval lists for LogicBlox). Its cost is
  reported separately and excluded from makespan, as in the paper.
* :meth:`Scheduler.on_activate` — a node just received its first change
  signal (or was dirtied by the update at t=0).
* :meth:`Scheduler.on_complete` — a dispatched task finished; its
  outputs have been delivered.
* :meth:`Scheduler.select` — the engine has idle processors; return
  tasks that are safe to run *now*. The engine validates every returned
  task against ground truth and raises on any unsafe dispatch, so a
  scheduler bug cannot silently corrupt an experiment.

Cost accounting contract
------------------------
Schedulers increment :attr:`Scheduler.ops` by one per abstract unit of
work their *modeled* algorithm performs: an interval probed, a queue
entry scanned, a message sent, a level bucket advanced. Where an
implementation uses a shortcut whose result is provably identical to
the modeled computation (see :class:`ReadinessOracle`), it must still
charge the modeled operation count.

The oracle
----------
``ReadinessOracle.is_ready(v)`` answers ground-truth readiness — "all of
``v``'s activated ancestors have executed" (equivalently: every parent
resolved; the equivalence is proved in ``tasks/activation.py`` docs and
property-tested). The LogicBlox scheduler's interval-list check and the
LookAhead BFS check compute *exactly this predicate*, so they may call
the oracle for the boolean while charging the ops their own data
structure would have spent. LevelBased never needs it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..obs.trace import NULL_SINK, TraceSink

if TYPE_CHECKING:  # pragma: no cover
    from ..dag.graph import Dag
    from ..tasks.trace import JobTrace

__all__ = ["Scheduler", "SchedulerContext", "ReadinessOracle"]


class ReadinessOracle:
    """Ground-truth readiness oracle handed to schedulers.

    Wraps the engine's :class:`~repro.tasks.activation.ActivationState`
    exposing only the readiness predicate and the became-ready event
    feed (schedulers must not see future activations or the realized
    change flags).

    The event feed exists because readiness under the paper's model is
    *identical* for every correct checker — "no activated, uncompleted
    ancestor" ⟺ "every parent resolved" — so a scheduler whose modeled
    algorithm recomputes that predicate (LogicBlox's interval scans)
    may consume the feed as a result-equivalent shortcut while charging
    the operations its own data structure would have spent. Schedulers
    whose behavior depends on *discovering* readiness differently
    (LevelBased's level barrier, LBL's bounded BFS) must not use it.
    """

    def __init__(self, is_ready_fn: Callable[[int], bool]) -> None:
        self._is_ready = is_ready_fn
        self._ready_events: list[int] = []

    def is_ready(self, v: int) -> bool:
        """Whether ``v`` may be dispatched right now (ground truth)."""
        return self._is_ready(v)

    def push_ready_events(self, nodes: list[int]) -> None:
        """Engine-side: record tasks that just became ground-truth ready."""
        self._ready_events.extend(nodes)

    def drain_ready_events(self) -> list[int]:
        """Tasks that became ready since the last drain (FIFO order)."""
        out = self._ready_events
        self._ready_events = []
        return out

    def clear(self) -> None:
        """Drop any pending ready events (between service rounds)."""
        self._ready_events = []


@dataclass
class SchedulerContext:
    """Everything a scheduler may inspect at prepare time."""

    trace: "JobTrace"
    processors: int
    oracle: ReadinessOracle

    @property
    def dag(self) -> "Dag":
        return self.trace.dag

    @property
    def levels(self) -> np.ndarray:
        return self.trace.levels


class Scheduler(ABC):
    """Abstract base for all scheduling algorithms.

    Subclasses must set :attr:`name` and implement the four hooks.
    The base class owns the cost counters.
    """

    #: short identifier used in result tables
    name: str = "abstract"

    def __init__(self) -> None:
        #: runtime abstract operations (scanned entries, probes, messages)
        self.ops: int = 0
        #: operations spent in :meth:`prepare`
        self.precompute_ops: int = 0
        #: integer cells resident after :meth:`prepare`
        self.precompute_memory_cells: int = 0
        #: peak integer cells used by runtime structures
        self.runtime_peak_memory_cells: int = 0
        #: the oracle of the most recent run (set by the driver via
        #: :meth:`bind_oracle`), so :meth:`reset_counters` can clear
        #: its stale ready events when the instance is reused
        self._bound_oracle: ReadinessOracle | None = None
        #: the trace sink of the current run (set by the driver via
        #: :meth:`bind_sink`); :data:`~repro.obs.NULL_SINK` when
        #: tracing is off, so :meth:`charge_ops` stays branch-cheap
        self._bound_sink: TraceSink = NULL_SINK

    # ------------------------------------------------------------------
    @abstractmethod
    def prepare(self, ctx: SchedulerContext) -> None:
        """Precompute over ``G``; set precompute counters."""

    @abstractmethod
    def on_activate(self, v: int, t: float) -> None:
        """Node ``v`` activated at time ``t`` (will need re-execution)."""

    @abstractmethod
    def on_complete(self, v: int, t: float) -> None:
        """Task ``v`` finished at time ``t``; its outputs are delivered."""

    @abstractmethod
    def select(self, max_tasks: int, t: float) -> list[int]:
        """Return up to ``max_tasks`` tasks safe to dispatch at ``t``.

        May return fewer (including none) if no safe work is known; the
        engine will call again after the next completion. Returning a
        task that is not ground-truth ready aborts the simulation.
        """

    # ------------------------------------------------------------------
    def on_failure(self, v: int, t: float) -> None:
        """Task ``v``'s dispatch failed at time ``t``; requeue it.

        The engine calls this when a previously dispatched task must be
        re-run — a fault-injected attempt failure (after its backoff
        expires) or a processor loss that killed the attempt. ``v`` is
        ground-truth ready again when this hook fires.

        The default treats the requeue as a fresh activation, which is
        correct for schedulers whose :meth:`on_activate` bookkeeping is
        idempotent per pending task. Schedulers that count queue
        membership or per-level pending work (LevelBased's barrier
        counters, LogicBlox's active key set) must override this to
        re-queue without double-counting — and must still charge
        :attr:`ops` for the requeue work their modeled algorithm
        performs (the linter's ``api-contract`` rule checks this).
        """
        self.on_activate(v, t)

    # ------------------------------------------------------------------
    def charge_ops(self, n: int = 1, counter: str | None = None) -> None:
        """Charge ``n`` abstract ops, attributed to the active span.

        Identical to ``self.ops += n`` for cost accounting; when the
        bound :class:`~repro.obs.TraceSink` is recording and a
        ``counter`` name is given, the charge is additionally
        attributed to the innermost open span (e.g. ``"requeue_events"``
        on a failure requeue, ``"lookahead_probes"`` in an LBL scan),
        which is how scheduler decision counters reach the timeline.
        """
        self.ops += n
        sink = self._bound_sink
        if sink.enabled and counter is not None:
            sink.add_to_current(counter, n)

    def bind_sink(self, sink: TraceSink) -> None:
        """Attach the run's trace sink (engine/executor side, not a hook).

        Drivers bind the sink alongside the oracle on every run —
        including the disabled :data:`~repro.obs.NULL_SINK` — so a
        scheduler instance reused across rounds never attributes
        counters to a stale recorder.
        """
        self._bound_sink = sink

    def note_runtime_memory(self, cells: int) -> None:
        """Update the runtime peak-memory watermark."""
        if cells > self.runtime_peak_memory_cells:
            self.runtime_peak_memory_cells = cells

    def bind_oracle(self, oracle: ReadinessOracle) -> None:
        """Attach the run's oracle (engine/executor side, not a hook).

        Binding lets :meth:`reset_counters` clear the oracle's pending
        ready-event buffer, so a scheduler instance reused across
        service rounds cannot observe events left over from a previous
        round (a run can finish with pushed-but-undrained events).
        """
        self._bound_oracle = oracle

    def reset_counters(self) -> None:
        """Zero all cost counters (engine calls this before a run).

        Also clears any pending ready events of the bound oracle, so a
        reused scheduler instance starts each round with a clean feed.
        """
        self.ops = 0
        self.precompute_ops = 0
        self.precompute_memory_cells = 0
        self.runtime_peak_memory_cells = 0
        if self._bound_oracle is not None:
            self._bound_oracle.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
