"""Critical-path-first heuristic scheduler.

A classic list-scheduling heuristic used as a second "any heuristic A"
for the hybrid/meta constructions of Section V: among ready tasks,
dispatch the one with the largest *downstream weight* — the heaviest
work-weighted path from the task to any sink, precomputed over ``G``
in O(V + E).

Ready discovery mirrors the oracle scheduler (the engine's readiness
feed with one op charged per candidate check); the contribution here is
the *order*, which helps when long chains hide behind short fan-outs —
and can lose to plain greedy on other shapes, which is exactly the
"heuristics have no worst-case guarantees" premise the paper's
meta-scheduler addresses.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..dag.traversal import topological_order
from .base import Scheduler, SchedulerContext

__all__ = ["CriticalPathScheduler", "downstream_weight"]


def downstream_weight(dag, work: np.ndarray) -> np.ndarray:
    """Heaviest work-weighted path from each node to any sink.

    ``weight[u] = work[u] + max(weight over children, default 0)`` —
    one reverse-topological sweep, O(V + E).
    """
    weight = np.asarray(work, dtype=np.float64).copy()
    for u in reversed(topological_order(dag)):
        u = int(u)
        best = 0.0
        for v in dag.out_neighbors(u):
            if weight[v] > best:
                best = float(weight[v])
        weight[u] += best
    return weight


class CriticalPathScheduler(Scheduler):
    """Ready tasks dispatched in decreasing downstream-weight order."""

    name = "CriticalPath"

    def prepare(self, ctx: SchedulerContext) -> None:
        dag = ctx.dag
        self._oracle = ctx.oracle
        self._priority = downstream_weight(dag, ctx.trace.work)
        self.precompute_ops = dag.n_nodes + dag.n_edges
        self.precompute_memory_cells = dag.n_nodes
        self._waiting: list[int] = []
        self._ready_heap: list[tuple[float, int]] = []

    def on_activate(self, v: int, t: float) -> None:
        self._waiting.append(v)
        self.ops += 1
        self.note_runtime_memory(
            len(self._waiting) + len(self._ready_heap)
        )

    def on_complete(self, v: int, t: float) -> None:
        self.ops += 1

    def select(self, max_tasks: int, t: float) -> list[int]:
        # move newly-ready tasks into the priority heap
        still: list[int] = []
        for v in self._waiting:
            self.ops += 1
            if self._oracle.is_ready(v):
                heapq.heappush(self._ready_heap, (-self._priority[v], v))
            else:
                still.append(v)
        self._waiting = still
        out: list[int] = []
        while self._ready_heap and len(out) < max_tasks:
            _, v = heapq.heappop(self._ready_heap)
            out.append(v)
            self.ops += 1
        return out
