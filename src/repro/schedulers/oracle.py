"""Clairvoyant greedy scheduler and schedule lower bounds.

The *oracle* scheduler dispatches a task the moment it becomes
ground-truth ready — it is greedy list scheduling on the realized active
graph ``H``, the best any online scheduler can do without reordering
long jobs. Figure 2's "optimal" schedule (run each ``k_i`` as soon as
``j_{i-1}`` finishes) is exactly what this scheduler produces, so the
Theorem 9 bench compares LevelBased's Θ(ML) against it.

:func:`lower_bounds` returns the two classic makespan lower bounds used
throughout Section IV: total-work ``w/P`` and the critical path of the
realized ``H`` (computed over ``G``-paths restricted to executing
nodes, because readiness is defined by ancestors in ``G``).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..tasks.trace import JobTrace
from .base import Scheduler, SchedulerContext

__all__ = ["OracleScheduler", "lower_bounds"]


class OracleScheduler(Scheduler):
    """Greedy clairvoyant dispatch: run anything the oracle says is ready.

    Not a contribution of the paper — a reference point for benches and
    tests. Charged one op per readiness check so its overhead is
    realistic for an O(n)-scan implementation.
    """

    name = "Oracle"

    def prepare(self, ctx: SchedulerContext) -> None:
        self._oracle = ctx.oracle
        self._waiting: deque[int] = deque()
        self.precompute_ops = 0
        self.precompute_memory_cells = 0

    def on_activate(self, v: int, t: float) -> None:
        self._waiting.append(v)
        self.ops += 1
        self.note_runtime_memory(len(self._waiting))

    def on_complete(self, v: int, t: float) -> None:
        self.ops += 1

    def select(self, max_tasks: int, t: float) -> list[int]:
        out: list[int] = []
        still: deque[int] = deque()
        while self._waiting:
            v = self._waiting.popleft()
            self.ops += 1
            if len(out) < max_tasks and self._oracle.is_ready(v):
                out.append(v)
            else:
                still.append(v)
        self._waiting = still
        return out


def lower_bounds(trace: JobTrace, processors: int) -> dict[str, float]:
    """Makespan lower bounds for ``trace`` on ``processors`` cores.

    Returns ``{"work": w/P, "critical_path": C, "combined": max}`` where
    ``C`` is the heaviest ``G``-path through executing nodes, weighting
    each node by its span (the irreducible sequential part).
    """
    executed = trace.propagation.executed
    w_over_p = float(trace.work[executed].sum()) / processors

    # longest span-weighted path through executed nodes, in topo order
    dag = trace.dag
    span = np.where(executed, trace.span, 0.0)
    dist = span.copy()
    indeg = dag.in_degrees().copy()
    frontier = [int(u) for u in np.flatnonzero(indeg == 0)]
    best = 0.0
    while frontier:
        u = frontier.pop()
        du = float(dist[u])
        if du > best:
            best = du
        for v in dag.out_neighbors(u):
            v = int(v)
            cand = du + float(span[v])
            if cand > dist[v]:
                dist[v] = cand
            indeg[v] -= 1
            if indeg[v] == 0:
                frontier.append(v)
    return {
        "work": w_over_p,
        "critical_path": best,
        "combined": max(w_over_p, best),
    }
