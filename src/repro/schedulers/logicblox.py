"""Reimplementation of the production LogicBlox scheduler (Sections II-C, VI-B).

Preprocessing: the ancestor relation of every node is computed and
stored in an interval-list data structure — the DFS-interval index of
:mod:`repro.dag.intervals` built over the *reversed* DAG, so that a
node's list covers the postorder keys of its ancestors. Worst-case
space is O(V²) cells (fragmented lists); tree-like DAGs stay near O(V).

Runtime: the scheduler keeps the **active queue** (activated tasks not
yet handed to a processor) and the **active key set** (postorder keys of
every activated, uncompleted task — the potential blockers). To locate
ready work it *scans* the active queue: each candidate's ancestor
intervals are probed against the active key set; a candidate with no
active ancestor is safe. One operation is charged per queue entry
examined and per interval probed. A probe is O(1) when the list is
compact and O(n) when it fragments; a scan is O(n) probes; repeated
scans give the paper's O(n³) worst case.

Scan policies
-------------
``policy="fresh"`` (default) models the production scheduler the paper
benchmarked: every scheduling round re-scans the *whole* active queue,
hands out at most the tasks the processors can take, and caches nothing
about the entries it found blocked — so they are re-probed every
round, Θ(rounds × queue size) operations. On the wide-shallow traces
(#6, #11) this is the "unnecessary work to find ready-to-run tasks" of
Section VI — exactly the behavior the LogicBlox engineers fixed after
the hybrid experiments exposed it.

``policy="cached"`` models the post-fix scheduler: ready tasks found by
a scan are kept in a ready queue and a re-scan happens only when that
queue runs dry. The hybrid scheduler embeds this variant.

Result-equivalence and cost accounting
--------------------------------------
The ready set either scan discovers is provably the ground-truth ready
set ("no activated-uncompleted ancestor" ⟺ "every parent resolved" —
see ``tasks/activation.py``), and the engine re-validates every
dispatch. The *fresh* policy therefore consumes the engine's
became-ready event feed to locate ready tasks in O(log n) real time,
while charging the full modeled scan — queue entries examined plus one
probe per interval of each candidate's ancestor list. (For a blocked
fragmented candidate the modeled scan could stop at its first hitting
interval; charging the full list is a documented upper bound.) The
*cached* policy performs its scans for real, vectorized — active keys
live in a prefix-summed occupancy array, single-interval candidates are
probed with batched gathers — with identical charging rules.
"""

from __future__ import annotations

import heapq
from collections import deque

import numpy as np

from ..dag.graph import Dag
from ..dag.intervals import IntervalIndex
from .base import Scheduler, SchedulerContext

__all__ = ["LogicBloxScheduler"]


class LogicBloxScheduler(Scheduler):
    """Interval-list production-style scheduler.

    Parameters
    ----------
    policy:
        ``"fresh"`` — re-scan the whole active queue every scheduling
        round (the pre-fix production behavior measured in Tables
        II/III); ``"cached"`` — keep scan results in a ready queue and
        re-scan only when it empties (the post-fix behavior).
    """

    def __init__(self, policy: str = "fresh") -> None:
        super().__init__()
        if policy not in ("fresh", "cached"):
            raise ValueError(f"unknown scan policy {policy!r}")
        self.policy = policy
        self.name = "LogicBlox" if policy == "fresh" else "LogicBlox(cached)"

    # ------------------------------------------------------------------
    def prepare(self, ctx: SchedulerContext) -> None:
        dag = ctx.dag
        rev = Dag(dag.n_nodes, dag.edge_array()[:, ::-1], validate=False)
        index = IntervalIndex(rev)
        n = dag.n_nodes
        counts = index.list_lengths()
        self._ivl_offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=self._ivl_offsets[1:])
        total = int(self._ivl_offsets[-1])
        flat = (
            np.concatenate([index.interval_array(u) for u in range(n)])
            if total
            else np.empty((0, 2), dtype=np.int64)
        )
        self._ivl_lo = np.ascontiguousarray(flat[:, 0])
        self._ivl_hi = np.ascontiguousarray(flat[:, 1])
        self._key_of = np.array(
            [index.postorder(u) for u in range(n)], dtype=np.int64
        )
        self._n_ivl = counts

        self.precompute_ops = dag.n_nodes + dag.n_edges + total
        self.precompute_memory_cells = index.memory_cells

        self._n = n
        self._oracle = ctx.oracle
        if self.policy == "fresh":
            self._seq = 0
            self._in_queue: dict[int, int] = {}  # node -> arrival seq
            self._ready_heap: list[tuple[int, int]] = []  # (seq, node)
            self._queue_probes = 0  # Σ interval-list length over the queue
        else:
            self._queue = np.empty(0, dtype=np.int64)
            self._incoming: list[int] = []
            self._ready: deque[int] = deque()
            self._key_active = np.zeros(n, dtype=np.int64)
            self._prefix: np.ndarray | None = None
            self._n_active_keys = 0
            # event-driven invalidation: a scan that found nothing is not
            # repeated until a completion or activation changes the state
            self._dirty = True

    # ------------------------------------------------------------------
    # event hooks
    # ------------------------------------------------------------------
    def on_activate(self, v: int, t: float) -> None:
        self.ops += 1
        if self.policy == "fresh":
            self._in_queue[v] = self._seq
            self._seq += 1
            self._queue_probes += int(self._n_ivl[v])
            self.note_runtime_memory(
                2 * len(self._in_queue) + len(self._ready_heap)
            )
        else:
            self._incoming.append(v)
            self._key_active[self._key_of[v]] = 1
            self._n_active_keys += 1
            self._prefix = None
            self._dirty = True
            self.note_runtime_memory(
                self._queue.size + len(self._incoming)
                + self._n_active_keys + len(self._ready)
            )

    def on_complete(self, v: int, t: float) -> None:
        self.ops += 1
        if self.policy == "cached":
            self._key_active[self._key_of[v]] = 0
            self._n_active_keys -= 1
            self._prefix = None
            self._dirty = True

    def on_failure(self, v: int, t: float) -> None:
        # Requeue = put the task back in the active queue. Its postorder
        # key never left the active key set (the task never completed),
        # so re-activating via on_activate would double-count the key
        # and permanently block every descendant's scan.
        self.charge_ops(1, "requeue_events")
        if self.policy == "fresh":
            self._in_queue[v] = self._seq
            self._seq += 1
            self._queue_probes += int(self._n_ivl[v])
            self.note_runtime_memory(
                2 * len(self._in_queue) + len(self._ready_heap)
            )
        else:
            self._incoming.append(v)
            self._dirty = True
            self.note_runtime_memory(
                self._queue.size + len(self._incoming)
                + self._n_active_keys + len(self._ready)
            )

    # ------------------------------------------------------------------
    # cached-policy scan machinery (vectorized, also used by Hybrid)
    # ------------------------------------------------------------------
    def _consolidate(self) -> None:
        if self._incoming:
            self._queue = np.concatenate(
                (self._queue, np.asarray(self._incoming, dtype=np.int64))
            )
            self._incoming.clear()
        if self._prefix is None:
            self._prefix = np.zeros(self._n + 1, dtype=np.int64)
            np.cumsum(self._key_active, out=self._prefix[1:])

    def _blocked_and_probes(
        self, cand: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Blocked flag and modeled probe count per candidate.

        The modeled scan probes a candidate's ancestor intervals in
        order, stopping at the first interval holding an active key
        other than the candidate itself; ``probes`` is the number of
        intervals examined. Computed fully vectorized over the ragged
        interval segments (one ``reduceat`` per scan, no Python loop).
        """
        prefix = self._prefix
        if prefix is None:  # _consolidate() always runs first
            raise RuntimeError("scan attempted before _consolidate()")
        lens = self._n_ivl[cand]
        starts = self._ivl_offsets[cand]
        total = int(lens.sum())
        if total == 0:  # pragma: no cover - every node covers itself
            return np.zeros(cand.size, dtype=bool), np.ones(
                cand.size, dtype=np.int64
            )
        seg_first = np.zeros(cand.size, dtype=np.int64)
        np.cumsum(lens[:-1], out=seg_first[1:])
        # ragged arange: flat[j] walks each candidate's interval slice
        flat = np.arange(total, dtype=np.int64) + np.repeat(
            starts - seg_first, lens
        )
        lo = self._ivl_lo[flat]
        hi = self._ivl_hi[flat]
        cnt = prefix[np.minimum(hi + 1, self._n)] - prefix[lo]
        self_key = np.repeat(self._key_of[cand], lens)
        cnt -= ((lo <= self_key) & (self_key <= hi)).astype(np.int64)
        hit = cnt > 0
        # first hit position within each segment (or len when no hit)
        pos_in_seg = np.arange(total, dtype=np.int64) - np.repeat(
            seg_first, lens
        )
        big = np.iinfo(np.int64).max
        hit_pos = np.where(hit, pos_in_seg, big)
        first_hit = np.minimum.reduceat(hit_pos, seg_first)
        blocked = first_hit != big
        probes = np.where(blocked, first_hit + 1, lens)
        return blocked, probes.astype(np.int64)

    # ------------------------------------------------------------------
    def _select_cached(self, max_tasks: int) -> list[int]:
        if (
            not self._ready
            and self._dirty
            and (self._queue.size or self._incoming)
        ):
            self._dirty = False
            self._consolidate()
            if self._queue.size:
                blocked, probes = self._blocked_and_probes(self._queue)
                self.ops += int(self._queue.size) + int(probes.sum())
                for v in self._queue[~blocked]:
                    self._ready.append(int(v))
                self._queue = self._queue[blocked]
        out: list[int] = []
        while self._ready and len(out) < max_tasks:
            out.append(self._ready.popleft())
            self.ops += 1
        return out

    def _select_fresh(self, max_tasks: int) -> list[int]:
        for v in self._oracle.drain_ready_events():
            seq = self._in_queue.get(v)
            if seq is not None:
                heapq.heappush(self._ready_heap, (seq, v))
        if not self._in_queue:
            return []
        # one full modeled scan of the active queue: every entry is
        # examined and its ancestor intervals probed, ready or not
        self.ops += len(self._in_queue) + self._queue_probes
        out: list[int] = []
        while self._ready_heap and len(out) < max_tasks:
            _, v = heapq.heappop(self._ready_heap)
            if v not in self._in_queue:
                continue  # stale entry (already handed out)
            del self._in_queue[v]
            self._queue_probes -= int(self._n_ivl[v])
            out.append(v)
        self.ops += len(out)
        return out

    def select(self, max_tasks: int, t: float) -> list[int]:
        if self.policy == "fresh":
            return self._select_fresh(max_tasks)
        return self._select_cached(max_tasks)
