"""LevelBased with LookAhead — LBL(k) (Sections III and VI-B).

LevelBased's fundamental limitation is the level barrier: it will not
start level ℓ+1 until every active task at level ℓ finishes, so one long
sequential task can idle all other processors (Theorem 9's Θ(ML)
example). LBL(k) keeps LevelBased's cheap bucket machinery but, when
processors would otherwise idle, *looks ahead*: it examines activated
tasks up to ``k`` levels beyond the cursor and runs a bounded
breadth-first search over each candidate's ancestors to check that the
candidate "is not a descendant of either running nodes or nodes that
are yet to be run".

The BFS is bounded below by the cursor: every activated node at a level
below ℓ has already completed (LevelBased invariant), so ancestors at
levels < ℓ can never block and the search prunes there. Each visited
node/edge costs one operation — worst case O(n²) over a run, but cheap
when levels are narrow, which is exactly when LevelBased needs the help
(Section VI-B's observation).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .base import SchedulerContext
from .levelbased import LevelBasedScheduler

if TYPE_CHECKING:  # pragma: no cover
    from ..dag.graph import Dag

__all__ = ["LookaheadScheduler"]


class LookaheadScheduler(LevelBasedScheduler):
    """LBL(k): LevelBased plus a k-level look-ahead readiness probe."""

    _dag: "Dag"  # bound in prepare(); hooks never run before it

    def __init__(self, k: int = 10) -> None:
        super().__init__()
        if k < 0:
            raise ValueError(f"look-ahead depth must be >= 0, got {k}")
        self.k = k
        self.name = f"LBL(k={k})"
        self._activated: set[int] = set()
        self._completed: set[int] = set()

    # ------------------------------------------------------------------
    def prepare(self, ctx: SchedulerContext) -> None:
        super().prepare(ctx)
        self._dag = ctx.dag
        self._activated = set()
        self._completed = set()

    def on_activate(self, v: int, t: float) -> None:
        super().on_activate(v, t)
        self._activated.add(v)

    def on_complete(self, v: int, t: float) -> None:
        super().on_complete(v, t)
        self._completed.add(v)

    # ------------------------------------------------------------------
    def _blocked(self, candidate: int) -> bool:
        """Bounded upward BFS: does any activated, uncompleted ancestor
        exist? Prunes below the cursor (those levels are complete)."""
        cursor = self._cursor
        levels = self._levels
        dag = self._dag
        visited = {candidate}
        frontier = [candidate]
        while frontier:
            u = frontier.pop()
            for p in dag.in_neighbors(u):
                p = int(p)
                self.ops += 1  # one edge traversed
                if p in visited or levels[p] < cursor:
                    continue
                visited.add(p)
                if p in self._activated and p not in self._completed:
                    return True
                frontier.append(p)
        self.note_runtime_memory(self._n_queued + len(visited))
        return False

    def select(self, max_tasks: int, t: float) -> list[int]:
        out = super().select(max_tasks, t)
        if len(out) >= max_tasks or self.k == 0:
            return out
        # Processors would idle: probe the next k levels for safe work.
        hi = min(self._cursor + self.k, self._max_level)
        for lvl in range(self._cursor + 1, hi + 1):
            bucket = self._buckets.get(lvl)
            if not bucket:
                continue
            kept: list[int] = []
            for v in bucket:
                if len(out) >= max_tasks:
                    kept.append(v)
                    continue
                self.ops += 1  # candidate examined
                if self._blocked(v):
                    kept.append(v)
                else:
                    out.append(v)
                    self._undispatched -= 1
                    self._n_queued -= 1
            self._buckets[lvl] = kept
            if len(out) >= max_tasks:
                break
        return out
