"""The meta-scheduler A′ of Theorem 10 and Corollary 11.

Given any scheduler ``A``, the paper constructs A′:

* split the processors — ``A`` simulates on P/2 cores, LevelBased on the
  other P/2, fully independently (a task may execute twice);
* if ``A``'s memory consumption reaches ζ/2, kill ``A`` and continue
  with LevelBased on all processors;
* A′ finishes as soon as *either* sub-schedule finishes.

Guarantees: memory O(ζ) (with ζ = Ω(V)), makespan ≤ 2·min{T_a, T_b}
when ``A`` stays within budget and ≤ 2·T_b otherwise — because each
sub-scheduler runs on half the processors, at most doubling its
makespan, and A′ takes the earlier finisher.

Because the two sub-schedules share nothing, we emulate A′ exactly by
running two independent simulations and composing their results, rather
than interleaving them inside one engine. The composition reproduces
the construction in the proof of Theorem 10 step for step:
``makespan = min(T_a(P/2), T_b(P/2))`` if ``A``'s memory stayed under
ζ/2, else LevelBased's completion bound ``T_b(P/2)`` (a conservative
stand-in for "switch mid-run", which can only finish earlier).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.engine import simulate
from ..sim.overhead import OverheadModel
from ..sim.result import SimulationResult
from ..tasks.trace import JobTrace
from .base import Scheduler
from .levelbased import LevelBasedScheduler

__all__ = ["MetaResult", "meta_schedule"]


@dataclass
class MetaResult:
    """Outcome of running A′ = Meta(A, LevelBased) on a trace."""

    makespan: float
    memory_cells: int
    #: whether A exceeded ζ/2 and was killed
    a_killed: bool
    #: which sub-scheduler finished first ("A" or "LevelBased")
    winner: str
    result_a: SimulationResult | None
    result_b: SimulationResult
    zeta: int

    def summary(self) -> str:
        """One-line human-readable outcome."""
        status = "killed (memory)" if self.a_killed else "within budget"
        return (
            f"Meta: makespan={self.makespan:.4f}s, winner={self.winner}, "
            f"A {status}, memory={self.memory_cells} <= O(zeta={self.zeta})"
        )


def meta_schedule(
    trace: JobTrace,
    scheduler_a: Scheduler,
    processors: int,
    zeta: int,
    overhead: OverheadModel | None = None,
) -> MetaResult:
    """Run the Theorem 10 meta-scheduler construction.

    ``zeta`` is the total memory budget in cells; the theorem requires
    ζ = Ω(V) — we enforce ζ ≥ V because LevelBased alone needs one level
    entry per node.
    """
    if processors < 2:
        raise ValueError("meta-scheduler needs at least 2 processors to split")
    v = trace.dag.n_nodes
    if zeta < v:
        raise ValueError(f"zeta={zeta} must be at least V={v} (zeta = Omega(V))")
    half = processors // 2
    overhead = overhead or OverheadModel()

    result_b = simulate(
        trace, LevelBasedScheduler(), processors=half, overhead=overhead
    )
    result_a = simulate(trace, scheduler_a, processors=half, overhead=overhead)

    a_memory = result_a.total_memory_cells
    a_killed = a_memory > zeta // 2
    if a_killed:
        # A is stopped; LevelBased continues on all processors. Its
        # makespan on P/2 bounds the switch-over completion from above.
        makespan = result_b.makespan
        winner = "LevelBased"
        memory = min(a_memory, zeta // 2) + result_b.total_memory_cells
        result_a_out: SimulationResult | None = result_a
    else:
        if result_a.makespan <= result_b.makespan:
            makespan, winner = result_a.makespan, "A"
        else:
            makespan, winner = result_b.makespan, "LevelBased"
        memory = a_memory + result_b.total_memory_cells
        result_a_out = result_a

    return MetaResult(
        makespan=makespan,
        memory_cells=memory,
        a_killed=a_killed,
        winner=winner,
        result_a=result_a_out,
        result_b=result_b,
        zeta=zeta,
    )
