"""The LevelBased scheduler (Section III).

Precomputation: the level of every node — the maximum number of edges on
any path from a source — in O(V + E) time and O(V) space.

Runtime: maintain per-level buckets of activated tasks and a cursor ℓ at
the lowest level with unfinished active work. Every active task at
level ℓ is safe to run (Lemma 1: any activated ancestor has a strictly
lower level and lower levels are complete). The cursor advances when
level ℓ has no activated task left to run or finish — with only
level-ℓ tasks ever running, this is exactly the paper's "all processors
are idle and level ℓ is empty" rule, tracked with O(1) per-level pending
counters instead of polling the processor pool (the two conditions
coincide for LevelBased because it never dispatches above ℓ).

Runtime cost: one operation per activation (bucket push), one per
dispatch (bucket pop), one per cursor advance — O(n + L) total
(Theorem 2). Runtime memory: the buckets, O(n).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from .base import Scheduler, SchedulerContext

__all__ = ["LevelBasedScheduler"]


class LevelBasedScheduler(Scheduler):
    """LevelBased greedy scheduler with O(n + L) runtime cost."""

    name = "LevelBased"

    def __init__(self) -> None:
        super().__init__()
        self._levels: np.ndarray = np.empty(0, dtype=np.int64)
        self._buckets: defaultdict[int, list[int]] = defaultdict(list)
        self._pending_at: defaultdict[int, int] = defaultdict(int)
        self._cursor: int = 0
        self._max_level: int = 0
        self._n_queued: int = 0
        self._undispatched: int = 0

    # ------------------------------------------------------------------
    def prepare(self, ctx: SchedulerContext) -> None:
        # trace.levels is cached on the trace; the modeled cost is the
        # DFS/Kahn sweep either way: O(V + E) ops, O(V) memory.
        self._levels = ctx.levels
        dag = ctx.dag
        self.precompute_ops = dag.n_nodes + dag.n_edges
        self.precompute_memory_cells = dag.n_nodes  # one level per node
        self._buckets = defaultdict(list)
        self._pending_at = defaultdict(int)
        self._cursor = 0
        self._max_level = int(self._levels.max()) if self._levels.size else 0
        self._n_queued = 0
        self._undispatched = 0

    def on_activate(self, v: int, t: float) -> None:
        lvl = int(self._levels[v])
        self._buckets[lvl].append(v)
        self._pending_at[lvl] += 1
        self._undispatched += 1
        self.ops += 1
        self._n_queued += 1
        self.note_runtime_memory(self._n_queued)

    def on_complete(self, v: int, t: float) -> None:
        self._pending_at[int(self._levels[v])] -= 1
        self.ops += 1

    def on_failure(self, v: int, t: float) -> None:
        # Requeue = re-bucket only. The task never completed, so its
        # level's pending counter still includes it — the barrier that
        # holds the cursor at (or below) level(v) must not be bumped
        # again, or the cursor would deadlock waiting for a second
        # completion that never comes.
        lvl = int(self._levels[v])
        self._buckets[lvl].append(v)
        self._undispatched += 1
        self._n_queued += 1
        self.charge_ops(1, "requeue_events")
        self.note_runtime_memory(self._n_queued)

    def select(self, max_tasks: int, t: float) -> list[int]:
        out: list[int] = []
        while len(out) < max_tasks:
            bucket = self._buckets.get(self._cursor)
            if bucket:
                v = bucket.pop()
                out.append(v)
                self._undispatched -= 1
                self._n_queued -= 1
                self.ops += 1
                continue
            # level ℓ bucket is empty: advance only once every activated
            # task at ℓ has also *finished* (the all-idle rule).
            if self._pending_at.get(self._cursor, 0) > 0:
                break  # level-ℓ stragglers still running — wait
            if self._cursor >= self._max_level or self._undispatched == 0:
                break
            self._cursor += 1
            self.ops += 1
        return out

    @property
    def current_level(self) -> int:
        """The cursor ℓ (exposed for tests and the hybrid scheduler)."""
        return self._cursor
