"""The paper's scheduling algorithms and baselines."""

from typing import Callable

from .base import ReadinessOracle, Scheduler, SchedulerContext
from .hybrid import HybridScheduler
from .levelbased import LevelBasedScheduler
from .logicblox import LogicBloxScheduler
from .lookahead import LookaheadScheduler
from .meta import MetaResult, meta_schedule
from .oracle import OracleScheduler, lower_bounds
from .priority import CriticalPathScheduler, downstream_weight
from .signalprop import SignalPropagationScheduler

def scheduler_registry() -> dict[str, Callable[[], Scheduler]]:
    """Factories for every registered scheduler, keyed by CLI name.

    The single source of truth consumed by ``repro simulate``, the
    golden-result generator, and the chaos test suite — a scheduler
    added here is automatically exercised by all three.
    """
    return {
        "levelbased": LevelBasedScheduler,
        "lbl3": lambda: LookaheadScheduler(3),
        "logicblox": lambda: LogicBloxScheduler("fresh"),
        "logicblox-cached": lambda: LogicBloxScheduler("cached"),
        "signalprop": SignalPropagationScheduler,
        "hybrid": HybridScheduler,
        "oracle": OracleScheduler,
        "critical-path": CriticalPathScheduler,
    }


__all__ = [
    "Scheduler",
    "SchedulerContext",
    "ReadinessOracle",
    "scheduler_registry",
    "LevelBasedScheduler",
    "LookaheadScheduler",
    "LogicBloxScheduler",
    "SignalPropagationScheduler",
    "HybridScheduler",
    "OracleScheduler",
    "CriticalPathScheduler",
    "downstream_weight",
    "lower_bounds",
    "MetaResult",
    "meta_schedule",
]
