"""The paper's scheduling algorithms and baselines."""

from .base import ReadinessOracle, Scheduler, SchedulerContext
from .hybrid import HybridScheduler
from .levelbased import LevelBasedScheduler
from .logicblox import LogicBloxScheduler
from .lookahead import LookaheadScheduler
from .meta import MetaResult, meta_schedule
from .oracle import OracleScheduler, lower_bounds
from .priority import CriticalPathScheduler, downstream_weight
from .signalprop import SignalPropagationScheduler

__all__ = [
    "Scheduler",
    "SchedulerContext",
    "ReadinessOracle",
    "LevelBasedScheduler",
    "LookaheadScheduler",
    "LogicBloxScheduler",
    "SignalPropagationScheduler",
    "HybridScheduler",
    "OracleScheduler",
    "CriticalPathScheduler",
    "downstream_weight",
    "lower_bounds",
    "MetaResult",
    "meta_schedule",
]
