"""Abstract syntax for Datalog programs.

A program is a set of *rules* ``head :- body.`` and *facts*
``pred(c1, …, cn).`` Terms are variables (capitalized identifiers) or
constants (integers, quoted strings, or lowercase identifiers). Body
literals may be negated (``!edge(X, Y)``) — programs must then be
stratifiable — and may be comparison built-ins (``X < Y``, ``X != Y``).

These classes are deliberately tiny immutable values: the evaluator
(:mod:`repro.datalog.seminaive`), the incremental maintenance engine
(:mod:`repro.datalog.incremental`), and the DAG compiler
(:mod:`repro.datalog.compiler`) all pattern-match over them.
"""

from __future__ import annotations

from dataclasses import InitVar, dataclass, field
from typing import Iterator, Union

__all__ = [
    "Variable",
    "Constant",
    "Term",
    "Atom",
    "Aggregate",
    "Comparison",
    "Assignment",
    "ARITH_OPS",
    "Literal",
    "Rule",
    "Program",
    "COMPARISON_OPS",
    "AGGREGATE_OPS",
]


@dataclass(frozen=True)
class Variable:
    """A logic variable (capitalized in the concrete syntax)."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Constant:
    """A constant: int or string (symbols are stored as strings)."""

    value: int | str

    def __repr__(self) -> str:
        if isinstance(self.value, str):
            # only lowercase identifiers can print bare — anything else
            # would re-parse as a variable or fail to lex
            if (
                self.value.isidentifier()
                and self.value[0].islower()
                and self.value[0] != "_"
            ):
                return self.value
            return f'"{self.value}"'
        return str(self.value)


#: aggregation operators usable in rule heads
AGGREGATE_OPS = ("count", "sum", "min", "max")


@dataclass(frozen=True)
class Aggregate:
    """An aggregate head term ``op(Var)`` — e.g. ``total(C, sum(Q))``.

    Allowed only in rule heads; the rule then computes one fact per
    binding of its plain head variables (the group), aggregating the
    multiset of ``var`` bindings within the group. Aggregation is
    stratified exactly like negation: the rule's body predicates must
    be fully materialized in earlier strata.
    """

    op: str
    var: "Variable"

    def __post_init__(self) -> None:
        if self.op not in AGGREGATE_OPS:
            raise ValueError(f"unknown aggregate {self.op!r}")

    def __repr__(self) -> str:
        return f"{self.op}({self.var!r})"


Term = Union[Variable, Constant, Aggregate]


@dataclass(frozen=True)
class Atom:
    """``predicate(t1, …, tn)``.

    ``line``/``col`` record the 1-based source position of the
    predicate token when the atom came from the parser (``None`` for
    programmatically built atoms). They are excluded from equality and
    hashing so structurally identical atoms — and therefore rules and
    whole-program fingerprints — compare the same regardless of where
    they were written.
    """

    predicate: str
    terms: tuple[Term, ...]
    line: int | None = field(default=None, compare=False)
    col: int | None = field(default=None, compare=False)

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variables(self) -> Iterator[Variable]:
        for t in self.terms:
            if isinstance(t, Variable):
                yield t
            elif isinstance(t, Aggregate):
                yield t.var

    def aggregates(self) -> Iterator["Aggregate"]:
        for t in self.terms:
            if isinstance(t, Aggregate):
                yield t

    def has_aggregate(self) -> bool:
        return any(isinstance(t, Aggregate) for t in self.terms)

    def is_ground(self) -> bool:
        return all(isinstance(t, Constant) for t in self.terms)

    def __repr__(self) -> str:
        return f"{self.predicate}({', '.join(map(repr, self.terms))})"


#: comparison operators usable in rule bodies
COMPARISON_OPS = ("==", "!=", "<", "<=", ">", ">=")

#: binary arithmetic operators usable in assignments
ARITH_OPS = ("+", "-", "*")


@dataclass(frozen=True)
class Assignment:
    """A body binding ``Target = Left op Right`` (or ``Target = Left``).

    Evaluated once its input terms are bound: binds ``target`` if free,
    or filters on equality if already bound. Note that recursive rules
    generating fresh values through arithmetic (``D2 = D + 1``) can
    diverge — Datalog with arithmetic is not guaranteed to terminate;
    the evaluators accept a ``max_iterations`` guard for this reason.
    """

    target: "Variable"
    left: "Term"
    op: str | None = None
    right: "Term | None" = None
    line: int | None = field(default=None, compare=False)
    col: int | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if (self.op is None) != (self.right is None):
            raise ValueError("op and right must be given together")
        if self.op is not None and self.op not in ARITH_OPS:
            raise ValueError(f"unknown arithmetic operator {self.op!r}")

    def inputs(self) -> Iterator["Variable"]:
        for t in (self.left, self.right):
            if isinstance(t, Variable):
                yield t

    def variables(self) -> Iterator["Variable"]:
        yield self.target
        yield from self.inputs()

    def __repr__(self) -> str:
        expr = repr(self.left)
        if self.op is not None:
            expr += f" {self.op} {self.right!r}"
        return f"{self.target!r} = {expr}"


@dataclass(frozen=True)
class Comparison:
    """A built-in constraint ``left op right`` between two terms."""

    op: str
    left: Term
    right: Term
    line: int | None = field(default=None, compare=False)
    col: int | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def variables(self) -> Iterator[Variable]:
        for t in (self.left, self.right):
            if isinstance(t, Variable):
                yield t

    def __repr__(self) -> str:
        return f"{self.left!r} {self.op} {self.right!r}"


@dataclass(frozen=True)
class Literal:
    """A body element: an atom (possibly negated), a comparison, or an
    arithmetic assignment."""

    atom: Atom | None = None
    comparison: Comparison | None = None
    assignment: Assignment | None = None
    negated: bool = False

    def __post_init__(self) -> None:
        payloads = sum(
            x is not None
            for x in (self.atom, self.comparison, self.assignment)
        )
        if payloads != 1:
            raise ValueError(
                "literal must hold exactly one of atom/comparison/assignment"
            )
        if self.atom is None and self.negated:
            raise ValueError(
                "only atoms can be negated; use the dual comparison op"
            )

    @property
    def is_comparison(self) -> bool:
        return self.comparison is not None

    @property
    def is_assignment(self) -> bool:
        return self.assignment is not None

    def variables(self) -> Iterator[Variable]:
        src = self.atom or self.comparison or self.assignment
        yield from src.variables()

    def __repr__(self) -> str:
        if self.comparison is not None:
            return repr(self.comparison)
        if self.assignment is not None:
            return repr(self.assignment)
        return ("!" if self.negated else "") + repr(self.atom)


@dataclass(frozen=True)
class Rule:
    """``head :- body.`` — a fact when the body is empty.

    Pass ``check=False`` to skip the well-formedness validation (ground
    facts, aggregate placement, range restriction). The static analyzer
    (:mod:`repro.verify.program`) uses this to build rules from broken
    source and *report* the violations instead of crashing; everything
    that evaluates rules assumes they were built checked.
    """

    head: Atom
    body: tuple[Literal, ...] = ()
    check: InitVar[bool] = True

    @property
    def is_fact(self) -> bool:
        return not self.body

    @property
    def has_aggregate(self) -> bool:
        return self.head.has_aggregate()

    def __post_init__(self, check: bool) -> None:
        if not check:
            return
        if self.is_fact and not self.head.is_ground():
            raise ValueError(f"fact {self.head!r} must be ground")
        for lit in self.body:
            if lit.atom is not None and lit.atom.has_aggregate():
                raise ValueError(
                    f"aggregates are only allowed in rule heads: {lit!r}"
                )
        if sum(1 for _ in self.head.aggregates()) > 1:
            raise ValueError(
                f"at most one aggregate per head: {self.head!r}"
            )
        self._check_safety()

    def bound_variables(self) -> set[str]:
        """Variable names bound by positive body atoms, closed under
        assignments (an assignment binds its target once its inputs are
        transitively bound)."""
        bound = {v.name for lit in self.body if not lit.negated and lit.atom
                 for v in lit.variables()}
        changed = True
        while changed:
            changed = False
            for lit in self.body:
                a = lit.assignment
                if a is None or a.target.name in bound:
                    continue
                if all(v.name in bound for v in a.inputs()):
                    bound.add(a.target.name)
                    changed = True
        return bound

    def range_restriction(self) -> list[tuple[str, "Literal | None"]]:
        """Range-restriction violations as ``(variable, literal)`` pairs.

        ``literal`` is the negated atom / comparison / assignment whose
        variable is never bound, or ``None`` when the variable appears
        in the head. An empty list means the rule is safe. Head
        violations come first, then body violations in literal order —
        the order :meth:`_check_safety` raises in.
        """
        bound = self.bound_variables()
        out: list[tuple[str, Literal | None]] = []
        seen: set[tuple[str, int]] = set()
        for v in self.head.variables():
            if v.name not in bound and (v.name, -1) not in seen:
                seen.add((v.name, -1))
                out.append((v.name, None))
        for idx, lit in enumerate(self.body):
            if lit.negated or lit.is_comparison:
                names = (v.name for v in lit.variables())
            elif lit.assignment is not None:
                names = (v.name for v in lit.assignment.inputs())
            else:
                continue
            for name in names:
                if name not in bound and (name, idx) not in seen:
                    seen.add((name, idx))
                    out.append((name, lit))
        return out

    def _check_safety(self) -> None:
        """Range restriction: every head/negated/comparison variable must
        be bound by a positive body atom or an assignment whose inputs
        are (transitively) bound."""
        for name, lit in self.range_restriction():
            if lit is None:
                if not self.body:
                    # a non-ground fact; already rejected as such
                    continue
                raise ValueError(
                    f"unsafe rule: head variable {name} not bound in "
                    f"a positive body atom: {self!r}"
                )
            if lit.is_assignment:
                raise ValueError(
                    f"unsafe rule: assignment input {name} in "
                    f"{lit!r} is never bound"
                )
            raise ValueError(
                f"unsafe rule: variable {name} in "
                f"{lit!r} not bound in a positive body atom"
            )

    def body_predicates(self) -> Iterator[tuple[str, bool]]:
        """Yield (predicate, negated) for every body atom."""
        for lit in self.body:
            if lit.atom is not None:
                yield lit.atom.predicate, lit.negated

    def __repr__(self) -> str:
        if self.is_fact:
            return f"{self.head!r}."
        return f"{self.head!r} :- {', '.join(map(repr, self.body))}."


@dataclass
class Program:
    """An ordered collection of rules and facts.

    ``check=False`` skips the cross-rule arity validation — used by the
    lenient parser so the static analyzer can diagnose inconsistent
    programs instead of refusing to build them.
    """

    rules: list[Rule] = field(default_factory=list)
    check: InitVar[bool] = True

    def __post_init__(self, check: bool) -> None:
        if check:
            self._check_consistent_arity()

    def _check_consistent_arity(self) -> None:
        arity: dict[str, int] = {}
        for r in self.rules:
            atoms = [r.head] + [l.atom for l in r.body if l.atom is not None]
            for a in atoms:
                prev = arity.setdefault(a.predicate, a.arity)
                if prev != a.arity:
                    raise ValueError(
                        f"predicate {a.predicate} used with arities "
                        f"{prev} and {a.arity}"
                    )

    @property
    def facts(self) -> list[Rule]:
        """Ground facts (empty-body rules)."""
        return [r for r in self.rules if r.is_fact]

    @property
    def proper_rules(self) -> list[Rule]:
        """Rules with a non-empty body."""
        return [r for r in self.rules if not r.is_fact]

    def predicates(self) -> set[str]:
        """Every predicate mentioned in a head or body."""
        out: set[str] = set()
        for r in self.rules:
            out.add(r.head.predicate)
            for p, _ in r.body_predicates():
                out.add(p)
        return out

    def idb_predicates(self) -> set[str]:
        """Predicates defined by at least one proper rule."""
        return {r.head.predicate for r in self.proper_rules}

    def edb_predicates(self) -> set[str]:
        """Predicates appearing only as facts / inputs."""
        return self.predicates() - self.idb_predicates()

    def rules_for(self, predicate: str) -> list[Rule]:
        """Proper rules whose head is ``predicate``."""
        return [r for r in self.proper_rules if r.head.predicate == predicate]

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def __repr__(self) -> str:
        return "\n".join(map(repr, self.rules))
