"""Tokenizer for the Datalog concrete syntax.

Token kinds: identifiers (lower = predicate/symbol, Upper = variable),
integers, quoted strings, punctuation (``( ) , .``), the rule arrow
``:-``, negation ``!``, comparison operators, and ``%`` line comments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["Token", "tokenize", "LexError"]


class LexError(ValueError):
    """Raised on unrecognized input, with line/column context.

    ``line``/``col`` expose the 1-based position machine-readably (the
    message embeds the same position for humans).
    """

    def __init__(
        self, message: str, line: int | None = None, col: int | None = None
    ) -> None:
        super().__init__(message)
        self.line = line
        self.col = col


@dataclass(frozen=True)
class Token:
    """One lexeme with its source position."""

    kind: str  # IDENT | VAR | INT | STRING | PUNCT | OP | ARROW | BANG
    text: str
    line: int
    col: int

    def __repr__(self) -> str:
        return f"{self.kind}({self.text!r})@{self.line}:{self.col}"


_PUNCT = {"(", ")", ",", "."}
_TWO_CHAR_OPS = ("==", "!=", "<=", ">=")
_ONE_CHAR_OPS = ("<", ">", "=", "+", "-", "*")


def tokenize(text: str) -> Iterator[Token]:
    """Yield tokens; raises :class:`LexError` on bad input."""
    i, line, col = 0, 1, 1
    n = len(text)
    while i < n:
        c = text[i]
        if c == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if c.isspace():
            i += 1
            col += 1
            continue
        if c == "%":  # comment to end of line
            while i < n and text[i] != "\n":
                i += 1
            continue
        if text.startswith(":-", i):
            yield Token("ARROW", ":-", line, col)
            i += 2
            col += 2
            continue
        two = text[i : i + 2]
        if two in _TWO_CHAR_OPS:
            yield Token("OP", two, line, col)
            i += 2
            col += 2
            continue
        if c == "!":
            yield Token("BANG", "!", line, col)
            i += 1
            col += 1
            continue
        # negative integer literals bind tighter than the '-' operator:
        # "-5" is one INT token; write "X - 5" (spaced) for subtraction
        if c == "-" and i + 1 < n and text[i + 1].isdigit():
            j = i + 1
            while j < n and text[j].isdigit():
                j += 1
            yield Token("INT", text[i:j], line, col)
            col += j - i
            i = j
            continue
        if c in _ONE_CHAR_OPS:
            yield Token("OP", c, line, col)
            i += 1
            col += 1
            continue
        if c in _PUNCT:
            yield Token("PUNCT", c, line, col)
            i += 1
            col += 1
            continue
        if c == '"':
            j = i + 1
            while j < n and text[j] != '"':
                if text[j] == "\n":
                    raise LexError(
                        f"unterminated string at {line}:{col}", line, col
                    )
                j += 1
            if j >= n:
                raise LexError(
                    f"unterminated string at {line}:{col}", line, col
                )
            yield Token("STRING", text[i + 1 : j], line, col)
            col += j + 1 - i
            i = j + 1
            continue
        if c.isdigit() or (c == "-" and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            while j < n and text[j].isdigit():
                j += 1
            yield Token("INT", text[i:j], line, col)
            col += j - i
            i = j
            continue
        if c.isalpha() or c == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            kind = "VAR" if word[0].isupper() or word[0] == "_" else "IDENT"
            yield Token(kind, word, line, col)
            col += j - i
            i = j
            continue
        raise LexError(
            f"unexpected character {c!r} at {line}:{col}", line, col
        )
