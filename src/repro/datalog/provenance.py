"""Provenance: explain *why* a derived fact holds.

``explain`` searches for one derivation tree of a fact in a
materialized database: the rule that produced it, the body facts that
fired it, and recursively their derivations down to EDB/program facts.
This is the "why" query every Datalog debugger grows eventually, and it
doubles as a readable witness when incremental maintenance results look
surprising.

>>> d = explain(program, db, "path", (1, 4))
>>> print(d.pretty())
path(1, 4)  [rule 1: path(X, Z) :- path(X, Y), edge(Y, Z).]
├─ path(1, 3)  [rule 1: ...]
...

Only one derivation is produced (facts can have many); the search
prefers base facts and avoids cycles, so it terminates on recursive
programs. Negated literals and comparisons hold by absence/arithmetic
and contribute no child nodes. For aggregate rules the children are the
group's contributing body facts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .ast import Aggregate, Constant, Program, Rule
from .database import Database
from .unify import apply_subst, join_body

__all__ = ["Derivation", "explain"]


@dataclass
class Derivation:
    """One node of a derivation tree."""

    predicate: str
    fact: tuple
    #: index into ``program.proper_rules``; None for EDB/program facts
    rule_index: int | None = None
    rule_repr: str | None = None
    children: list["Derivation"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return self.rule_index is None

    def depth(self) -> int:
        """Height of this derivation tree (leaf = 1)."""
        return 1 + max((c.depth() for c in self.children), default=0)

    def pretty(self, indent: str = "") -> str:
        """Render the tree with box-drawing guides."""
        label = f"{self.predicate}{self.fact}"
        if self.rule_repr is not None:
            label += f"  [rule {self.rule_index}: {self.rule_repr}]"
        else:
            label += "  [base fact]"
        lines = [indent + label]
        for i, child in enumerate(self.children):
            last = i == len(self.children) - 1
            branch = "└─ " if last else "├─ "
            cont = "   " if last else "│  "
            sub = child.pretty("").splitlines()
            lines.append(indent + branch + sub[0])
            lines.extend(indent + cont + l for l in sub[1:])
        return "\n".join(lines)


def _head_subst(rule: Rule, fact: tuple) -> dict | None:
    """Bindings forced by unifying the head with a ground fact.

    Aggregate positions match any value (the aggregate result is not a
    join variable); plain terms unify as usual.
    """
    subst: dict = {}
    for term, value in zip(rule.head.terms, fact):
        if isinstance(term, Constant):
            if term.value != value:
                return None
        elif isinstance(term, Aggregate):
            continue  # the aggregated output; checked by re-evaluation
        else:
            bound = subst.get(term.name)
            if bound is None:
                subst[term.name] = value
            elif bound != value:
                return None
    return subst


def explain(
    program: Program,
    db: Database,
    predicate: str,
    fact: tuple,
    max_attempts: int = 64,
) -> Derivation | None:
    """One derivation tree for ``fact``, or None if it does not hold.

    ``db`` must be a materialized database (e.g. from
    :func:`~repro.datalog.seminaive_evaluate` or an engine's ``.db``).
    ``max_attempts`` caps how many body substitutions are tried per
    rule before giving up on that rule (guards pathological searches).
    """
    if not db.has_fact(predicate, fact):
        return None
    return _explain(
        program, db, predicate, fact, frozenset(), max_attempts
    )


def _explain(
    program: Program,
    db: Database,
    predicate: str,
    fact: tuple,
    in_progress: frozenset,
    max_attempts: int,
) -> Derivation | None:
    key = (predicate, fact)
    rules = [
        (ri, r)
        for ri, r in enumerate(program.proper_rules)
        if r.head.predicate == predicate
    ]
    is_base = predicate in program.edb_predicates() or any(
        f.head.predicate == predicate
        and tuple(t.value for t in f.head.terms) == fact  # type: ignore[union-attr]
        for f in program.facts
    )
    if is_base or not rules:
        return Derivation(predicate, fact)
    if key in in_progress:
        return None  # avoid cyclic self-justification
    marked = in_progress | {key}

    for ri, rule in rules:
        seed = _head_subst(rule, fact)
        if seed is None:
            continue
        if rule.has_aggregate:
            deriv = _explain_aggregate(ri, rule, db, fact, seed)
            if deriv is not None:
                return deriv
            continue
        attempts = 0
        for subst in join_body(rule.body, db, subst=seed):
            attempts += 1
            if attempts > max_attempts:
                break
            if apply_subst(rule.head, subst) != fact:
                continue  # pragma: no cover - seed unification prevents this
            children = []
            ok = True
            for lit in rule.body:
                if lit.atom is None or lit.negated:
                    continue  # filters/negation contribute no children
                body_fact = apply_subst(lit.atom, subst)
                child = _explain(
                    program, db, lit.atom.predicate, body_fact,
                    marked, max_attempts,
                )
                if child is None:
                    ok = False
                    break
                children.append(child)
            if ok:
                return Derivation(
                    predicate, fact, rule_index=ri,
                    rule_repr=repr(rule), children=children,
                )
    return None


def _explain_aggregate(
    ri: int, rule: Rule, db: Database, fact: tuple, seed: dict
) -> Derivation | None:
    """Aggregate facts are justified by their whole contributing group."""
    from .unify import eval_rule

    if fact not in eval_rule(rule, db):
        return None
    children = []
    for subst in join_body(rule.body, db, subst=seed):
        for lit in rule.body:
            if lit.atom is None or lit.negated:
                continue
            body_fact = apply_subst(lit.atom, subst)
            node = Derivation(lit.atom.predicate, body_fact)
            if node not in children:
                children.append(node)
    return Derivation(
        rule.head.predicate, fact, rule_index=ri,
        rule_repr=repr(rule), children=children,
    )
